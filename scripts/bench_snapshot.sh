#!/usr/bin/env bash
# Take a perf snapshot: build bench_json in release mode, run it, and
# drop the result as BENCH_<n>.json at the repo root, where <n> is one
# past the highest existing snapshot. Every PR in the series records
# one, so the perf trajectory stays machine-readable and diffable.
#
# Usage: scripts/bench_snapshot.sh [extra env, e.g. SNB_BENCH_SECS=5]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

next=1
for f in BENCH_*.json; do
  [ -e "$f" ] || continue
  n="${f#BENCH_}"
  n="${n%.json}"
  case "$n" in
    ''|*[!0-9]*) continue ;;
  esac
  if [ "$n" -ge "$next" ]; then
    next=$((n + 1))
  fi
done

out="BENCH_${next}.json"
echo "[bench_snapshot] building bench_json (release)..."
cargo build --release -p snb-bench --bin bench_json
echo "[bench_snapshot] writing ${out}"
./target/release/bench_json "$out"
echo "[bench_snapshot] done: ${out}"
