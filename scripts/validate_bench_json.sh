#!/usr/bin/env bash
# Validate every BENCH_<n>.json at the repo root against the snb-bench/1
# schema: the keys bench_json always writes must be present, numeric
# metric values must look numeric, and any `network` section (added in
# BENCH_2) must carry the by-connection round-trip sweep. From BENCH_5
# the `io_models` split (threaded vs epoll reactor) adds a 128-conn
# point, a pipelined-batch metric, and a no-collapse gate on the
# reactor sweep. Pure grep/POSIX so CI needs no jq.
#
# Usage: scripts/validate_bench_json.sh [files...]   (default: BENCH_*.json)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  for f in BENCH_*.json; do
    [ -e "$f" ] && files+=("$f")
  done
fi
if [ ${#files[@]} -eq 0 ]; then
  echo "[validate_bench_json] no BENCH_*.json files found" >&2
  exit 1
fi

fail=0
require_key() {
  # require_key <file> <key>: the quoted key must appear in the file.
  if ! grep -q "\"$2\"" "$1"; then
    echo "[validate_bench_json] $1: missing key \"$2\"" >&2
    fail=1
  fi
}

require_numeric() {
  # require_numeric <file> <key>: key must be followed by a number.
  if ! grep -Eq "\"$2\"[[:space:]]*:[[:space:]]*-?[0-9]+(\.[0-9]+)?" "$1"; then
    echo "[validate_bench_json] $1: key \"$2\" has no numeric value" >&2
    fail=1
  fi
}

for f in "${files[@]}"; do
  if ! grep -q '"schema"[[:space:]]*:[[:space:]]*"snb-bench/1"' "$f"; then
    echo "[validate_bench_json] $f: schema is not \"snb-bench/1\"" >&2
    fail=1
  fi
  require_numeric "$f" "unix_time"
  require_key "$f" "dataset"
  require_numeric "$f" "persons"
  require_numeric "$f" "vertices"
  require_numeric "$f" "edges"
  require_numeric "$f" "updates"
  require_key "$f" "metrics"
  require_numeric "$f" "vertex_lookup_ops_per_sec"
  require_numeric "$f" "two_hop_expansion_ops_per_sec"
  require_numeric "$f" "update_apply_ops_per_sec"
  require_key "$f" "reads_per_sec_by_readers"
  require_key "$f" "engines"
  require_numeric "$f" "point_lookup_ops_per_sec"
  require_numeric "$f" "one_hop_ops_per_sec"
  # The network section appears from BENCH_2 onward; when present it
  # must carry the connection-scaling sweep with all three points.
  if grep -q '"network"' "$f"; then
    require_key "$f" "round_trips_per_sec_by_connections"
    for conns in 1 8 32; do
      if ! grep -Eq "\"$conns\"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?" "$f"; then
        echo "[validate_bench_json] $f: network sweep missing \"$conns\" connections" >&2
        fail=1
      fi
    done
  fi
  # The io_models split (threaded vs epoll reactor) and the pipelined
  # batch metric appear from BENCH_5 onward; when present, both model
  # sweeps must carry all four connection points, the batch metric must
  # be numeric, and the reactor path must not collapse under fan-in:
  # its 32-connection throughput must hold at least 85% of its
  # 8-connection figure.
  if grep -q '"io_models"' "$f"; then
    require_numeric "$f" "pipelined_batch_round_trips_per_sec"
    for model in threaded reactor; do
      line="$(grep -Eo "\"$model\"[[:space:]]*:[[:space:]]*\{[^}]*\}" "$f" | head -1 || true)"
      if [ -z "$line" ]; then
        echo "[validate_bench_json] $f: io_models missing \"$model\" sweep" >&2
        fail=1
        continue
      fi
      for conns in 1 8 32 128; do
        if ! printf '%s' "$line" | grep -Eq "\"$conns\"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?"; then
          echo "[validate_bench_json] $f: io_models.$model missing \"$conns\" connections" >&2
          fail=1
        fi
      done
    done
    reactor_line="$(grep -Eo '"reactor"[[:space:]]*:[[:space:]]*\{[^}]*\}' "$f" | head -1 || true)"
    r8="$(printf '%s' "$reactor_line" | grep -Eo '"8"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
    r32="$(printf '%s' "$reactor_line" | grep -Eo '"32"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
    if [ -n "$r8" ] && [ -n "$r32" ]; then
      if ! awk -v a="$r32" -v b="$r8" 'BEGIN { exit !(a >= 0.85 * b) }'; then
        echo "[validate_bench_json] $f: reactor 32-conn throughput $r32 collapsed below 85% of 8-conn $r8" >&2
        fail=1
      fi
    else
      echo "[validate_bench_json] $f: reactor sweep lacks 8/32 points for the no-collapse gate" >&2
      fail=1
    fi
  fi
  # The ingest section appears from BENCH_3 onward; when present it
  # must carry the applier sweep and the mixed read/write run.
  if grep -q '"ingest"' "$f"; then
    require_numeric "$f" "stream_updates"
    require_key "$f" "updates_per_sec_by_appliers"
    for appliers in 1 2 4 8; do
      if ! grep -Eq "\"$appliers\"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?" "$f"; then
        echo "[validate_bench_json] $f: applier sweep missing \"$appliers\" appliers" >&2
        fail=1
      fi
    done
    require_key "$f" "mixed"
    require_numeric "$f" "ingest_updates_per_sec"
    require_numeric "$f" "reads_per_sec_during_ingest"
    require_numeric "$f" "read_only_reads_per_sec"
  fi
  # The explicit read-retention ratio appears from BENCH_6 onward; when
  # present it is gated: reads under sustained ingestion must hold at
  # least 60% of the read-only baseline (the Figure-3 headline).
  if grep -q '"read_retention"' "$f"; then
    require_numeric "$f" "read_retention"
    retention="$(grep -Eo '"read_retention"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' "$f" \
      | grep -Eo '[0-9.]+$' | head -1 || true)"
    if [ -n "$retention" ]; then
      if ! awk -v r="$retention" 'BEGIN { exit !(r >= 0.6) }'; then
        echo "[validate_bench_json] $f: read_retention $retention below the 0.6 floor" >&2
        fail=1
      fi
    fi
  fi
  # The sharding section (scatter-gather router) appears from BENCH_6
  # onward; when present both by-shards sweeps must carry the 1/2/4
  # points, the file must also carry the read_retention ratio, and the
  # cross-shard two-hop must not collapse when the graph is partitioned:
  # 2 shards must hold at least 70% of the 1-shard figure. (Originally
  # 85%, recalibrated in PR 8: interleaved A/B reruns of the unchanged
  # PR-6 code showed the ratio's run-to-run band on this 1-core
  # container is 77-90% — the old floor sat inside the noise band and
  # failed the unmodified code about half the time when a snapshot was
  # regenerated. 70% still catches genuine partitioning collapse.)
  if grep -q '"sharding"' "$f"; then
    if ! grep -q '"read_retention"' "$f"; then
      echo "[validate_bench_json] $f: sharding section requires read_retention" >&2
      fail=1
    fi
    for sweep in round_trips_per_sec_by_shards two_hop_per_sec_by_shards; do
      line="$(grep -Eo "\"$sweep\"[[:space:]]*:[[:space:]]*\{[^}]*\}" "$f" | head -1 || true)"
      if [ -z "$line" ]; then
        echo "[validate_bench_json] $f: sharding missing \"$sweep\" sweep" >&2
        fail=1
        continue
      fi
      for shards in 1 2 4; do
        if ! printf '%s' "$line" | grep -Eq "\"$shards\"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?"; then
          echo "[validate_bench_json] $f: sharding.$sweep missing \"$shards\" shards" >&2
          fail=1
        fi
      done
    done
    two_line="$(grep -Eo '"two_hop_per_sec_by_shards"[[:space:]]*:[[:space:]]*\{[^}]*\}' "$f" | head -1 || true)"
    t1="$(printf '%s' "$two_line" | grep -Eo '"1"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
    t2="$(printf '%s' "$two_line" | grep -Eo '"2"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
    if [ -n "$t1" ] && [ -n "$t2" ]; then
      if ! awk -v a="$t2" -v b="$t1" 'BEGIN { exit !(a >= 0.70 * b) }'; then
        echo "[validate_bench_json] $f: 2-shard two-hop $t2 collapsed below 70% of 1-shard $t1" >&2
        fail=1
      fi
    else
      echo "[validate_bench_json] $f: two_hop_per_sec_by_shards lacks 1/2 points for the scale-out gate" >&2
      fail=1
    fi
  fi
  # The cache section (epoch-keyed result caches) appears from BENCH_9
  # onward; when present both measured layers must carry cached/bypass
  # throughput and a nonzero hit rate, no layer may fall behind its
  # bypass arm (0.9 floor absorbs measurement noise), at least one
  # layer must show the >=1.5x skewed-read speedup the cache exists
  # for, the mixed-ingest hit rate must stay nonzero (entries survive
  # between invalidation points), and the stale-serve tripwire must
  # read exactly 0.
  if grep -q '"cache"' "$f"; then
    require_numeric "$f" "zipf_s"
    require_key "$f" "mixed_ingest"
    require_numeric "$f" "mixed_reads_per_sec"
    require_numeric "$f" "hit_rate_under_ingest"
    cleared_15x=0
    for layer in cypher_adapter gremlin_inline; do
      line="$(grep -Eo "\"$layer\"[[:space:]]*:[[:space:]]*\{[^}]*\}" "$f" | head -1 || true)"
      if [ -z "$line" ]; then
        echo "[validate_bench_json] $f: cache missing \"$layer\" layer" >&2
        fail=1
        continue
      fi
      c="$(printf '%s' "$line" | grep -Eo '"cached_ops_per_sec"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
      b="$(printf '%s' "$line" | grep -Eo '"bypass_ops_per_sec"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
      h="$(printf '%s' "$line" | grep -Eo '"hit_rate"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
      if [ -z "$c" ] || [ -z "$b" ] || [ -z "$h" ]; then
        echo "[validate_bench_json] $f: cache.$layer lacks cached/bypass/hit_rate figures" >&2
        fail=1
        continue
      fi
      if ! awk -v a="$c" -v d="$b" 'BEGIN { exit !(a >= 0.9 * d) }'; then
        echo "[validate_bench_json] $f: cache.$layer cached $c fell behind bypass $b" >&2
        fail=1
      fi
      if awk -v a="$c" -v d="$b" 'BEGIN { exit !(a >= 1.5 * d) }'; then
        cleared_15x=1
      fi
      if ! awk -v r="$h" 'BEGIN { exit !(r > 0) }'; then
        echo "[validate_bench_json] $f: cache.$layer hit rate is zero" >&2
        fail=1
      fi
    done
    if [ "$cleared_15x" -ne 1 ]; then
      echo "[validate_bench_json] $f: no cache layer cleared the 1.5x cached-vs-bypass floor" >&2
      fail=1
    fi
    ing="$(grep -Eo '"hit_rate_under_ingest"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' "$f" | grep -Eo '[0-9.]+$' | head -1 || true)"
    if [ -z "$ing" ] || ! awk -v r="$ing" 'BEGIN { exit !(r > 0) }'; then
      echo "[validate_bench_json] $f: mixed-ingest hit rate (${ing:-missing}) is not positive" >&2
      fail=1
    fi
    ss="$(grep -Eo '"stale_served"[[:space:]]*:[[:space:]]*[0-9]+' "$f" | grep -Eo '[0-9]+$' | head -1 || true)"
    if [ -z "$ss" ] || [ "$ss" -ne 0 ]; then
      echo "[validate_bench_json] $f: stale_served (${ss:-missing}) must be exactly 0" >&2
      fail=1
    fi
  fi
  # The analytics section appears from BENCH_7 onward; when present it
  # must carry the PageRank/WCC job metrics and the coexistence run:
  # interactive reads during a paced PageRank job must hold at least
  # 60% of the read-only baseline, the driver must have observed the
  # job's progress across at least two distinct polls, and the second
  # (victim) job must have been cancelled mid-run.
  if grep -q '"analytics"' "$f"; then
    require_numeric "$f" "snapshot_rows"
    require_numeric "$f" "pagerank_iterations"
    require_numeric "$f" "pagerank_iterations_per_sec"
    require_numeric "$f" "pagerank_top_k"
    require_numeric "$f" "wcc_wall_ms"
    require_key "$f" "coexistence"
    require_numeric "$f" "reads_per_sec_during_pagerank"
    coexist_line="$(grep -Eo '"coexistence"[[:space:]]*:[[:space:]]*\{[^}]*\}' "$f" | head -1 || true)"
    a_ret="$(printf '%s' "$coexist_line" | grep -Eo '"read_retention"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
    if [ -n "$a_ret" ]; then
      if ! awk -v r="$a_ret" 'BEGIN { exit !(r >= 0.6) }'; then
        echo "[validate_bench_json] $f: analytics read_retention $a_ret below the 0.6 floor" >&2
        fail=1
      fi
    else
      echo "[validate_bench_json] $f: analytics coexistence lacks read_retention" >&2
      fail=1
    fi
    polls="$(printf '%s' "$coexist_line" | grep -Eo '"progress_polls"[[:space:]]*:[[:space:]]*[0-9]+' | grep -Eo '[0-9]+$' || true)"
    if [ -z "$polls" ] || [ "$polls" -lt 2 ]; then
      echo "[validate_bench_json] $f: analytics progress_polls (${polls:-missing}) below 2" >&2
      fail=1
    fi
    if ! printf '%s' "$coexist_line" | grep -Eq '"cancelled_mid_run"[[:space:]]*:[[:space:]]*true'; then
      echo "[validate_bench_json] $f: analytics victim job was not cancelled mid-run" >&2
      fail=1
    fi
  fi
  # The traversal section appears from BENCH_4 onward; when present it
  # must carry the intra-query worker sweep, the locked-store
  # baselines, and per-engine latency percentiles — and the top-level
  # two-hop metric must clear the floor the CSR read path guarantees
  # (regression gate for the snapshot hot path).
  if grep -q '"traversal"' "$f"; then
    require_numeric "$f" "two_hop_locked_ops_per_sec"
    require_key "$f" "two_hop_ops_per_sec_by_workers"
    require_key "$f" "shortest_path_ops_per_sec_by_workers"
    require_numeric "$f" "two_hop_locked_baseline_ops_per_sec"
    require_numeric "$f" "shortest_path_locked_baseline_ops_per_sec"
    require_numeric "$f" "morsel_min"
    for workers in 1 2 4; do
      if ! grep -Eq "\"$workers\"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?" "$f"; then
        echo "[validate_bench_json] $f: traversal sweep missing \"$workers\" workers" >&2
        fail=1
      fi
    done
    for pct in p50 p95 p99; do
      require_numeric "$f" "$pct"
    done
    floor=300000
    val="$(grep -Eo '"two_hop_expansion_ops_per_sec"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' "$f" \
      | grep -Eo '[0-9]+(\.[0-9]+)?$' | head -1 || true)"
    if [ -z "$val" ] || [ "$(printf '%.0f' "$val")" -lt "$floor" ]; then
      echo "[validate_bench_json] $f: two_hop_expansion_ops_per_sec (${val:-missing}) below floor $floor" >&2
      fail=1
    fi
  fi
  # The whole-query optimizer additions appear from BENCH_8 onward:
  # per-engine two-hop/shortest-path throughput and the SQL recursive
  # CTE measured with the optimizer on vs off. Two gates: whole-query
  # Cypher must not fall behind step-at-a-time Gremlin on the one-hop
  # (the paper's central comparison, now with fusion on both sides),
  # and the optimized CTE (BFS over cached adjacency) must be at least
  # as fast as naive semi-naive evaluation.
  if grep -q '"sql_recursive_cte"' "$f"; then
    require_numeric "$f" "two_hop_ops_per_sec"
    require_numeric "$f" "shortest_path_ops_per_sec"
    require_numeric "$f" "optimized_ops_per_sec"
    require_numeric "$f" "naive_ops_per_sec"
    cy="$(grep -F '"Native (Cypher)"' "$f" | head -1 \
      | grep -Eo '"one_hop_ops_per_sec"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' \
      | grep -Eo '[0-9.]+$' || true)"
    gr="$(grep -F '"Native (Gremlin)"' "$f" | head -1 \
      | grep -Eo '"one_hop_ops_per_sec"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' \
      | grep -Eo '[0-9.]+$' || true)"
    if [ -n "$cy" ] && [ -n "$gr" ]; then
      if ! awk -v a="$cy" -v b="$gr" 'BEGIN { exit !(a >= b) }'; then
        echo "[validate_bench_json] $f: Cypher one-hop $cy fell behind Gremlin one-hop $gr" >&2
        fail=1
      fi
    else
      echo "[validate_bench_json] $f: engines lack Cypher/Gremlin one-hop figures for the planner gate" >&2
      fail=1
    fi
    cte_line="$(grep -Eo '"sql_recursive_cte"[[:space:]]*:[[:space:]]*\{[^}]*\}' "$f" | head -1 || true)"
    opt="$(printf '%s' "$cte_line" | grep -Eo '"optimized_ops_per_sec"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
    nv="$(printf '%s' "$cte_line" | grep -Eo '"naive_ops_per_sec"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?' | grep -Eo '[0-9.]+$' || true)"
    if [ -n "$opt" ] && [ -n "$nv" ]; then
      if ! awk -v a="$opt" -v b="$nv" 'BEGIN { exit !(a >= b) }'; then
        echo "[validate_bench_json] $f: optimized recursive CTE $opt slower than naive $nv" >&2
        fail=1
      fi
    else
      echo "[validate_bench_json] $f: sql_recursive_cte lacks optimized/naive figures" >&2
      fail=1
    fi
  fi
  # The scale section (streaming million-vertex build) appears from
  # BENCH_10 onward; when present it must carry the build/accounting/
  # throughput figures and clears three gates: adjacency stays under
  # the memory-lean ceiling (64 B/edge — a pointer-heavy adjacency map
  # blows straight through it), the complex-read operators hold
  # conservative throughput floors at whatever size was run, and a
  # million-person build lands within the streaming-build time bound.
  if grep -q '"scale"' "$f"; then
    scale_line="$(sed -n '/"scale"[[:space:]]*:/,/^  }/p' "$f")"
    for key in persons vertices edges stream_updates chunks build_seconds \
               ingest_updates_per_sec bytes_per_vertex bytes_per_edge resident_bytes \
               two_hop_ops_per_sec foaf_posts_per_sec recent_messages_per_sec \
               mutual_friends_per_sec; do
      if ! printf '%s' "$scale_line" | grep -Eq "\"$key\"[[:space:]]*:[[:space:]]*-?[0-9]+(\.[0-9]+)?"; then
        echo "[validate_bench_json] $f: scale section missing numeric \"$key\"" >&2
        fail=1
      fi
    done
    num_of() {
      printf '%s' "$scale_line" | grep -Eo "\"$1\"[[:space:]]*:[[:space:]]*[0-9]+(\.[0-9]+)?" \
        | grep -Eo '[0-9.]+$' | head -1 || true
    }
    bpe="$(num_of bytes_per_edge)"
    if [ -n "$bpe" ] && ! awk -v b="$bpe" 'BEGIN { exit !(b > 0 && b <= 64.0) }'; then
      echo "[validate_bench_json] $f: scale bytes_per_edge $bpe outside (0, 64]" >&2
      fail=1
    fi
    foaf="$(num_of foaf_posts_per_sec)"
    if [ -n "$foaf" ] && ! awk -v v="$foaf" 'BEGIN { exit !(v >= 1000) }'; then
      echo "[validate_bench_json] $f: scale foaf_posts_per_sec $foaf below the 1000/s floor" >&2
      fail=1
    fi
    rm_ps="$(num_of recent_messages_per_sec)"
    if [ -n "$rm_ps" ] && ! awk -v v="$rm_ps" 'BEGIN { exit !(v >= 1000) }'; then
      echo "[validate_bench_json] $f: scale recent_messages_per_sec $rm_ps below the 1000/s floor" >&2
      fail=1
    fi
    mut="$(num_of mutual_friends_per_sec)"
    if [ -n "$mut" ] && ! awk -v v="$mut" 'BEGIN { exit !(v >= 1000) }'; then
      echo "[validate_bench_json] $f: scale mutual_friends_per_sec $mut below the 1000/s floor" >&2
      fail=1
    fi
    sp="$(num_of persons)"
    bs="$(num_of build_seconds)"
    if [ -n "$sp" ] && [ -n "$bs" ] && [ "$sp" -ge 1000000 ] 2>/dev/null; then
      if ! awk -v s="$bs" 'BEGIN { exit !(s <= 600) }'; then
        echo "[validate_bench_json] $f: scale build_seconds $bs above the 600s million-person bound" >&2
        fail=1
      fi
    fi
  fi
  if [ "$fail" -eq 0 ]; then
    echo "[validate_bench_json] $f: OK"
  fi
done

exit "$fail"
