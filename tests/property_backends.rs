//! Model-based property tests: a random sequence of graph mutations and
//! queries must produce identical results on every `GraphBackend`
//! implementation (native adjacency store, both KV-graph backends, and
//! the SQL-translating Sqlg layer), checked against a simple in-memory
//! model.

use proptest::prelude::*;
use snb_bench_rs::core::{Direction, EdgeLabel, GraphBackend, PropKey, Value, VertexLabel, Vid};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    AddPerson { id: u64, name: String },
    AddKnows { a: u64, b: u64, date: i64 },
    SetName { id: u64, name: String },
    QueryNeighbors { id: u64, dir: u8 },
    QueryProp { id: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..12u64, "[a-z]{1,6}").prop_map(|(id, name)| Op::AddPerson { id, name }),
        (0..12u64, 0..12u64, 0..1000i64).prop_map(|(a, b, date)| Op::AddKnows { a, b, date }),
        (0..12u64, "[a-z]{1,6}").prop_map(|(id, name)| Op::SetName { id, name }),
        (0..12u64, 0..3u8).prop_map(|(id, dir)| Op::QueryNeighbors { id, dir }),
        (0..12u64).prop_map(|id| Op::QueryProp { id }),
    ]
}

/// Reference model: sets and maps only.
#[derive(Default)]
struct Model {
    persons: BTreeMap<u64, String>,
    knows: BTreeSet<(u64, u64)>,
}

fn backends() -> Vec<Box<dyn GraphBackend>> {
    vec![
        Box::new(snb_bench_rs::graph_native::NativeGraphStore::new()),
        Box::new(snb_bench_rs::kvgraph::KvGraph::new(snb_bench_rs::kvgraph::BTreeKv::new())),
        Box::new(snb_bench_rs::kvgraph::KvGraph::new(snb_bench_rs::kvgraph::PartitionedKv::new())),
        Box::new(snb_bench_rs::driver::sqlg::SqlgBackend::new(
            snb_bench_rs::relational::Database::new_snb(snb_bench_rs::relational::Layout::Row),
        )),
    ]
}

fn vid(id: u64) -> Vid {
    Vid::new(VertexLabel::Person, id)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn backends_agree_with_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut model = Model::default();
        let backends = backends();
        for op in &ops {
            match op {
                Op::AddPerson { id, name } => {
                    let expect_ok = !model.persons.contains_key(id);
                    if expect_ok {
                        model.persons.insert(*id, name.clone());
                    }
                    for b in &backends {
                        let r = b.add_vertex(
                            VertexLabel::Person,
                            *id,
                            &[(PropKey::FirstName, Value::str(name))],
                        );
                        prop_assert_eq!(r.is_ok(), expect_ok, "{} add_vertex", b.name());
                    }
                }
                Op::AddKnows { a, b: dst, date } => {
                    // Skip self-loops and duplicates: backends tolerate
                    // parallel edges, the set-based model does not.
                    if *a == *dst || model.knows.contains(&(*a, *dst)) {
                        continue;
                    }
                    let expect_ok =
                        model.persons.contains_key(a) && model.persons.contains_key(dst);
                    if expect_ok {
                        model.knows.insert((*a, *dst));
                    }
                    for b in &backends {
                        let r = b.add_edge(
                            EdgeLabel::Knows,
                            vid(*a),
                            vid(*dst),
                            &[(PropKey::CreationDate, Value::Date(*date))],
                        );
                        prop_assert_eq!(r.is_ok(), expect_ok, "{} add_edge", b.name());
                    }
                }
                Op::SetName { id, name } => {
                    let expect_ok = model.persons.contains_key(id);
                    if expect_ok {
                        model.persons.insert(*id, name.clone());
                    }
                    for b in &backends {
                        let r = b.set_vertex_prop(vid(*id), PropKey::FirstName, Value::str(name));
                        prop_assert_eq!(r.is_ok(), expect_ok, "{} set_prop", b.name());
                    }
                }
                Op::QueryNeighbors { id, dir } => {
                    let dir = match dir {
                        0 => Direction::Out,
                        1 => Direction::In,
                        _ => Direction::Both,
                    };
                    let mut expected: Vec<u64> = Vec::new();
                    if model.persons.contains_key(id) {
                        for (a, b) in &model.knows {
                            match dir {
                                Direction::Out if a == id => expected.push(*b),
                                Direction::In if b == id => expected.push(*a),
                                Direction::Both => {
                                    if a == id {
                                        expected.push(*b);
                                    }
                                    if b == id {
                                        expected.push(*a);
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                    expected.sort_unstable();
                    for b in &backends {
                        let mut got = Vec::new();
                        let r = b.neighbors(vid(*id), dir, Some(EdgeLabel::Knows), &mut got);
                        if model.persons.contains_key(id) {
                            prop_assert!(r.is_ok());
                            let mut got: Vec<u64> = got.iter().map(|v| v.local()).collect();
                            got.sort_unstable();
                            prop_assert_eq!(&got, &expected, "{} neighbors {:?}", b.name(), dir);
                        } else {
                            prop_assert!(r.is_err(), "{} neighbors of missing vertex", b.name());
                        }
                    }
                }
                Op::QueryProp { id } => {
                    let expected = model.persons.get(id);
                    for b in &backends {
                        match b.vertex_prop(vid(*id), PropKey::FirstName) {
                            Ok(Some(Value::Str(s))) => {
                                prop_assert_eq!(Some(&s.to_string()), expected, "{}", b.name())
                            }
                            Ok(other) => prop_assert!(false, "{}: unexpected {other:?}", b.name()),
                            Err(_) => prop_assert!(expected.is_none(), "{}", b.name()),
                        }
                    }
                }
            }
        }
        // Final invariant: global counts agree everywhere.
        for b in &backends {
            prop_assert_eq!(b.vertex_count(), model.persons.len(), "{}", b.name());
            prop_assert_eq!(b.edge_count(), model.knows.len(), "{}", b.name());
        }
    }
}
