//! Cross-engine equivalence: every system configuration must return the
//! same logical answer to every benchmark operation. This is the
//! correctness bedrock under the performance comparison — the paper
//! notes that the original LDBC reference implementations returned
//! "empty or incorrect results" in exactly this kind of mismatch.

use snb_bench_rs::core::{Value, VertexLabel};
use snb_bench_rs::datagen::{generate, GeneratorConfig};
use snb_bench_rs::driver::adapter::{build_all_adapters, OpResult, SutAdapter};
use snb_bench_rs::driver::{ParamGen, ReadOp};

fn sorted(mut rows: OpResult) -> OpResult {
    rows.sort();
    rows
}

/// Load the tiny dataset into all eight configurations once.
fn loaded_adapters() -> (snb_bench_rs::datagen::GeneratedData, Vec<Box<dyn SutAdapter>>) {
    let mut cfg = GeneratorConfig::tiny();
    cfg.persons = 80;
    let data = generate(&cfg);
    let adapters = build_all_adapters();
    for a in &adapters {
        a.load(&data.snapshot).unwrap_or_else(|e| panic!("{}: {e}", a.name()));
    }
    (data, adapters)
}

fn assert_all_agree(adapters: &[Box<dyn SutAdapter>], op: &ReadOp) {
    let reference = sorted(adapters[0].execute_read(op).unwrap_or_else(|e| {
        panic!("{}: {op:?} failed: {e}", adapters[0].name())
    }));
    for a in &adapters[1..] {
        let got = sorted(a.execute_read(op).unwrap_or_else(|e| panic!("{}: {op:?} failed: {e}", a.name())));
        assert_eq!(
            got,
            reference,
            "{} disagrees with {} on {op:?}",
            a.name(),
            adapters[0].name()
        );
    }
}

#[test]
fn all_engines_agree_on_the_benchmark_operations() {
    let (data, adapters) = loaded_adapters();
    let mut params = ParamGen::new(&data, 0xe9_51);
    // Micro suite across several parameter draws.
    for _ in 0..5 {
        let person = params.person();
        assert_all_agree(&adapters, &ReadOp::PointLookup { person });
        assert_all_agree(&adapters, &ReadOp::OneHop { person });
        assert_all_agree(&adapters, &ReadOp::TwoHop { person });
    }
    for _ in 0..3 {
        let (a, b) = params.person_pair();
        assert_all_agree(&adapters, &ReadOp::ShortestPath { a, b });
    }
    // Short reads.
    for _ in 0..3 {
        let person = params.person();
        assert_all_agree(&adapters, &ReadOp::Is1Profile { person });
        assert_all_agree(&adapters, &ReadOp::Is3Friends { person });
        let message = params.message();
        assert_all_agree(&adapters, &ReadOp::Is4MessageContent { message });
        assert_all_agree(&adapters, &ReadOp::Is5MessageCreator { message });
        assert_all_agree(&adapters, &ReadOp::Is7MessageReplies { message });
        let post = params.post();
        assert_all_agree(&adapters, &ReadOp::Is6MessageForum { post });
    }
    // IS2 and the complex reads (ordered results; compared sorted, with
    // limits beyond the result size so tie-breaking cannot differ).
    for _ in 0..3 {
        let person = params.person();
        assert_all_agree(&adapters, &ReadOp::Is2RecentMessages { person, limit: 10_000 });
        let first_name = params.first_name();
        assert_all_agree(&adapters, &ReadOp::Complex2Hop { person, first_name, limit: 10_000 });
        assert_all_agree(&adapters, &ReadOp::RecentFriendMessages { person, limit: 100_000 });
    }
}

#[test]
fn all_engines_agree_after_applying_the_update_stream() {
    let (data, adapters) = loaded_adapters();
    // Apply a prefix of the stream everywhere.
    let prefix = data.updates.len().min(120);
    for op in &data.updates[..prefix] {
        for a in &adapters {
            a.execute_update(op).unwrap_or_else(|e| panic!("{}: update failed: {e}", a.name()));
        }
    }
    // New entities must be visible and identical everywhere.
    let new_person = data.updates[..prefix]
        .iter()
        .filter_map(|u| u.new_vertex.as_ref())
        .find(|v| v.label == VertexLabel::Person);
    if let Some(p) = new_person {
        assert_all_agree(&adapters, &ReadOp::PointLookup { person: p.id });
        assert_all_agree(&adapters, &ReadOp::OneHop { person: p.id });
    }
    let touched_person = data.updates[..prefix]
        .iter()
        .find(|u| u.kind == snb_bench_rs::datagen::UpdateKind::AddFriendship)
        .map(|u| u.new_edges[0].src.local());
    if let Some(person) = touched_person {
        assert_all_agree(&adapters, &ReadOp::OneHop { person });
        assert_all_agree(&adapters, &ReadOp::Is3Friends { person });
    }
}

#[test]
fn point_lookup_of_missing_person_is_empty_everywhere() {
    let (_, adapters) = loaded_adapters();
    for a in &adapters {
        let rows = a.execute_read(&ReadOp::PointLookup { person: 999_999 }).unwrap();
        assert!(rows.is_empty(), "{}", a.name());
    }
}

#[test]
fn shortest_path_to_self_is_zero_everywhere() {
    let (data, adapters) = loaded_adapters();
    let mut params = ParamGen::new(&data, 3);
    let p = params.person();
    for a in &adapters {
        let rows = a.execute_read(&ReadOp::ShortestPath { a: p, b: p }).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)]], "{}", a.name());
    }
}
