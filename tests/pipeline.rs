//! End-to-end benchmarking-architecture tests: the full Figure 1
//! pipeline (generator → snapshot load → Kafka-style queue → writer with
//! dependency tracking → concurrent readers) must run and leave every
//! system in a consistent state.

use snb_bench_rs::datagen::{generate, GeneratorConfig};
use snb_bench_rs::driver::adapter::cypher::CypherAdapter;
use snb_bench_rs::driver::adapter::sql::SqlAdapter;
use snb_bench_rs::driver::adapter::SutAdapter;
use snb_bench_rs::driver::interactive::{run_interactive, InteractiveConfig};
use snb_bench_rs::driver::loading::load_concurrent;
use std::time::Duration;

fn tiny_data() -> snb_bench_rs::datagen::GeneratedData {
    let mut cfg = GeneratorConfig::tiny();
    cfg.persons = 60;
    generate(&cfg)
}

#[test]
fn interactive_pipeline_runs_on_relational_and_native() {
    let data = tiny_data();
    let config = InteractiveConfig {
        readers: 4,
        duration: Duration::from_millis(700),
        seed: 11,
        ..InteractiveConfig::default()
    };
    let sql = SqlAdapter::row_store();
    sql.load(&data.snapshot).unwrap();
    let report = run_interactive(&sql, &data, &config);
    assert!(report.total_reads > 0);
    assert!(report.total_writes > 0);
    assert_eq!(report.write_errors, 0);

    let cypher = CypherAdapter::new();
    cypher.load(&data.snapshot).unwrap();
    let report = run_interactive(&cypher, &data, &config);
    assert!(report.total_reads > 0);
    assert!(report.total_writes > 0);
    assert_eq!(report.write_errors, 0);
}

#[test]
fn interactive_pipeline_survives_a_gremlin_system() {
    // The Gremlin path adds the server boundary: reads and writes must
    // still flow, and overload shows up as errors, never as a wedge.
    let data = tiny_data();
    let adapter = snb_bench_rs::driver::adapter::gremlin::GremlinAdapter::titan_c();
    adapter.load(&data.snapshot).unwrap();
    let report = run_interactive(
        &adapter,
        &data,
        &InteractiveConfig {
            readers: 4,
            duration: Duration::from_millis(700),
            seed: 5,
            ..InteractiveConfig::default()
        },
    );
    assert!(report.total_reads > 0);
    assert!(report.total_writes > 0);
}

#[test]
fn full_mix_includes_complex_reads() {
    let data = tiny_data();
    let mut params = snb_bench_rs::driver::ParamGen::new(&data, 9);
    let mut names = std::collections::HashSet::new();
    for _ in 0..200 {
        names.insert(params.full_mix_read().name());
    }
    assert!(names.contains("complex_2hop"));
    assert!(names.contains("complex_friend_messages"));
    assert!(names.contains("shortest_path"));
}

#[test]
fn writer_applies_stream_in_dependency_order() {
    // After a full drain, the store must contain snapshot + all updates.
    let data = tiny_data();
    let adapter = SqlAdapter::row_store();
    adapter.load(&data.snapshot).unwrap();
    for op in &data.updates {
        adapter.execute_update(op).unwrap();
    }
    let persons_total = data
        .snapshot
        .vertices
        .iter()
        .filter(|v| v.label == snb_bench_rs::core::VertexLabel::Person)
        .count()
        + data
            .updates
            .iter()
            .filter_map(|u| u.new_vertex.as_ref())
            .filter(|v| v.label == snb_bench_rs::core::VertexLabel::Person)
            .count();
    assert_eq!(adapter.db().row_count("person").unwrap(), persons_total);
}

#[test]
fn concurrent_loading_matches_single_loader_state() {
    let data = tiny_data();
    let single = snb_bench_rs::kvgraph::KvGraph::new(snb_bench_rs::kvgraph::PartitionedKv::new());
    let multi = snb_bench_rs::kvgraph::KvGraph::new(snb_bench_rs::kvgraph::PartitionedKv::new());
    load_concurrent(&single, &data.snapshot, 1).unwrap();
    load_concurrent(&multi, &data.snapshot, 8).unwrap();
    use snb_bench_rs::core::GraphBackend;
    assert_eq!(single.vertex_count(), multi.vertex_count());
    assert_eq!(single.edge_count(), multi.edge_count());
}
