//! A miniature Table 2: load the same generated graph into all eight
//! system configurations and time the four micro query classes.
//!
//! Run with: `cargo run --release --example query_shootout`

use snb_bench_rs::core::metrics::{fmt_ms, TextTable};
use snb_bench_rs::datagen::{generate, GeneratorConfig};
use snb_bench_rs::driver::adapter::build_all_adapters;
use snb_bench_rs::driver::micro::{run_micro, MICRO_KINDS};
use snb_bench_rs::driver::ParamGen;
use std::time::Duration;

fn main() {
    let mut cfg = GeneratorConfig::tiny();
    cfg.persons = 200;
    let data = generate(&cfg);
    println!(
        "Dataset: {} vertices, {} edges",
        data.snapshot.vertices.len(),
        data.snapshot.edges.len()
    );

    let mut table = TextTable::new(
        std::iter::once("System".to_string())
            .chain(MICRO_KINDS.iter().map(|k| k.to_string())),
    );
    for adapter in build_all_adapters() {
        adapter.load(&data.snapshot).unwrap();
        let mut params = ParamGen::new(&data, 0x5407);
        let cells = run_micro(adapter.as_ref(), &mut params, 10, Duration::from_secs(30));
        let mut row = vec![adapter.name().to_string()];
        row.extend(cells.iter().map(|c| c.mean_ms.map(fmt_ms).unwrap_or_else(|| "-".into())));
        table.row(row);
        eprintln!("  done: {}", adapter.name());
    }
    println!("\nMean latency (ms), 10 samples each:\n\n{}", table.render());
}
