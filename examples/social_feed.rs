//! A realistic social-networking scenario on the generated dataset:
//! render a person's feed (recent posts by friends), post a comment as
//! an update, and watch it appear — the "real-time querying and
//! manipulation" the paper's introduction motivates.
//!
//! Run with: `cargo run --release --example social_feed`

use snb_bench_rs::core::{PropKey, Value, VertexLabel};
use snb_bench_rs::datagen::{generate, GeneratorConfig};
use snb_bench_rs::driver::adapter::cypher::CypherAdapter;
use snb_bench_rs::driver::adapter::SutAdapter;
use snb_bench_rs::driver::ReadOp;

fn main() {
    let mut cfg = GeneratorConfig::tiny();
    cfg.persons = 120;
    let data = generate(&cfg);
    let adapter = CypherAdapter::new();
    adapter.load(&data.snapshot).unwrap();

    // Pick a person with friends.
    let me = data
        .snapshot
        .vertices_of(VertexLabel::Person)
        .map(|v| v.id)
        .find(|&id| {
            adapter
                .execute_read(&ReadOp::OneHop { person: id })
                .map(|rows| rows.len() >= 3)
                .unwrap_or(false)
        })
        .expect("someone has three friends");

    let profile = adapter.execute_read(&ReadOp::Is1Profile { person: me }).unwrap();
    println!("Logged in as person {me}: {} {}", profile[0][0], profile[0][1]);

    let friends = adapter.execute_read(&ReadOp::Is3Friends { person: me }).unwrap();
    println!("\nFriends ({}):", friends.len());
    for row in friends.iter().take(5) {
        println!("  person {} (friends since t={})", row[0], row[1]);
    }

    // The feed: recent messages from each friend.
    println!("\nYour feed:");
    let mut shown = 0;
    for friend in friends.iter().take(5) {
        let person = friend[0].as_int().unwrap() as u64;
        let messages = adapter
            .execute_read(&ReadOp::Is2RecentMessages { person, limit: 2 })
            .unwrap();
        for m in messages {
            println!("  [{}] person {person}: {}", m[1], m[0]);
            shown += 1;
        }
    }
    println!("({shown} items)");

    // Post an update: take the first post-creation op from the stream.
    let update = data
        .updates
        .iter()
        .find(|u| u.kind == snb_bench_rs::datagen::UpdateKind::AddComment)
        .expect("stream contains comments");
    let author = update
        .new_edges
        .iter()
        .find(|e| e.label == snb_bench_rs::core::EdgeLabel::HasCreator)
        .map(|e| e.dst.local())
        .unwrap();
    adapter.execute_update(update).unwrap();
    let comment = update.new_vertex.as_ref().unwrap();
    println!(
        "\nperson {author} just commented: {:?}",
        comment.prop(PropKey::Content).cloned().unwrap_or(Value::Null)
    );

    // It is immediately queryable.
    let replies = adapter
        .execute_read(&ReadOp::Is7MessageReplies {
            message: update.new_edges.iter().find(|e| e.label == snb_bench_rs::core::EdgeLabel::ReplyOf).unwrap().dst,
        })
        .unwrap();
    println!("The parent message now has {} replies.", replies.len());
}
