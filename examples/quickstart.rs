//! Quickstart: build a tiny social graph by hand and query it through
//! three of the paradigms the paper compares — a native graph store
//! with a Cypher-like language, a relational row store with SQL, and a
//! triple store with SPARQL.
//!
//! Run with: `cargo run --release --example quickstart`

use snb_bench_rs::core::{EdgeLabel, GraphBackend, PropKey, Value, VertexLabel, Vid};
use snb_bench_rs::graph_native::NativeGraphStore;
use snb_bench_rs::rdf::TripleStore;
use snb_bench_rs::relational::{Database, Layout};

fn main() {
    // --- the same five-person friendship chain in three engines ---
    let people = [(1u64, "Ada"), (2, "Bob"), (3, "Cai"), (4, "Dee"), (5, "Eli")];
    let friendships = [(1u64, 2u64), (2, 3), (3, 4), (4, 5), (1, 3)];
    let p = |id| Vid::new(VertexLabel::Person, id);

    // Native graph store (Neo4j-like).
    let graph = NativeGraphStore::new();
    for (id, name) in people {
        graph
            .add_vertex(VertexLabel::Person, id, &[(PropKey::FirstName, Value::str(name))])
            .unwrap();
    }
    for (a, b) in friendships {
        graph.add_edge(EdgeLabel::Knows, p(a), p(b), &[]).unwrap();
    }

    // Relational row store (Postgres-like).
    let db = Database::new_snb(Layout::Row);
    for (id, name) in people {
        db.sql(
            "INSERT INTO person (id, firstName) VALUES ($1, $2)",
            &[Value::Int(id as i64), Value::str(name)],
        )
        .unwrap();
    }
    for (a, b) in friendships {
        db.sql(
            "INSERT INTO person_knows_person (src, dst) VALUES ($1, $2)",
            &[Value::Int(a as i64), Value::Int(b as i64)],
        )
        .unwrap();
    }

    // Triple store (RDF, Virtuoso-like).
    let rdf = TripleStore::new();
    for (id, name) in people {
        rdf.insert_vertex(VertexLabel::Person, id, &[(PropKey::FirstName, Value::str(name))]);
    }
    for (a, b) in friendships {
        rdf.insert_edge(EdgeLabel::Knows, p(a), p(b), &[]);
    }

    // --- who are Ada's friends? three languages, one answer ---
    let params = [("id", Value::Int(1))]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let cypher = graph
        .cypher("MATCH (p:person {id:$id})-[:knows]-(f) RETURN f.firstName ORDER BY f.firstName", &params)
        .unwrap();
    println!("Cypher : {:?}", cypher.rows);

    let sql = db
        .sql(
            "SELECT p.firstName FROM person_knows_person k JOIN person p ON p.id = k.dst WHERE k.src = $1 \
             UNION SELECT p.firstName FROM person_knows_person k JOIN person p ON p.id = k.src WHERE k.dst = $1 \
             ORDER BY 1",
            &[Value::Int(1)],
        )
        .unwrap();
    println!("SQL    : {:?}", sql.rows);

    let sparql = rdf
        .sparql("SELECT ?fn WHERE { person:1 (snb:knows|^snb:knows) ?f . ?f snb:firstName ?fn } ORDER BY ?fn")
        .unwrap();
    println!("SPARQL : {:?}", sparql.rows);

    // --- how far is Ada from Eli? ---
    let sp_params = [("a", Value::Int(1)), ("b", Value::Int(5))]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let hops = graph
        .cypher(
            "MATCH sp = shortestPath((a:person {id:$a})-[:knows*]-(b:person {id:$b})) RETURN length(sp)",
            &sp_params,
        )
        .unwrap();
    println!("Ada → Eli shortest path: {:?} hops", hops.scalar());

    assert_eq!(cypher.rows, sql.rows);
    assert_eq!(cypher.rows, sparql.rows);
    println!("All three engines agree.");
}
