//! The Kafka-queued update pipeline on its own: produce the generated
//! update stream into a topic, consume it with a single writer applying
//! updates to a relational store under dependency tracking, and report
//! progress — the architecture of the paper's Figure 1.
//!
//! Run with: `cargo run --release --example streaming_updates`

use bytes::Bytes;
use snb_bench_rs::datagen::{generate, GeneratorConfig, UpdateOp};
use snb_bench_rs::driver::adapter::sql::SqlAdapter;
use snb_bench_rs::driver::adapter::SutAdapter;
use snb_bench_rs::driver::scheduler::DependencyTracker;
use snb_bench_rs::mq::Broker;
use std::time::{Duration, Instant};

fn main() {
    let mut cfg = GeneratorConfig::tiny();
    cfg.persons = 150;
    let data = generate(&cfg);
    let adapter = SqlAdapter::row_store();
    adapter.load(&data.snapshot).unwrap();
    println!(
        "Loaded snapshot ({} vertices); {} updates to stream",
        data.snapshot.vertices.len(),
        data.updates.len()
    );

    let broker = Broker::new();
    broker.create_topic("updates", 1).unwrap();
    let producer = broker.producer("updates").unwrap();
    let mut consumer = broker.consumer("updates").unwrap();
    let tracker = DependencyTracker::new(data.cut_ms);

    // Producer: enqueue the whole stream (serialized, like real Kafka).
    for op in &data.updates {
        producer.send(op.ts_ms, None, Bytes::from(op.encode_binary()));
    }
    println!("Produced {} records to the queue", data.updates.len());

    // Writer: consume, honour dependencies, apply.
    let started = Instant::now();
    let mut applied = 0u64;
    loop {
        let batch = consumer.poll_wait(128, Duration::from_millis(100));
        if batch.is_empty() {
            break;
        }
        for (_, record) in batch {
            let op: UpdateOp = UpdateOp::decode_binary(&record.value).unwrap();
            assert!(
                tracker.wait_until_ready(op.dependency_ms, Duration::from_secs(1)),
                "in-order stream: dependencies always satisfied"
            );
            adapter.execute_update(&op).unwrap();
            tracker.mark_applied(op.ts_ms);
            applied += 1;
        }
        consumer.commit();
    }
    let secs = started.elapsed().as_secs_f64();
    println!(
        "Applied {applied} updates in {secs:.2}s ({:.0} updates/s); watermark now t={}",
        applied as f64 / secs,
        tracker.watermark()
    );
}
