//! Static dictionaries feeding the generator: names, places, tags,
//! organisations, and filler words for message content.

/// Given first names.
pub const FIRST_NAMES: &[&str] = &[
    "Jan", "Ali", "Chen", "Maria", "John", "Yang", "Hans", "Carmen", "Ken", "Abdul",
    "Otto", "Bryn", "Jun", "Eva", "Rahul", "Wei", "Anna", "Jose", "Mehmet", "Ivan",
    "Karl", "Aditi", "Li", "Fatima", "Peter", "Hiro", "Ingrid", "Pablo", "Amara", "Lars",
    "Mona", "Deng", "Alice", "Bruno", "Sofia", "Emeka", "Nadia", "Joao", "Priya", "Miguel",
    "Olga", "Kenji", "Laila", "Tomas", "Aisha", "Viktor", "Yuki", "Elena", "Omar", "Greta",
];

/// Family names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Zhang", "Kumar", "Muller", "Garcia", "Sato", "Kim", "Silva", "Ivanov", "Khan",
    "Wagner", "Chen", "Yilmaz", "Rossi", "Novak", "Kowalski", "Haddad", "Okafor", "Tanaka", "Lopez",
    "Brown", "Wang", "Singh", "Schmidt", "Martinez", "Suzuki", "Lee", "Santos", "Petrov", "Ahmed",
    "Becker", "Liu", "Demir", "Ferrari", "Svoboda", "Nowak", "Nassar", "Eze", "Yamamoto", "Perez",
];

/// Countries with their cities; index order is stable and the generator
/// treats index 0 of each tuple as the country name.
pub const COUNTRIES: &[(&str, &[&str])] = &[
    ("China", &["Beijing", "Shanghai", "Chengdu", "Wuhan"]),
    ("India", &["Mumbai", "Delhi", "Bangalore", "Chennai"]),
    ("Germany", &["Berlin", "Munich", "Hamburg"]),
    ("France", &["Paris", "Lyon", "Marseille"]),
    ("Brazil", &["Sao_Paulo", "Rio_de_Janeiro", "Salvador"]),
    ("Japan", &["Tokyo", "Osaka", "Kyoto"]),
    ("Canada", &["Toronto", "Waterloo", "Vancouver", "Montreal"]),
    ("Turkey", &["Istanbul", "Ankara", "Izmir"]),
    ("Nigeria", &["Lagos", "Abuja", "Kano"]),
    ("Russia", &["Moscow", "Saint_Petersburg", "Kazan"]),
    ("Spain", &["Madrid", "Barcelona", "Valencia"]),
    ("Mexico", &["Mexico_City", "Guadalajara", "Monterrey"]),
    ("Poland", &["Warsaw", "Krakow", "Wroclaw"]),
    ("Egypt", &["Cairo", "Alexandria", "Giza"]),
    ("Vietnam", &["Hanoi", "Ho_Chi_Minh_City", "Da_Nang"]),
    ("Italy", &["Rome", "Milan", "Naples"]),
    ("Kenya", &["Nairobi", "Mombasa", "Kisumu"]),
    ("Peru", &["Lima", "Arequipa", "Cusco"]),
    ("Sweden", &["Stockholm", "Gothenburg", "Malmo"]),
    ("Australia", &["Sydney", "Melbourne", "Brisbane"]),
];

/// Tag-class taxonomy roots.
pub const TAG_CLASSES: &[&str] = &[
    "Thing", "Person", "Organisation", "Place", "Work", "Event",
    "CreativeWork", "MusicalWork", "Film", "Book", "Sport", "Politics",
];

/// Tag name stems; combined with a numeric suffix to reach the target
/// tag count at larger scales.
pub const TAG_STEMS: &[&str] = &[
    "rock_music", "jazz", "photography", "football", "cricket", "philosophy",
    "astronomy", "cooking", "travel", "cinema", "poetry", "chess",
    "gardening", "robotics", "history", "economics", "painting", "hiking",
    "opera", "sailing", "databases", "graphs", "distributed_systems", "compilers",
    "anime", "baking", "cycling", "tennis", "archaeology", "linguistics",
];

/// Company name stems.
pub const COMPANIES: &[&str] = &[
    "Globex", "Initech", "Umbrella", "Hooli", "Vandelay", "Acme",
    "Wayne_Enterprises", "Stark_Industries", "Wonka", "Tyrell", "Cyberdyne", "Aperture",
];

/// University name stems.
pub const UNIVERSITIES: &[&str] = &[
    "National_University", "Institute_of_Technology", "Polytechnic", "State_University", "City_College",
];

/// Browsers, with LDBC-style skew handled by the generator.
pub const BROWSERS: &[&str] = &["Chrome", "Firefox", "Safari", "Internet_Explorer", "Opera"];

/// Filler vocabulary for post/comment content.
pub const WORDS: &[&str] = &[
    "about", "maybe", "great", "photo", "right", "think", "today", "world",
    "happy", "music", "game", "friend", "time", "place", "thanks", "good",
    "really", "never", "always", "where", "found", "heard", "watch", "read",
    "lovely", "weekend", "travel", "coffee", "night", "morning", "agree", "exactly",
];

/// Languages for post `language` property.
pub const LANGUAGES: &[&str] = &["en", "zh", "de", "fr", "pt", "ja", "es", "ru", "ar", "hi"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionaries_are_nonempty_and_unique() {
        fn unique(xs: &[&str]) -> bool {
            let mut set = std::collections::HashSet::new();
            xs.iter().all(|x| set.insert(*x))
        }
        assert!(unique(FIRST_NAMES) && FIRST_NAMES.len() >= 32);
        assert!(unique(LAST_NAMES) && LAST_NAMES.len() >= 32);
        assert!(unique(TAG_STEMS) && TAG_STEMS.len() >= 16);
        assert!(unique(BROWSERS));
        let countries: Vec<&str> = COUNTRIES.iter().map(|(c, _)| *c).collect();
        assert!(unique(&countries) && countries.len() >= 16);
        for (_, cities) in COUNTRIES {
            assert!(!cities.is_empty());
        }
    }
}
