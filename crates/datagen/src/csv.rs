//! CSV export of the static snapshot.
//!
//! The LDBC generator materialises the static network as one
//! pipe-separated CSV file per vertex/edge type, which vendor bulk
//! loaders consume. We reproduce that layout both for Table 1's
//! "raw files" size column and so external tools can inspect the data.

use snb_core::schema::{vertex_props, EDGE_DEFS};
use snb_core::{PropKey, Result, Value};
use std::collections::HashMap;
use std::io::Write;

use crate::model::Dataset;

/// Render a `Value` the way LDBC CSVs do (lists joined with `;`).
fn csv_value(v: &Value) -> String {
    match v {
        Value::List(vs) => vs.iter().map(csv_value).collect::<Vec<_>>().join(";"),
        other => other.to_string(),
    }
}

/// Write one CSV file per vertex label and per edge type into `sink`,
/// which receives `(file_name, file_contents)` pairs. Returns total bytes.
pub fn export_csv(data: &Dataset, mut sink: impl FnMut(&str, &[u8]) -> Result<()>) -> Result<usize> {
    let mut total = 0usize;
    // Vertex files.
    for label in snb_core::ids::VERTEX_LABELS {
        let props = vertex_props(label);
        let mut buf: Vec<u8> = Vec::new();
        write_header(&mut buf, props);
        for v in data.vertices_of(label) {
            let _ = write!(buf, "{}", v.id);
            for p in props {
                let cell = v.prop(*p).map(csv_value).unwrap_or_default();
                let _ = write!(buf, "|{cell}");
            }
            buf.push(b'\n');
        }
        total += buf.len();
        sink(&format!("{label}.csv"), &buf)?;
    }
    // Edge files, one per (src, label, dst) combination.
    let mut by_table: HashMap<String, Vec<u8>> = HashMap::new();
    for def in EDGE_DEFS {
        let mut buf = Vec::new();
        let _ = write!(buf, "{}.id|{}.id", def.src, def.dst);
        for p in def.props {
            let _ = write!(buf, "|{p}");
        }
        buf.push(b'\n');
        by_table.insert(def.table_name(), buf);
    }
    for e in &data.edges {
        let name = format!("{}_{}_{}", e.src.label(), e.label, e.dst.label());
        let buf = by_table
            .get_mut(&name)
            .ok_or_else(|| snb_core::SnbError::Plan(format!("edge {name} not in schema")))?;
        let _ = write!(buf, "{}|{}", e.src.local(), e.dst.local());
        for (_, v) in &e.props {
            let _ = write!(buf, "|{}", csv_value(v));
        }
        buf.push(b'\n');
    }
    let mut names: Vec<_> = by_table.keys().cloned().collect();
    names.sort();
    for name in names {
        let buf = &by_table[&name];
        total += buf.len();
        sink(&format!("{name}.csv"), buf)?;
    }
    Ok(total)
}

fn write_header(buf: &mut Vec<u8>, props: &[PropKey]) {
    let _ = write!(buf, "id");
    for p in props {
        let _ = write!(buf, "|{p}");
    }
    buf.push(b'\n');
}

/// Total size in bytes of the CSV export without materialising it
/// anywhere — Table 1's "raw files" column.
pub fn csv_size_bytes(data: &Dataset) -> usize {
    let mut total = 0usize;
    export_csv(data, |_, bytes| {
        total += bytes.len();
        Ok(())
    })
    .expect("counting sink cannot fail");
    total
}

/// Write the CSV files into a directory on disk.
pub fn export_csv_to_dir(data: &Dataset, dir: &std::path::Path) -> Result<usize> {
    std::fs::create_dir_all(dir)?;
    export_csv(data, |name, bytes| {
        std::fs::write(dir.join(name), bytes)?;
        Ok(())
    })
}

/// Parse a CSV cell back into a typed value for the given property.
fn parse_cell(key: PropKey, cell: &str) -> Value {
    use PropKey::*;
    if cell.is_empty() {
        return Value::Null;
    }
    match key {
        Id | Length | ClassYear | WorkFrom => {
            cell.parse::<i64>().map(Value::Int).unwrap_or(Value::Null)
        }
        Birthday | CreationDate | JoinDate => {
            cell.parse::<i64>().map(Value::Date).unwrap_or(Value::Null)
        }
        Email | Speaks => {
            Value::List(cell.split(';').map(Value::str).collect())
        }
        _ => Value::str(cell),
    }
}

/// Rebuild a [`Dataset`] from CSV files previously written by
/// [`export_csv`] (the vendor bulk-loader ingestion path). `read` maps a
/// file name to its contents, or `None` when absent.
pub fn import_csv(mut read: impl FnMut(&str) -> Option<Vec<u8>>) -> Result<Dataset> {
    use crate::model::{EdgeRec, VertexRec};
    use snb_core::Vid;
    let mut data = Dataset::default();
    for label in snb_core::ids::VERTEX_LABELS {
        let Some(bytes) = read(&format!("{label}.csv")) else { continue };
        let text = String::from_utf8(bytes)
            .map_err(|_| snb_core::SnbError::Io(format!("{label}.csv is not utf-8")))?;
        let mut lines = text.lines();
        let header: Vec<&str> = lines
            .next()
            .ok_or_else(|| snb_core::SnbError::Io(format!("{label}.csv is empty")))?
            .split('|')
            .collect();
        for line in lines {
            let cells: Vec<&str> = line.split('|').collect();
            if cells.len() != header.len() {
                return Err(snb_core::SnbError::Io(format!("{label}.csv: ragged row `{line}`")));
            }
            let id: u64 = cells[0]
                .parse()
                .map_err(|_| snb_core::SnbError::Io(format!("{label}.csv: bad id `{}`", cells[0])))?;
            let mut props = Vec::with_capacity(cells.len() - 1);
            let mut creation_ms = crate::config::SIM_START_MS;
            for (name, cell) in header.iter().zip(&cells).skip(1) {
                let key = PropKey::parse(name)?;
                let value = parse_cell(key, cell);
                if value.is_null() {
                    continue;
                }
                if key == PropKey::CreationDate {
                    creation_ms = value.as_int().unwrap_or(creation_ms);
                }
                props.push((key, value));
            }
            data.vertices.push(VertexRec { label, id, props, creation_ms });
        }
    }
    for def in EDGE_DEFS {
        let Some(bytes) = read(&format!("{}.csv", def.table_name())) else { continue };
        let text = String::from_utf8(bytes)
            .map_err(|_| snb_core::SnbError::Io(format!("{}.csv is not utf-8", def.table_name())))?;
        let mut lines = text.lines();
        let Some(_header) = lines.next() else { continue };
        for line in lines {
            let cells: Vec<&str> = line.split('|').collect();
            if cells.len() != 2 + def.props.len() {
                return Err(snb_core::SnbError::Io(format!(
                    "{}.csv: ragged row `{line}`",
                    def.table_name()
                )));
            }
            let src: u64 = cells[0]
                .parse()
                .map_err(|_| snb_core::SnbError::Io("bad src id".into()))?;
            let dst: u64 = cells[1]
                .parse()
                .map_err(|_| snb_core::SnbError::Io("bad dst id".into()))?;
            let mut props = Vec::with_capacity(def.props.len());
            let mut creation_ms = crate::config::SIM_START_MS;
            for (key, cell) in def.props.iter().zip(&cells[2..]) {
                let value = parse_cell(*key, cell);
                if value.is_null() {
                    continue;
                }
                if *key == PropKey::CreationDate {
                    creation_ms = value.as_int().unwrap_or(creation_ms);
                }
                props.push((*key, value));
            }
            data.edges.push(EdgeRec {
                label: def.label,
                src: Vid::new(def.src, src),
                dst: Vid::new(def.dst, dst),
                props,
                creation_ms,
            });
        }
    }
    Ok(data)
}

/// Read the CSV files of a directory back into a [`Dataset`].
pub fn import_csv_from_dir(dir: &std::path::Path) -> Result<Dataset> {
    import_csv(|name| std::fs::read(dir.join(name)).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;
    use snb_core::{EdgeLabel, VertexLabel};

    #[test]
    fn export_produces_all_files() {
        let d = generate(&GeneratorConfig::tiny());
        let mut files = Vec::new();
        let total = export_csv(&d.snapshot, |name, bytes| {
            files.push((name.to_string(), bytes.len()));
            Ok(())
        })
        .unwrap();
        assert_eq!(files.len(), 8 + EDGE_DEFS.len());
        assert_eq!(total, files.iter().map(|(_, n)| n).sum::<usize>());
        assert_eq!(total, csv_size_bytes(&d.snapshot));
        assert!(files.iter().any(|(n, _)| n == "person.csv"));
        assert!(files.iter().any(|(n, _)| n == "person_knows_person.csv"));
    }

    #[test]
    fn person_rows_have_header_arity() {
        let d = generate(&GeneratorConfig::tiny());
        let mut person_csv = String::new();
        export_csv(&d.snapshot, |name, bytes| {
            if name == "person.csv" {
                person_csv = String::from_utf8(bytes.to_vec()).unwrap();
            }
            Ok(())
        })
        .unwrap();
        let mut lines = person_csv.lines();
        let header_cols = lines.next().unwrap().split('|').count();
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split('|').count(), header_cols, "row: {line}");
            rows += 1;
        }
        assert_eq!(rows, d.snapshot.count_vertices(VertexLabel::Person));
    }

    #[test]
    fn list_values_join_with_semicolons() {
        assert_eq!(
            csv_value(&Value::List(vec![Value::str("a"), Value::str("b")])),
            "a;b"
        );
    }

    #[test]
    fn export_import_roundtrip() {
        let d = generate(&GeneratorConfig::tiny());
        let mut files = std::collections::HashMap::new();
        export_csv(&d.snapshot, |name, bytes| {
            files.insert(name.to_string(), bytes.to_vec());
            Ok(())
        })
        .unwrap();
        let back = import_csv(|name| files.get(name).cloned()).unwrap();
        assert_eq!(back.vertices.len(), d.snapshot.vertices.len());
        assert_eq!(back.edges.len(), d.snapshot.edges.len());
        // Every person's typed properties survive (content strings with
        // no pipes/semicolons, dates, lists).
        let orig: std::collections::HashMap<_, _> =
            d.snapshot.vertices.iter().map(|v| (v.vid(), v)).collect();
        for v in back.vertices.iter().filter(|v| v.label == VertexLabel::Person) {
            let o = orig[&v.vid()];
            assert_eq!(v.prop(PropKey::FirstName), o.prop(PropKey::FirstName));
            assert_eq!(v.prop(PropKey::Birthday), o.prop(PropKey::Birthday));
            assert_eq!(v.prop(PropKey::Email), o.prop(PropKey::Email));
            assert_eq!(v.creation_ms, o.creation_ms);
        }
        // Edge properties survive too.
        let knows_orig = d.snapshot.edges.iter().find(|e| e.label == EdgeLabel::Knows).unwrap();
        let knows_back = back
            .edges
            .iter()
            .find(|e| e.label == EdgeLabel::Knows && e.src == knows_orig.src && e.dst == knows_orig.dst)
            .unwrap();
        assert_eq!(knows_back.props, knows_orig.props);
    }

    #[test]
    fn import_rejects_ragged_rows() {
        let err = import_csv(|name| {
            (name == "person.csv").then(|| b"id|firstName\n1|a|extra\n".to_vec())
        });
        assert!(err.is_err());
    }

    #[test]
    fn parse_cell_types() {
        assert_eq!(parse_cell(PropKey::Id, "42"), Value::Int(42));
        assert_eq!(parse_cell(PropKey::CreationDate, "-5"), Value::Date(-5));
        assert_eq!(
            parse_cell(PropKey::Email, "a@x;b@x"),
            Value::List(vec![Value::str("a@x"), Value::str("b@x")])
        );
        assert_eq!(parse_cell(PropKey::Content, ""), Value::Null);
        assert_eq!(parse_cell(PropKey::Gender, "male"), Value::str("male"));
    }
}
