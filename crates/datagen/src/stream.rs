//! Streaming generation mode: bounded-memory emission for
//! million-person datasets.
//!
//! The batch generator ([`crate::generate`]) materializes every vertex,
//! edge, and update — including all content strings — before returning;
//! at a million persons that is gigabytes of `VertexRec`s in one
//! allocation. This module splits generation into two passes so the
//! *materialized* working set is bounded by the chunk size, not the
//! dataset:
//!
//! 1. **Structure pass.** A single master RNG makes every structural
//!    decision — who exists, who knows whom (the power-law Chung-Lu
//!    graph), which forums form, which member posts when — and records
//!    each event as a compact fixed-size *skeleton* (ids + timestamp,
//!    ~32 bytes), never a property string.
//! 2. **Emission pass.** Skeletons are walked in event-time order. Each
//!    event's properties (names, content, IPs) are materialized on the
//!    fly by a private RNG seeded from `(config seed, event uid)` and
//!    pushed into the current chunk; the chunk is handed to the sink
//!    whenever it reaches `chunk_size` items.
//!
//! Because chunking happens strictly downstream of a fully determined
//! event sequence, the concatenated stream is **bit-identical for a
//! given seed regardless of chunk size** — the property-test suite
//! checks chunk sizes 1, 64, and 4096 against each other. Events at or
//! before the snapshot cut arrive as [`StreamItem::Vertex`]/
//! [`StreamItem::Edge`] (bulk-load records, in an order that never
//! references a not-yet-emitted vertex); later events arrive as
//! [`StreamItem::Update`] operations carrying the same dependency
//! timestamps as the batch stream, ready to produce into the
//! partitioned ingest topic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snb_core::{EdgeLabel, PropKey, Value, VertexLabel, Vid};
use std::collections::HashSet;

use crate::config::{GeneratorConfig, DAY_MS, SIM_START_MS};
use crate::dict;
use crate::generator::{poisson, sample_cum};
use crate::model::{EdgeRec, UpdateKind, UpdateOp, VertexRec};

/// One record of the emitted stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A snapshot vertex (event time at or before the cut).
    Vertex(VertexRec),
    /// A snapshot edge. Never precedes either endpoint's vertex item.
    Edge(EdgeRec),
    /// A post-cut event, as an LDBC interactive update operation
    /// (time-ordered across the whole stream).
    Update(UpdateOp),
}

/// Summary counters of one streaming run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Snapshot vertices emitted.
    pub snapshot_vertices: usize,
    /// Snapshot edges emitted.
    pub snapshot_edges: usize,
    /// Update operations emitted.
    pub updates: usize,
    /// Chunks handed to the sink.
    pub chunks: usize,
    /// The snapshot/stream cut point.
    pub cut_ms: i64,
}

/// Generate the configured network, delivering it to `sink` in chunks
/// of `chunk_size` items (the final chunk may be shorter). See the
/// module docs for the memory and determinism contract.
pub fn generate_stream<F>(cfg: &GeneratorConfig, chunk_size: usize, mut sink: F) -> StreamStats
where
    F: FnMut(Vec<StreamItem>),
{
    let chunk_size = chunk_size.max(1);
    let layout = StaticLayout::of(cfg);
    let s = build_structure(cfg, &layout);
    let cut = cfg.cut_ms();

    let mut stats = StreamStats { cut_ms: cut, ..StreamStats::default() };
    let mut chunk: Vec<StreamItem> = Vec::with_capacity(chunk_size);
    // Emission order: statics first (all at the simulation start), then
    // timeline events by (time, creation sequence) — a total order, so
    // ties cannot reorder across runs.
    let mut s = s;
    s.events.sort_by_key(|e| (e.ts, e.uid));

    {
        let mut push = |item: StreamItem| {
            match &item {
                StreamItem::Vertex(_) => stats.snapshot_vertices += 1,
                StreamItem::Edge(_) => stats.snapshot_edges += 1,
                StreamItem::Update(_) => stats.updates += 1,
            }
            chunk.push(item);
            if chunk.len() == chunk_size {
                stats.chunks += 1;
                sink(std::mem::replace(&mut chunk, Vec::with_capacity(chunk_size)));
            }
        };
        emit_statics(cfg, &layout, &mut push);
        for ev in &s.events {
            emit_event(cfg, &layout, &s, ev, cut, &mut push);
        }
    }
    if !chunk.is_empty() {
        stats.chunks += 1;
        sink(chunk);
    }
    stats
}

/// SplitMix64 finalizer over (seed, uid): the per-event RNG seed.
/// Materialization must not depend on emission history, or chunking
/// (and any future parallel emission) would perturb the output.
fn event_seed(seed: u64, uid: u64) -> u64 {
    let mut z = seed ^ uid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reserved uid for the static-entity RNG stream.
const STATIC_UID: u64 = u64::MAX;

/// Sentinel for "absent" in skeleton id fields.
const NONE_U32: u32 = u32::MAX;

/// Compact structural record of one timeline event (~32 bytes); the
/// only thing the structure pass retains per event.
#[derive(Clone, Copy)]
enum Skel {
    Person { pid: u32 },
    Friendship { a: u32, b: u32 },
    Forum { fid: u32, moderator: u32 },
    Member { fid: u32, member: u32 },
    Post { post: u32, fid: u32, creator: u32 },
    /// `parent_comment == NONE_U32` means the parent is `parent_post`.
    Comment { comment: u32, parent_post: u32, parent_comment: u32, creator: u32 },
    /// `target_comment == NONE_U32` means a post like.
    Like { person: u32, target_post: u32, target_comment: u32 },
}

#[derive(Clone, Copy)]
struct SkelEvent {
    ts: i64,
    /// Creation sequence number; tiebreaker of the emission order and
    /// the per-event RNG key.
    uid: u32,
    skel: Skel,
}

/// Deterministic id layout of the static dictionary entities (no RNG:
/// both passes derive it independently).
struct StaticLayout {
    /// Place id of country `ci`.
    country_place: Vec<u64>,
    /// (place id, country index) per city, in allocation order.
    city_place: Vec<(u64, u16)>,
    tag_count: usize,
    /// Organisation ids `0..n_universities` are universities (one per
    /// country, in country order); companies follow.
    n_universities: usize,
}

impl StaticLayout {
    fn of(cfg: &GeneratorConfig) -> Self {
        let mut country_place = Vec::new();
        let mut city_place = Vec::new();
        let mut next_place = 0u64;
        for (ci, (_, cities)) in dict::COUNTRIES.iter().enumerate() {
            country_place.push(next_place);
            next_place += 1;
            for _ in *cities {
                city_place.push((next_place, ci as u16));
                next_place += 1;
            }
        }
        StaticLayout {
            country_place,
            city_place,
            tag_count: dict::TAG_STEMS.len().max(cfg.persons / 4).max(60),
            n_universities: dict::COUNTRIES.len(),
        }
    }

    fn tag_name(&self, t: usize) -> String {
        let stem = dict::TAG_STEMS[t % dict::TAG_STEMS.len()];
        if t < dict::TAG_STEMS.len() {
            stem.to_string()
        } else {
            format!("{stem}_{}", t / dict::TAG_STEMS.len())
        }
    }
}

/// Everything the structure pass hands to emission: the skeleton
/// timeline plus compact per-entity columns (creation times and the
/// structural attributes that correlate events).
struct Structure {
    events: Vec<SkelEvent>,
    person_created: Vec<i64>,
    person_city: Vec<u64>,
    person_country: Vec<u16>,
    /// Flattened interests: person `p` owns
    /// `interests_flat[interests_off[p]..interests_off[p + 1]]`.
    interests_off: Vec<u32>,
    interests_flat: Vec<u32>,
    forum_created: Vec<i64>,
    forum_moderator: Vec<u32>,
    forum_tags_off: Vec<u32>,
    forum_tags_flat: Vec<u32>,
    post_created: Vec<i64>,
    post_forum: Vec<u32>,
    post_creator: Vec<u32>,
    comment_created: Vec<i64>,
    comment_creator: Vec<u32>,
}

impl Structure {
    fn interests(&self, p: u32) -> &[u32] {
        let (a, b) = (self.interests_off[p as usize], self.interests_off[p as usize + 1]);
        &self.interests_flat[a as usize..b as usize]
    }

    fn forum_tags(&self, f: u32) -> &[u32] {
        let (a, b) = (self.forum_tags_off[f as usize], self.forum_tags_off[f as usize + 1]);
        &self.forum_tags_flat[a as usize..b as usize]
    }
}

fn build_structure(cfg: &GeneratorConfig, layout: &StaticLayout) -> Structure {
    let n = cfg.persons;
    let sim_end = cfg.sim_end_ms();
    let window = sim_end - SIM_START_MS;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut s = Structure {
        events: Vec::new(),
        person_created: Vec::with_capacity(n),
        person_city: Vec::with_capacity(n),
        person_country: Vec::with_capacity(n),
        interests_off: Vec::with_capacity(n + 1),
        interests_flat: Vec::new(),
        forum_created: Vec::new(),
        forum_moderator: Vec::new(),
        forum_tags_off: vec![0],
        forum_tags_flat: Vec::new(),
        post_created: Vec::new(),
        post_forum: Vec::new(),
        post_creator: Vec::new(),
        comment_created: Vec::new(),
        comment_creator: Vec::new(),
    };
    let mut uid = 0u32;
    let mut push = |events: &mut Vec<SkelEvent>, ts: i64, skel: Skel| {
        events.push(SkelEvent { ts, uid, skel });
        uid += 1;
    };

    // --- Persons (front-loaded arrivals, clustered interests) ---
    let communities = (n / 25).max(4);
    let tags_per_community = (layout.tag_count / communities).max(1);
    let mut person_community: Vec<u32> = Vec::with_capacity(n);
    s.interests_off.push(0);
    for pid in 0..n {
        let u: f64 = rng.gen();
        let created = SIM_START_MS + ((u * u) * window as f64) as i64;
        let ci = rng.gen_range(0..layout.city_place.len());
        let (city, country) = layout.city_place[ci];
        let community = rng.gen_range(0..communities);
        let base = community * tags_per_community;
        let n_interests = rng.gen_range(3..=8usize);
        let start = s.interests_flat.len();
        for _ in 0..n_interests {
            let idx = if rng.gen::<f64>() < 0.8 {
                base + rng.gen_range(0..tags_per_community)
            } else {
                rng.gen_range(0..layout.tag_count)
            };
            let tag = (idx % layout.tag_count) as u32;
            if !s.interests_flat[start..].contains(&tag) {
                s.interests_flat.push(tag);
            }
        }
        s.interests_off.push(s.interests_flat.len() as u32);
        s.person_created.push(created);
        s.person_city.push(city);
        s.person_country.push(country);
        person_community.push(community as u32);
        push(&mut s.events, created, Skel::Person { pid: pid as u32 });
    }

    // --- Friendships (Chung-Lu power law with community bias) ---
    let mut friends: Vec<Vec<u32>> = vec![Vec::new(); n];
    if n >= 2 {
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                u.powf(-1.0 / 2.2)
            })
            .collect();
        let mut cum: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc);
        }
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); communities];
        for (i, &c) in person_community.iter().enumerate() {
            members[c as usize].push(i as u32);
        }
        let target_edges = (n as f64 * cfg.mean_degree / 2.0) as usize;
        let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target_edges * 2);
        let mut attempts = 0usize;
        let max_attempts = target_edges * 20;
        while seen.len() < target_edges && attempts < max_attempts {
            attempts += 1;
            let a = sample_cum(&cum, rng.gen::<f64>() * acc) as u32;
            let b = if rng.gen::<f64>() < cfg.community_bias {
                let pool = &members[person_community[a as usize] as usize];
                pool[rng.gen_range(0..pool.len())]
            } else {
                sample_cum(&cum, rng.gen::<f64>() * acc) as u32
            };
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue;
            }
            let base = s.person_created[a as usize].max(s.person_created[b as usize]);
            let ts = (base + rng.gen_range(0..60 * DAY_MS)).min(sim_end - 1);
            friends[a as usize].push(b);
            friends[b as usize].push(a);
            push(&mut s.events, ts, Skel::Friendship { a: key.0, b: key.1 });
        }
    }

    // --- Forums, memberships, and the message cascade ---
    for moderator in 0..n as u32 {
        if friends[moderator as usize].is_empty() || rng.gen::<f64>() >= cfg.forum_probability {
            continue;
        }
        let n_forums = if rng.gen::<f64>() < 0.6 { 1 } else { 2 };
        for _ in 0..n_forums {
            let fid = s.forum_created.len() as u32;
            let created = (s.person_created[moderator as usize] + rng.gen_range(0..90 * DAY_MS))
                .min(sim_end - 1);
            let interests = s.interests(moderator).to_vec();
            let start = s.forum_tags_flat.len();
            for _ in 0..rng.gen_range(1..=3usize) {
                if interests.is_empty() {
                    break;
                }
                let t = interests[rng.gen_range(0..interests.len())];
                if !s.forum_tags_flat[start..].contains(&t) {
                    s.forum_tags_flat.push(t);
                }
            }
            s.forum_tags_off.push(s.forum_tags_flat.len() as u32);
            s.forum_created.push(created);
            s.forum_moderator.push(moderator);
            push(&mut s.events, created, Skel::Forum { fid, moderator });
            let mut member_set: Vec<u32> = vec![moderator];
            for &f in &friends[moderator as usize] {
                if rng.gen::<f64>() < 0.6 {
                    member_set.push(f);
                }
            }
            for &m in &member_set {
                let join = (created.max(s.person_created[m as usize])
                    + rng.gen_range(0..30 * DAY_MS))
                .min(sim_end - 1);
                push(&mut s.events, join, Skel::Member { fid, member: m });
                let n_posts = poisson(&mut rng, cfg.posts_per_member);
                for _ in 0..n_posts {
                    gen_post_skel(cfg, &mut rng, &mut s, &friends, &mut push, fid, m, join);
                }
            }
        }
    }
    s
}

#[allow(clippy::too_many_arguments)]
fn gen_post_skel(
    cfg: &GeneratorConfig,
    rng: &mut StdRng,
    s: &mut Structure,
    friends: &[Vec<u32>],
    push: &mut impl FnMut(&mut Vec<SkelEvent>, i64, Skel),
    fid: u32,
    creator: u32,
    after: i64,
) {
    let sim_end = cfg.sim_end_ms();
    if after >= sim_end - 1 {
        return;
    }
    let created = rng.gen_range(after..sim_end);
    let post = s.post_created.len() as u32;
    s.post_created.push(created);
    s.post_forum.push(fid);
    s.post_creator.push(creator);
    push(&mut s.events, created, Skel::Post { post, fid, creator });
    gen_like_skels(cfg, rng, s, friends, push, creator, created, post, NONE_U32);
    let n_comments = poisson(rng, cfg.comments_per_post);
    for _ in 0..n_comments {
        gen_comment_skel(cfg, rng, s, friends, push, post, NONE_U32, created, creator, 0);
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_comment_skel(
    cfg: &GeneratorConfig,
    rng: &mut StdRng,
    s: &mut Structure,
    friends: &[Vec<u32>],
    push: &mut impl FnMut(&mut Vec<SkelEvent>, i64, Skel),
    parent_post: u32,
    parent_comment: u32,
    parent_ts: i64,
    thread_owner: u32,
    depth: u32,
) {
    let sim_end = cfg.sim_end_ms();
    if parent_ts >= sim_end - 1 || depth > 4 {
        return;
    }
    let commenter = if !friends[thread_owner as usize].is_empty() && rng.gen::<f64>() < 0.8 {
        let fs = &friends[thread_owner as usize];
        fs[rng.gen_range(0..fs.len())]
    } else {
        rng.gen_range(0..cfg.persons) as u32
    };
    let earliest = parent_ts.max(s.person_created[commenter as usize]);
    if earliest >= sim_end - 1 {
        return;
    }
    let created = rng.gen_range(earliest..sim_end).min(sim_end - 1);
    let comment = s.comment_created.len() as u32;
    s.comment_created.push(created);
    s.comment_creator.push(commenter);
    push(
        &mut s.events,
        created,
        Skel::Comment { comment, parent_post, parent_comment, creator: commenter },
    );
    gen_like_skels(cfg, rng, s, friends, push, commenter, created, NONE_U32, comment);
    let n_replies = poisson(rng, cfg.comments_per_post * 0.35);
    for _ in 0..n_replies {
        gen_comment_skel(cfg, rng, s, friends, push, parent_post, comment, created, commenter, depth + 1);
    }
}

#[allow(clippy::too_many_arguments)]
fn gen_like_skels(
    cfg: &GeneratorConfig,
    rng: &mut StdRng,
    s: &mut Structure,
    friends: &[Vec<u32>],
    push: &mut impl FnMut(&mut Vec<SkelEvent>, i64, Skel),
    creator: u32,
    message_ts: i64,
    target_post: u32,
    target_comment: u32,
) {
    let sim_end = cfg.sim_end_ms();
    for &f in &friends[creator as usize] {
        if rng.gen::<f64>() >= cfg.like_probability {
            continue;
        }
        let earliest = message_ts.max(s.person_created[f as usize]);
        if earliest >= sim_end - 1 {
            continue;
        }
        let ts = (earliest + rng.gen_range(0..14 * DAY_MS)).min(sim_end - 1);
        push(&mut s.events, ts, Skel::Like { person: f, target_post, target_comment });
    }
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn random_ip(rng: &mut StdRng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1..224u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(0..=255u8),
        rng.gen_range(1..=254u8)
    )
}

fn random_browser(rng: &mut StdRng) -> &'static str {
    let r: f64 = rng.gen();
    let idx = if r < 0.45 {
        0
    } else if r < 0.75 {
        1
    } else if r < 0.9 {
        2
    } else if r < 0.97 {
        3
    } else {
        4
    };
    dict::BROWSERS[idx]
}

fn random_content(rng: &mut StdRng, min_words: usize, max_words: usize) -> String {
    let n = rng.gen_range(min_words..=max_words);
    let mut out = String::with_capacity(n * 7);
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(dict::WORDS[rng.gen_range(0..dict::WORDS.len())]);
    }
    out
}

/// Emit the static dictionary entities (places, tag classes, tags,
/// organisations) — all at the simulation start, so always snapshot
/// items. One RNG stream over a fixed order keeps them deterministic.
fn emit_statics(cfg: &GeneratorConfig, layout: &StaticLayout, push: &mut impl FnMut(StreamItem)) {
    let mut rng = StdRng::seed_from_u64(event_seed(cfg.seed, STATIC_UID));
    let vertex = |label, id, props| {
        StreamItem::Vertex(VertexRec { label, id, props, creation_ms: SIM_START_MS })
    };
    let edge = |label, src, dst| {
        StreamItem::Edge(EdgeRec { label, src, dst, props: Vec::new(), creation_ms: SIM_START_MS })
    };
    // Places, in layout order (country, then its cities).
    let mut place = 0u64;
    for (country, cities) in dict::COUNTRIES.iter() {
        let cvid = Vid::new(VertexLabel::Place, place);
        push(vertex(
            VertexLabel::Place,
            place,
            vec![
                (PropKey::Name, Value::str(country)),
                (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/{country}"))),
                (PropKey::PlaceType, Value::str("country")),
            ],
        ));
        place += 1;
        for city in *cities {
            push(vertex(
                VertexLabel::Place,
                place,
                vec![
                    (PropKey::Name, Value::str(city)),
                    (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/{city}"))),
                    (PropKey::PlaceType, Value::str("city")),
                ],
            ));
            push(edge(EdgeLabel::IsPartOf, Vid::new(VertexLabel::Place, place), cvid));
            place += 1;
        }
    }
    // Tag classes.
    for (i, name) in dict::TAG_CLASSES.iter().enumerate() {
        push(vertex(
            VertexLabel::TagClass,
            i as u64,
            vec![
                (PropKey::Name, Value::str(name)),
                (PropKey::Url, Value::string(format!("http://dbpedia.org/ontology/{name}"))),
            ],
        ));
        if i > 0 {
            let parent = rng.gen_range(0..i) as u64;
            push(edge(
                EdgeLabel::IsSubclassOf,
                Vid::new(VertexLabel::TagClass, i as u64),
                Vid::new(VertexLabel::TagClass, parent),
            ));
        }
    }
    // Tags.
    for t in 0..layout.tag_count {
        let name = layout.tag_name(t);
        let class = rng.gen_range(0..dict::TAG_CLASSES.len()) as u64;
        push(vertex(
            VertexLabel::Tag,
            t as u64,
            vec![
                (PropKey::Name, Value::string(name.clone())),
                (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/{name}"))),
            ],
        ));
        push(edge(
            EdgeLabel::HasType,
            Vid::new(VertexLabel::Tag, t as u64),
            Vid::new(VertexLabel::TagClass, class),
        ));
    }
    // Organisations: one university per country, then the companies.
    for ci in 0..dict::COUNTRIES.len() {
        let uni = dict::UNIVERSITIES[ci % dict::UNIVERSITIES.len()];
        let name = format!("{}_{uni}", dict::COUNTRIES[ci].0);
        push(vertex(
            VertexLabel::Organisation,
            ci as u64,
            vec![
                (PropKey::Name, Value::string(name)),
                (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/uni_{ci}"))),
                (PropKey::OrgType, Value::str("university")),
            ],
        ));
        let city = layout
            .city_place
            .iter()
            .find(|(_, c)| *c as usize == ci)
            .map(|(id, _)| *id)
            .expect("every country has a city");
        push(edge(
            EdgeLabel::IsLocatedIn,
            Vid::new(VertexLabel::Organisation, ci as u64),
            Vid::new(VertexLabel::Place, city),
        ));
    }
    for (i, company) in dict::COMPANIES.iter().enumerate() {
        let id = (layout.n_universities + i) as u64;
        push(vertex(
            VertexLabel::Organisation,
            id,
            vec![
                (PropKey::Name, Value::str(company)),
                (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/co_{i}"))),
                (PropKey::OrgType, Value::str("company")),
            ],
        ));
        let country = layout.country_place[rng.gen_range(0..layout.country_place.len())];
        push(edge(
            EdgeLabel::IsLocatedIn,
            Vid::new(VertexLabel::Organisation, id),
            Vid::new(VertexLabel::Place, country),
        ));
    }
}

/// Materialize one timeline event and hand its records to `push` —
/// snapshot vertex + edges when at or before `cut`, a single update op
/// otherwise.
fn emit_event(
    cfg: &GeneratorConfig,
    layout: &StaticLayout,
    s: &Structure,
    ev: &SkelEvent,
    cut: i64,
    push: &mut impl FnMut(StreamItem),
) {
    let mut rng = StdRng::seed_from_u64(event_seed(cfg.seed, ev.uid as u64));
    let ts = ev.ts;
    let (kind, vertex, edges, dep) = match ev.skel {
        Skel::Person { pid } => {
            let vid = Vid::new(VertexLabel::Person, pid as u64);
            let first = dict::FIRST_NAMES[rng.gen_range(0..dict::FIRST_NAMES.len())];
            let last = dict::LAST_NAMES[rng.gen_range(0..dict::LAST_NAMES.len())];
            let birth_year = rng.gen_range(1950..1995i64);
            let birthday =
                (birth_year - 1970) * 365 * DAY_MS + rng.gen_range(0i64..365) * DAY_MS;
            let ip = random_ip(&mut rng);
            let browser = random_browser(&mut rng);
            let props = vec![
                (PropKey::FirstName, Value::str(first)),
                (PropKey::LastName, Value::str(last)),
                (PropKey::Gender, Value::str(if rng.gen() { "male" } else { "female" })),
                (PropKey::Birthday, Value::Date(birthday)),
                (PropKey::CreationDate, Value::Date(ts)),
                (PropKey::LocationIp, Value::string(ip)),
                (PropKey::BrowserUsed, Value::str(browser)),
                (
                    PropKey::Email,
                    Value::List(vec![Value::string(format!(
                        "{}.{}{}@example.org",
                        first.to_lowercase(),
                        last.to_lowercase(),
                        pid
                    ))]),
                ),
                (
                    PropKey::Speaks,
                    Value::List(vec![Value::str(
                        dict::LANGUAGES[rng.gen_range(0..dict::LANGUAGES.len())],
                    )]),
                ),
            ];
            let mut edges = vec![EdgeRec {
                label: EdgeLabel::IsLocatedIn,
                src: vid,
                dst: Vid::new(VertexLabel::Place, s.person_city[pid as usize]),
                props: Vec::new(),
                creation_ms: ts,
            }];
            for &tag in s.interests(pid) {
                edges.push(EdgeRec {
                    label: EdgeLabel::HasInterest,
                    src: vid,
                    dst: Vid::new(VertexLabel::Tag, tag as u64),
                    props: Vec::new(),
                    creation_ms: ts,
                });
            }
            if rng.gen::<f64>() < 0.6 {
                let uni = s.person_country[pid as usize] as u64 % layout.n_universities as u64;
                edges.push(EdgeRec {
                    label: EdgeLabel::StudyAt,
                    src: vid,
                    dst: Vid::new(VertexLabel::Organisation, uni),
                    props: vec![(PropKey::ClassYear, Value::Int(birth_year + 19))],
                    creation_ms: ts,
                });
            }
            if rng.gen::<f64>() < 0.8 {
                let company =
                    (layout.n_universities + rng.gen_range(0..dict::COMPANIES.len())) as u64;
                edges.push(EdgeRec {
                    label: EdgeLabel::WorkAt,
                    src: vid,
                    dst: Vid::new(VertexLabel::Organisation, company),
                    props: vec![(PropKey::WorkFrom, Value::Int(birth_year + 22))],
                    creation_ms: ts,
                });
            }
            let v = VertexRec { label: VertexLabel::Person, id: pid as u64, props, creation_ms: ts };
            (UpdateKind::AddPerson, Some(v), edges, SIM_START_MS)
        }
        Skel::Friendship { a, b } => {
            let edges = vec![EdgeRec {
                label: EdgeLabel::Knows,
                src: Vid::new(VertexLabel::Person, a as u64),
                dst: Vid::new(VertexLabel::Person, b as u64),
                props: vec![(PropKey::CreationDate, Value::Date(ts))],
                creation_ms: ts,
            }];
            let dep = s.person_created[a as usize].max(s.person_created[b as usize]);
            (UpdateKind::AddFriendship, None, edges, dep)
        }
        Skel::Forum { fid, moderator } => {
            let forum = Vid::new(VertexLabel::Forum, fid as u64);
            let tags = s.forum_tags(fid);
            let title = format!(
                "Group for {} #{fid}",
                tags.first().map(|t| format!("tag{t}")).unwrap_or_else(|| "everything".into()),
            );
            let mut edges = vec![EdgeRec {
                label: EdgeLabel::HasModerator,
                src: forum,
                dst: Vid::new(VertexLabel::Person, moderator as u64),
                props: Vec::new(),
                creation_ms: ts,
            }];
            for &t in tags {
                edges.push(EdgeRec {
                    label: EdgeLabel::HasTag,
                    src: forum,
                    dst: Vid::new(VertexLabel::Tag, t as u64),
                    props: Vec::new(),
                    creation_ms: ts,
                });
            }
            let v = VertexRec {
                label: VertexLabel::Forum,
                id: fid as u64,
                props: vec![
                    (PropKey::Title, Value::string(title)),
                    (PropKey::CreationDate, Value::Date(ts)),
                ],
                creation_ms: ts,
            };
            (UpdateKind::AddForum, Some(v), edges, s.person_created[moderator as usize])
        }
        Skel::Member { fid, member } => {
            let edges = vec![EdgeRec {
                label: EdgeLabel::HasMember,
                src: Vid::new(VertexLabel::Forum, fid as u64),
                dst: Vid::new(VertexLabel::Person, member as u64),
                props: vec![(PropKey::JoinDate, Value::Date(ts))],
                creation_ms: ts,
            }];
            let dep = s.forum_created[fid as usize].max(s.person_created[member as usize]);
            (UpdateKind::AddForumMembership, None, edges, dep)
        }
        Skel::Post { post, fid, creator } => {
            let pv = Vid::new(VertexLabel::Post, post as u64);
            let content = random_content(&mut rng, 5, 40);
            let has_image = rng.gen::<f64>() < 0.15;
            let ip = random_ip(&mut rng);
            let browser = random_browser(&mut rng);
            let mut props = vec![
                (PropKey::CreationDate, Value::Date(ts)),
                (PropKey::LocationIp, Value::string(ip)),
                (PropKey::BrowserUsed, Value::str(browser)),
                (
                    PropKey::Language,
                    Value::str(dict::LANGUAGES[rng.gen_range(0..dict::LANGUAGES.len())]),
                ),
                (PropKey::Length, Value::Int(content.len() as i64)),
                (PropKey::Content, Value::string(content)),
            ];
            if has_image {
                props.push((PropKey::ImageFile, Value::string(format!("photo{post}.jpg"))));
            }
            let country = layout.country_place[s.person_country[creator as usize] as usize];
            let mut edges = vec![
                EdgeRec {
                    label: EdgeLabel::ContainerOf,
                    src: Vid::new(VertexLabel::Forum, fid as u64),
                    dst: pv,
                    props: Vec::new(),
                    creation_ms: ts,
                },
                EdgeRec {
                    label: EdgeLabel::HasCreator,
                    src: pv,
                    dst: Vid::new(VertexLabel::Person, creator as u64),
                    props: Vec::new(),
                    creation_ms: ts,
                },
                EdgeRec {
                    label: EdgeLabel::IsLocatedIn,
                    src: pv,
                    dst: Vid::new(VertexLabel::Place, country),
                    props: Vec::new(),
                    creation_ms: ts,
                },
            ];
            for &t in s.forum_tags(fid) {
                if rng.gen::<f64>() < 0.7 {
                    edges.push(EdgeRec {
                        label: EdgeLabel::HasTag,
                        src: pv,
                        dst: Vid::new(VertexLabel::Tag, t as u64),
                        props: Vec::new(),
                        creation_ms: ts,
                    });
                }
            }
            let v = VertexRec { label: VertexLabel::Post, id: post as u64, props, creation_ms: ts };
            let dep = s.forum_created[fid as usize].max(s.person_created[creator as usize]);
            (UpdateKind::AddPost, Some(v), edges, dep)
        }
        Skel::Comment { comment, parent_post, parent_comment, creator } => {
            let cv = Vid::new(VertexLabel::Comment, comment as u64);
            let (parent, parent_ts) = if parent_comment == NONE_U32 {
                (
                    Vid::new(VertexLabel::Post, parent_post as u64),
                    s.post_created[parent_post as usize],
                )
            } else {
                (
                    Vid::new(VertexLabel::Comment, parent_comment as u64),
                    s.comment_created[parent_comment as usize],
                )
            };
            let content = random_content(&mut rng, 2, 20);
            let ip = random_ip(&mut rng);
            let browser = random_browser(&mut rng);
            let props = vec![
                (PropKey::CreationDate, Value::Date(ts)),
                (PropKey::LocationIp, Value::string(ip)),
                (PropKey::BrowserUsed, Value::str(browser)),
                (PropKey::Length, Value::Int(content.len() as i64)),
                (PropKey::Content, Value::string(content)),
            ];
            let country = layout.country_place[s.person_country[creator as usize] as usize];
            let edges = vec![
                EdgeRec {
                    label: EdgeLabel::ReplyOf,
                    src: cv,
                    dst: parent,
                    props: Vec::new(),
                    creation_ms: ts,
                },
                EdgeRec {
                    label: EdgeLabel::HasCreator,
                    src: cv,
                    dst: Vid::new(VertexLabel::Person, creator as u64),
                    props: Vec::new(),
                    creation_ms: ts,
                },
                EdgeRec {
                    label: EdgeLabel::IsLocatedIn,
                    src: cv,
                    dst: Vid::new(VertexLabel::Place, country),
                    props: Vec::new(),
                    creation_ms: ts,
                },
            ];
            let v = VertexRec {
                label: VertexLabel::Comment,
                id: comment as u64,
                props,
                creation_ms: ts,
            };
            let dep = parent_ts.max(s.person_created[creator as usize]);
            (UpdateKind::AddComment, Some(v), edges, dep)
        }
        Skel::Like { person, target_post, target_comment } => {
            let (kind, target, target_ts) = if target_comment == NONE_U32 {
                (
                    UpdateKind::AddLikePost,
                    Vid::new(VertexLabel::Post, target_post as u64),
                    s.post_created[target_post as usize],
                )
            } else {
                (
                    UpdateKind::AddLikeComment,
                    Vid::new(VertexLabel::Comment, target_comment as u64),
                    s.comment_created[target_comment as usize],
                )
            };
            let edges = vec![EdgeRec {
                label: EdgeLabel::Likes,
                src: Vid::new(VertexLabel::Person, person as u64),
                dst: target,
                props: vec![(PropKey::CreationDate, Value::Date(ts))],
                creation_ms: ts,
            }];
            let dep = target_ts.max(s.person_created[person as usize]);
            (kind, None, edges, dep)
        }
    };
    if ts <= cut {
        if let Some(v) = vertex {
            push(StreamItem::Vertex(v));
        }
        for e in edges {
            push(StreamItem::Edge(e));
        }
    } else {
        push(StreamItem::Update(UpdateOp {
            kind,
            ts_ms: ts,
            dependency_ms: dep,
            new_vertex: vertex,
            new_edges: edges,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn collect(cfg: &GeneratorConfig, chunk: usize) -> (Vec<StreamItem>, StreamStats) {
        let mut all = Vec::new();
        let stats = generate_stream(cfg, chunk, |c| all.extend(c));
        (all, stats)
    }

    #[test]
    fn stream_is_deterministic_and_chunk_size_invariant() {
        let cfg = GeneratorConfig::tiny();
        let (a, sa) = collect(&cfg, 1);
        let (b, sb) = collect(&cfg, 64);
        let (c, _) = collect(&cfg, 100_000);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(sa.snapshot_vertices, sb.snapshot_vertices);
        assert_eq!(sa.updates, sb.updates);
        assert!(sa.chunks > sb.chunks, "smaller chunks mean more flushes");
    }

    #[test]
    fn stream_is_referentially_consistent_in_order() {
        // Replaying the stream in order never references an unseen
        // vertex — the property bulk loaders rely on.
        let cfg = GeneratorConfig::tiny();
        let (items, stats) = collect(&cfg, 512);
        let mut seen = std::collections::HashSet::new();
        let mut prev_update_ts = i64::MIN;
        for item in &items {
            match item {
                StreamItem::Vertex(v) => {
                    assert!(seen.insert(v.vid()), "duplicate vertex {:?}", v.vid());
                    assert!(v.creation_ms <= stats.cut_ms);
                }
                StreamItem::Edge(e) => {
                    assert!(seen.contains(&e.src), "edge src {:?} unseen", e.src);
                    assert!(seen.contains(&e.dst), "edge dst {:?} unseen", e.dst);
                }
                StreamItem::Update(u) => {
                    assert!(u.ts_ms > stats.cut_ms);
                    assert!(u.ts_ms >= prev_update_ts, "updates are time-ordered");
                    assert!(u.dependency_ms <= u.ts_ms);
                    prev_update_ts = u.ts_ms;
                    if let Some(v) = &u.new_vertex {
                        seen.insert(v.vid());
                    }
                    for e in &u.new_edges {
                        assert!(seen.contains(&e.src));
                        assert!(seen.contains(&e.dst));
                    }
                }
            }
        }
    }

    #[test]
    fn scale_preset_thins_activity() {
        let lean = GeneratorConfig::scale(120);
        let dense = GeneratorConfig { persons: 120, ..GeneratorConfig::default() };
        let (a, _) = collect(&lean, 4096);
        let (b, _) = collect(&dense, 4096);
        assert!(a.len() < b.len(), "scale preset must be leaner: {} vs {}", a.len(), b.len());
    }

    #[test]
    fn update_kinds_cover_the_ldbc_set() {
        let cfg = GeneratorConfig { persons: 150, ..GeneratorConfig::default() };
        let (items, _) = collect(&cfg, 4096);
        let mut kinds: HashMap<UpdateKind, usize> = HashMap::new();
        for item in &items {
            if let StreamItem::Update(u) = item {
                *kinds.entry(u.kind).or_default() += 1;
            }
        }
        for k in [
            UpdateKind::AddLikePost,
            UpdateKind::AddForumMembership,
            UpdateKind::AddPost,
            UpdateKind::AddComment,
            UpdateKind::AddFriendship,
        ] {
            assert!(kinds.contains_key(&k), "missing update kind {k:?}: {kinds:?}");
        }
    }

    #[test]
    fn chunks_respect_the_size_bound() {
        let cfg = GeneratorConfig::tiny();
        let mut sizes = Vec::new();
        generate_stream(&cfg, 64, |c| sizes.push(c.len()));
        assert!(!sizes.is_empty());
        for (i, &len) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                assert_eq!(len, 64);
            } else {
                assert!(len <= 64 && len > 0);
            }
        }
    }
}
