//! Generator configuration.

/// Milliseconds in a day.
pub const DAY_MS: i64 = 24 * 3600 * 1000;

/// Simulation start: 2010-01-01T00:00:00Z in epoch milliseconds.
pub const SIM_START_MS: i64 = 1_262_304_000_000;

/// Parameters controlling dataset size, shape, and determinism.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of persons to simulate.
    pub persons: usize,
    /// RNG seed — same seed, same dataset, byte for byte.
    pub seed: u64,
    /// Length of the simulated activity window in days.
    pub sim_days: u32,
    /// Fraction (0..1) of the window loaded as the static snapshot;
    /// activity after the cut becomes the update stream.
    pub snapshot_fraction: f64,
    /// Mean number of friends per person (power-law distributed).
    pub mean_degree: f64,
    /// Probability that a friendship stays within the same interest
    /// community (LDBC's correlated-knows dimension).
    pub community_bias: f64,
    /// Mean posts created per forum member over the window.
    pub posts_per_member: f64,
    /// Mean direct comments spawned per post (replies branch further).
    pub comments_per_post: f64,
    /// Probability a friend of a message's creator likes the message.
    pub like_probability: f64,
    /// Probability that a person with friends moderates a forum at all
    /// (a moderator then runs one forum, or two 40% of the time).
    /// Honored by the streaming generator; the batch generator predates
    /// the knob and keeps its fixed everyone-moderates behaviour.
    pub forum_probability: f64,
}

impl GeneratorConfig {
    /// The scaled-down analogue of an LDBC scale factor (see crate docs).
    pub fn scale_factor(sf: u32) -> Self {
        GeneratorConfig { persons: 300 * sf as usize, ..Self::default() }
    }

    /// Tiny dataset for unit tests (fast, but exercises every entity type).
    pub fn tiny() -> Self {
        GeneratorConfig { persons: 40, ..Self::default() }
    }

    /// Memory-lean preset for million-person scale runs: the social
    /// structure keeps its power-law shape, but per-person activity is
    /// thinned (fewer friends, forums, posts, and likes) so the graph
    /// lands at roughly 2 vertices and 15–20 edges per person instead
    /// of the default preset's much denser timeline.
    pub fn scale(persons: usize) -> Self {
        GeneratorConfig {
            persons,
            mean_degree: 8.0,
            posts_per_member: 0.4,
            comments_per_post: 0.8,
            like_probability: 0.06,
            forum_probability: 0.15,
            ..Self::default()
        }
    }

    /// Simulation end in epoch milliseconds.
    pub fn sim_end_ms(&self) -> i64 {
        SIM_START_MS + self.sim_days as i64 * DAY_MS
    }

    /// The snapshot cut point in epoch milliseconds.
    pub fn cut_ms(&self) -> i64 {
        SIM_START_MS + (self.sim_days as f64 * DAY_MS as f64 * self.snapshot_fraction) as i64
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            persons: 300,
            seed: 0x5eed_1dbc,
            sim_days: 1095, // three simulated years, as in LDBC
            snapshot_fraction: 0.9,
            mean_degree: 18.0,
            community_bias: 0.7,
            posts_per_member: 1.6,
            comments_per_post: 2.0,
            like_probability: 0.18,
            forum_probability: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_lies_inside_window() {
        let c = GeneratorConfig::default();
        assert!(c.cut_ms() > SIM_START_MS);
        assert!(c.cut_ms() < c.sim_end_ms());
    }

    #[test]
    fn scale_factor_scales_persons() {
        assert_eq!(GeneratorConfig::scale_factor(3).persons, 900);
        assert_eq!(GeneratorConfig::scale_factor(10).persons, 3000);
    }
}
