//! Dataset statistics backing Table 1.

use snb_core::ids::{EDGE_LABELS, VERTEX_LABELS};
use std::collections::HashMap;

use crate::model::GeneratedData;

/// Summary counts for a generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Snapshot vertex count by label.
    pub vertices_by_label: HashMap<&'static str, usize>,
    /// Snapshot edge count by label.
    pub edges_by_label: HashMap<&'static str, usize>,
    /// Snapshot totals.
    pub snapshot_vertices: usize,
    pub snapshot_edges: usize,
    /// Update-stream totals.
    pub update_ops: usize,
    pub update_vertices: usize,
    pub update_edges: usize,
}

impl DatasetStats {
    /// Compute statistics for a generated dataset.
    pub fn of(data: &GeneratedData) -> Self {
        let mut vertices_by_label = HashMap::new();
        for l in VERTEX_LABELS {
            vertices_by_label.insert(l.as_str(), 0usize);
        }
        for v in &data.snapshot.vertices {
            *vertices_by_label.get_mut(v.label.as_str()).expect("all labels present") += 1;
        }
        let mut edges_by_label = HashMap::new();
        for l in EDGE_LABELS {
            edges_by_label.insert(l.as_str(), 0usize);
        }
        for e in &data.snapshot.edges {
            *edges_by_label.get_mut(e.label.as_str()).expect("all labels present") += 1;
        }
        DatasetStats {
            snapshot_vertices: data.snapshot.vertices.len(),
            snapshot_edges: data.snapshot.edges.len(),
            update_ops: data.updates.len(),
            update_vertices: data.updates.iter().filter(|u| u.new_vertex.is_some()).count(),
            update_edges: data.updates.iter().map(|u| u.new_edges.len()).sum(),
            vertices_by_label,
            edges_by_label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    #[test]
    fn stats_totals_match_dataset() {
        let d = generate(&GeneratorConfig::tiny());
        let s = DatasetStats::of(&d);
        assert_eq!(s.snapshot_vertices, d.snapshot.vertices.len());
        assert_eq!(s.snapshot_edges, d.snapshot.edges.len());
        assert_eq!(s.vertices_by_label.values().sum::<usize>(), s.snapshot_vertices);
        assert_eq!(s.edges_by_label.values().sum::<usize>(), s.snapshot_edges);
        assert_eq!(s.update_ops, d.updates.len());
        assert!(s.update_edges >= s.update_vertices);
    }
}
