//! Deterministic LDBC-SNB-like social network generator.
//!
//! The LDBC SNB data generator simulates the activity of a social
//! network over a period of time and splits the result at a cut date:
//! everything created before the cut becomes the **static snapshot**
//! bulk-loaded into the system under test, everything after becomes the
//! **update stream** replayed against it. This crate reproduces that
//! contract with realistic structure:
//!
//! * power-law `knows` degrees with community (shared-interest) bias;
//! * correlated attributes (a person's posts are located in their
//!   country, forum tags come from the moderator's interests);
//! * a timeline: every entity has a `creationDate`, and every edge's
//!   date is ≥ the dates of both endpoints, so cutting at any instant
//!   yields a referentially consistent snapshot — an invariant the test
//!   suite checks by property testing;
//! * update operations carrying LDBC-style *dependency timestamps* used
//!   by the driver's dependency-tracking scheduler.
//!
//! Scale factors: the paper's SF3 (10 M vertices / 64 M edges) targets a
//! 256 GB machine. [`GeneratorConfig::scale_factor`] maps SF *n* to
//! `300 · n` persons (≈1/100 of LDBC's density) with the same SF3:SF10
//! shape ratio; pass a custom person count to scale up.

pub mod codec;
pub mod config;
pub mod csv;
pub mod dict;
pub mod generator;
pub mod model;
pub mod stats;
pub mod stream;

pub use config::GeneratorConfig;
pub use generator::generate;
pub use model::{Dataset, EdgeRec, GeneratedData, UpdateKind, UpdateOp, VertexRec};
pub use stats::DatasetStats;
pub use stream::{generate_stream, StreamItem, StreamStats};
