//! The social-network simulation.
//!
//! Generation happens as a single stream of *events* (entity creations
//! with their satellite edges), each stamped with an event time. The
//! stream is then split at the configured cut: events at or before the
//! cut form the static snapshot; later events become LDBC update
//! operations. Because every edge's event time is ≥ the creation times
//! of both endpoints, the split is referentially consistent by
//! construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snb_core::{EdgeLabel, PropKey, Value, VertexLabel, Vid};
use std::collections::{HashMap, HashSet};

use crate::config::{GeneratorConfig, DAY_MS, SIM_START_MS};
use crate::dict;
use crate::model::{Dataset, EdgeRec, GeneratedData, UpdateKind, UpdateOp, VertexRec};

/// One generation event: an optional new vertex plus satellite edges,
/// all sharing the event time.
struct Event {
    ts: i64,
    kind: UpdateKind,
    vertex: Option<VertexRec>,
    edges: Vec<EdgeRec>,
}

/// Generate a dataset from the given configuration. Deterministic: the
/// same configuration (including seed) produces the same output.
pub fn generate(config: &GeneratorConfig) -> GeneratedData {
    Generator::new(config).run()
}

struct Generator<'a> {
    cfg: &'a GeneratorConfig,
    rng: StdRng,
    /// Static dictionary entities (always in the snapshot).
    static_vertices: Vec<VertexRec>,
    static_edges: Vec<EdgeRec>,
    /// Timeline events (persons, friendships, forums, messages, likes).
    events: Vec<Event>,
    /// Creation time of every vertex, for dependency timestamps.
    created_at: HashMap<Vid, i64>,
    // Dictionary entity ids.
    country_place_ids: Vec<u64>,
    city_place_ids: Vec<(u64, usize)>, // (place id, country index)
    tag_ids: Vec<u64>,
    university_ids: Vec<(u64, usize)>, // (org id, country index)
    company_ids: Vec<u64>,
    // Person state.
    person_created: Vec<i64>,
    person_city: Vec<u64>,
    person_country: Vec<usize>,
    person_interests: Vec<Vec<u64>>,
    person_community: Vec<usize>,
    friends: Vec<Vec<usize>>,
    next_id: HashMap<VertexLabel, u64>,
}

impl<'a> Generator<'a> {
    fn new(cfg: &'a GeneratorConfig) -> Self {
        Generator {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            static_vertices: Vec::new(),
            static_edges: Vec::new(),
            events: Vec::new(),
            created_at: HashMap::new(),
            country_place_ids: Vec::new(),
            city_place_ids: Vec::new(),
            tag_ids: Vec::new(),
            university_ids: Vec::new(),
            company_ids: Vec::new(),
            person_created: Vec::new(),
            person_city: Vec::new(),
            person_country: Vec::new(),
            person_interests: Vec::new(),
            person_community: Vec::new(),
            friends: Vec::new(),
            next_id: HashMap::new(),
        }
    }

    fn run(mut self) -> GeneratedData {
        self.gen_places();
        self.gen_tags();
        self.gen_organisations();
        self.gen_persons();
        self.gen_friendships();
        self.gen_forums_and_messages();
        self.split()
    }

    fn alloc_id(&mut self, label: VertexLabel) -> u64 {
        let next = self.next_id.entry(label).or_insert(0);
        let id = *next;
        *next += 1;
        id
    }

    fn add_static_vertex(&mut self, label: VertexLabel, props: Vec<(PropKey, Value)>) -> Vid {
        let id = self.alloc_id(label);
        let vid = Vid::new(label, id);
        self.created_at.insert(vid, SIM_START_MS);
        self.static_vertices.push(VertexRec { label, id, props, creation_ms: SIM_START_MS });
        vid
    }

    fn add_static_edge(&mut self, label: EdgeLabel, src: Vid, dst: Vid) {
        self.static_edges.push(EdgeRec {
            label,
            src,
            dst,
            props: Vec::new(),
            creation_ms: SIM_START_MS,
        });
    }

    fn gen_places(&mut self) {
        for (ci, (country, cities)) in dict::COUNTRIES.iter().enumerate() {
            let cvid = self.add_static_vertex(
                VertexLabel::Place,
                vec![
                    (PropKey::Name, Value::str(country)),
                    (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/{country}"))),
                    (PropKey::PlaceType, Value::str("country")),
                ],
            );
            self.country_place_ids.push(cvid.local());
            for city in *cities {
                let city_vid = self.add_static_vertex(
                    VertexLabel::Place,
                    vec![
                        (PropKey::Name, Value::str(city)),
                        (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/{city}"))),
                        (PropKey::PlaceType, Value::str("city")),
                    ],
                );
                self.city_place_ids.push((city_vid.local(), ci));
                self.add_static_edge(EdgeLabel::IsPartOf, city_vid, cvid);
            }
        }
    }

    fn gen_tags(&mut self) {
        let mut class_vids = Vec::new();
        for (i, name) in dict::TAG_CLASSES.iter().enumerate() {
            let vid = self.add_static_vertex(
                VertexLabel::TagClass,
                vec![
                    (PropKey::Name, Value::str(name)),
                    (PropKey::Url, Value::string(format!("http://dbpedia.org/ontology/{name}"))),
                ],
            );
            class_vids.push(vid);
            if i > 0 {
                let parent = class_vids[self.rng.gen_range(0..i)];
                self.add_static_edge(EdgeLabel::IsSubclassOf, vid, parent);
            }
        }
        let tag_count = dict::TAG_STEMS.len().max(self.cfg.persons / 4).max(60);
        for t in 0..tag_count {
            let stem = dict::TAG_STEMS[t % dict::TAG_STEMS.len()];
            let name = if t < dict::TAG_STEMS.len() {
                stem.to_string()
            } else {
                format!("{stem}_{}", t / dict::TAG_STEMS.len())
            };
            let class = class_vids[self.rng.gen_range(0..class_vids.len())];
            let vid = self.add_static_vertex(
                VertexLabel::Tag,
                vec![
                    (PropKey::Name, Value::string(name.clone())),
                    (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/{name}"))),
                ],
            );
            self.tag_ids.push(vid.local());
            self.add_static_edge(EdgeLabel::HasType, vid, class);
        }
    }

    fn gen_organisations(&mut self) {
        for ci in 0..dict::COUNTRIES.len() {
            let uni = dict::UNIVERSITIES[ci % dict::UNIVERSITIES.len()];
            let name = format!("{}_{uni}", dict::COUNTRIES[ci].0);
            let vid = self.add_static_vertex(
                VertexLabel::Organisation,
                vec![
                    (PropKey::Name, Value::string(name)),
                    (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/uni_{ci}"))),
                    (PropKey::OrgType, Value::str("university")),
                ],
            );
            self.university_ids.push((vid.local(), ci));
            // Universities sit in the first city of their country.
            let city = self
                .city_place_ids
                .iter()
                .find(|(_, c)| *c == ci)
                .map(|(id, _)| *id)
                .expect("every country has a city");
            self.add_static_edge(EdgeLabel::IsLocatedIn, vid, Vid::new(VertexLabel::Place, city));
        }
        for (i, company) in dict::COMPANIES.iter().enumerate() {
            let vid = self.add_static_vertex(
                VertexLabel::Organisation,
                vec![
                    (PropKey::Name, Value::str(company)),
                    (PropKey::Url, Value::string(format!("http://dbpedia.org/resource/co_{i}"))),
                    (PropKey::OrgType, Value::str("company")),
                ],
            );
            self.company_ids.push(vid.local());
            let ci = self.rng.gen_range(0..self.country_place_ids.len());
            let country = self.country_place_ids[ci];
            self.add_static_edge(EdgeLabel::IsLocatedIn, vid, Vid::new(VertexLabel::Place, country));
        }
    }

    fn random_ip(&mut self) -> String {
        format!(
            "{}.{}.{}.{}",
            self.rng.gen_range(1..224u8),
            self.rng.gen_range(0..=255u8),
            self.rng.gen_range(0..=255u8),
            self.rng.gen_range(1..=254u8)
        )
    }

    fn random_browser(&mut self) -> &'static str {
        // Skewed browser share, as in LDBC.
        let r: f64 = self.rng.gen();
        let idx = if r < 0.45 {
            0
        } else if r < 0.75 {
            1
        } else if r < 0.9 {
            2
        } else if r < 0.97 {
            3
        } else {
            4
        };
        dict::BROWSERS[idx]
    }

    fn random_content(&mut self, min_words: usize, max_words: usize) -> String {
        let n = self.rng.gen_range(min_words..=max_words);
        let mut s = String::with_capacity(n * 7);
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(dict::WORDS[self.rng.gen_range(0..dict::WORDS.len())]);
        }
        s
    }

    fn gen_persons(&mut self) {
        let n = self.cfg.persons;
        let window = self.cfg.sim_end_ms() - SIM_START_MS;
        let communities = (n / 25).max(4);
        for _ in 0..n {
            // Person arrivals are front-loaded (quadratic bias towards the
            // beginning) so the snapshot holds most of the network and the
            // update stream still receives fresh persons.
            let u: f64 = self.rng.gen();
            let created = SIM_START_MS + ((u * u) * window as f64) as i64;
            let id = self.alloc_id(VertexLabel::Person);
            let vid = Vid::new(VertexLabel::Person, id);
            let ci = self.rng.gen_range(0..self.city_place_ids.len());
            let (city, country) = self.city_place_ids[ci];
            let community = self.rng.gen_range(0..communities);
            // Interests cluster around the community's "home" tag range.
            let tags_per_community = (self.tag_ids.len() / communities).max(1);
            let base = community * tags_per_community;
            let mut interests: Vec<u64> = Vec::new();
            let n_interests = self.rng.gen_range(3..=8usize);
            for _ in 0..n_interests {
                let idx = if self.rng.gen::<f64>() < 0.8 {
                    base + self.rng.gen_range(0..tags_per_community)
                } else {
                    self.rng.gen_range(0..self.tag_ids.len())
                };
                let tag = self.tag_ids[idx % self.tag_ids.len()];
                if !interests.contains(&tag) {
                    interests.push(tag);
                }
            }
            let first = dict::FIRST_NAMES[self.rng.gen_range(0..dict::FIRST_NAMES.len())];
            let last = dict::LAST_NAMES[self.rng.gen_range(0..dict::LAST_NAMES.len())];
            // Birthday: 1950..1995 as epoch ms (negative before 1970).
            let birth_year = self.rng.gen_range(1950..1995i64);
            let birthday = (birth_year - 1970) * 365 * DAY_MS + self.rng.gen_range(0i64..365) * DAY_MS;
            let ip = self.random_ip();
            let browser = self.random_browser();
            let props = vec![
                (PropKey::FirstName, Value::str(first)),
                (PropKey::LastName, Value::str(last)),
                (PropKey::Gender, Value::str(if self.rng.gen() { "male" } else { "female" })),
                (PropKey::Birthday, Value::Date(birthday)),
                (PropKey::CreationDate, Value::Date(created)),
                (PropKey::LocationIp, Value::string(ip)),
                (PropKey::BrowserUsed, Value::str(browser)),
                (
                    PropKey::Email,
                    Value::List(vec![Value::string(format!(
                        "{}.{}{}@example.org",
                        first.to_lowercase(),
                        last.to_lowercase(),
                        id
                    ))]),
                ),
                (
                    PropKey::Speaks,
                    Value::List(vec![Value::str(
                        dict::LANGUAGES[self.rng.gen_range(0..dict::LANGUAGES.len())],
                    )]),
                ),
            ];
            let mut edges = vec![EdgeRec {
                label: EdgeLabel::IsLocatedIn,
                src: vid,
                dst: Vid::new(VertexLabel::Place, city),
                props: Vec::new(),
                creation_ms: created,
            }];
            for &tag in &interests {
                edges.push(EdgeRec {
                    label: EdgeLabel::HasInterest,
                    src: vid,
                    dst: Vid::new(VertexLabel::Tag, tag),
                    props: Vec::new(),
                    creation_ms: created,
                });
            }
            if self.rng.gen::<f64>() < 0.6 {
                let (uni, _) = self.university_ids[country % self.university_ids.len()];
                edges.push(EdgeRec {
                    label: EdgeLabel::StudyAt,
                    src: vid,
                    dst: Vid::new(VertexLabel::Organisation, uni),
                    props: vec![(PropKey::ClassYear, Value::Int(birth_year + 19))],
                    creation_ms: created,
                });
            }
            if self.rng.gen::<f64>() < 0.8 {
                let company = self.company_ids[self.rng.gen_range(0..self.company_ids.len())];
                edges.push(EdgeRec {
                    label: EdgeLabel::WorkAt,
                    src: vid,
                    dst: Vid::new(VertexLabel::Organisation, company),
                    props: vec![(PropKey::WorkFrom, Value::Int(birth_year + 22))],
                    creation_ms: created,
                });
            }
            self.created_at.insert(vid, created);
            self.person_created.push(created);
            self.person_city.push(city);
            self.person_country.push(country);
            self.person_interests.push(interests);
            self.person_community.push(community);
            self.friends.push(Vec::new());
            self.events.push(Event {
                ts: created,
                kind: UpdateKind::AddPerson,
                vertex: Some(VertexRec { label: VertexLabel::Person, id, props, creation_ms: created }),
                edges,
            });
        }
    }

    /// Chung-Lu-style friendship generation: endpoint choice is
    /// proportional to a Pareto weight (power-law degrees), biased to
    /// stay within the same interest community.
    fn gen_friendships(&mut self) {
        let n = self.cfg.persons;
        if n < 2 {
            return;
        }
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                let u: f64 = self.rng.gen::<f64>().max(1e-12);
                // Pareto(alpha=2.2, xmin=1): heavy tail, finite mean.
                u.powf(-1.0 / 2.2)
            })
            .collect();
        let mut cum: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc);
        }
        // Per-community cumulative tables.
        let communities = self.person_community.iter().copied().max().unwrap_or(0) + 1;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); communities];
        for (i, &c) in self.person_community.iter().enumerate() {
            members[c].push(i);
        }
        let target_edges = (n as f64 * self.cfg.mean_degree / 2.0) as usize;
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(target_edges * 2);
        let mut attempts = 0usize;
        let max_attempts = target_edges * 20;
        let sim_end = self.cfg.sim_end_ms();
        while seen.len() < target_edges && attempts < max_attempts {
            attempts += 1;
            let a = sample_cum(&cum, self.rng.gen::<f64>() * acc);
            let b = if self.rng.gen::<f64>() < self.cfg.community_bias {
                let pool = &members[self.person_community[a]];
                pool[self.rng.gen_range(0..pool.len())]
            } else {
                sample_cum(&cum, self.rng.gen::<f64>() * acc)
            };
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue;
            }
            let base = self.person_created[a].max(self.person_created[b]);
            let ts = (base + self.rng.gen_range(0..60 * DAY_MS)).min(sim_end - 1);
            self.friends[a].push(b);
            self.friends[b].push(a);
            let (pa, pb) = (
                Vid::new(VertexLabel::Person, key.0 as u64),
                Vid::new(VertexLabel::Person, key.1 as u64),
            );
            self.events.push(Event {
                ts,
                kind: UpdateKind::AddFriendship,
                vertex: None,
                edges: vec![EdgeRec {
                    label: EdgeLabel::Knows,
                    src: pa,
                    dst: pb,
                    props: vec![(PropKey::CreationDate, Value::Date(ts))],
                    creation_ms: ts,
                }],
            });
        }
    }

    fn gen_forums_and_messages(&mut self) {
        let n = self.cfg.persons;
        let sim_end = self.cfg.sim_end_ms();
        // Collected first to avoid borrowing issues, then turned into events.
        for moderator in 0..n {
            if self.friends[moderator].is_empty() {
                continue;
            }
            let n_forums = if self.rng.gen::<f64>() < 0.6 { 1 } else { 2 };
            for _ in 0..n_forums {
                let forum_id = self.alloc_id(VertexLabel::Forum);
                let forum = Vid::new(VertexLabel::Forum, forum_id);
                let mod_vid = Vid::new(VertexLabel::Person, moderator as u64);
                let created = (self.person_created[moderator]
                    + self.rng.gen_range(0..90 * DAY_MS))
                .min(sim_end - 1);
                self.created_at.insert(forum, created);
                // Forum tags come from the moderator's interests.
                let interests = self.person_interests[moderator].clone();
                let mut forum_tags: Vec<u64> = Vec::new();
                for _ in 0..self.rng.gen_range(1..=3usize) {
                    if interests.is_empty() {
                        break;
                    }
                    let t = interests[self.rng.gen_range(0..interests.len())];
                    if !forum_tags.contains(&t) {
                        forum_tags.push(t);
                    }
                }
                let title = format!(
                    "Group for {} #{}",
                    forum_tags
                        .first()
                        .map(|t| format!("tag{t}"))
                        .unwrap_or_else(|| "everything".into()),
                    forum_id
                );
                let mut edges = vec![EdgeRec {
                    label: EdgeLabel::HasModerator,
                    src: forum,
                    dst: mod_vid,
                    props: Vec::new(),
                    creation_ms: created,
                }];
                for &t in &forum_tags {
                    edges.push(EdgeRec {
                        label: EdgeLabel::HasTag,
                        src: forum,
                        dst: Vid::new(VertexLabel::Tag, t),
                        props: Vec::new(),
                        creation_ms: created,
                    });
                }
                self.events.push(Event {
                    ts: created,
                    kind: UpdateKind::AddForum,
                    vertex: Some(VertexRec {
                        label: VertexLabel::Forum,
                        id: forum_id,
                        props: vec![
                            (PropKey::Title, Value::string(title)),
                            (PropKey::CreationDate, Value::Date(created)),
                        ],
                        creation_ms: created,
                    }),
                    edges,
                });
                // Members: moderator + a subset of their friends.
                let mut member_set: Vec<usize> = vec![moderator];
                let friend_list = self.friends[moderator].clone();
                for f in friend_list {
                    if self.rng.gen::<f64>() < 0.6 {
                        member_set.push(f);
                    }
                }
                let mut joined: Vec<(usize, i64)> = Vec::with_capacity(member_set.len());
                for &m in &member_set {
                    let join = (created.max(self.person_created[m])
                        + self.rng.gen_range(0..30 * DAY_MS))
                    .min(sim_end - 1);
                    joined.push((m, join));
                    self.events.push(Event {
                        ts: join,
                        kind: UpdateKind::AddForumMembership,
                        vertex: None,
                        edges: vec![EdgeRec {
                            label: EdgeLabel::HasMember,
                            src: forum,
                            dst: Vid::new(VertexLabel::Person, m as u64),
                            props: vec![(PropKey::JoinDate, Value::Date(join))],
                            creation_ms: join,
                        }],
                    });
                }
                // Posts by members.
                for &(m, join) in &joined {
                    let n_posts = poisson(&mut self.rng, self.cfg.posts_per_member);
                    for _ in 0..n_posts {
                        self.gen_post(forum, m, join, &forum_tags);
                    }
                }
            }
        }
    }

    fn gen_post(&mut self, forum: Vid, creator: usize, after: i64, forum_tags: &[u64]) {
        let sim_end = self.cfg.sim_end_ms();
        if after >= sim_end - 1 {
            return;
        }
        let created = self.rng.gen_range(after..sim_end);
        let post_id = self.alloc_id(VertexLabel::Post);
        let post = Vid::new(VertexLabel::Post, post_id);
        self.created_at.insert(post, created);
        let creator_vid = Vid::new(VertexLabel::Person, creator as u64);
        let content = self.random_content(5, 40);
        let has_image = self.rng.gen::<f64>() < 0.15;
        let ip = self.random_ip();
        let browser = self.random_browser();
        let mut props = vec![
            (PropKey::CreationDate, Value::Date(created)),
            (PropKey::LocationIp, Value::string(ip)),
            (PropKey::BrowserUsed, Value::str(browser)),
            (PropKey::Language, Value::str(dict::LANGUAGES[self.rng.gen_range(0..dict::LANGUAGES.len())])),
            (PropKey::Length, Value::Int(content.len() as i64)),
            (PropKey::Content, Value::string(content)),
        ];
        if has_image {
            props.push((PropKey::ImageFile, Value::string(format!("photo{post_id}.jpg"))));
        }
        let country_place = self.country_place_ids[self.person_country[creator]];
        let mut edges = vec![
            EdgeRec {
                label: EdgeLabel::ContainerOf,
                src: forum,
                dst: post,
                props: Vec::new(),
                creation_ms: created,
            },
            EdgeRec {
                label: EdgeLabel::HasCreator,
                src: post,
                dst: creator_vid,
                props: Vec::new(),
                creation_ms: created,
            },
            EdgeRec {
                label: EdgeLabel::IsLocatedIn,
                src: post,
                dst: Vid::new(VertexLabel::Place, country_place),
                props: Vec::new(),
                creation_ms: created,
            },
        ];
        for &t in forum_tags {
            if self.rng.gen::<f64>() < 0.7 {
                edges.push(EdgeRec {
                    label: EdgeLabel::HasTag,
                    src: post,
                    dst: Vid::new(VertexLabel::Tag, t),
                    props: Vec::new(),
                    creation_ms: created,
                });
            }
        }
        self.events.push(Event {
            ts: created,
            kind: UpdateKind::AddPost,
            vertex: Some(VertexRec { label: VertexLabel::Post, id: post_id, props, creation_ms: created }),
            edges,
        });
        self.gen_likes(post, created, creator, UpdateKind::AddLikePost);
        // Comment cascade.
        let n_comments = poisson(&mut self.rng, self.cfg.comments_per_post);
        for _ in 0..n_comments {
            self.gen_comment(post, created, creator, 0);
        }
    }

    fn gen_comment(&mut self, parent: Vid, parent_ts: i64, thread_owner: usize, depth: u32) {
        let sim_end = self.cfg.sim_end_ms();
        if parent_ts >= sim_end - 1 || depth > 4 {
            return;
        }
        // Commenter: a friend of the thread owner when possible.
        let commenter = if !self.friends[thread_owner].is_empty() && self.rng.gen::<f64>() < 0.8 {
            let fs = &self.friends[thread_owner];
            fs[self.rng.gen_range(0..fs.len())]
        } else {
            self.rng.gen_range(0..self.cfg.persons)
        };
        let earliest = parent_ts.max(self.person_created[commenter]);
        if earliest >= sim_end - 1 {
            return;
        }
        let created = self.rng.gen_range(earliest..sim_end).min(sim_end - 1);
        let comment_id = self.alloc_id(VertexLabel::Comment);
        let comment = Vid::new(VertexLabel::Comment, comment_id);
        self.created_at.insert(comment, created);
        let content = self.random_content(2, 20);
        let ip = self.random_ip();
        let browser = self.random_browser();
        let props = vec![
            (PropKey::CreationDate, Value::Date(created)),
            (PropKey::LocationIp, Value::string(ip)),
            (PropKey::BrowserUsed, Value::str(browser)),
            (PropKey::Length, Value::Int(content.len() as i64)),
            (PropKey::Content, Value::string(content)),
        ];
        let country_place = self.country_place_ids[self.person_country[commenter]];
        let edges = vec![
            EdgeRec {
                label: EdgeLabel::ReplyOf,
                src: comment,
                dst: parent,
                props: Vec::new(),
                creation_ms: created,
            },
            EdgeRec {
                label: EdgeLabel::HasCreator,
                src: comment,
                dst: Vid::new(VertexLabel::Person, commenter as u64),
                props: Vec::new(),
                creation_ms: created,
            },
            EdgeRec {
                label: EdgeLabel::IsLocatedIn,
                src: comment,
                dst: Vid::new(VertexLabel::Place, country_place),
                props: Vec::new(),
                creation_ms: created,
            },
        ];
        self.events.push(Event {
            ts: created,
            kind: UpdateKind::AddComment,
            vertex: Some(VertexRec {
                label: VertexLabel::Comment,
                id: comment_id,
                props,
                creation_ms: created,
            }),
            edges,
        });
        self.gen_likes(comment, created, commenter, UpdateKind::AddLikeComment);
        // Replies to this comment, with decaying branching factor.
        let n_replies = poisson(&mut self.rng, self.cfg.comments_per_post * 0.35);
        for _ in 0..n_replies {
            self.gen_comment(comment, created, commenter, depth + 1);
        }
    }

    fn gen_likes(&mut self, message: Vid, message_ts: i64, creator: usize, kind: UpdateKind) {
        let sim_end = self.cfg.sim_end_ms();
        let friend_list = self.friends[creator].clone();
        for f in friend_list {
            if self.rng.gen::<f64>() >= self.cfg.like_probability {
                continue;
            }
            let earliest = message_ts.max(self.person_created[f]);
            if earliest >= sim_end - 1 {
                continue;
            }
            let ts = (earliest + self.rng.gen_range(0..14 * DAY_MS)).min(sim_end - 1);
            self.events.push(Event {
                ts,
                kind,
                vertex: None,
                edges: vec![EdgeRec {
                    label: EdgeLabel::Likes,
                    src: Vid::new(VertexLabel::Person, f as u64),
                    dst: message,
                    props: vec![(PropKey::CreationDate, Value::Date(ts))],
                    creation_ms: ts,
                }],
            });
        }
    }

    fn split(mut self) -> GeneratedData {
        let cut = self.cfg.cut_ms();
        let mut snapshot = Dataset {
            vertices: std::mem::take(&mut self.static_vertices),
            edges: std::mem::take(&mut self.static_edges),
        };
        let mut updates = Vec::new();
        self.events.sort_by_key(|e| e.ts);
        for ev in self.events {
            if ev.ts <= cut {
                if let Some(v) = ev.vertex {
                    snapshot.vertices.push(v);
                }
                snapshot.edges.extend(ev.edges);
            } else {
                // Dependency: the newest referenced entity other than the
                // vertex this op itself creates.
                let own = ev.vertex.as_ref().map(|v| v.vid());
                let mut dep = SIM_START_MS;
                for e in &ev.edges {
                    for end in [e.src, e.dst] {
                        if Some(end) != own {
                            if let Some(&t) = self.created_at.get(&end) {
                                dep = dep.max(t);
                            }
                        }
                    }
                }
                updates.push(UpdateOp {
                    kind: ev.kind,
                    ts_ms: ev.ts,
                    dependency_ms: dep,
                    new_vertex: ev.vertex,
                    new_edges: ev.edges,
                });
            }
        }
        GeneratedData { snapshot, updates, cut_ms: cut }
    }
}

/// Binary search into a cumulative-weight table.
pub(crate) fn sample_cum(cum: &[f64], x: f64) -> usize {
    match cum.binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite")) {
        Ok(i) => i,
        Err(i) => i.min(cum.len() - 1),
    }
}

/// Knuth's Poisson sampler (fine for the small lambdas used here).
pub(crate) fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // safety valve; unreachable for benchmark lambdas
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn tiny() -> GeneratedData {
        generate(&GeneratorConfig::tiny())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.snapshot.vertices, b.snapshot.vertices);
        assert_eq!(a.snapshot.edges, b.snapshot.edges);
        assert_eq!(a.updates, b.updates);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny();
        let mut cfg = GeneratorConfig::tiny();
        cfg.seed ^= 0xdead_beef;
        let b = generate(&cfg);
        assert_ne!(a.snapshot.edges, b.snapshot.edges);
    }

    #[test]
    fn snapshot_is_referentially_consistent() {
        let d = tiny();
        let ids: std::collections::HashSet<_> =
            d.snapshot.vertices.iter().map(|v| v.vid()).collect();
        assert_eq!(ids.len(), d.snapshot.vertices.len(), "vertex ids unique");
        for e in &d.snapshot.edges {
            assert!(ids.contains(&e.src), "snapshot edge src {:?} missing", e.src);
            assert!(ids.contains(&e.dst), "snapshot edge dst {:?} missing", e.dst);
        }
    }

    #[test]
    fn updates_are_sorted_and_after_cut() {
        let d = tiny();
        assert!(!d.updates.is_empty(), "tiny config still produces a stream");
        let mut prev = i64::MIN;
        for u in &d.updates {
            assert!(u.ts_ms > d.cut_ms);
            assert!(u.ts_ms >= prev, "stream is time-ordered");
            assert!(u.dependency_ms <= u.ts_ms, "dependencies precede the op");
            prev = u.ts_ms;
        }
    }

    #[test]
    fn update_kinds_cover_the_ldbc_set() {
        let mut cfg = GeneratorConfig::tiny();
        cfg.persons = 150;
        let d = generate(&cfg);
        let mut kinds: Map<UpdateKind, usize> = Map::new();
        for u in &d.updates {
            *kinds.entry(u.kind).or_default() += 1;
        }
        for k in [
            UpdateKind::AddLikePost,
            UpdateKind::AddForumMembership,
            UpdateKind::AddPost,
            UpdateKind::AddComment,
            UpdateKind::AddFriendship,
        ] {
            assert!(kinds.contains_key(&k), "missing update kind {k:?}: {kinds:?}");
        }
    }

    #[test]
    fn every_entity_type_is_generated() {
        let d = tiny();
        use snb_core::ids::VERTEX_LABELS;
        for label in VERTEX_LABELS {
            assert!(
                d.snapshot.count_vertices(label) > 0,
                "no {label} vertices in snapshot"
            );
        }
        assert!(d.snapshot.count_edges(EdgeLabel::Knows) > 0);
        assert!(d.snapshot.count_edges(EdgeLabel::HasCreator) > 0);
        assert!(d.snapshot.count_edges(EdgeLabel::ReplyOf) > 0);
        assert!(d.snapshot.count_edges(EdgeLabel::Likes) > 0);
    }

    #[test]
    fn knows_degrees_are_skewed() {
        let mut cfg = GeneratorConfig::tiny();
        cfg.persons = 300;
        let d = generate(&cfg);
        let mut deg: Map<Vid, usize> = Map::new();
        for e in d.snapshot.edges.iter().filter(|e| e.label == EdgeLabel::Knows) {
            *deg.entry(e.src).or_default() += 1;
            *deg.entry(e.dst).or_default() += 1;
        }
        let max = deg.values().copied().max().unwrap_or(0);
        let mean = deg.values().sum::<usize>() as f64 / deg.len().max(1) as f64;
        assert!(max as f64 > 3.0 * mean, "power-law tail: max {max} vs mean {mean}");
    }

    #[test]
    fn edge_dates_follow_endpoint_dates() {
        let d = tiny();
        let created: Map<Vid, i64> = d
            .snapshot
            .vertices
            .iter()
            .map(|v| (v.vid(), v.creation_ms))
            .chain(
                d.updates
                    .iter()
                    .filter_map(|u| u.new_vertex.as_ref())
                    .map(|v| (v.vid(), v.creation_ms)),
            )
            .collect();
        for e in d
            .snapshot
            .edges
            .iter()
            .chain(d.updates.iter().flat_map(|u| u.new_edges.iter()))
        {
            assert!(e.creation_ms >= created[&e.src], "edge predates src");
            assert!(e.creation_ms >= created[&e.dst], "edge predates dst");
        }
    }
}
