//! Generated dataset records and update operations.
//!
//! `VertexRec`/`EdgeRec` are the loader-facing, engine-neutral
//! representation of the generated graph. Update operations are the
//! eight LDBC SNB interactive updates (IU1–IU8); each is a (possibly
//! absent) new vertex plus a set of new edges, with the timestamps the
//! driver's dependency tracker needs.

use snb_core::{EdgeLabel, PropKey, Value, VertexLabel, Vid};

/// One vertex of the generated network.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexRec {
    pub label: VertexLabel,
    /// Entity-local LDBC id.
    pub id: u64,
    pub props: Vec<(PropKey, Value)>,
    /// Event time (== `creationDate` property where present; static
    /// dictionary entities use the simulation start).
    pub creation_ms: i64,
}

impl VertexRec {
    /// The packed global id of this vertex.
    pub fn vid(&self) -> Vid {
        Vid::new(self.label, self.id)
    }

    /// Read one of the record's properties.
    pub fn prop(&self, key: PropKey) -> Option<&Value> {
        self.props.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One directed edge of the generated network.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeRec {
    pub label: EdgeLabel,
    pub src: Vid,
    pub dst: Vid,
    pub props: Vec<(PropKey, Value)>,
    /// Event time; ≥ the creation times of both endpoints by construction.
    pub creation_ms: i64,
}

/// A bulk-loadable set of vertices and edges (the static snapshot).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    pub vertices: Vec<VertexRec>,
    pub edges: Vec<EdgeRec>,
}

impl Dataset {
    /// Vertices with a given label.
    pub fn vertices_of(&self, label: VertexLabel) -> impl Iterator<Item = &VertexRec> {
        self.vertices.iter().filter(move |v| v.label == label)
    }

    /// Count vertices with a given label.
    pub fn count_vertices(&self, label: VertexLabel) -> usize {
        self.vertices_of(label).count()
    }

    /// Count edges with a given label.
    pub fn count_edges(&self, label: EdgeLabel) -> usize {
        self.edges.iter().filter(|e| e.label == label).count()
    }
}

/// The LDBC SNB interactive update operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// IU1: add person (with location, interests).
    AddPerson,
    /// IU2: add like to post.
    AddLikePost,
    /// IU3: add like to comment.
    AddLikeComment,
    /// IU4: add forum (with moderator, tags).
    AddForum,
    /// IU5: add forum membership.
    AddForumMembership,
    /// IU6: add post.
    AddPost,
    /// IU7: add comment.
    AddComment,
    /// IU8: add friendship.
    AddFriendship,
}

impl UpdateKind {
    /// LDBC operation name (`IU1`..`IU8`).
    pub fn ldbc_name(self) -> &'static str {
        match self {
            UpdateKind::AddPerson => "IU1",
            UpdateKind::AddLikePost => "IU2",
            UpdateKind::AddLikeComment => "IU3",
            UpdateKind::AddForum => "IU4",
            UpdateKind::AddForumMembership => "IU5",
            UpdateKind::AddPost => "IU6",
            UpdateKind::AddComment => "IU7",
            UpdateKind::AddFriendship => "IU8",
        }
    }
}

/// One update operation of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateOp {
    pub kind: UpdateKind,
    /// Scheduled (event) time of this operation.
    pub ts_ms: i64,
    /// The latest creation time among the entities this operation
    /// references — the driver must not execute this op before every
    /// operation at or before `dependency_ms` has been applied.
    pub dependency_ms: i64,
    /// Vertex created by this op (IU1/4/6/7), if any.
    pub new_vertex: Option<VertexRec>,
    /// Edges created by this op (always at least one except bare IU1).
    pub new_edges: Vec<EdgeRec>,
}

impl UpdateOp {
    /// Stable partitioning key of this operation: the primary entity it
    /// touches (the created vertex, else the first edge's source — the
    /// acting person/forum). Ops sharing a key land on one stream
    /// partition and thus keep their relative order end to end; ops on
    /// different keys may be applied concurrently, guarded only by the
    /// dependency watermark.
    pub fn partition_key(&self) -> u64 {
        if let Some(v) = &self.new_vertex {
            return v.vid().raw();
        }
        match self.new_edges.first() {
            Some(e) => e.src.raw(),
            None => self.ts_ms as u64,
        }
    }
}

/// Full generator output: snapshot + update stream.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    pub snapshot: Dataset,
    /// Sorted by `ts_ms`.
    pub updates: Vec<UpdateOp>,
    /// The snapshot/stream cut point.
    pub cut_ms: i64,
}

impl GeneratedData {
    /// Total vertices across snapshot and stream.
    pub fn total_vertices(&self) -> usize {
        self.snapshot.vertices.len()
            + self.updates.iter().filter(|u| u.new_vertex.is_some()).count()
    }

    /// Total edges across snapshot and stream.
    pub fn total_edges(&self) -> usize {
        self.snapshot.edges.len()
            + self.updates.iter().map(|u| u.new_edges.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_rec_vid_and_prop() {
        let v = VertexRec {
            label: VertexLabel::Person,
            id: 9,
            props: vec![(PropKey::FirstName, Value::str("Ada"))],
            creation_ms: 0,
        };
        assert_eq!(v.vid(), Vid::new(VertexLabel::Person, 9));
        assert_eq!(v.prop(PropKey::FirstName), Some(&Value::str("Ada")));
        assert_eq!(v.prop(PropKey::LastName), None);
    }

    #[test]
    fn update_kind_names() {
        assert_eq!(UpdateKind::AddPerson.ldbc_name(), "IU1");
        assert_eq!(UpdateKind::AddFriendship.ldbc_name(), "IU8");
    }

    #[test]
    fn partition_key_prefers_created_vertex_then_edge_source() {
        let edge = EdgeRec {
            label: EdgeLabel::Knows,
            src: Vid::new(VertexLabel::Person, 1),
            dst: Vid::new(VertexLabel::Person, 2),
            props: vec![],
            creation_ms: 5,
        };
        let mut op = UpdateOp {
            kind: UpdateKind::AddFriendship,
            ts_ms: 5,
            dependency_ms: 0,
            new_vertex: None,
            new_edges: vec![edge],
        };
        assert_eq!(op.partition_key(), Vid::new(VertexLabel::Person, 1).raw());
        op.new_vertex = Some(VertexRec {
            label: VertexLabel::Person,
            id: 7,
            props: vec![],
            creation_ms: 5,
        });
        assert_eq!(op.partition_key(), Vid::new(VertexLabel::Person, 7).raw());
    }

    #[test]
    fn update_op_roundtrips_through_binary_codec() {
        let op = UpdateOp {
            kind: UpdateKind::AddFriendship,
            ts_ms: 100,
            dependency_ms: 50,
            new_vertex: None,
            new_edges: vec![EdgeRec {
                label: EdgeLabel::Knows,
                src: Vid::new(VertexLabel::Person, 1),
                dst: Vid::new(VertexLabel::Person, 2),
                props: vec![(PropKey::CreationDate, Value::Date(100))],
                creation_ms: 100,
            }],
        };
        let bytes = op.encode_binary();
        let back = UpdateOp::decode_binary(&bytes).unwrap();
        assert_eq!(back, op);
    }
}
