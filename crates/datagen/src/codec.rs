//! Compact binary codec for the update stream.
//!
//! The driver's producer used to serialize every [`UpdateOp`] to JSON
//! before appending it to the message log, and the writer thread paid
//! the matching parse cost per op — pure reproduction overhead that the
//! paper's substrate (Kafka + hand-rolled consumers) does not charge.
//! This module replaces that with a hand-rolled, length-prefixed,
//! little-endian binary format. Layout (all integers little-endian):
//!
//! ```text
//! UpdateOp  := kind:u8 ts_ms:i64 dependency_ms:i64
//!              has_vertex:u8 [VertexRec] edge_count:u32 EdgeRec*
//! VertexRec := vid:u64 creation_ms:i64 Props
//! EdgeRec   := label:u8 src:u64 dst:u64 creation_ms:i64 Props
//! Props     := count:u16 (key:u8 Value)*
//! Value     := tag:u8 payload   (strings/lists length-prefixed)
//! ```

use crate::model::{EdgeRec, UpdateKind, UpdateOp, VertexRec};
use snb_core::{EdgeLabel, PropKey, Result, SnbError, Value, Vid};

const KINDS: [UpdateKind; 8] = [
    UpdateKind::AddPerson,
    UpdateKind::AddLikePost,
    UpdateKind::AddLikeComment,
    UpdateKind::AddForum,
    UpdateKind::AddForumMembership,
    UpdateKind::AddPost,
    UpdateKind::AddComment,
    UpdateKind::AddFriendship,
];

fn kind_tag(kind: UpdateKind) -> u8 {
    KINDS.iter().position(|k| *k == kind).unwrap() as u8
}

struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() < n {
            return Err(SnbError::Codec("truncated update op".into()));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    fn vid(&mut self) -> Result<Vid> {
        Vid::from_raw(self.u64()?)
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(5);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Vertex(v) => {
            out.push(6);
            out.extend_from_slice(&v.raw().to_le_bytes());
        }
        Value::List(items) => {
            out.push(7);
            out.extend_from_slice(&(items.len() as u16).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Float(f64::from_bits(r.u64()?)),
        4 => {
            let len = r.u32()? as usize;
            let raw = r.take(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| SnbError::Codec("invalid utf-8 in update op".into()))?;
            Value::string(s.to_string())
        }
        5 => Value::Date(r.i64()?),
        6 => Value::Vertex(r.vid()?),
        7 => {
            let n = r.u16()? as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Value::List(items)
        }
        other => return Err(SnbError::Codec(format!("unknown value tag {other}"))),
    })
}

fn encode_props(props: &[(PropKey, Value)], out: &mut Vec<u8>) {
    out.extend_from_slice(&(props.len() as u16).to_le_bytes());
    for (k, v) in props {
        out.push(*k as u8);
        encode_value(v, out);
    }
}

fn decode_props(r: &mut Reader<'_>) -> Result<Vec<(PropKey, Value)>> {
    let n = r.u16()? as usize;
    let mut props = Vec::with_capacity(n);
    for _ in 0..n {
        let key = PropKey::from_tag(r.u8()?)?;
        props.push((key, decode_value(r)?));
    }
    Ok(props)
}

fn encode_vertex(v: &VertexRec, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.vid().raw().to_le_bytes());
    out.extend_from_slice(&v.creation_ms.to_le_bytes());
    encode_props(&v.props, out);
}

fn decode_vertex(r: &mut Reader<'_>) -> Result<VertexRec> {
    let vid = r.vid()?;
    let creation_ms = r.i64()?;
    let props = decode_props(r)?;
    Ok(VertexRec { label: vid.label(), id: vid.local(), props, creation_ms })
}

fn encode_edge(e: &EdgeRec, out: &mut Vec<u8>) {
    out.push(e.label as u8);
    out.extend_from_slice(&e.src.raw().to_le_bytes());
    out.extend_from_slice(&e.dst.raw().to_le_bytes());
    out.extend_from_slice(&e.creation_ms.to_le_bytes());
    encode_props(&e.props, out);
}

fn decode_edge(r: &mut Reader<'_>) -> Result<EdgeRec> {
    let label = EdgeLabel::from_tag(r.u8()?)?;
    let src = r.vid()?;
    let dst = r.vid()?;
    let creation_ms = r.i64()?;
    let props = decode_props(r)?;
    Ok(EdgeRec { label, src, dst, props, creation_ms })
}

impl UpdateOp {
    /// Encode to the compact binary wire format.
    pub fn encode_binary(&self) -> Vec<u8> {
        // 26 fixed header bytes plus a rough per-edge estimate.
        let mut out = Vec::with_capacity(32 + self.new_edges.len() * 48);
        out.push(kind_tag(self.kind));
        out.extend_from_slice(&self.ts_ms.to_le_bytes());
        out.extend_from_slice(&self.dependency_ms.to_le_bytes());
        match &self.new_vertex {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                encode_vertex(v, &mut out);
            }
        }
        out.extend_from_slice(&(self.new_edges.len() as u32).to_le_bytes());
        for e in &self.new_edges {
            encode_edge(e, &mut out);
        }
        out
    }

    /// Decode from the compact binary wire format.
    pub fn decode_binary(data: &[u8]) -> Result<UpdateOp> {
        let mut r = Reader { data };
        let kind = *KINDS
            .get(r.u8()? as usize)
            .ok_or_else(|| SnbError::Codec("unknown update kind tag".into()))?;
        let ts_ms = r.i64()?;
        let dependency_ms = r.i64()?;
        let new_vertex = match r.u8()? {
            0 => None,
            1 => Some(decode_vertex(&mut r)?),
            other => return Err(SnbError::Codec(format!("bad vertex marker {other}"))),
        };
        let n_edges = r.u32()? as usize;
        let mut new_edges = Vec::with_capacity(n_edges.min(1024));
        for _ in 0..n_edges {
            new_edges.push(decode_edge(&mut r)?);
        }
        if !r.data.is_empty() {
            return Err(SnbError::Codec(format!(
                "{} trailing bytes after update op",
                r.data.len()
            )));
        }
        Ok(UpdateOp { kind, ts_ms, dependency_ms, new_vertex, new_edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::VertexLabel;

    fn sample_op() -> UpdateOp {
        UpdateOp {
            kind: UpdateKind::AddComment,
            ts_ms: 1_234_567,
            dependency_ms: -12,
            new_vertex: Some(VertexRec {
                label: VertexLabel::Comment,
                id: 77,
                props: vec![
                    (PropKey::Content, Value::str("hello")),
                    (PropKey::Length, Value::Int(5)),
                    (PropKey::CreationDate, Value::Date(1_234_567)),
                    (PropKey::Speaks, Value::List(vec![Value::str("en"), Value::Null])),
                ],
                creation_ms: 1_234_567,
            }),
            new_edges: vec![EdgeRec {
                label: EdgeLabel::ReplyOf,
                src: Vid::new(VertexLabel::Comment, 77),
                dst: Vid::new(VertexLabel::Post, 3),
                props: vec![],
                creation_ms: 1_234_567,
            }],
        }
    }

    #[test]
    fn binary_roundtrip() {
        let op = sample_op();
        let bytes = op.encode_binary();
        assert_eq!(UpdateOp::decode_binary(&bytes).unwrap(), op);
    }

    #[test]
    fn binary_is_compact() {
        // The point of the codec: far smaller than the ~400-byte JSON
        // this op used to serialize to.
        let bytes = sample_op().encode_binary();
        assert!(bytes.len() < 150, "encoded {} bytes", bytes.len());
    }

    #[test]
    fn truncation_and_garbage_error() {
        let bytes = sample_op().encode_binary();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(UpdateOp::decode_binary(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(UpdateOp::decode_binary(&trailing).is_err());
        let mut bad_kind = bytes;
        bad_kind[0] = 200;
        assert!(UpdateOp::decode_binary(&bad_kind).is_err());
    }
}
