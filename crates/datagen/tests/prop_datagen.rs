//! Property tests for the generator's core invariants over random
//! configurations: determinism, referential consistency of the cut, and
//! dependency ordering of the update stream.

use proptest::prelude::*;
use snb_datagen::{generate, GeneratorConfig};
use std::collections::HashSet;

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (30usize..90, any::<u64>(), 0.5f64..0.95, 4.0f64..20.0).prop_map(
        |(persons, seed, snapshot_fraction, mean_degree)| GeneratorConfig {
            persons,
            seed,
            snapshot_fraction,
            mean_degree,
            ..GeneratorConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn generator_invariants_hold(cfg in config_strategy()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        // Determinism.
        prop_assert_eq!(&a.snapshot.vertices, &b.snapshot.vertices);
        prop_assert_eq!(&a.snapshot.edges, &b.snapshot.edges);
        prop_assert_eq!(&a.updates, &b.updates);

        // Unique vertex ids; snapshot edges reference snapshot vertices.
        let ids: HashSet<_> = a.snapshot.vertices.iter().map(|v| v.vid()).collect();
        prop_assert_eq!(ids.len(), a.snapshot.vertices.len());
        for e in &a.snapshot.edges {
            prop_assert!(ids.contains(&e.src));
            prop_assert!(ids.contains(&e.dst));
        }

        // Update stream: time-ordered, after the cut, dependencies met.
        let mut all_ids = ids;
        let mut prev = i64::MIN;
        for u in &a.updates {
            prop_assert!(u.ts_ms > a.cut_ms);
            prop_assert!(u.ts_ms >= prev);
            prop_assert!(u.dependency_ms <= u.ts_ms);
            prev = u.ts_ms;
            // Replaying in order never references a missing vertex.
            if let Some(v) = &u.new_vertex {
                prop_assert!(all_ids.insert(v.vid()), "duplicate vertex in stream");
            }
            for e in &u.new_edges {
                prop_assert!(all_ids.contains(&e.src), "dangling src in {:?}", u.kind);
                prop_assert!(all_ids.contains(&e.dst), "dangling dst in {:?}", u.kind);
            }
        }
    }
}
