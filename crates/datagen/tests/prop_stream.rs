//! Property tests for the streaming generator: for any seed and shape,
//! the emitted stream must be bit-identical across chunk sizes (the
//! chunk boundary is purely a delivery artifact) and must satisfy the
//! same ordering/consistency contract as the batch generator's output.

use proptest::prelude::*;
use snb_datagen::{generate_stream, GeneratorConfig, StreamItem};
use std::collections::HashSet;

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (30usize..90, any::<u64>(), 0.5f64..0.95, 4.0f64..20.0, 0.1f64..1.0).prop_map(
        |(persons, seed, snapshot_fraction, mean_degree, forum_probability)| GeneratorConfig {
            persons,
            seed,
            snapshot_fraction,
            mean_degree,
            forum_probability,
            ..GeneratorConfig::default()
        },
    )
}

fn collect(cfg: &GeneratorConfig, chunk: usize) -> Vec<StreamItem> {
    let mut all = Vec::new();
    generate_stream(cfg, chunk, |c| all.extend(c));
    all
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn stream_is_chunk_size_invariant_and_consistent(cfg in config_strategy()) {
        // Same seed ⇒ bit-identical stream at chunk sizes 1, 64, 4096.
        let one = collect(&cfg, 1);
        let mid = collect(&cfg, 64);
        let big = collect(&cfg, 4096);
        prop_assert_eq!(&one, &mid);
        prop_assert_eq!(&mid, &big);

        // Replay order never references an unseen vertex; updates are
        // time-ordered past the cut with dependencies in the past.
        let cut = cfg.cut_ms();
        let mut seen = HashSet::new();
        let mut prev = i64::MIN;
        for item in &one {
            match item {
                StreamItem::Vertex(v) => {
                    prop_assert!(seen.insert(v.vid()));
                    prop_assert!(v.creation_ms <= cut);
                }
                StreamItem::Edge(e) => {
                    prop_assert!(e.creation_ms <= cut);
                    prop_assert!(seen.contains(&e.src));
                    prop_assert!(seen.contains(&e.dst));
                }
                StreamItem::Update(u) => {
                    prop_assert!(u.ts_ms > cut);
                    prop_assert!(u.ts_ms >= prev);
                    prop_assert!(u.dependency_ms <= u.ts_ms);
                    prev = u.ts_ms;
                    if let Some(v) = &u.new_vertex {
                        seen.insert(v.vid());
                    }
                    for e in &u.new_edges {
                        prop_assert!(seen.contains(&e.src));
                        prop_assert!(seen.contains(&e.dst));
                    }
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ(seed in any::<u64>()) {
        let a = collect(&GeneratorConfig { seed, persons: 40, ..GeneratorConfig::default() }, 256);
        let b = collect(
            &GeneratorConfig { seed: seed ^ 0xdead_beef, persons: 40, ..GeneratorConfig::default() },
            256,
        );
        prop_assert_ne!(a, b);
    }
}
