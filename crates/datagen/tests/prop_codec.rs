//! Property test: the binary update-stream codec round-trips every
//! representable [`UpdateOp`], including nested list values, negative
//! timestamps, and ops with and without a new vertex.

use proptest::prelude::*;
use snb_core::{ids::EDGE_LABELS, ids::VERTEX_LABELS, schema::PROP_KEYS, Value, Vid};
use snb_datagen::{EdgeRec, UpdateKind, UpdateOp, VertexRec};

const KINDS: [UpdateKind; 8] = [
    UpdateKind::AddPerson,
    UpdateKind::AddLikePost,
    UpdateKind::AddLikeComment,
    UpdateKind::AddForum,
    UpdateKind::AddForumMembership,
    UpdateKind::AddPost,
    UpdateKind::AddComment,
    UpdateKind::AddFriendship,
];

fn vid_strategy() -> impl Strategy<Value = Vid> {
    (0..VERTEX_LABELS.len(), 0..100_000u64).prop_map(|(l, id)| Vid::new(VERTEX_LABELS[l], id))
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Date),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,12}".prop_map(|s| Value::str(&s)),
        vid_strategy().prop_map(Value::Vertex),
        proptest::collection::vec(any::<i64>().prop_map(Value::Int), 0..4).prop_map(Value::List),
    ]
}

fn props_strategy() -> impl Strategy<Value = Vec<(snb_core::PropKey, Value)>> {
    proptest::collection::vec(
        (0..PROP_KEYS.len(), value_strategy()).prop_map(|(k, v)| (PROP_KEYS[k], v)),
        0..6,
    )
}

fn vertex_strategy() -> impl Strategy<Value = VertexRec> {
    (0..VERTEX_LABELS.len(), 0..100_000u64, props_strategy(), any::<i64>()).prop_map(
        |(l, id, props, creation_ms)| VertexRec {
            label: VERTEX_LABELS[l],
            id,
            props,
            creation_ms,
        },
    )
}

fn edge_strategy() -> impl Strategy<Value = EdgeRec> {
    (
        0..EDGE_LABELS.len(),
        vid_strategy(),
        vid_strategy(),
        props_strategy(),
        any::<i64>(),
    )
        .prop_map(|(l, src, dst, props, creation_ms)| EdgeRec {
            label: EDGE_LABELS[l],
            src,
            dst,
            props,
            creation_ms,
        })
}

fn op_strategy() -> impl Strategy<Value = UpdateOp> {
    (
        0..KINDS.len(),
        any::<i64>(),
        any::<i64>(),
        prop_oneof![Just(false), Just(true)],
        vertex_strategy(),
        proptest::collection::vec(edge_strategy(), 0..5),
    )
        .prop_map(|(k, ts_ms, dependency_ms, has_vertex, vertex, new_edges)| UpdateOp {
            kind: KINDS[k],
            ts_ms,
            dependency_ms,
            new_vertex: has_vertex.then_some(vertex),
            new_edges,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn binary_codec_roundtrips(op in op_strategy()) {
        let bytes = op.encode_binary();
        let back = UpdateOp::decode_binary(&bytes).unwrap();
        prop_assert_eq!(&back, &op);
        // Re-encoding the decoded op must be byte-identical (canonical form).
        prop_assert_eq!(back.encode_binary(), bytes);
    }

    #[test]
    fn truncated_encodings_never_decode(op in op_strategy(), cut_fraction in 0.0f64..1.0) {
        let bytes = op.encode_binary();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            prop_assert!(UpdateOp::decode_binary(&bytes[..cut]).is_err());
        }
    }
}
