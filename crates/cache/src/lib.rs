//! Epoch-keyed result caching for skewed social reads.
//!
//! The SNB interactive workload is read-dominated and heavily skewed
//! toward hub vertices (the LDBC spec prescribes power-law degree *and*
//! access distributions), so the same point lookups, one-hop rings, and
//! hot frontiers are computed over and over. [`ResultCache`] memoizes
//! them with two properties that make it safe to drop in front of a
//! live, concurrently-written store:
//!
//! * **Correct by construction.** Every key embeds the store's write
//!   sequence (or, for the sharded router, the whole per-shard epoch
//!   vector) at the time the result was computed. A write advances the
//!   epoch, so every cached entry for the old epoch simply *stops
//!   matching* — there is no invalidation traffic, no broadcast, no
//!   version check on the store. Stale entries are detected on the next
//!   probe of the same key material (counted in
//!   [`CacheStats::stale_evicted`]) and reclaimed, or age out through
//!   the LRU like any cold entry.
//!
//! * **Frequency-admitted.** A TinyLFU-style counting sketch (a packed
//!   4-bit count-min sketch with periodic halving) estimates how often
//!   each key has been asked for. When the cache is full, a new entry is
//!   admitted only if it is estimated *at least as hot* as the eviction
//!   victim, so a scan of one-off reads cannot wash out the hub entries
//!   the skewed workload will ask for again. Admission feeds a segmented
//!   LRU: new entries land in a probationary segment and are promoted to
//!   the protected segment on re-reference, the classic SLRU shape
//!   TinyLFU was designed around.
//!
//! The cache is sharded (segment-per-lock) so readers on different keys
//! do not contend, and every outcome is counted: hits, misses, stale
//! evictions, admission rejections, and the bypasses the *integration*
//! layers record when they decline to consult the cache at all (a
//! mutation, an unbounded traversal, a backend with no epoch). The
//! `stale_served` counter is a correctness tripwire: the hit path
//! re-verifies the epoch match and harnesses that re-validate cached
//! results against fresh execution report mismatches here, so "exactly
//! zero" is asserted by CI, not assumed.

use parking_lot::Mutex;
use snb_core::FastMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// FNV-1a over the key material — the same cheap hash the shard
/// placement map uses; keys are short (query text + params or a frontier
/// vector) and the full material is compared on every probe, so the hash
/// only has to spread, not to be collision-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Monotonically-updated counters, readable without any lock.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stale_evicted: AtomicU64,
    stale_served: AtomicU64,
    bypass: AtomicU64,
    inserts: AtomicU64,
    rejected: AtomicU64,
    evicted: AtomicU64,
}

/// A point-in-time snapshot of a cache's counters.
///
/// Accounting invariants (asserted by `cache_smoke` in CI):
/// * `hits + misses` equals the number of `get` calls;
/// * `stale_evicted <= misses` (a stale probe is a miss that also
///   reclaimed the dead entry);
/// * `stale_served == 0` always — a hit whose epoch does not match the
///   probe, or a cached result that disagrees with fresh execution,
///   would land here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that found nothing current (includes `stale_evicted`).
    pub misses: u64,
    /// Misses that found the key material at an older epoch and
    /// reclaimed the entry on the spot.
    pub stale_evicted: u64,
    /// Correctness violations observed (must stay 0; see type docs).
    pub stale_served: u64,
    /// Times an integration layer declined to consult the cache.
    pub bypass: u64,
    /// Entries stored (including in-place refreshes of a stale entry).
    pub inserts: u64,
    /// Inserts refused by TinyLFU admission (candidate colder than the
    /// eviction victim).
    pub rejected: u64,
    /// Entries evicted to make room (stale reclaims not included).
    pub evicted: u64,
}

impl CacheStats {
    /// Total `get` probes.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction over all probes (0.0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Packed 4-bit count-min sketch with periodic halving — the TinyLFU
/// frequency estimator. One flat table, four probes per key derived by
/// remixing the key hash; the estimate is the minimum of the four.
/// After `sample` increments every counter is halved, so frequencies
/// decay and yesterday's hot key cannot squat on the cache forever.
struct FreqSketch {
    /// 16 packed 4-bit counters per word.
    table: Vec<u64>,
    /// Counter-index mask (counter count is a power of two).
    mask: usize,
    additions: u32,
    sample: u32,
}

impl FreqSketch {
    fn new(capacity: usize) -> Self {
        // ~8 counters per cached entry keeps estimate error low at 4
        // probes; 16 counters per u64 word.
        let counters = (capacity.max(16) * 8).next_power_of_two();
        FreqSketch {
            table: vec![0u64; counters / 16],
            mask: counters - 1,
            additions: 0,
            // The canonical TinyLFU sample size: 10x capacity.
            sample: (capacity.max(16) as u32).saturating_mul(10),
        }
    }

    /// The four probe indexes for a key hash: remix with four odd
    /// constants so one 64-bit hash yields four independent positions.
    fn indexes(&self, hash: u64) -> [usize; 4] {
        const SEEDS: [u64; 4] = [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
            0xD6E8_FEB8_6659_FD93,
        ];
        let mut out = [0usize; 4];
        for (i, seed) in SEEDS.iter().enumerate() {
            let mut h = hash.wrapping_mul(*seed);
            h ^= h >> 32;
            out[i] = (h as usize) & self.mask;
        }
        out
    }

    fn counter(&self, ix: usize) -> u64 {
        (self.table[ix / 16] >> ((ix % 16) * 4)) & 0xF
    }

    fn bump(&mut self, ix: usize) {
        let shift = (ix % 16) * 4;
        let cur = (self.table[ix / 16] >> shift) & 0xF;
        if cur < 15 {
            self.table[ix / 16] += 1u64 << shift;
        }
    }

    /// Record one access.
    fn increment(&mut self, hash: u64) {
        for ix in self.indexes(hash) {
            self.bump(ix);
        }
        self.additions += 1;
        if self.additions >= self.sample {
            self.halve();
        }
    }

    /// Estimated access frequency (min over the four probes).
    fn estimate(&self, hash: u64) -> u64 {
        self.indexes(hash).into_iter().map(|ix| self.counter(ix)).min().unwrap_or(0)
    }

    /// Halve every 4-bit counter in place (the aging step).
    fn halve(&mut self) {
        for word in &mut self.table {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.additions = 0;
    }
}

const NIL: u32 = u32::MAX;

/// Which LRU list a node is on.
#[derive(Clone, Copy, PartialEq)]
enum Seg {
    Probation,
    Protected,
}

struct Node<V> {
    key: Box<[u8]>,
    epochs: Box<[u64]>,
    hash: u64,
    value: V,
    prev: u32,
    next: u32,
    seg: Seg,
}

/// Intrusive doubly-linked LRU list over the slab (head = MRU).
#[derive(Clone, Copy)]
struct LruList {
    head: u32,
    tail: u32,
    len: usize,
}

impl LruList {
    fn new() -> Self {
        LruList { head: NIL, tail: NIL, len: 0 }
    }
}

/// One lock's worth of cache: sketch + map + slab + two LRU lists.
struct Segment<V> {
    map: FastMap<u64, u32>,
    nodes: Vec<Option<Node<V>>>,
    free: Vec<u32>,
    probation: LruList,
    protected: LruList,
    cap: usize,
    protected_cap: usize,
    sketch: FreqSketch,
}

impl<V: Clone> Segment<V> {
    fn new(cap: usize) -> Self {
        Segment {
            map: FastMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            probation: LruList::new(),
            protected: LruList::new(),
            cap,
            // The classic SLRU split: 20% probation, 80% protected.
            protected_cap: (cap * 4 / 5).max(1).min(cap.saturating_sub(1).max(1)),
            sketch: FreqSketch::new(cap),
        }
    }

    fn len(&self) -> usize {
        self.probation.len + self.protected.len
    }

    fn list(&mut self, seg: Seg) -> &mut LruList {
        match seg {
            Seg::Probation => &mut self.probation,
            Seg::Protected => &mut self.protected,
        }
    }

    fn detach(&mut self, ix: u32) {
        let (prev, next, seg) = {
            let n = self.nodes[ix as usize].as_ref().expect("detach live node");
            (n.prev, n.next, n.seg)
        };
        if prev != NIL {
            self.nodes[prev as usize].as_mut().unwrap().next = next;
        }
        if next != NIL {
            self.nodes[next as usize].as_mut().unwrap().prev = prev;
        }
        let list = self.list(seg);
        if list.head == ix {
            list.head = next;
        }
        if list.tail == ix {
            list.tail = prev;
        }
        list.len -= 1;
    }

    fn push_front(&mut self, ix: u32, seg: Seg) {
        let old_head = self.list(seg).head;
        {
            let n = self.nodes[ix as usize].as_mut().expect("push live node");
            n.seg = seg;
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.nodes[old_head as usize].as_mut().unwrap().prev = ix;
        }
        let list = self.list(seg);
        list.head = ix;
        if list.tail == NIL {
            list.tail = ix;
        }
        list.len += 1;
    }

    /// Remove a node entirely (map + list + slab).
    fn remove(&mut self, ix: u32) -> Node<V> {
        self.detach(ix);
        let node = self.nodes[ix as usize].take().expect("remove live node");
        self.map.remove(&node.hash);
        self.free.push(ix);
        node
    }

    fn alloc(&mut self, node: Node<V>) -> u32 {
        if let Some(ix) = self.free.pop() {
            self.nodes[ix as usize] = Some(node);
            ix
        } else {
            self.nodes.push(Some(node));
            (self.nodes.len() - 1) as u32
        }
    }

    /// A hit promotes: probation → protected, protected → its own MRU.
    /// Protected overflow demotes that list's LRU back to probation
    /// (never out of the cache — it must re-earn eviction in probation).
    fn promote(&mut self, ix: u32) {
        self.detach(ix);
        self.push_front(ix, Seg::Protected);
        if self.protected.len > self.protected_cap {
            let demote = self.protected.tail;
            if demote != NIL && demote != ix {
                self.detach(demote);
                self.push_front(demote, Seg::Probation);
            }
        }
    }

    fn get(&mut self, key: &[u8], epochs: &[u64], hash: u64, c: &Counters) -> Option<V> {
        self.sketch.increment(hash);
        let ix = match self.map.get(&hash) {
            Some(&ix) => ix,
            None => {
                c.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let (key_match, epoch_match) = {
            let n = self.nodes[ix as usize].as_ref().expect("mapped node is live");
            (&*n.key == key, &*n.epochs == epochs)
        };
        if !key_match {
            // 64-bit collision with different key material: treat as
            // absent (the insert path will replace the squatter).
            c.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        if !epoch_match {
            // The entry's epoch no longer matches the live epoch: the
            // write that advanced it already invalidated this entry by
            // construction. Reclaim it now rather than waiting for LRU.
            self.remove(ix);
            c.stale_evicted.fetch_add(1, Ordering::Relaxed);
            c.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Correctness tripwire: the hit path serves only exact epoch
        // matches; verify once more so any future regression is counted
        // rather than silently served.
        let n = self.nodes[ix as usize].as_ref().expect("mapped node is live");
        if &*n.epochs != epochs {
            c.stale_served.fetch_add(1, Ordering::Relaxed);
        }
        let value = n.value.clone();
        self.promote(ix);
        c.hits.fetch_add(1, Ordering::Relaxed);
        Some(value)
    }

    fn insert(&mut self, key: &[u8], epochs: &[u64], hash: u64, value: V, c: &Counters) -> bool {
        if self.cap == 0 {
            c.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if let Some(&ix) = self.map.get(&hash) {
            let n = self.nodes[ix as usize].as_mut().expect("mapped node is live");
            // Same key at a new epoch (refresh) or a hash collision:
            // either way the slot holds exactly one entry per hash, so
            // replace in place and move to the MRU of its list.
            n.key = key.into();
            n.epochs = epochs.into();
            n.value = value;
            let seg = n.seg;
            self.detach(ix);
            self.push_front(ix, seg);
            c.inserts.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if self.len() >= self.cap {
            // Full: TinyLFU admission against the probationary victim
            // (fall back to the protected tail if probation is empty).
            let victim = if self.probation.tail != NIL {
                self.probation.tail
            } else {
                self.protected.tail
            };
            let victim_hash =
                self.nodes[victim as usize].as_ref().expect("victim is live").hash;
            if self.sketch.estimate(hash) < self.sketch.estimate(victim_hash) {
                c.rejected.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            self.remove(victim);
            c.evicted.fetch_add(1, Ordering::Relaxed);
        }
        let node = Node {
            key: key.into(),
            epochs: epochs.into(),
            hash,
            value,
            prev: NIL,
            next: NIL,
            seg: Seg::Probation,
        };
        let ix = self.alloc(node);
        self.map.insert(hash, ix);
        self.push_front(ix, Seg::Probation);
        c.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// The sharded, epoch-keyed, frequency-admitted result cache.
///
/// `V` is whatever a layer wants to memoize: encoded response bytes for
/// the reactor's inline path, normalized result rows for the Cypher/SQL
/// adapters, a merged neighbour vector for the router's hot-frontier
/// cache. Values are cloned out on hit, so layers keep `V` cheap to
/// clone (or wrap it in `Arc`).
pub struct ResultCache<V> {
    segments: Box<[Mutex<Segment<V>>]>,
    counters: Counters,
    name: &'static str,
}

/// Default lock shards; a power of two so segment selection is a mask.
const DEFAULT_SEGMENTS: usize = 8;

impl<V: Clone> ResultCache<V> {
    /// A cache holding up to `capacity` entries across
    /// [`DEFAULT_SEGMENTS`] lock shards. `capacity == 0` disables
    /// storage entirely (every probe misses, every insert is rejected)
    /// while keeping counters live — the bypass-comparison harnesses
    /// use this.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        Self::with_segments(name, capacity, DEFAULT_SEGMENTS)
    }

    /// As [`ResultCache::new`] with an explicit lock-shard count
    /// (rounded up to a power of two).
    pub fn with_segments(name: &'static str, capacity: usize, segments: usize) -> Self {
        let n = segments.max(1).next_power_of_two();
        let per = capacity / n + usize::from(capacity % n != 0);
        let segments: Vec<Mutex<Segment<V>>> =
            (0..n).map(|_| Mutex::new(Segment::new(if capacity == 0 { 0 } else { per.max(2) }))).collect();
        ResultCache { segments: segments.into(), counters: Counters::default(), name }
    }

    /// The layer name this cache serves (for stats reporting).
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn segment(&self, hash: u64) -> &Mutex<Segment<V>> {
        // Select on high bits remixed away from the bits the in-segment
        // map uses, so segment choice and bucket choice stay independent.
        let ix = (hash.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize
            & (self.segments.len() - 1);
        &self.segments[ix]
    }

    /// Probe for `key` at exactly the epoch vector `epochs`.
    pub fn get(&self, key: &[u8], epochs: &[u64]) -> Option<V> {
        let hash = fnv1a(key);
        self.segment(hash).lock().get(key, epochs, hash, &self.counters)
    }

    /// Single-epoch convenience for layers keyed on one `write_seq`.
    pub fn get1(&self, key: &[u8], epoch: u64) -> Option<V> {
        self.get(key, &[epoch])
    }

    /// Offer `(key, epochs) → value`; returns `false` when TinyLFU
    /// admission turned the candidate away.
    pub fn insert(&self, key: &[u8], epochs: &[u64], value: V) -> bool {
        let hash = fnv1a(key);
        self.segment(hash).lock().insert(key, epochs, hash, value, &self.counters)
    }

    /// Single-epoch convenience for [`ResultCache::insert`].
    pub fn insert1(&self, key: &[u8], epoch: u64, value: V) -> bool {
        self.insert(key, &[epoch], value)
    }

    /// Record that an integration layer declined to consult the cache
    /// (mutation, unbounded traversal, epoch unavailable, key too big).
    pub fn note_bypass(&self) {
        self.counters.bypass.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an externally-observed correctness violation: a cached
    /// result that disagreed with fresh execution. The verification
    /// harnesses (`cache_smoke`, the equivalence proptest) call this so
    /// CI can assert the counter stays at exactly zero.
    pub fn note_stale_serve(&self) {
        self.counters.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stale_evicted: self.counters.stale_evicted.load(Ordering::Relaxed),
            stale_served: self.counters.stale_served.load(Ordering::Relaxed),
            bypass: self.counters.bypass.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            evicted: self.counters.evicted.load(Ordering::Relaxed),
        }
    }

    /// Live entries across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters are kept — they are cumulative).
    pub fn clear(&self) {
        for seg in self.segments.iter() {
            let mut s = seg.lock();
            let cap = s.cap;
            *s = Segment::new(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> ResultCache<u64> {
        // One segment so capacity/admission behaviour is deterministic.
        ResultCache::with_segments("test", cap, 1)
    }

    #[test]
    fn hit_after_insert_at_same_epoch() {
        let c = cache(16);
        assert_eq!(c.get1(b"k", 3), None);
        assert!(c.insert1(b"k", 3, 42));
        assert_eq!(c.get1(b"k", 3), Some(42));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn epoch_advance_stops_matching_and_reclaims() {
        let c = cache(16);
        c.insert1(b"k", 3, 42);
        assert_eq!(c.get1(b"k", 3), Some(42));
        // A write advanced the epoch: the old entry must not serve.
        assert_eq!(c.get1(b"k", 4), None);
        let s = c.stats();
        assert_eq!(s.stale_evicted, 1, "stale entry reclaimed on probe");
        assert_eq!(s.stale_served, 0);
        assert_eq!(c.len(), 0, "reclaim removes the entry");
        // Refreshing at the new epoch works.
        c.insert1(b"k", 4, 43);
        assert_eq!(c.get1(b"k", 4), Some(43));
    }

    #[test]
    fn epoch_vector_must_match_exactly() {
        let c = cache(16);
        c.insert(b"k", &[1, 2, 3], 7);
        assert_eq!(c.get(b"k", &[1, 2, 3]), Some(7));
        assert_eq!(c.get(b"k", &[1, 2, 4]), None, "any shard's write invalidates");
        assert_eq!(c.stats().stale_evicted, 1);
    }

    #[test]
    fn admission_protects_hot_entries_from_cold_scans() {
        let c = cache(8);
        // Make a handful of keys genuinely hot.
        for round in 0..50u64 {
            for k in 0..8u64 {
                let key = k.to_le_bytes();
                if c.get1(&key, 0).is_none() {
                    c.insert1(&key, 0, k + round);
                }
            }
        }
        let hot_hits = c.stats().hits;
        assert!(hot_hits > 0);
        // A long one-off scan must be turned away, not wash the cache.
        let mut admitted = 0;
        for k in 1000..1400u64 {
            if c.insert1(&k.to_le_bytes(), 0, k) {
                admitted += 1;
            }
        }
        assert!(
            admitted < 20,
            "cold scan should be mostly rejected, admitted {admitted}"
        );
        // The hot keys still serve.
        let before = c.stats().hits;
        for k in 0..8u64 {
            c.get1(&k.to_le_bytes(), 0);
        }
        assert!(c.stats().hits >= before + 6, "hot set survived the scan");
        assert!(c.stats().rejected > 0);
    }

    #[test]
    fn reference_promotes_to_protected_and_demotes_in_order() {
        let c = cache(10);
        for k in 0..10u64 {
            c.insert1(&k.to_le_bytes(), 0, k);
        }
        // Touch 0..8 so they are promoted to protected (cap 8 = 80%).
        for k in 0..9u64 {
            assert_eq!(c.get1(&k.to_le_bytes(), 0), Some(k));
        }
        // Promoting 9 entries through a protected cap of 8 demotes the
        // coldest back to probation; nothing is lost.
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn zero_capacity_disables_storage_but_counts() {
        let c = cache(0);
        assert!(!c.insert1(b"k", 0, 1));
        assert_eq!(c.get1(b"k", 0), None);
        c.note_bypass();
        let s = c.stats();
        assert_eq!((s.rejected, s.misses, s.bypass), (1, 1, 1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn counter_accounting_is_clean() {
        let c = cache(8);
        let mut probes = 0u64;
        for round in 0..200u64 {
            let k = (round % 13).to_le_bytes();
            let epoch = round / 40; // epochs churn every 40 probes
            probes += 1;
            if c.get1(&k, epoch).is_none() {
                c.insert1(&k, epoch, round);
            }
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, probes, "every probe is a hit or a miss");
        assert!(s.stale_evicted <= s.misses);
        assert_eq!(s.stale_served, 0);
        assert!(s.inserts >= s.evicted);
    }

    #[test]
    fn sketch_estimates_track_frequency_and_decay() {
        let mut sk = FreqSketch::new(64);
        for _ in 0..10 {
            sk.increment(fnv1a(b"hot"));
        }
        sk.increment(fnv1a(b"cold"));
        assert!(sk.estimate(fnv1a(b"hot")) > sk.estimate(fnv1a(b"cold")));
        let before = sk.estimate(fnv1a(b"hot"));
        sk.halve();
        assert!(sk.estimate(fnv1a(b"hot")) <= before / 2 + 1);
    }

    #[test]
    fn concurrent_probes_and_inserts_are_safe() {
        let c = std::sync::Arc::new(ResultCache::<u64>::new("conc", 256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = ((i * 7 + t) % 300).to_le_bytes();
                    let epoch = i / 500;
                    if c.get1(&k, epoch).is_none() {
                        c.insert1(&k, epoch, i);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8000);
        assert_eq!(s.stale_served, 0);
    }

    #[test]
    fn collision_slot_replacement_never_serves_wrong_value() {
        // Two different keys engineered into the same segment simply by
        // exhaustive probing is impractical; instead verify the map
        // holds one entry per hash and a differing key is a miss.
        let c = cache(16);
        c.insert1(b"alpha", 1, 10);
        assert_eq!(c.get1(b"alpha", 1), Some(10));
        // Same hash can only come from the same bytes under FNV here,
        // so a different key must miss.
        assert_eq!(c.get1(b"beta", 1), None);
    }
}
