//! Property tests for `Value` (total order, hash/eq agreement) and
//! `PropertyMap` (map semantics against a BTreeMap model).

use proptest::prelude::*;
use snb_core::schema::PROP_KEYS;
use snb_core::{PropKey, PropertyMap, Value};
use std::collections::BTreeMap;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Date),
        // Finite floats only: NaN breaks antisymmetry *of the inputs*,
        // handled by a dedicated test below.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(|s| Value::str(&s)),
        proptest::collection::vec(any::<i64>().prop_map(Value::Int), 0..4).prop_map(Value::List),
    ]
}

proptest! {
    #[test]
    fn ordering_is_total_and_antisymmetric(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => {
                prop_assert_eq!(b.cmp(&a), Equal);
                prop_assert_eq!(&a, &b);
            }
        }
    }

    #[test]
    fn ordering_is_transitive(mut xs in proptest::collection::vec(value_strategy(), 3..10)) {
        xs.sort();
        for w in xs.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn eq_implies_same_hash(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn property_map_behaves_like_btreemap(
        ops in proptest::collection::vec(
            (0..PROP_KEYS.len(), value_strategy(), any::<bool>()),
            0..40
        )
    ) {
        let mut map = PropertyMap::new();
        let mut model: BTreeMap<PropKey, Value> = BTreeMap::new();
        for (kix, v, remove) in ops {
            let k = PROP_KEYS[kix];
            if remove {
                prop_assert_eq!(map.remove(k), model.remove(&k));
            } else {
                prop_assert_eq!(map.set(k, v.clone()), model.insert(k, v));
            }
            prop_assert_eq!(map.len(), model.len());
        }
        let got: Vec<_> = map.iter().map(|(k, v)| (k, v.clone())).collect();
        let want: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(got, want, "iteration order and contents match");
    }
}

#[test]
fn nan_total_order_is_consistent() {
    let mut xs = vec![
        Value::Float(f64::NAN),
        Value::Float(1.0),
        Value::Float(f64::NAN),
        Value::Float(-1.0),
    ];
    xs.sort();
    assert!(matches!(xs[2], Value::Float(x) if x.is_nan()));
    assert!(matches!(xs[3], Value::Float(x) if x.is_nan()));
    assert_eq!(xs[2].cmp(&xs[3]), std::cmp::Ordering::Equal);
}
