//! The TinkerPop-structure-like backend trait.
//!
//! [`GraphBackend`] is this suite's analogue of the Gremlin Structure
//! API: a common set of fine-grained vertex/edge/property operations
//! that any store can expose. The Gremlin traversal executor and the
//! bulk-loading utilities are written purely against this trait, exactly
//! as TinkerPop code runs unchanged on Neo4j, TitanDB, or Sqlg.
//!
//! Note the deliberate granularity: one call retrieves *one* vertex's
//! neighbours, one property, etc. This is the architectural property the
//! paper blames for TinkerPop's overhead — a complex graph operation is
//! translated into many small requests — and implementing the trait on
//! top of a relational store (à la Sqlg) reproduces it faithfully.

use crate::error::Result;
use crate::graph::Direction;
use crate::ids::{EdgeLabel, VertexLabel, Vid};
use crate::schema::PropKey;
use crate::value::Value;

/// One engine-neutral graph mutation — the unit of
/// [`GraphBackend::apply_batch`]. An SNB update operation expands to a
/// sequence of these (the new vertex, if any, followed by its edges).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphWrite {
    /// Insert a vertex (semantics of [`GraphBackend::add_vertex`]).
    AddVertex { label: VertexLabel, local_id: u64, props: Vec<(PropKey, Value)> },
    /// Insert an edge (semantics of [`GraphBackend::add_edge`]).
    AddEdge { label: EdgeLabel, src: Vid, dst: Vid, props: Vec<(PropKey, Value)> },
}

/// Fine-grained structure API implemented by every store that can be
/// driven through the Gremlin layer.
///
/// All methods take `&self`: engines handle their own interior
/// mutability / locking, as the benchmark drives them from many threads.
pub trait GraphBackend: Send + Sync {
    /// Human-readable engine name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Insert a vertex. Fails with `Conflict` if the id already exists.
    fn add_vertex(&self, label: VertexLabel, local_id: u64, props: &[(PropKey, Value)]) -> Result<Vid>;

    /// Insert an edge between existing vertices. Fails with `NotFound`
    /// if either endpoint is missing and `Plan` if the combination is
    /// not in the SNB schema.
    fn add_edge(&self, label: EdgeLabel, src: Vid, dst: Vid, props: &[(PropKey, Value)]) -> Result<()>;

    /// True if the vertex exists.
    fn vertex_exists(&self, v: Vid) -> bool;

    /// Read one property of one vertex.
    fn vertex_prop(&self, v: Vid, key: PropKey) -> Result<Option<Value>>;

    /// Read all properties of one vertex.
    fn vertex_props(&self, v: Vid) -> Result<Vec<(PropKey, Value)>>;

    /// Set (insert or overwrite) one property of one vertex.
    fn set_vertex_prop(&self, v: Vid, key: PropKey, value: Value) -> Result<()>;

    /// Append the neighbours of `v` along `label` (any label if `None`)
    /// in direction `dir` to `out`. `Both` must not deduplicate: a
    /// vertex reachable by both an in- and an out-edge appears twice,
    /// matching Gremlin `both()` semantics.
    fn neighbors(&self, v: Vid, dir: Direction, label: Option<EdgeLabel>, out: &mut Vec<Vid>) -> Result<()>;

    /// Read one property of the edge `src -[label]-> dst`.
    fn edge_prop(&self, src: Vid, label: EdgeLabel, dst: Vid, key: PropKey) -> Result<Option<Value>>;

    /// True if the directed edge exists.
    fn edge_exists(&self, src: Vid, label: EdgeLabel, dst: Vid) -> Result<bool>;

    /// All vertices with the given label (scan; used by label-scan steps
    /// and by tests, not by indexed lookups).
    fn vertices_by_label(&self, label: VertexLabel) -> Result<Vec<Vid>>;

    /// Total vertex count.
    fn vertex_count(&self) -> usize;

    /// Total directed-edge count.
    fn edge_count(&self) -> usize;

    /// Approximate resident bytes of the store (Table 1's "database size").
    fn storage_bytes(&self) -> usize;

    /// Degree of a vertex; the default routes through [`Self::neighbors`],
    /// engines with cheaper degree bookkeeping may override.
    fn degree(&self, v: Vid, dir: Direction, label: Option<EdgeLabel>) -> Result<usize> {
        let mut buf = Vec::new();
        self.neighbors(v, dir, label, &mut buf)?;
        Ok(buf.len())
    }

    /// Pin an immutable CSR read snapshot that reflects *exactly* the
    /// writes applied so far, or `None` when no fresh snapshot is
    /// available (callers must fall back to the live read path, which
    /// preserves read-your-writes). Engines with an epoch compactor or
    /// snapshot cache override this; the default has none.
    fn pin_snapshot(&self) -> Option<std::sync::Arc<crate::snapshot::CsrSnapshot>> {
        None
    }

    /// Pin the *latest published* CSR snapshot, even if its epoch is
    /// behind the current write sequence. Interactive reads must never
    /// use this (it breaks read-your-writes); it exists for bulk
    /// analytics, where a job pins one consistent epoch for its whole
    /// lifetime and concurrent writes are deliberately not observed.
    /// The default only serves exactly-fresh snapshots; engines with a
    /// compactor override it to serve the newest fold under write churn.
    fn pin_analytics_snapshot(&self) -> Option<std::sync::Arc<crate::snapshot::CsrSnapshot>> {
        self.pin_snapshot()
    }

    /// The store's write-sequence epoch for epoch-keyed result caching,
    /// or `None` when the engine has no monotone write counter (result
    /// caches must then bypass — without an epoch in the key, a cached
    /// entry could silently outlive a write). The contract: every
    /// mutation observable through this backend advances the returned
    /// value before the mutating call returns.
    fn cache_epoch(&self) -> Option<u64> {
        None
    }

    /// Apply a batch of writes in order, returning the number applied.
    ///
    /// The default is the obvious one-write-at-a-time loop; engines
    /// override it to take their write lock once per batch, pre-reserve
    /// capacity, and fold bookkeeping (checkpoint counters, WAL
    /// appends) per batch instead of per write. Overrides must preserve
    /// the in-order, stop-at-first-error semantics of this default: a
    /// failed write leaves the preceding prefix applied.
    fn apply_batch(&self, ops: &[GraphWrite]) -> Result<usize> {
        for op in ops {
            match op {
                GraphWrite::AddVertex { label, local_id, props } => {
                    self.add_vertex(*label, *local_id, props)?;
                }
                GraphWrite::AddEdge { label, src, dst, props } => {
                    self.add_edge(*label, *src, *dst, props)?;
                }
            }
        }
        Ok(ops.len())
    }
}

/// Blanket impl so `Arc<dyn GraphBackend>`/`&T` can be passed where a
/// backend is expected.
impl<T: GraphBackend + ?Sized> GraphBackend for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn add_vertex(&self, label: VertexLabel, local_id: u64, props: &[(PropKey, Value)]) -> Result<Vid> {
        (**self).add_vertex(label, local_id, props)
    }
    fn add_edge(&self, label: EdgeLabel, src: Vid, dst: Vid, props: &[(PropKey, Value)]) -> Result<()> {
        (**self).add_edge(label, src, dst, props)
    }
    fn vertex_exists(&self, v: Vid) -> bool {
        (**self).vertex_exists(v)
    }
    fn vertex_prop(&self, v: Vid, key: PropKey) -> Result<Option<Value>> {
        (**self).vertex_prop(v, key)
    }
    fn vertex_props(&self, v: Vid) -> Result<Vec<(PropKey, Value)>> {
        (**self).vertex_props(v)
    }
    fn set_vertex_prop(&self, v: Vid, key: PropKey, value: Value) -> Result<()> {
        (**self).set_vertex_prop(v, key, value)
    }
    fn neighbors(&self, v: Vid, dir: Direction, label: Option<EdgeLabel>, out: &mut Vec<Vid>) -> Result<()> {
        (**self).neighbors(v, dir, label, out)
    }
    fn edge_prop(&self, src: Vid, label: EdgeLabel, dst: Vid, key: PropKey) -> Result<Option<Value>> {
        (**self).edge_prop(src, label, dst, key)
    }
    fn edge_exists(&self, src: Vid, label: EdgeLabel, dst: Vid) -> Result<bool> {
        (**self).edge_exists(src, label, dst)
    }
    fn vertices_by_label(&self, label: VertexLabel) -> Result<Vec<Vid>> {
        (**self).vertices_by_label(label)
    }
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }
    fn storage_bytes(&self) -> usize {
        (**self).storage_bytes()
    }
    fn degree(&self, v: Vid, dir: Direction, label: Option<EdgeLabel>) -> Result<usize> {
        (**self).degree(v, dir, label)
    }
    fn apply_batch(&self, ops: &[GraphWrite]) -> Result<usize> {
        (**self).apply_batch(ops)
    }
    fn pin_snapshot(&self) -> Option<std::sync::Arc<crate::snapshot::CsrSnapshot>> {
        (**self).pin_snapshot()
    }
    fn pin_analytics_snapshot(&self) -> Option<std::sync::Arc<crate::snapshot::CsrSnapshot>> {
        (**self).pin_analytics_snapshot()
    }
    fn cache_epoch(&self) -> Option<u64> {
        (**self).cache_epoch()
    }
}
