//! Property values.
//!
//! A single dynamically-typed value type is shared by every engine: the
//! relational stores use it for column values, the triple store for
//! literals, and the graph stores for vertex/edge properties. `Value`
//! implements *total* equality, hashing, and ordering (NaN-aware for
//! floats) so it can be used directly as a dictionary/index key.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::ids::Vid;

/// A dynamically-typed property / column / literal value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    /// Interned string — cheap to clone, which matters in executor hot paths.
    Str(Arc<str>),
    /// Milliseconds since the Unix epoch (LDBC `creationDate`, `birthday`, ...).
    Date(i64),
    /// Packed global vertex id (used when query results reference vertices).
    Vertex(Vid),
    List(Vec<Value>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Convenience constructor from an owned `String`.
    pub fn string(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }

    /// Integer accessor (also accepts dates, which are stored as i64).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) | Value::Date(i) => Some(*i),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Vertex-id accessor.
    pub fn as_vid(&self) -> Option<Vid> {
        match self {
            Value::Vertex(v) => Some(*v),
            _ => None,
        }
    }

    /// True if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Type tag used for cross-type ordering (and index key prefixes).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
            Value::Vertex(_) => 6,
            Value::List(_) => 7,
        }
    }

    /// Approximate in-memory footprint in bytes, used for the "database
    /// size" column of Table 1.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            Value::List(vs) => vs.iter().map(|v| 16 + v.heap_bytes()).sum(),
            _ => 0,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) | (Date(a), Date(b)) => a.cmp(b),
            // Numeric comparisons across Int/Float compare by value so SQL
            // predicates like `length > 100` work on either representation.
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Str(a), Str(b)) => a.cmp(b),
            (Vertex(a), Vertex(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    // Total order: NaN sorts last, matching how index keys must behave.
    a.partial_cmp(&b).unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        _ => unreachable!(),
    })
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) | Value::Date(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Vertex(v) => v.hash(state),
            Value::List(vs) => vs.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Vertex(v) => write!(f, "{v}"),
            Value::List(vs) => {
                f.write_str("[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<Vid> for Value {
    fn from(v: Vid) -> Self {
        Value::Vertex(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexLabel;

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::str("abc"), Value::str("abc"));
        assert_ne!(Value::Int(1), Value::Int(2));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        let mut vs = vec![Value::Float(f64::NAN), Value::Float(1.0), Value::Float(-1.0)];
        vs.sort();
        assert_eq!(vs[0], Value::Float(-1.0));
        assert_eq!(vs[1], Value::Float(1.0));
        assert!(matches!(vs[2], Value::Float(x) if x.is_nan()));
    }

    #[test]
    fn cross_type_order_is_total_and_stable() {
        let mut vs = vec![
            Value::str("z"),
            Value::Int(0),
            Value::Null,
            Value::Bool(true),
            Value::Date(5),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert!(matches!(vs[1], Value::Bool(true)));
        assert!(matches!(vs[4], Value::Str(_)));
    }

    #[test]
    fn hash_agrees_with_eq_for_dates_and_ints() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(7));
        // Date(7) != Int(7) per type_rank ordering, so both may coexist.
        assert!(set.insert(Value::Date(7)));
        assert!(!set.insert(Value::Int(7)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Date(4).as_int(), Some(4));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        let v = Vid::new(VertexLabel::Person, 1);
        assert_eq!(Value::Vertex(v).as_vid(), Some(v));
    }

    #[test]
    fn heap_bytes_counts_strings() {
        assert_eq!(Value::str("abcd").heap_bytes(), 4);
        assert_eq!(Value::Int(1).heap_bytes(), 0);
        assert!(Value::List(vec![Value::str("ab")]).heap_bytes() >= 18);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::List(vec![Value::Int(1), Value::str("a")]).to_string(), "[1, a]");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
