//! Vertex/edge labels and the global vertex identifier.
//!
//! LDBC SNB identifiers are only unique *per entity type* (Person 0 and
//! Post 0 coexist), so all engines address vertices by a [`Vid`] that
//! packs the label into the top byte of a `u64`, mirroring how real
//! systems (Neo4j record ids, Titan long ids) assign a single id space.

use std::fmt;

use crate::error::{Result, SnbError};

/// Vertex types of the LDBC SNB schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum VertexLabel {
    Person = 0,
    Forum = 1,
    Post = 2,
    Comment = 3,
    Tag = 4,
    TagClass = 5,
    Place = 6,
    Organisation = 7,
}

/// All vertex labels in stable order.
pub const VERTEX_LABELS: [VertexLabel; 8] = [
    VertexLabel::Person,
    VertexLabel::Forum,
    VertexLabel::Post,
    VertexLabel::Comment,
    VertexLabel::Tag,
    VertexLabel::TagClass,
    VertexLabel::Place,
    VertexLabel::Organisation,
];

impl VertexLabel {
    /// Lower-case table-style name (used by the relational catalog and CSV files).
    pub fn as_str(self) -> &'static str {
        match self {
            VertexLabel::Person => "person",
            VertexLabel::Forum => "forum",
            VertexLabel::Post => "post",
            VertexLabel::Comment => "comment",
            VertexLabel::Tag => "tag",
            VertexLabel::TagClass => "tagclass",
            VertexLabel::Place => "place",
            VertexLabel::Organisation => "organisation",
        }
    }

    /// Parse from the table-style name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self> {
        let lower = s.to_ascii_lowercase();
        VERTEX_LABELS
            .iter()
            .copied()
            .find(|l| l.as_str() == lower)
            .ok_or_else(|| SnbError::Parse(format!("unknown vertex label `{s}`")))
    }

    fn from_tag(tag: u8) -> Result<Self> {
        VERTEX_LABELS
            .get(tag as usize)
            .copied()
            .ok_or_else(|| SnbError::Codec(format!("invalid vertex label tag {tag}")))
    }
}

impl fmt::Display for VertexLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Edge types of the LDBC SNB schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EdgeLabel {
    /// Person ↔ Person friendship (stored directed, queried both ways).
    Knows = 0,
    /// Person → Post/Comment.
    Likes = 1,
    /// Post/Comment → Person.
    HasCreator = 2,
    /// Forum → Person.
    HasMember = 3,
    /// Forum → Person.
    HasModerator = 4,
    /// Forum → Post.
    ContainerOf = 5,
    /// Comment → Post/Comment.
    ReplyOf = 6,
    /// Post/Comment/Forum → Tag.
    HasTag = 7,
    /// Person → Tag.
    HasInterest = 8,
    /// Person/Post/Comment/Organisation → Place.
    IsLocatedIn = 9,
    /// Person → Organisation (university).
    StudyAt = 10,
    /// Person → Organisation (company).
    WorkAt = 11,
    /// Tag → TagClass.
    HasType = 12,
    /// TagClass → TagClass.
    IsSubclassOf = 13,
    /// Place → Place.
    IsPartOf = 14,
}

/// All edge labels in stable order.
pub const EDGE_LABELS: [EdgeLabel; 15] = [
    EdgeLabel::Knows,
    EdgeLabel::Likes,
    EdgeLabel::HasCreator,
    EdgeLabel::HasMember,
    EdgeLabel::HasModerator,
    EdgeLabel::ContainerOf,
    EdgeLabel::ReplyOf,
    EdgeLabel::HasTag,
    EdgeLabel::HasInterest,
    EdgeLabel::IsLocatedIn,
    EdgeLabel::StudyAt,
    EdgeLabel::WorkAt,
    EdgeLabel::HasType,
    EdgeLabel::IsSubclassOf,
    EdgeLabel::IsPartOf,
];

impl EdgeLabel {
    /// Lower-case snake-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeLabel::Knows => "knows",
            EdgeLabel::Likes => "likes",
            EdgeLabel::HasCreator => "has_creator",
            EdgeLabel::HasMember => "has_member",
            EdgeLabel::HasModerator => "has_moderator",
            EdgeLabel::ContainerOf => "container_of",
            EdgeLabel::ReplyOf => "reply_of",
            EdgeLabel::HasTag => "has_tag",
            EdgeLabel::HasInterest => "has_interest",
            EdgeLabel::IsLocatedIn => "is_located_in",
            EdgeLabel::StudyAt => "study_at",
            EdgeLabel::WorkAt => "work_at",
            EdgeLabel::HasType => "has_type",
            EdgeLabel::IsSubclassOf => "is_subclass_of",
            EdgeLabel::IsPartOf => "is_part_of",
        }
    }

    /// Parse from the snake-case name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self> {
        let lower = s.to_ascii_lowercase();
        EDGE_LABELS
            .iter()
            .copied()
            .find(|l| l.as_str() == lower)
            .ok_or_else(|| SnbError::Parse(format!("unknown edge label `{s}`")))
    }

    /// Decode from the `u8` discriminant.
    pub fn from_tag(tag: u8) -> Result<Self> {
        EDGE_LABELS
            .get(tag as usize)
            .copied()
            .ok_or_else(|| SnbError::Codec(format!("invalid edge label tag {tag}")))
    }
}

impl fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Global vertex identifier: label tag in the top byte, the entity-local
/// LDBC id in the low 56 bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vid(u64);

impl Vid {
    const LOCAL_BITS: u32 = 56;
    const LOCAL_MASK: u64 = (1 << Self::LOCAL_BITS) - 1;

    /// Build a global id from a label and entity-local id.
    ///
    /// # Panics
    /// Panics if `local` does not fit in 56 bits (cannot happen for any
    /// dataset this suite generates).
    pub fn new(label: VertexLabel, local: u64) -> Self {
        assert!(local <= Self::LOCAL_MASK, "local id {local} overflows 56 bits");
        Vid(((label as u64) << Self::LOCAL_BITS) | local)
    }

    /// The vertex label encoded in this id.
    pub fn label(self) -> VertexLabel {
        VertexLabel::from_tag((self.0 >> Self::LOCAL_BITS) as u8)
            .expect("Vid constructed with valid label")
    }

    /// The entity-local (per-label) id.
    pub fn local(self) -> u64 {
        self.0 & Self::LOCAL_MASK
    }

    /// The raw packed representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw packed representation (validates the label tag).
    pub fn from_raw(raw: u64) -> Result<Self> {
        VertexLabel::from_tag((raw >> Self::LOCAL_BITS) as u8)?;
        Ok(Vid(raw))
    }
}

impl fmt::Debug for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.label(), self.local())
    }
}

impl fmt::Display for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.label(), self.local())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vid_roundtrips_label_and_local() {
        for label in VERTEX_LABELS {
            for local in [0u64, 1, 42, Vid::LOCAL_MASK] {
                let v = Vid::new(label, local);
                assert_eq!(v.label(), label);
                assert_eq!(v.local(), local);
                assert_eq!(Vid::from_raw(v.raw()).unwrap(), v);
            }
        }
    }

    #[test]
    fn vid_distinguishes_same_local_across_labels() {
        let p = Vid::new(VertexLabel::Person, 7);
        let q = Vid::new(VertexLabel::Post, 7);
        assert_ne!(p, q);
        assert_eq!(p.local(), q.local());
    }

    #[test]
    #[should_panic]
    fn vid_rejects_oversized_local() {
        let _ = Vid::new(VertexLabel::Person, 1 << 56);
    }

    #[test]
    fn from_raw_rejects_bad_tag() {
        let raw = (200u64) << 56;
        assert!(Vid::from_raw(raw).is_err());
    }

    #[test]
    fn label_parse_roundtrip() {
        for l in VERTEX_LABELS {
            assert_eq!(VertexLabel::parse(l.as_str()).unwrap(), l);
            assert_eq!(VertexLabel::parse(&l.as_str().to_uppercase()).unwrap(), l);
        }
        for l in EDGE_LABELS {
            assert_eq!(EdgeLabel::parse(l.as_str()).unwrap(), l);
        }
        assert!(VertexLabel::parse("nope").is_err());
        assert!(EdgeLabel::parse("nope").is_err());
    }

    #[test]
    fn edge_label_tag_roundtrip() {
        for l in EDGE_LABELS {
            assert_eq!(EdgeLabel::from_tag(l as u8).unwrap(), l);
        }
        assert!(EdgeLabel::from_tag(99).is_err());
    }

    #[test]
    fn vid_ordering_groups_by_label() {
        let a = Vid::new(VertexLabel::Person, 999);
        let b = Vid::new(VertexLabel::Forum, 0);
        assert!(a < b, "person ids sort before forum ids");
    }
}
