//! Error type shared across the workspace.

use std::fmt;

/// Unified error type for parsing, planning, execution, and storage
/// failures across all engines and the benchmark harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnbError {
    /// An entity (vertex, edge, table, topic, ...) was not found.
    NotFound(String),
    /// A uniqueness or transactional conflict (e.g. duplicate vertex id).
    Conflict(String),
    /// A query-language parse error.
    Parse(String),
    /// A planning error (unknown table, unbound variable, ...).
    Plan(String),
    /// A runtime execution error.
    Exec(String),
    /// A storage-backend error.
    Backend(String),
    /// The server/queue rejected the request due to overload. The Gremlin
    /// Server analogue returns this where the paper observed hangs/crashes.
    Overloaded(String),
    /// Serialization / wire-format error.
    Codec(String),
    /// Filesystem error (CSV import/export).
    Io(String),
    /// A fixed-width id or offset space overflowed (e.g. more than 2^32
    /// CSR rows). Surfaced instead of silently truncating adjacency.
    Capacity(String),
}

impl fmt::Display for SnbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnbError::NotFound(m) => write!(f, "not found: {m}"),
            SnbError::Conflict(m) => write!(f, "conflict: {m}"),
            SnbError::Parse(m) => write!(f, "parse error: {m}"),
            SnbError::Plan(m) => write!(f, "plan error: {m}"),
            SnbError::Exec(m) => write!(f, "execution error: {m}"),
            SnbError::Backend(m) => write!(f, "backend error: {m}"),
            SnbError::Overloaded(m) => write!(f, "overloaded: {m}"),
            SnbError::Codec(m) => write!(f, "codec error: {m}"),
            SnbError::Io(m) => write!(f, "io error: {m}"),
            SnbError::Capacity(m) => write!(f, "capacity exceeded: {m}"),
        }
    }
}

impl std::error::Error for SnbError {}

impl From<std::io::Error> for SnbError {
    fn from(e: std::io::Error) -> Self {
        SnbError::Io(e.to_string())
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, SnbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = SnbError::NotFound("person 42".into());
        assert_eq!(e.to_string(), "not found: person 42");
        let e = SnbError::Overloaded("queue full".into());
        assert!(e.to_string().contains("overloaded"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "boom");
        let e: SnbError = io.into();
        assert!(matches!(e, SnbError::Io(_)));
    }
}
