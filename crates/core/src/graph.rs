//! Property-map and direction primitives shared by all graph engines.


use crate::schema::PropKey;
use crate::value::Value;

/// Traversal / adjacency direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Out,
    In,
    Both,
}

impl Direction {
    /// The opposite direction (`Both` is its own reverse).
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
            Direction::Both => Direction::Both,
        }
    }
}

/// A small ordered association list of properties.
///
/// SNB entities carry at most ~8 properties, so a sorted `Vec` beats a
/// hash map in both space and lookup time (see the workspace perf notes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropertyMap {
    entries: Vec<(PropKey, Value)>,
}

impl PropertyMap {
    /// Empty map.
    pub fn new() -> Self {
        PropertyMap { entries: Vec::new() }
    }

    /// Build from key/value pairs (later duplicates overwrite earlier ones).
    pub fn from_pairs(pairs: &[(PropKey, Value)]) -> Self {
        let mut m = PropertyMap { entries: Vec::with_capacity(pairs.len()) };
        for (k, v) in pairs {
            m.set(*k, v.clone());
        }
        m
    }

    /// Get a property value.
    pub fn get(&self, key: PropKey) -> Option<&Value> {
        self.entries
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Insert or overwrite a property; returns the previous value if any.
    pub fn set(&mut self, key: PropKey, value: Value) -> Option<Value> {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Remove a property.
    pub fn remove(&mut self, key: PropKey) -> Option<Value> {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no properties.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (PropKey, &Value)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Clone the entries into a plain vector (for trait-object friendly APIs).
    pub fn to_pairs(&self) -> Vec<(PropKey, Value)> {
        self.entries.clone()
    }

    /// Approximate heap footprint in bytes (for Table 1 database sizes).
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(PropKey, Value)>()
            + self.entries.iter().map(|(_, v)| v.heap_bytes()).sum::<usize>()
    }
}

impl FromIterator<(PropKey, Value)> for PropertyMap {
    fn from_iter<I: IntoIterator<Item = (PropKey, Value)>>(iter: I) -> Self {
        let mut m = PropertyMap::new();
        for (k, v) in iter {
            m.set(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
        assert_eq!(Direction::Both.reverse(), Direction::Both);
    }

    #[test]
    fn set_get_remove() {
        let mut m = PropertyMap::new();
        assert!(m.is_empty());
        assert_eq!(m.set(PropKey::FirstName, Value::str("Ada")), None);
        assert_eq!(m.get(PropKey::FirstName), Some(&Value::str("Ada")));
        assert_eq!(
            m.set(PropKey::FirstName, Value::str("Grace")),
            Some(Value::str("Ada"))
        );
        assert_eq!(m.remove(PropKey::FirstName), Some(Value::str("Grace")));
        assert_eq!(m.remove(PropKey::FirstName), None);
        assert!(m.is_empty());
    }

    #[test]
    fn entries_stay_sorted_by_key() {
        let m: PropertyMap = [
            (PropKey::LastName, Value::str("b")),
            (PropKey::Id, Value::Int(1)),
            (PropKey::FirstName, Value::str("a")),
        ]
        .into_iter()
        .collect();
        let keys: Vec<_> = m.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn from_pairs_last_duplicate_wins() {
        let m = PropertyMap::from_pairs(&[
            (PropKey::Gender, Value::str("male")),
            (PropKey::Gender, Value::str("female")),
        ]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(PropKey::Gender), Some(&Value::str("female")));
    }
}
