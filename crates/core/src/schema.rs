//! The LDBC SNB schema: property keys and edge-type definitions.
//!
//! Property keys are interned as an enum so hot property lookups never
//! hash strings. Edge definitions enumerate the legal
//! `(source label, edge label, destination label)` combinations; the
//! relational catalog derives one table per combination (the paper's
//! "each vertex and edge type is represented by a separate table"), and
//! the stores use them to validate inserts.

use std::fmt;

use crate::error::{Result, SnbError};
use crate::ids::{EdgeLabel, VertexLabel};

/// Interned property key. Covers every property the SNB schema attaches
/// to vertices or edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PropKey {
    Id = 0,
    FirstName = 1,
    LastName = 2,
    Gender = 3,
    Birthday = 4,
    CreationDate = 5,
    LocationIp = 6,
    BrowserUsed = 7,
    Content = 8,
    ImageFile = 9,
    Language = 10,
    Length = 11,
    Name = 12,
    Url = 13,
    Title = 14,
    ClassYear = 15,
    WorkFrom = 16,
    JoinDate = 17,
    Email = 18,
    Speaks = 19,
    OrgType = 20,
    PlaceType = 21,
}

/// All property keys in stable order.
pub const PROP_KEYS: [PropKey; 22] = [
    PropKey::Id,
    PropKey::FirstName,
    PropKey::LastName,
    PropKey::Gender,
    PropKey::Birthday,
    PropKey::CreationDate,
    PropKey::LocationIp,
    PropKey::BrowserUsed,
    PropKey::Content,
    PropKey::ImageFile,
    PropKey::Language,
    PropKey::Length,
    PropKey::Name,
    PropKey::Url,
    PropKey::Title,
    PropKey::ClassYear,
    PropKey::WorkFrom,
    PropKey::JoinDate,
    PropKey::Email,
    PropKey::Speaks,
    PropKey::OrgType,
    PropKey::PlaceType,
];

impl PropKey {
    /// Camel-case name as used by LDBC (`firstName`, `creationDate`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            PropKey::Id => "id",
            PropKey::FirstName => "firstName",
            PropKey::LastName => "lastName",
            PropKey::Gender => "gender",
            PropKey::Birthday => "birthday",
            PropKey::CreationDate => "creationDate",
            PropKey::LocationIp => "locationIP",
            PropKey::BrowserUsed => "browserUsed",
            PropKey::Content => "content",
            PropKey::ImageFile => "imageFile",
            PropKey::Language => "language",
            PropKey::Length => "length",
            PropKey::Name => "name",
            PropKey::Url => "url",
            PropKey::Title => "title",
            PropKey::ClassYear => "classYear",
            PropKey::WorkFrom => "workFrom",
            PropKey::JoinDate => "joinDate",
            PropKey::Email => "email",
            PropKey::Speaks => "speaks",
            PropKey::OrgType => "orgType",
            PropKey::PlaceType => "placeType",
        }
    }

    /// Parse a property-key name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self> {
        PROP_KEYS
            .iter()
            .copied()
            .find(|k| k.as_str().eq_ignore_ascii_case(s))
            .ok_or_else(|| SnbError::Parse(format!("unknown property key `{s}`")))
    }

    /// Decode from the `u8` discriminant.
    pub fn from_tag(tag: u8) -> Result<Self> {
        PROP_KEYS
            .get(tag as usize)
            .copied()
            .ok_or_else(|| SnbError::Codec(format!("invalid property key tag {tag}")))
    }
}

impl fmt::Display for PropKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Properties each vertex label carries (beyond the implicit `id`).
pub fn vertex_props(label: VertexLabel) -> &'static [PropKey] {
    match label {
        VertexLabel::Person => &[
            PropKey::FirstName,
            PropKey::LastName,
            PropKey::Gender,
            PropKey::Birthday,
            PropKey::CreationDate,
            PropKey::LocationIp,
            PropKey::BrowserUsed,
            PropKey::Email,
            PropKey::Speaks,
        ],
        VertexLabel::Forum => &[PropKey::Title, PropKey::CreationDate],
        VertexLabel::Post => &[
            PropKey::ImageFile,
            PropKey::CreationDate,
            PropKey::LocationIp,
            PropKey::BrowserUsed,
            PropKey::Language,
            PropKey::Content,
            PropKey::Length,
        ],
        VertexLabel::Comment => &[
            PropKey::CreationDate,
            PropKey::LocationIp,
            PropKey::BrowserUsed,
            PropKey::Content,
            PropKey::Length,
        ],
        VertexLabel::Tag => &[PropKey::Name, PropKey::Url],
        VertexLabel::TagClass => &[PropKey::Name, PropKey::Url],
        VertexLabel::Place => &[PropKey::Name, PropKey::Url, PropKey::PlaceType],
        VertexLabel::Organisation => &[PropKey::Name, PropKey::Url, PropKey::OrgType],
    }
}

/// A legal `(src, edge, dst)` combination plus the edge's own properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeDef {
    pub src: VertexLabel,
    pub label: EdgeLabel,
    pub dst: VertexLabel,
    pub props: &'static [PropKey],
}

impl EdgeDef {
    /// Relational table name for this combination,
    /// e.g. `person_knows_person`, `comment_reply_of_post`.
    pub fn table_name(&self) -> String {
        format!("{}_{}_{}", self.src, self.label, self.dst)
    }
}

/// Every edge-type combination in the SNB schema, in stable order.
pub const EDGE_DEFS: &[EdgeDef] = &[
    EdgeDef { src: VertexLabel::Person, label: EdgeLabel::Knows, dst: VertexLabel::Person, props: &[PropKey::CreationDate] },
    EdgeDef { src: VertexLabel::Person, label: EdgeLabel::Likes, dst: VertexLabel::Post, props: &[PropKey::CreationDate] },
    EdgeDef { src: VertexLabel::Person, label: EdgeLabel::Likes, dst: VertexLabel::Comment, props: &[PropKey::CreationDate] },
    EdgeDef { src: VertexLabel::Post, label: EdgeLabel::HasCreator, dst: VertexLabel::Person, props: &[] },
    EdgeDef { src: VertexLabel::Comment, label: EdgeLabel::HasCreator, dst: VertexLabel::Person, props: &[] },
    EdgeDef { src: VertexLabel::Forum, label: EdgeLabel::HasMember, dst: VertexLabel::Person, props: &[PropKey::JoinDate] },
    EdgeDef { src: VertexLabel::Forum, label: EdgeLabel::HasModerator, dst: VertexLabel::Person, props: &[] },
    EdgeDef { src: VertexLabel::Forum, label: EdgeLabel::ContainerOf, dst: VertexLabel::Post, props: &[] },
    EdgeDef { src: VertexLabel::Comment, label: EdgeLabel::ReplyOf, dst: VertexLabel::Post, props: &[] },
    EdgeDef { src: VertexLabel::Comment, label: EdgeLabel::ReplyOf, dst: VertexLabel::Comment, props: &[] },
    EdgeDef { src: VertexLabel::Post, label: EdgeLabel::HasTag, dst: VertexLabel::Tag, props: &[] },
    EdgeDef { src: VertexLabel::Comment, label: EdgeLabel::HasTag, dst: VertexLabel::Tag, props: &[] },
    EdgeDef { src: VertexLabel::Forum, label: EdgeLabel::HasTag, dst: VertexLabel::Tag, props: &[] },
    EdgeDef { src: VertexLabel::Person, label: EdgeLabel::HasInterest, dst: VertexLabel::Tag, props: &[] },
    EdgeDef { src: VertexLabel::Person, label: EdgeLabel::IsLocatedIn, dst: VertexLabel::Place, props: &[] },
    EdgeDef { src: VertexLabel::Post, label: EdgeLabel::IsLocatedIn, dst: VertexLabel::Place, props: &[] },
    EdgeDef { src: VertexLabel::Comment, label: EdgeLabel::IsLocatedIn, dst: VertexLabel::Place, props: &[] },
    EdgeDef { src: VertexLabel::Organisation, label: EdgeLabel::IsLocatedIn, dst: VertexLabel::Place, props: &[] },
    EdgeDef { src: VertexLabel::Person, label: EdgeLabel::StudyAt, dst: VertexLabel::Organisation, props: &[PropKey::ClassYear] },
    EdgeDef { src: VertexLabel::Person, label: EdgeLabel::WorkAt, dst: VertexLabel::Organisation, props: &[PropKey::WorkFrom] },
    EdgeDef { src: VertexLabel::Tag, label: EdgeLabel::HasType, dst: VertexLabel::TagClass, props: &[] },
    EdgeDef { src: VertexLabel::TagClass, label: EdgeLabel::IsSubclassOf, dst: VertexLabel::TagClass, props: &[] },
    EdgeDef { src: VertexLabel::Place, label: EdgeLabel::IsPartOf, dst: VertexLabel::Place, props: &[] },
];

/// Look up the edge definition for a `(src, label, dst)` combination.
pub fn edge_def(src: VertexLabel, label: EdgeLabel, dst: VertexLabel) -> Result<&'static EdgeDef> {
    EDGE_DEFS
        .iter()
        .find(|d| d.src == src && d.label == label && d.dst == dst)
        .ok_or_else(|| {
            SnbError::Plan(format!("no edge type ({src})-[:{label}]->({dst}) in the SNB schema"))
        })
}

/// All edge definitions with the given label (e.g. both `likes` variants).
pub fn edge_defs_for(label: EdgeLabel) -> impl Iterator<Item = &'static EdgeDef> {
    EDGE_DEFS.iter().filter(move |d| d.label == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prop_key_parse_roundtrip() {
        for k in PROP_KEYS {
            assert_eq!(PropKey::parse(k.as_str()).unwrap(), k);
            assert_eq!(PropKey::from_tag(k as u8).unwrap(), k);
        }
        assert!(PropKey::parse("bogus").is_err());
        assert!(PropKey::from_tag(200).is_err());
    }

    #[test]
    fn every_vertex_label_has_props() {
        use crate::ids::VERTEX_LABELS;
        for l in VERTEX_LABELS {
            assert!(!vertex_props(l).is_empty(), "{l} should define properties");
        }
    }

    #[test]
    fn edge_def_lookup() {
        let d = edge_def(VertexLabel::Person, EdgeLabel::Knows, VertexLabel::Person).unwrap();
        assert_eq!(d.props, &[PropKey::CreationDate]);
        assert_eq!(d.table_name(), "person_knows_person");
        assert!(edge_def(VertexLabel::Tag, EdgeLabel::Knows, VertexLabel::Tag).is_err());
    }

    #[test]
    fn likes_has_two_variants() {
        let variants: Vec<_> = edge_defs_for(EdgeLabel::Likes).collect();
        assert_eq!(variants.len(), 2);
        assert!(variants.iter().any(|d| d.dst == VertexLabel::Post));
        assert!(variants.iter().any(|d| d.dst == VertexLabel::Comment));
    }

    #[test]
    fn edge_table_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = EDGE_DEFS.iter().map(|d| d.table_name()).collect();
        assert_eq!(names.len(), EDGE_DEFS.len());
    }
}
