//! Vertex-space partitioning for the sharded scale-out configuration.
//!
//! A [`ShardMap`] assigns every vertex to exactly one of N shards by
//! hashing its raw global id with the same FNV-1a function the update
//! topic's partitioner (`snb-mq`) applies to an operation's partition
//! key. That bit-compatibility is the whole point: an update keyed by
//! its created vertex (or first edge source) lands on topic partition
//! `fnv1a64(key) % P`, and as long as `P` is a multiple of the shard
//! count `N`, `fnv1a64(key) % P ≡ fnv1a64(key) % N (mod N)` — so every
//! operation in partition `p` owns vertices on shard `p % N`, and a
//! partition-pinned applier writes to exactly one shard (the shard-local
//! ingest mapping).
//!
//! The map is deliberately tiny and dependency-free: `snb-mq` does not
//! depend on `snb-core`, so the 8-line hash is duplicated here and
//! pinned by the same test vectors `snb-mq` pins, keeping the two
//! implementations provably identical.

use crate::ids::Vid;

/// FNV-1a, 64-bit — must stay bit-identical to `snb_mq::fnv1a64` (both
/// are pinned by the `b""` / `b"a"` vectors below).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assignment of the vertex space to `N` shards: shard of `v` =
/// `fnv1a64(v.raw() as LE bytes) % N`. Clamped to at least one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A map over `shards` shards (clamped to ≥ 1).
    pub fn new(shards: usize) -> ShardMap {
        ShardMap { shards: shards.max(1) }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Owning shard of a raw u64 key (an op's `partition_key()`), hashed
    /// exactly as the mq partitioner hashes `key.to_le_bytes()`.
    pub fn shard_of_key(&self, key: u64) -> usize {
        (fnv1a64(&key.to_le_bytes()) % self.shards as u64) as usize
    }

    /// Owning shard of a vertex.
    pub fn shard_of(&self, v: Vid) -> usize {
        self.shard_of_key(v.raw())
    }

    /// True when a `partitions`-way topic maps cleanly onto this shard
    /// count (partition `p` → shard `p % shards` for every key), i.e.
    /// the partition count is a positive multiple of the shard count.
    pub fn aligned_partitions(&self, partitions: usize) -> bool {
        partitions > 0 && partitions % self.shards == 0
    }

    /// The shard every key in topic partition `partition` owns, valid
    /// whenever [`ShardMap::aligned_partitions`] holds for the topic.
    pub fn shard_of_partition(&self, partition: usize) -> usize {
        partition % self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexLabel;

    #[test]
    fn fnv_vectors_match_the_mq_partitioner() {
        // The same vectors snb-mq pins; if either side drifts, routing
        // and sharding disagree and shard-local ingest silently breaks.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let map = ShardMap::new(4);
        for id in 0..1000u64 {
            let v = Vid::new(VertexLabel::Person, id);
            let s = map.shard_of(v);
            assert!(s < 4);
            assert_eq!(s, map.shard_of(v), "assignment must be deterministic");
            assert_eq!(s, map.shard_of_key(v.raw()));
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let map = ShardMap::new(0);
        assert_eq!(map.shards(), 1);
        assert_eq!(map.shard_of_key(12345), 0);
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for id in 0..10_000u64 {
            counts[map.shard_of(Vid::new(VertexLabel::Person, id))] += 1;
        }
        for c in counts {
            assert!(c > 1500, "badly skewed shard assignment: {counts:?}");
        }
    }

    #[test]
    fn aligned_partitions_map_to_shard_mod() {
        // With P a multiple of N, (fnv % P) % N == fnv % N — so the
        // topic partition of any key owns exactly one shard.
        let map = ShardMap::new(2);
        assert!(map.aligned_partitions(2));
        assert!(map.aligned_partitions(4));
        assert!(map.aligned_partitions(8));
        assert!(!map.aligned_partitions(3));
        assert!(!map.aligned_partitions(0));
        for partitions in [2usize, 4, 8] {
            for key in 0..2000u64 {
                let partition = (fnv1a64(&key.to_le_bytes()) % partitions as u64) as usize;
                assert_eq!(
                    map.shard_of_partition(partition),
                    map.shard_of_key(key),
                    "key {key} in partition {partition} of {partitions}"
                );
            }
        }
    }
}
