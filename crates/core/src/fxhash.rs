//! A fast, non-cryptographic hasher for hot-path lookup structures.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per `u64` key. Every index in
//! this workspace is keyed by trusted, internally-generated values
//! ([`crate::Vid`]s, dictionary terms, adjacency keys), so collision
//! attacks are not part of the threat model and the Sip rounds are pure
//! overhead on the read path. This module provides the FxHash algorithm
//! used by rustc: one multiply + one rotate + one xor per word of input.
//!
//! Use the [`FastMap`]/[`FastSet`] aliases instead of naming the hasher
//! directly; swapping the algorithm later is then a one-line change.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier: `2^64 / phi`, rounded to odd.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's FxHash: fold each machine word into the state with
/// `state = (state rotl 5 ^ word) * SEED`.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u32::from_le_bytes(chunk.try_into().unwrap()) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, `Default`-constructible.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

/// One-shot hash of any hashable value (used for partition routing).
#[inline]
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_word_sensitive() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&42u64), hash_one(&43u64));
        assert_ne!(hash_one(&0u64), hash_one(&1u64));
    }

    #[test]
    fn byte_stream_matches_any_split() {
        // write() folds words, so differently-sized writes of the same
        // bytes must agree with a single write of the concatenation.
        let mut a = FxHasher::default();
        a.write(b"hello world, graph bench");
        let mut b = FxHasher::default();
        b.write(b"hello world, graph bench");
        assert_eq!(a.finish(), b.finish());
        // Different content must (with overwhelming probability) differ.
        let mut c = FxHasher::default();
        c.write(b"hello world, graph bunch");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FastSet<(u8, u64)> = FastSet::default();
        assert!(s.insert((1, 99)));
        assert!(!s.insert((1, 99)));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Sequential ids (the common Vid pattern) must not collide in the
        // low bits that HashMap uses for bucket selection.
        let mut low_bits: FastSet<u64> = FastSet::default();
        for i in 0..1024u64 {
            low_bits.insert(hash_one(&i) & 0x3ff);
        }
        assert!(low_bits.len() > 512, "low bits too clustered: {}", low_bits.len());
    }
}
