//! Bounded-heap top-k selection.
//!
//! The complex-read suite returns `ORDER BY ... LIMIT k` results where
//! `k` is tiny (10–20) and the candidate set at SF-class scale is not.
//! A full sort is O(n log n) and materializes an ordering nobody reads;
//! [`top_k_by`] keeps a k-element binary heap instead — O(n log k) and
//! O(k) extra space — while producing *exactly* the rows a stable sort
//! followed by `truncate(k)` would produce: ties between candidates are
//! broken by arrival order, so executors can swap one for the other
//! without changing a single result byte.

use std::cmp::Ordering;

/// Select the first `k` items of `items` under `cmp` as a stable sort
/// would order them, consuming the input. `cmp` is the ascending sort
/// order (`Less` sorts first). Returns all items (sorted) when
/// `k >= items.len()`.
pub fn top_k_by<T, F>(items: Vec<T>, k: usize, mut cmp: F) -> Vec<T>
where
    F: FnMut(&T, &T) -> Ordering,
{
    if k == 0 {
        return Vec::new();
    }
    if items.len() <= k {
        let mut items = items;
        items.sort_by(cmp);
        return items;
    }
    // Max-heap of the k best seen so far, keyed by (cmp, arrival index)
    // — the index tiebreak is what makes the result identical to a
    // stable sort. The root is the *worst* kept item; a candidate that
    // beats it replaces it and sifts down.
    let mut heap: Vec<(T, usize)> = Vec::with_capacity(k);
    let mut worse = |a: &(T, usize), b: &(T, usize)| -> bool {
        match cmp(&a.0, &b.0) {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => a.1 > b.1,
        }
    };
    for (i, item) in items.into_iter().enumerate() {
        if heap.len() < k {
            heap.push((item, i));
            // Sift up.
            let mut c = heap.len() - 1;
            while c > 0 {
                let p = (c - 1) / 2;
                if worse(&heap[c], &heap[p]) {
                    heap.swap(c, p);
                    c = p;
                } else {
                    break;
                }
            }
        } else {
            let cand = (item, i);
            if !worse(&cand, &heap[0]) {
                heap[0] = cand;
                // Sift down.
                let mut p = 0;
                loop {
                    let (l, r) = (2 * p + 1, 2 * p + 2);
                    let mut m = p;
                    if l < k && worse(&heap[l], &heap[m]) {
                        m = l;
                    }
                    if r < k && worse(&heap[r], &heap[m]) {
                        m = r;
                    }
                    if m == p {
                        break;
                    }
                    heap.swap(p, m);
                    p = m;
                }
            }
        }
    }
    heap.sort_by(|a, b| cmp(&a.0, &b.0).then(a.1.cmp(&b.1)));
    heap.into_iter().map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(mut v: Vec<(i32, i32)>, k: usize) -> Vec<(i32, i32)> {
        v.sort_by(|a, b| a.0.cmp(&b.0)); // stable: ties keep arrival order
        v.truncate(k);
        v
    }

    #[test]
    fn matches_stable_sort_truncate() {
        let data = vec![(5, 0), (1, 1), (3, 2), (1, 3), (9, 4), (3, 5), (0, 6)];
        for k in 0..=data.len() + 2 {
            assert_eq!(
                top_k_by(data.clone(), k, |a, b| a.0.cmp(&b.0)),
                reference(data.clone(), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn ties_resolve_by_arrival_order() {
        // All-equal keys: top-k must be the first k pushed.
        let data: Vec<(i32, i32)> = (0..50).map(|i| (7, i)).collect();
        let got = top_k_by(data, 5, |a, b| a.0.cmp(&b.0));
        assert_eq!(got.iter().map(|p| p.1).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn randomized_against_reference() {
        // Deterministic xorshift stream; no RNG crate in core.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for trial in 0..200 {
            let n = (next() % 60) as usize;
            let k = (next() % 20) as usize;
            let data: Vec<(i32, i32)> =
                (0..n).map(|i| ((next() % 10) as i32, i as i32)).collect();
            assert_eq!(
                top_k_by(data.clone(), k, |a, b| a.0.cmp(&b.0)),
                reference(data, k),
                "trial={trial} n={n} k={k}"
            );
        }
    }

    #[test]
    fn descending_comparator() {
        let data = vec![(1, 0), (9, 1), (5, 2), (9, 3)];
        let got = top_k_by(data, 2, |a, b| b.0.cmp(&a.0));
        assert_eq!(got, vec![(9, 1), (9, 3)]);
    }
}
