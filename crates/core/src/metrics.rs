//! Measurement utilities for the experiment harness: latency recording,
//! per-second throughput series, and plain-text table rendering in the
//! style of the paper's Tables 1–4.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A set of latency samples (nanoseconds) with summary statistics.
///
/// Percentile queries keep a lazily-built sorted view so repeated
/// `percentile_ms` calls (the report path asks for several percentiles
/// per operation) sort at most once per batch of recorded samples.
/// Samples are append-only, so the view is valid exactly while its
/// length matches the sample count.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
    sorted: RefCell<Vec<u64>>,
}

impl LatencyStats {
    /// Empty recorder.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d.as_nanos() as u64);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean in milliseconds (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples.iter().map(|&n| n as u128).sum();
        (sum as f64 / self.samples.len() as f64) / 1e6
    }

    /// Percentile (0.0..=100.0) in milliseconds via nearest-rank.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sorted.borrow_mut();
        if sorted.len() != self.samples.len() {
            sorted.clear();
            sorted.extend_from_slice(&self.samples);
            sorted.sort_unstable();
        }
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)] as f64 / 1e6
    }

    /// Minimum in ms.
    pub fn min_ms(&self) -> f64 {
        self.samples.iter().min().map_or(0.0, |&n| n as f64 / 1e6)
    }

    /// Maximum in ms.
    pub fn max_ms(&self) -> f64 {
        self.samples.iter().max().map_or(0.0, |&n| n as f64 / 1e6)
    }

    /// Merge another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Thread-safe per-second operation counter producing a throughput time
/// series — the data behind Figure 3.
pub struct ThroughputSeries {
    start: Instant,
    buckets: Mutex<Vec<u64>>,
}

impl ThroughputSeries {
    /// Start counting now.
    pub fn new() -> Self {
        ThroughputSeries { start: Instant::now(), buckets: Mutex::new(Vec::new()) }
    }

    /// Record one completed operation at the current time.
    pub fn record(&self) {
        self.record_n(1);
    }

    /// Record `n` operations completed at the current time — one lock
    /// acquisition per applied batch instead of per op.
    pub fn record_n(&self, n: u64) {
        let sec = self.start.elapsed().as_secs() as usize;
        let mut buckets = self.buckets.lock();
        if buckets.len() <= sec {
            buckets.resize(sec + 1, 0);
        }
        buckets[sec] += n;
    }

    /// Snapshot of per-second counts.
    pub fn per_second(&self) -> Vec<u64> {
        self.buckets.lock().clone()
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.buckets.lock().iter().sum()
    }

    /// Mean ops/sec over the observed window (0 when empty).
    pub fn mean_per_sec(&self) -> f64 {
        let buckets = self.buckets.lock();
        if buckets.is_empty() {
            return 0.0;
        }
        buckets.iter().sum::<u64>() as f64 / buckets.len() as f64
    }
}

impl Default for ThroughputSeries {
    fn default() -> Self {
        Self::new()
    }
}

/// Fixed-width text table renderer for experiment output.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Render with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a latency in milliseconds the way the paper's tables do:
/// sub-millisecond values keep two decimals, larger values fewer.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{ms:.3}")
    } else if ms < 100.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.0}")
    }
}

/// Format a byte count as mebibytes with one decimal.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Time a closure, returning its result and the elapsed duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_summaries() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean_ms(), 0.0);
        for ms in [1u64, 2, 3, 4, 5] {
            s.record(Duration::from_millis(ms));
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean_ms() - 3.0).abs() < 1e-9);
        assert!((s.min_ms() - 1.0).abs() < 1e-9);
        assert!((s.max_ms() - 5.0).abs() < 1e-9);
        assert!((s.percentile_ms(50.0) - 3.0).abs() < 1e-9);
        assert!((s.percentile_ms(100.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_cache_tracks_new_samples() {
        let mut s = LatencyStats::new();
        s.record(Duration::from_millis(1));
        assert!((s.percentile_ms(100.0) - 1.0).abs() < 1e-9);
        // Appending must invalidate the cached sorted view.
        s.record(Duration::from_millis(9));
        assert!((s.percentile_ms(100.0) - 9.0).abs() < 1e-9);
        let mut other = LatencyStats::new();
        other.record(Duration::from_millis(20));
        s.merge(&other);
        assert!((s.percentile_ms(100.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_never_serves_stale_cache_under_interleaving() {
        // Regression: the sorted view is rebuilt lazily, keyed on sample
        // count alone. Interleave record() and percentile_ms() so the
        // cache is rebuilt after every single append — including appends
        // that land *below* the current median, which a stale cache
        // would misreport — and check each answer against a reference
        // computed from a fresh sort.
        let mut s = LatencyStats::new();
        let mut reference: Vec<u64> = Vec::new();
        let mut x = 0x9e37_79b9_u64;
        for i in 0..200 {
            // Deterministic pseudo-random sample in 0..1000 ms.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let ms = x >> 54;
            s.record(Duration::from_millis(ms));
            reference.push(ms * 1_000_000);
            if i % 3 == 0 {
                // Query mid-stream so the next append hits a warm cache.
                let mut sorted = reference.clone();
                sorted.sort_unstable();
                for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
                    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
                    let want = sorted[rank] as f64 / 1e6;
                    let got = s.percentile_ms(p);
                    assert!(
                        (got - want).abs() < 1e-9,
                        "p{p} after {} samples: got {got}, want {want}",
                        reference.len()
                    );
                }
            }
        }
    }

    #[test]
    fn latency_merge() {
        let mut a = LatencyStats::new();
        a.record(Duration::from_millis(1));
        let mut b = LatencyStats::new();
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_counts() {
        let t = ThroughputSeries::new();
        for _ in 0..10 {
            t.record();
        }
        assert_eq!(t.total(), 10);
        assert!(t.mean_per_sec() >= 10.0);
        assert_eq!(t.per_second().iter().sum::<u64>(), 10);
        t.record_n(32);
        assert_eq!(t.total(), 42);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["System", "ms"]);
        t.row(["Neo4j (Cypher-like)", "9.08"]);
        t.row(["Postgres-like"]);
        let out = t.render();
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("System"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("9.08"));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ms(0.25), "0.250");
        assert_eq!(fmt_ms(9.078), "9.08");
        assert_eq!(fmt_ms(368.2), "368");
        assert_eq!(fmt_mib(1024 * 1024), "1.0");
    }

    #[test]
    fn timed_returns_value() {
        let (v, d) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
