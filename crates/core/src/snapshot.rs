//! Epoch-based immutable CSR read snapshots.
//!
//! A [`CsrSnapshot`] is a compressed-sparse-row copy of a graph at one
//! write epoch: per-edge-label, per-direction offset/target arrays over
//! dense row ids, an `Arc`'d property map per row, and dense columns for
//! the hot Person/Post fields. It is immutable — readers share it behind
//! an `Arc` and touch no locks while traversing, so multi-hop expansion
//! becomes contiguous range scans (RedisGraph-style) instead of
//! pointer-chasing under a store's read lock.
//!
//! Publication is arc-swap-style: an [`EpochCell`] holds the current
//! `Arc<CsrSnapshot>` behind an `RwLock` whose write critical section is
//! a single pointer swap, so readers pin an epoch in O(1) and never wait
//! on a store write lock or a checkpoint stall.
//!
//! Freshness is by epoch comparison: every snapshot records the store's
//! write sequence number at build time, and a snapshot is only served
//! when that epoch still equals the store's current write sequence.
//! A snapshot built concurrently with writes is therefore *harmless* —
//! it is stale on arrival and simply never served (see DESIGN.md §5d
//! for the torn-epoch argument).

use crate::backend::GraphBackend;
use crate::fxhash::FastMap;
use crate::graph::{Direction, PropertyMap};
use crate::ids::{EdgeLabel, VertexLabel, Vid, EDGE_LABELS, VERTEX_LABELS};
use crate::schema::PropKey;
use crate::value::Value;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of vertex labels (rows are indexed per label in `direct`).
const NUM_VLABELS: usize = VERTEX_LABELS.len();
/// Number of edge labels (one CSR segment per label per direction).
const NUM_ELABELS: usize = EDGE_LABELS.len();

/// Local ids below this bound use the dense per-label direct index;
/// anything sparser falls back to the hash map (mirrors the store's
/// own index split).
const DIRECT_LIMIT: u64 = 1 << 20;
const NO_ROW: u32 = u32::MAX;

/// One direction's adjacency: a CSR per edge label. `offsets[l]` has
/// `n_rows + 1` entries; the neighbours of `row` along label `l` are
/// `targets[l][offsets[l][row] .. offsets[l][row + 1]]`.
struct CsrDir {
    offsets: [Vec<u32>; NUM_ELABELS],
    targets: [Vec<u32>; NUM_ELABELS],
    /// Edge property maps aligned with `targets` (out direction only;
    /// empty vectors when the builder carries no edge properties).
    eprops: [Vec<Option<Arc<PropertyMap>>>; NUM_ELABELS],
}

impl CsrDir {
    fn new() -> Self {
        CsrDir {
            offsets: std::array::from_fn(|_| Vec::new()),
            targets: std::array::from_fn(|_| Vec::new()),
            eprops: std::array::from_fn(|_| Vec::new()),
        }
    }

    #[inline]
    fn slice(&self, row: u32, label: EdgeLabel) -> &[u32] {
        let l = label as usize;
        let off = &self.offsets[l];
        let (a, b) = (off[row as usize] as usize, off[row as usize + 1] as usize);
        &self.targets[l][a..b]
    }

    fn heap_bytes(&self) -> usize {
        let mut b = 0;
        for l in 0..NUM_ELABELS {
            b += self.offsets[l].capacity() * 4 + self.targets[l].capacity() * 4;
            b += self.eprops[l].capacity() * std::mem::size_of::<Option<Arc<PropertyMap>>>();
        }
        b
    }
}

/// An immutable CSR view of the graph at one write epoch. Row ids are
/// dense `u32`s assigned by the builder (the native store keeps them
/// slot-aligned; generic builds assign them in label-scan order).
pub struct CsrSnapshot {
    epoch: u64,
    vids: Vec<Vid>,
    props: Vec<Arc<PropertyMap>>,
    /// Hot dense columns: `FirstName` and `CreationDate` pulled out of
    /// the property maps so frontier-wide projections touch one array.
    first_name: Vec<Value>,
    creation_date: Vec<Value>,
    direct: [Vec<u32>; NUM_VLABELS],
    sparse: FastMap<Vid, u32>,
    by_label: [Vec<u32>; NUM_VLABELS],
    out: CsrDir,
    inn: CsrDir,
    edge_count: usize,
    has_edge_props: bool,
}

impl CsrSnapshot {
    /// The write sequence number this snapshot reflects.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    #[inline]
    pub fn n_rows(&self) -> usize {
        self.vids.len()
    }

    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether out-edge property maps were captured (the native store
    /// captures them; generic backend scans do not).
    #[inline]
    pub fn has_edge_props(&self) -> bool {
        self.has_edge_props
    }

    /// Row id for a vertex, if it exists in this epoch.
    #[inline]
    pub fn row_of(&self, v: Vid) -> Option<u32> {
        let local = v.local();
        if local < DIRECT_LIMIT {
            return match self.direct[v.label() as usize].get(local as usize) {
                Some(&r) if r != NO_ROW => Some(r),
                _ => None,
            };
        }
        self.sparse.get(&v).copied()
    }

    #[inline]
    pub fn vid_of(&self, row: u32) -> Vid {
        self.vids[row as usize]
    }

    #[inline]
    pub fn props_of(&self, row: u32) -> &PropertyMap {
        &self.props[row as usize]
    }

    /// The row's property map `Arc` (zero-copy row reuse during folds).
    #[inline]
    pub fn props_arc(&self, row: u32) -> &Arc<PropertyMap> {
        &self.props[row as usize]
    }

    /// Out-direction targets and aligned edge-property maps for one
    /// label (the eprops slice is empty when they were not captured).
    #[inline]
    pub fn out_slice(&self, row: u32, label: EdgeLabel) -> (&[u32], &[Option<Arc<PropertyMap>>]) {
        let l = label as usize;
        let off = &self.out.offsets[l];
        let (a, b) = (off[row as usize] as usize, off[row as usize + 1] as usize);
        let eprops = if self.has_edge_props { &self.out.eprops[l][a..b] } else { &[][..] };
        (&self.out.targets[l][a..b], eprops)
    }

    /// One property of one row; the hot columns skip the map lookup.
    #[inline]
    pub fn prop(&self, row: u32, key: PropKey) -> Option<Value> {
        match key {
            PropKey::FirstName => match &self.first_name[row as usize] {
                Value::Null => None,
                v => Some(v.clone()),
            },
            PropKey::CreationDate => match &self.creation_date[row as usize] {
                Value::Null => None,
                v => Some(v.clone()),
            },
            _ => self.props[row as usize].get(key).cloned(),
        }
    }

    /// All rows with the given vertex label.
    #[inline]
    pub fn rows_by_label(&self, label: VertexLabel) -> &[u32] {
        &self.by_label[label as usize]
    }

    /// Neighbour rows of `row` along `label` in one *concrete*
    /// direction as a contiguous CSR range (`dir` must be `Out`/`In`).
    #[inline]
    pub fn range(&self, row: u32, dir: Direction, label: EdgeLabel) -> &[u32] {
        match dir {
            Direction::Out => self.out.slice(row, label),
            Direction::In => self.inn.slice(row, label),
            Direction::Both => panic!("range() needs a concrete direction"),
        }
    }

    /// Append neighbour rows (Both = out then in, duplicates preserved,
    /// matching Gremlin `both()` and the store's `adj`).
    pub fn neighbors_into(&self, row: u32, dir: Direction, label: Option<EdgeLabel>, out: &mut Vec<u32>) {
        let dirs: &[&CsrDir] = match dir {
            Direction::Out => &[&self.out],
            Direction::In => &[&self.inn],
            Direction::Both => &[&self.out, &self.inn],
        };
        for d in dirs {
            match label {
                Some(l) => out.extend_from_slice(d.slice(row, l)),
                None => {
                    for l in EDGE_LABELS {
                        out.extend_from_slice(d.slice(row, l));
                    }
                }
            }
        }
    }

    /// Degree without materializing the neighbour list.
    pub fn degree(&self, row: u32, dir: Direction, label: Option<EdgeLabel>) -> usize {
        let dirs: &[&CsrDir] = match dir {
            Direction::Out => &[&self.out],
            Direction::In => &[&self.inn],
            Direction::Both => &[&self.out, &self.inn],
        };
        let mut n = 0;
        for d in dirs {
            match label {
                Some(l) => n += d.slice(row, l).len(),
                None => {
                    for l in EDGE_LABELS {
                        n += d.slice(row, l).len();
                    }
                }
            }
        }
        n
    }

    /// Average degree over at most `cap` rows of `label` (all rows when
    /// `label` is `None`). Feeds the query planner's cost model: the
    /// sample is the *first* `cap` rows of the label group, so the
    /// estimate is deterministic for a given snapshot and planning
    /// never pays a full adjacency sweep.
    pub fn sampled_avg_degree(&self, label: Option<VertexLabel>, dir: Direction, elabel: Option<EdgeLabel>, cap: usize) -> f64 {
        let mut total = 0usize;
        let mut n = 0usize;
        match label {
            Some(l) => {
                for &row in self.rows_by_label(l).iter().take(cap.max(1)) {
                    total += self.degree(row, dir, elabel);
                    n += 1;
                }
            }
            None => {
                for row in (0..self.n_rows() as u32).take(cap.max(1)) {
                    total += self.degree(row, dir, elabel);
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Out-edge property map of `src_row -[label]-> dst_row`, when edge
    /// properties were captured. `Ok(None)` = edge exists, no props;
    /// `Err(())` = edge not found in this snapshot.
    pub fn out_edge_props(&self, src_row: u32, label: EdgeLabel, dst_row: u32) -> std::result::Result<Option<&PropertyMap>, ()> {
        let l = label as usize;
        let off = &self.out.offsets[l];
        let (a, b) = (off[src_row as usize] as usize, off[src_row as usize + 1] as usize);
        for i in a..b {
            if self.out.targets[l][i] == dst_row {
                let p = self.out.eprops[l].get(i).and_then(|p| p.as_deref());
                return Ok(p);
            }
        }
        Err(())
    }

    /// Approximate resident bytes (diagnostics only).
    pub fn heap_bytes(&self) -> usize {
        self.vids.capacity() * 8
            + self.props.capacity() * std::mem::size_of::<Arc<PropertyMap>>()
            + (self.first_name.capacity() + self.creation_date.capacity()) * std::mem::size_of::<Value>()
            + self.direct.iter().map(|d| d.capacity() * 4).sum::<usize>()
            + self.by_label.iter().map(|d| d.capacity() * 4).sum::<usize>()
            + self.out.heap_bytes()
            + self.inn.heap_bytes()
    }
}

/// Row-major CSR builder. Push rows in row-id order; after each
/// [`CsrBuilder::push_row`], push that row's out- and in-edges, then
/// move on. `finish` seals the offsets and builds the vid index.
pub struct CsrBuilder {
    epoch: u64,
    vids: Vec<Vid>,
    props: Vec<Arc<PropertyMap>>,
    first_name: Vec<Value>,
    creation_date: Vec<Value>,
    out: CsrDir,
    inn: CsrDir,
    edge_count: usize,
    has_edge_props: bool,
}

impl CsrBuilder {
    pub fn new(epoch: u64, expected_rows: usize, with_edge_props: bool) -> Self {
        let mut b = CsrBuilder {
            epoch,
            vids: Vec::with_capacity(expected_rows),
            props: Vec::with_capacity(expected_rows),
            first_name: Vec::with_capacity(expected_rows),
            creation_date: Vec::with_capacity(expected_rows),
            out: CsrDir::new(),
            inn: CsrDir::new(),
            edge_count: 0,
            has_edge_props: with_edge_props,
        };
        for l in 0..NUM_ELABELS {
            b.out.offsets[l].reserve(expected_rows + 1);
            b.inn.offsets[l].reserve(expected_rows + 1);
        }
        b
    }

    /// Start the next row; returns its row id.
    pub fn push_row(&mut self, vid: Vid, props: Arc<PropertyMap>) -> u32 {
        let row = self.vids.len() as u32;
        for l in 0..NUM_ELABELS {
            self.out.offsets[l].push(self.out.targets[l].len() as u32);
            self.inn.offsets[l].push(self.inn.targets[l].len() as u32);
        }
        self.first_name.push(props.get(PropKey::FirstName).cloned().unwrap_or(Value::Null));
        self.creation_date.push(props.get(PropKey::CreationDate).cloned().unwrap_or(Value::Null));
        self.vids.push(vid);
        self.props.push(props);
        row
    }

    /// Add an out-edge from the *current* (last pushed) row.
    #[inline]
    pub fn push_out(&mut self, label: EdgeLabel, dst_row: u32, eprops: Option<Arc<PropertyMap>>) {
        let l = label as usize;
        self.out.targets[l].push(dst_row);
        if self.has_edge_props {
            self.out.eprops[l].push(eprops);
        }
        self.edge_count += 1;
    }

    /// Add an in-edge to the *current* (last pushed) row.
    #[inline]
    pub fn push_in(&mut self, label: EdgeLabel, src_row: u32) {
        self.inn.targets[label as usize].push(src_row);
    }

    pub fn finish(mut self) -> CsrSnapshot {
        for l in 0..NUM_ELABELS {
            self.out.offsets[l].push(self.out.targets[l].len() as u32);
            self.inn.offsets[l].push(self.inn.targets[l].len() as u32);
        }
        let mut direct: [Vec<u32>; NUM_VLABELS] = std::array::from_fn(|_| Vec::new());
        let mut sparse = FastMap::default();
        let mut by_label: [Vec<u32>; NUM_VLABELS] = std::array::from_fn(|_| Vec::new());
        for (row, &vid) in self.vids.iter().enumerate() {
            let row = row as u32;
            let local = vid.local();
            if local < DIRECT_LIMIT {
                let d = &mut direct[vid.label() as usize];
                if d.len() <= local as usize {
                    d.resize(local as usize + 1, NO_ROW);
                }
                d[local as usize] = row;
            } else {
                sparse.insert(vid, row);
            }
            by_label[vid.label() as usize].push(row);
        }
        CsrSnapshot {
            epoch: self.epoch,
            vids: self.vids,
            props: self.props,
            first_name: self.first_name,
            creation_date: self.creation_date,
            direct,
            sparse,
            by_label,
            out: self.out,
            inn: self.inn,
            edge_count: self.edge_count,
            has_edge_props: self.has_edge_props,
        }
    }
}

/// Arc-swap-style publication cell. The write critical section is the
/// pointer swap alone, so `load` never waits behind a snapshot build —
/// only behind another pointer swap (nanoseconds).
pub struct EpochCell {
    slot: RwLock<Option<Arc<CsrSnapshot>>>,
}

impl EpochCell {
    pub const fn new() -> Self {
        EpochCell { slot: RwLock::new(None) }
    }

    /// Pin the current snapshot (cheap: read-lock + Arc clone).
    #[inline]
    pub fn load(&self) -> Option<Arc<CsrSnapshot>> {
        self.slot.read().clone()
    }

    /// Epoch of the published snapshot, if any.
    #[inline]
    pub fn epoch(&self) -> Option<u64> {
        self.slot.read().as_ref().map(|s| s.epoch())
    }

    /// Publish a new snapshot (pointer swap under the write lock).
    pub fn store(&self, snap: Arc<CsrSnapshot>) {
        *self.slot.write() = Some(snap);
    }
}

impl Default for EpochCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Build a snapshot by scanning any [`GraphBackend`] through its public
/// API (label scans + per-label neighbour calls). Used by engines with
/// no native compactor (kvgraph, sqlg); edge properties are not
/// captured, so executors must route edge-property reads to the live
/// store. The caller supplies the epoch it observed *before* scanning —
/// if writes land mid-scan the result is stale on arrival and a
/// freshness check will refuse to serve it.
pub fn snapshot_from_backend<B: GraphBackend + ?Sized>(backend: &B, epoch: u64) -> crate::error::Result<CsrSnapshot> {
    let mut vids: Vec<Vid> = Vec::new();
    for label in VERTEX_LABELS {
        vids.extend(backend.vertices_by_label(label)?);
    }
    let mut row_of: FastMap<Vid, u32> = FastMap::default();
    row_of.reserve(vids.len());
    for (row, &vid) in vids.iter().enumerate() {
        row_of.insert(vid, row as u32);
    }
    let mut b = CsrBuilder::new(epoch, vids.len(), false);
    let mut buf: Vec<Vid> = Vec::new();
    for &vid in &vids {
        let props = Arc::new(PropertyMap::from_pairs(&backend.vertex_props(vid)?));
        b.push_row(vid, props);
        for label in EDGE_LABELS {
            buf.clear();
            backend.neighbors(vid, Direction::Out, Some(label), &mut buf)?;
            for dst in &buf {
                // A neighbour missing from the scan means it was added
                // mid-build; the snapshot is already stale, skip it.
                if let Some(&r) = row_of.get(dst) {
                    b.push_out(label, r, None);
                }
            }
            buf.clear();
            backend.neighbors(vid, Direction::In, Some(label), &mut buf)?;
            for src in &buf {
                if let Some(&r) = row_of.get(src) {
                    b.push_in(label, r);
                }
            }
        }
    }
    Ok(b.finish())
}

/// How many consecutive stale pins a [`SnapshotCache`] tolerates before
/// paying for a rebuild. A write burst invalidates the snapshot; the
/// first few reads after it run on the live path, and a sustained read
/// phase triggers one rebuild that the rest of the phase amortizes.
const REBUILD_AFTER_STALE_PINS: u64 = 32;

/// Freshness-checked snapshot cache for engines without a native
/// compactor. The engine bumps [`SnapshotCache::note_writes`] on every
/// mutation; [`SnapshotCache::pin`] serves the cached snapshot only
/// when its epoch equals the current write count, and rebuilds (with
/// hysteresis) otherwise.
pub struct SnapshotCache {
    cell: EpochCell,
    writes: AtomicU64,
    stale_pins: AtomicU64,
    rebuild: Mutex<()>,
}

impl SnapshotCache {
    pub const fn new() -> Self {
        SnapshotCache {
            cell: EpochCell::new(),
            writes: AtomicU64::new(0),
            stale_pins: AtomicU64::new(0),
            rebuild: Mutex::new(()),
        }
    }

    /// Record `n` applied writes (invalidates the cached epoch).
    #[inline]
    pub fn note_writes(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Release);
    }

    /// Current write sequence (the epoch a fresh snapshot must carry).
    #[inline]
    pub fn write_seq(&self) -> u64 {
        self.writes.load(Ordering::Acquire)
    }

    /// Pin a snapshot that reflects *exactly* the writes applied so
    /// far, or `None` (caller falls back to its live read path — this
    /// preserves read-your-writes).
    pub fn pin<B: GraphBackend + ?Sized>(&self, backend: &B) -> Option<Arc<CsrSnapshot>> {
        self.pin_with(|seq| snapshot_from_backend(backend, seq))
    }

    /// [`SnapshotCache::pin`] with a caller-supplied builder — for
    /// engines whose natural scan is not the `GraphBackend` API (e.g.
    /// the SQL/SPARQL adapters build a Person/Knows CSR from two bulk
    /// queries). The builder receives the epoch to stamp.
    pub fn pin_with<F>(&self, build: F) -> Option<Arc<CsrSnapshot>>
    where
        F: FnOnce(u64) -> crate::error::Result<CsrSnapshot>,
    {
        let seq = self.writes.load(Ordering::Acquire);
        if let Some(snap) = self.cell.load() {
            if snap.epoch() == seq {
                self.stale_pins.store(0, Ordering::Relaxed);
                return Some(snap);
            }
        }
        let stale = self.stale_pins.fetch_add(1, Ordering::Relaxed) + 1;
        if stale < REBUILD_AFTER_STALE_PINS && self.cell.epoch().is_some() {
            return None;
        }
        // One rebuilder at a time; everyone else keeps using the live
        // path rather than piling up behind the build.
        let _g = self.rebuild.try_lock()?;
        let seq = self.writes.load(Ordering::Acquire);
        let snap = Arc::new(build(seq).ok()?);
        self.cell.store(snap.clone());
        self.stale_pins.store(0, Ordering::Relaxed);
        // Serve only if no write raced the scan (see module docs).
        if self.writes.load(Ordering::Acquire) == seq {
            Some(snap)
        } else {
            None
        }
    }
}

impl Default for SnapshotCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm(pairs: &[(PropKey, Value)]) -> Arc<PropertyMap> {
        Arc::new(PropertyMap::from_pairs(pairs))
    }

    #[test]
    fn builder_roundtrip_and_ranges() {
        // 0 -Knows-> 1, 0 -Knows-> 2, 2 -Likes-> 0
        let mut b = CsrBuilder::new(7, 3, true);
        let v = [
            Vid::new(VertexLabel::Person, 10),
            Vid::new(VertexLabel::Person, 11),
            Vid::new(VertexLabel::Post, 5),
        ];
        b.push_row(v[0], pm(&[(PropKey::FirstName, Value::str("a"))]));
        b.push_out(EdgeLabel::Knows, 1, Some(pm(&[(PropKey::CreationDate, Value::Date(9))])));
        b.push_out(EdgeLabel::Knows, 2, None);
        b.push_in(EdgeLabel::Likes, 2);
        b.push_row(v[1], pm(&[]));
        b.push_in(EdgeLabel::Knows, 0);
        b.push_row(v[2], pm(&[(PropKey::CreationDate, Value::Date(3))]));
        b.push_out(EdgeLabel::Likes, 0, None);
        b.push_in(EdgeLabel::Knows, 0);
        let s = b.finish();

        assert_eq!(s.epoch(), 7);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.row_of(v[0]), Some(0));
        assert_eq!(s.row_of(v[2]), Some(2));
        assert_eq!(s.row_of(Vid::new(VertexLabel::Person, 99)), None);
        assert_eq!(s.vid_of(2), v[2]);
        assert_eq!(s.range(0, Direction::Out, EdgeLabel::Knows), &[1, 2]);
        assert_eq!(s.range(1, Direction::In, EdgeLabel::Knows), &[0]);
        let mut both = Vec::new();
        s.neighbors_into(0, Direction::Both, None, &mut both);
        assert_eq!(both, vec![1, 2, 2]);
        assert_eq!(s.degree(0, Direction::Both, None), 3);
        assert_eq!(s.degree(0, Direction::Out, Some(EdgeLabel::Knows)), 2);
        assert_eq!(s.prop(0, PropKey::FirstName), Some(Value::str("a")));
        assert_eq!(s.prop(1, PropKey::FirstName), None);
        assert_eq!(s.prop(2, PropKey::CreationDate), Some(Value::Date(3)));
        assert_eq!(s.rows_by_label(VertexLabel::Person), &[0, 1]);
        assert_eq!(s.rows_by_label(VertexLabel::Post), &[2]);
        let ep = s.out_edge_props(0, EdgeLabel::Knows, 1).unwrap().unwrap();
        assert_eq!(ep.get(PropKey::CreationDate), Some(&Value::Date(9)));
        assert_eq!(s.out_edge_props(0, EdgeLabel::Knows, 2).unwrap(), None);
        assert!(s.out_edge_props(1, EdgeLabel::Knows, 0).is_err());
    }

    #[test]
    fn sparse_local_ids_indexed() {
        let mut b = CsrBuilder::new(0, 1, false);
        let v = Vid::new(VertexLabel::Person, DIRECT_LIMIT + 5);
        b.push_row(v, pm(&[]));
        let s = b.finish();
        assert_eq!(s.row_of(v), Some(0));
        assert_eq!(s.row_of(Vid::new(VertexLabel::Person, DIRECT_LIMIT + 6)), None);
    }

    #[test]
    fn epoch_cell_swap() {
        let cell = EpochCell::new();
        assert!(cell.load().is_none());
        cell.store(Arc::new(CsrBuilder::new(1, 0, false).finish()));
        assert_eq!(cell.epoch(), Some(1));
        cell.store(Arc::new(CsrBuilder::new(2, 0, false).finish()));
        assert_eq!(cell.load().unwrap().epoch(), 2);
    }
}
