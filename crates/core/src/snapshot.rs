//! Epoch-based immutable CSR read snapshots.
//!
//! A [`CsrSnapshot`] is a compressed-sparse-row copy of a graph at one
//! write epoch: per-edge-label, per-direction offset/target arrays over
//! dense row ids, an `Arc`'d property map per row, and dense columns for
//! the hot Person/Post fields. It is immutable — readers share it behind
//! an `Arc` and touch no locks while traversing, so multi-hop expansion
//! becomes contiguous range scans (RedisGraph-style) instead of
//! pointer-chasing under a store's read lock.
//!
//! Publication is arc-swap-style: an [`EpochCell`] holds the current
//! `Arc<CsrSnapshot>` behind an `RwLock` whose write critical section is
//! a single pointer swap, so readers pin an epoch in O(1) and never wait
//! on a store write lock or a checkpoint stall.
//!
//! Freshness is by epoch comparison: every snapshot records the store's
//! write sequence number at build time, and a snapshot is only served
//! when that epoch still equals the store's current write sequence.
//! A snapshot built concurrently with writes is therefore *harmless* —
//! it is stale on arrival and simply never served (see DESIGN.md §5d
//! for the torn-epoch argument).

use crate::backend::GraphBackend;
use crate::error::SnbError;
use crate::fxhash::FastMap;
use crate::graph::{Direction, PropertyMap};
use crate::ids::{EdgeLabel, VertexLabel, Vid, EDGE_LABELS, VERTEX_LABELS};
use crate::schema::PropKey;
use crate::value::Value;
use parking_lot::{Mutex, RwLock};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of vertex labels (rows are indexed per label in `direct`).
const NUM_VLABELS: usize = VERTEX_LABELS.len();
/// Number of edge labels (one CSR segment per label per direction).
const NUM_ELABELS: usize = EDGE_LABELS.len();

/// Local ids below this bound use the dense per-label direct index;
/// anything sparser falls back to the hash map (mirrors the store's
/// own index split). 2^24 covers SF-class datasets (millions of
/// sequentially-assigned persons/messages) at ≤ 64 MiB per populated
/// label.
const DIRECT_LIMIT: u64 = 1 << 24;
const NO_ROW: u32 = u32::MAX;
/// `first_name` column sentinel: no plain-string value in the hot
/// column — consult the row's property map.
const NO_NAME: u32 = u32::MAX;
/// `creation_date` column sentinel (epoch-ms dates never reach it).
const DATE_NONE: i64 = i64::MIN;

/// Checked row-id conversion: `usize` → dense `u32` row id. Everything
/// that mints a row id funnels through here so a >2^32-row build (or
/// one that would collide with the `NO_ROW` sentinel) surfaces a typed
/// error instead of silently truncating adjacency.
#[inline]
fn checked_row(n: usize) -> crate::error::Result<u32> {
    if n >= NO_ROW as usize {
        return Err(SnbError::Capacity(format!("CSR row id space exhausted at {n} rows")));
    }
    Ok(n as u32)
}

/// Checked CSR offset conversion (`targets.len()` → `u32` offset).
#[inline]
fn checked_offset(n: usize) -> crate::error::Result<u32> {
    if n > u32::MAX as usize {
        return Err(SnbError::Capacity(format!("CSR offset space exhausted at {n} edges")));
    }
    Ok(n as u32)
}

/// One direction's adjacency: a CSR per edge label. `offsets[l]` has
/// `n_rows + 1` entries; the neighbours of `row` along label `l` are
/// `targets[l][offsets[l][row] .. offsets[l][row + 1]]`.
struct CsrDir {
    offsets: [Vec<u32>; NUM_ELABELS],
    targets: [Vec<u32>; NUM_ELABELS],
    /// Edge property maps aligned with `targets` (out direction only;
    /// empty vectors when the builder carries no edge properties).
    eprops: [Vec<Option<Arc<PropertyMap>>>; NUM_ELABELS],
}

impl CsrDir {
    fn new() -> Self {
        CsrDir {
            offsets: std::array::from_fn(|_| Vec::new()),
            targets: std::array::from_fn(|_| Vec::new()),
            eprops: std::array::from_fn(|_| Vec::new()),
        }
    }

    #[inline]
    fn slice(&self, row: u32, label: EdgeLabel) -> &[u32] {
        let l = label as usize;
        let off = &self.offsets[l];
        let (a, b) = (off[row as usize] as usize, off[row as usize + 1] as usize);
        &self.targets[l][a..b]
    }

    fn heap_bytes(&self) -> usize {
        let mut b = 0;
        for l in 0..NUM_ELABELS {
            b += self.offsets[l].capacity() * 4 + self.targets[l].capacity() * 4;
            b += self.eprops[l].capacity() * std::mem::size_of::<Option<Arc<PropertyMap>>>();
        }
        b
    }
}

/// An immutable CSR view of the graph at one write epoch. Row ids are
/// dense `u32`s assigned by the builder (the native store keeps them
/// slot-aligned; generic builds assign them in label-scan order).
pub struct CsrSnapshot {
    epoch: u64,
    vids: Vec<Vid>,
    props: Vec<Arc<PropertyMap>>,
    /// Hot dense columns: `FirstName` and `CreationDate` pulled out of
    /// the property maps so frontier-wide projections touch one array.
    /// `first_name` is dictionary-coded — 4 bytes per row pointing into
    /// `names` instead of a 32-byte `Value` (and no per-row string
    /// clone); `creation_date` is the raw epoch-ms `i64`. Rows whose
    /// value is absent or not the expected shape carry a sentinel and
    /// fall back to the property map.
    first_name: Vec<u32>,
    names: Vec<Arc<str>>,
    creation_date: Vec<i64>,
    direct: [Vec<u32>; NUM_VLABELS],
    sparse: FastMap<Vid, u32>,
    by_label: [Vec<u32>; NUM_VLABELS],
    out: CsrDir,
    inn: CsrDir,
    edge_count: usize,
    has_edge_props: bool,
}

impl CsrSnapshot {
    /// The write sequence number this snapshot reflects.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    #[inline]
    pub fn n_rows(&self) -> usize {
        self.vids.len()
    }

    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether out-edge property maps were captured (the native store
    /// captures them; generic backend scans do not).
    #[inline]
    pub fn has_edge_props(&self) -> bool {
        self.has_edge_props
    }

    /// Row id for a vertex, if it exists in this epoch.
    #[inline]
    pub fn row_of(&self, v: Vid) -> Option<u32> {
        let local = v.local();
        if local < DIRECT_LIMIT {
            return match self.direct[v.label() as usize].get(local as usize) {
                Some(&r) if r != NO_ROW => Some(r),
                _ => None,
            };
        }
        self.sparse.get(&v).copied()
    }

    #[inline]
    pub fn vid_of(&self, row: u32) -> Vid {
        self.vids[row as usize]
    }

    #[inline]
    pub fn props_of(&self, row: u32) -> &PropertyMap {
        &self.props[row as usize]
    }

    /// The row's property map `Arc` (zero-copy row reuse during folds).
    #[inline]
    pub fn props_arc(&self, row: u32) -> &Arc<PropertyMap> {
        &self.props[row as usize]
    }

    /// Out-direction targets and aligned edge-property maps for one
    /// label (the eprops slice is empty when they were not captured).
    #[inline]
    pub fn out_slice(&self, row: u32, label: EdgeLabel) -> (&[u32], &[Option<Arc<PropertyMap>>]) {
        let l = label as usize;
        let off = &self.out.offsets[l];
        let (a, b) = (off[row as usize] as usize, off[row as usize + 1] as usize);
        let eprops = if self.has_edge_props { &self.out.eprops[l][a..b] } else { &[][..] };
        (&self.out.targets[l][a..b], eprops)
    }

    /// One property of one row; the hot columns skip the map lookup.
    #[inline]
    pub fn prop(&self, row: u32, key: PropKey) -> Option<Value> {
        match key {
            PropKey::FirstName => match self.first_name[row as usize] {
                NO_NAME => self.props[row as usize].get(key).cloned(),
                code => Some(Value::Str(Arc::clone(&self.names[code as usize]))),
            },
            PropKey::CreationDate => match self.creation_date[row as usize] {
                DATE_NONE => self.props[row as usize].get(key).cloned(),
                d => Some(Value::Date(d)),
            },
            _ => self.props[row as usize].get(key).cloned(),
        }
    }

    /// Raw epoch-ms `creationDate` of a row, `None` when absent or not
    /// a `Date`. The complex-read operators filter and rank millions of
    /// message rows on this — one i64 array read, no `Value` built.
    #[inline]
    pub fn creation_date_ms(&self, row: u32) -> Option<i64> {
        match self.creation_date[row as usize] {
            DATE_NONE => match self.props[row as usize].get(PropKey::CreationDate) {
                Some(Value::Date(d)) => Some(*d),
                _ => None,
            },
            d => Some(d),
        }
    }

    /// All rows with the given vertex label.
    #[inline]
    pub fn rows_by_label(&self, label: VertexLabel) -> &[u32] {
        &self.by_label[label as usize]
    }

    /// Neighbour rows of `row` along `label` in one *concrete*
    /// direction as a contiguous CSR range (`dir` must be `Out`/`In`).
    #[inline]
    pub fn range(&self, row: u32, dir: Direction, label: EdgeLabel) -> &[u32] {
        match dir {
            Direction::Out => self.out.slice(row, label),
            Direction::In => self.inn.slice(row, label),
            Direction::Both => panic!("range() needs a concrete direction"),
        }
    }

    /// Append neighbour rows (Both = out then in, duplicates preserved,
    /// matching Gremlin `both()` and the store's `adj`).
    pub fn neighbors_into(&self, row: u32, dir: Direction, label: Option<EdgeLabel>, out: &mut Vec<u32>) {
        let dirs: &[&CsrDir] = match dir {
            Direction::Out => &[&self.out],
            Direction::In => &[&self.inn],
            Direction::Both => &[&self.out, &self.inn],
        };
        for d in dirs {
            match label {
                Some(l) => out.extend_from_slice(d.slice(row, l)),
                None => {
                    for l in EDGE_LABELS {
                        out.extend_from_slice(d.slice(row, l));
                    }
                }
            }
        }
    }

    /// Degree without materializing the neighbour list.
    pub fn degree(&self, row: u32, dir: Direction, label: Option<EdgeLabel>) -> usize {
        let dirs: &[&CsrDir] = match dir {
            Direction::Out => &[&self.out],
            Direction::In => &[&self.inn],
            Direction::Both => &[&self.out, &self.inn],
        };
        let mut n = 0;
        for d in dirs {
            match label {
                Some(l) => n += d.slice(row, l).len(),
                None => {
                    for l in EDGE_LABELS {
                        n += d.slice(row, l).len();
                    }
                }
            }
        }
        n
    }

    /// Average degree over at most `cap` rows of `label` (all rows when
    /// `label` is `None`). Feeds the query planner's cost model: the
    /// sample is the *first* `cap` rows of the label group, so the
    /// estimate is deterministic for a given snapshot and planning
    /// never pays a full adjacency sweep.
    pub fn sampled_avg_degree(&self, label: Option<VertexLabel>, dir: Direction, elabel: Option<EdgeLabel>, cap: usize) -> f64 {
        let mut total = 0usize;
        let mut n = 0usize;
        match label {
            Some(l) => {
                for &row in self.rows_by_label(l).iter().take(cap.max(1)) {
                    total += self.degree(row, dir, elabel);
                    n += 1;
                }
            }
            None => {
                for row in (0..self.n_rows() as u32).take(cap.max(1)) {
                    total += self.degree(row, dir, elabel);
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Out-edge property map of `src_row -[label]-> dst_row`, when edge
    /// properties were captured. `Ok(None)` = edge exists, no props;
    /// `Err(())` = edge not found in this snapshot.
    pub fn out_edge_props(&self, src_row: u32, label: EdgeLabel, dst_row: u32) -> std::result::Result<Option<&PropertyMap>, ()> {
        let l = label as usize;
        let off = &self.out.offsets[l];
        let (a, b) = (off[src_row as usize] as usize, off[src_row as usize + 1] as usize);
        for i in a..b {
            if self.out.targets[l][i] == dst_row {
                let p = self.out.eprops[l].get(i).and_then(|p| p.as_deref());
                return Ok(p);
            }
        }
        Err(())
    }

    /// Bytes attributable to per-vertex structures: row metadata, the
    /// hot columns and their dictionary, the row indexes, and the deep
    /// size of every property map. Dividing by [`CsrSnapshot::n_rows`]
    /// is the `bytes_per_vertex` the scale bench gates.
    pub fn vertex_bytes(&self) -> usize {
        let maps: usize = self
            .props
            .iter()
            .map(|p| std::mem::size_of::<PropertyMap>() + p.heap_bytes())
            .sum();
        self.vids.capacity() * 8
            + self.props.capacity() * std::mem::size_of::<Arc<PropertyMap>>()
            + self.first_name.capacity() * 4
            + self.names.iter().map(|n| n.len() + std::mem::size_of::<Arc<str>>()).sum::<usize>()
            + self.creation_date.capacity() * 8
            + self.direct.iter().map(|d| d.capacity() * 4).sum::<usize>()
            + self.by_label.iter().map(|d| d.capacity() * 4).sum::<usize>()
            + maps
    }

    /// Bytes attributable to adjacency: offsets, targets, and edge
    /// property slots in both directions.
    pub fn edge_bytes(&self) -> usize {
        self.out.heap_bytes() + self.inn.heap_bytes()
    }

    /// Average resident bytes per vertex row (0 when empty).
    pub fn bytes_per_vertex(&self) -> f64 {
        if self.n_rows() == 0 {
            return 0.0;
        }
        self.vertex_bytes() as f64 / self.n_rows() as f64
    }

    /// Average resident adjacency bytes per stored edge (0 when empty).
    /// Each logical edge appears in both an out- and an in-list.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.edge_count == 0 {
            return 0.0;
        }
        self.edge_bytes() as f64 / self.edge_count as f64
    }

    /// Approximate resident bytes (diagnostics only).
    pub fn heap_bytes(&self) -> usize {
        self.vertex_bytes() + self.edge_bytes()
    }
}

/// Copy the adjacency of rows `range` from `src` into `dst`, rebasing
/// the per-label CSR offsets onto `dst`'s current target lengths.
fn copy_dir(
    dst: &mut CsrDir,
    src: &CsrDir,
    range: &Range<usize>,
    copy_eprops: bool,
    src_has_eprops: bool,
) -> crate::error::Result<()> {
    for l in 0..NUM_ELABELS {
        let ooff = &src.offsets[l];
        let (a, b) = (ooff[range.start] as usize, ooff[range.end] as usize);
        let base = dst.targets[l].len();
        checked_offset(base + (b - a))?;
        dst.offsets[l].extend(ooff[range.start..range.end].iter().map(|&o| (o as usize - a + base) as u32));
        dst.targets[l].extend_from_slice(&src.targets[l][a..b]);
        if copy_eprops {
            if src_has_eprops {
                dst.eprops[l].extend(src.eprops[l][a..b].iter().cloned());
            } else {
                dst.eprops[l].extend((a..b).map(|_| None));
            }
        }
    }
    Ok(())
}

/// Row-major CSR builder. Push rows in row-id order; after each
/// [`CsrBuilder::push_row`], push that row's out- and in-edges, then
/// move on. `finish` seals the offsets and builds the vid index.
pub struct CsrBuilder {
    epoch: u64,
    vids: Vec<Vid>,
    props: Vec<Arc<PropertyMap>>,
    first_name: Vec<u32>,
    names: Vec<Arc<str>>,
    name_code: FastMap<Arc<str>, u32>,
    creation_date: Vec<i64>,
    out: CsrDir,
    inn: CsrDir,
    edge_count: usize,
    has_edge_props: bool,
}

impl CsrBuilder {
    pub fn new(epoch: u64, expected_rows: usize, with_edge_props: bool) -> Self {
        let mut b = CsrBuilder {
            epoch,
            vids: Vec::with_capacity(expected_rows),
            props: Vec::with_capacity(expected_rows),
            first_name: Vec::with_capacity(expected_rows),
            names: Vec::new(),
            name_code: FastMap::default(),
            creation_date: Vec::with_capacity(expected_rows),
            out: CsrDir::new(),
            inn: CsrDir::new(),
            edge_count: 0,
            has_edge_props: with_edge_props,
        };
        for l in 0..NUM_ELABELS {
            b.out.offsets[l].reserve(expected_rows + 1);
            b.inn.offsets[l].reserve(expected_rows + 1);
        }
        b
    }

    /// Intern a first-name string into the snapshot dictionary. The
    /// generator draws names from a fixed dictionary, so this stays a
    /// few hundred entries no matter how many million rows reference it.
    fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&c) = self.name_code.get(s) {
            return c;
        }
        let c = self.names.len() as u32;
        self.names.push(Arc::clone(s));
        self.name_code.insert(Arc::clone(s), c);
        c
    }

    fn push_hot_columns(&mut self, props: &PropertyMap) {
        let code = match props.get(PropKey::FirstName) {
            Some(Value::Str(s)) => {
                let s = Arc::clone(s);
                self.intern(&s)
            }
            _ => NO_NAME,
        };
        self.first_name.push(code);
        self.creation_date.push(match props.get(PropKey::CreationDate) {
            Some(Value::Date(d)) => *d,
            _ => DATE_NONE,
        });
    }

    /// Start the next row; returns its row id, or a typed capacity
    /// error once the dense u32 row/offset space is exhausted.
    pub fn push_row(&mut self, vid: Vid, props: Arc<PropertyMap>) -> crate::error::Result<u32> {
        let row = checked_row(self.vids.len())?;
        for l in 0..NUM_ELABELS {
            self.out.offsets[l].push(checked_offset(self.out.targets[l].len())?);
            self.inn.offsets[l].push(checked_offset(self.inn.targets[l].len())?);
        }
        self.push_hot_columns(&props);
        self.vids.push(vid);
        self.props.push(props);
        Ok(row)
    }

    /// Bulk-copy rows `range` from an older snapshot: row metadata, hot
    /// columns (dictionary codes remapped), and adjacency in both
    /// directions, rebasing the CSR offsets. This is the delta-friendly
    /// fold path — clean row runs cost a few `memcpy`s instead of a
    /// per-row rebuild, and need **no** lock on the live store.
    ///
    /// Contract: the copied rows' target row ids must be valid and
    /// identical in the snapshot under construction (the native fold
    /// keeps rows slot-aligned, so any prefix of `0..old.n_rows()`
    /// qualifies), and rows must still be pushed in row-id order.
    pub fn extend_rows_from(&mut self, old: &CsrSnapshot, range: Range<usize>) -> crate::error::Result<()> {
        if range.is_empty() {
            return Ok(());
        }
        debug_assert_eq!(self.vids.len(), range.start, "rows must stay slot-aligned");
        checked_row(self.vids.len() + range.len() - 1)?;
        self.vids.extend_from_slice(&old.vids[range.clone()]);
        self.props.extend(old.props[range.clone()].iter().cloned());
        self.creation_date.extend_from_slice(&old.creation_date[range.clone()]);
        // Remap dictionary codes old → new. The dictionaries are tiny;
        // memoize per distinct old code.
        let mut remap: FastMap<u32, u32> = FastMap::default();
        for &code in &old.first_name[range.clone()] {
            let new_code = if code == NO_NAME {
                NO_NAME
            } else if let Some(&c) = remap.get(&code) {
                c
            } else {
                let s = Arc::clone(&old.names[code as usize]);
                let c = self.intern(&s);
                remap.insert(code, c);
                c
            };
            self.first_name.push(new_code);
        }
        copy_dir(&mut self.out, &old.out, &range, self.has_edge_props, old.has_edge_props)?;
        copy_dir(&mut self.inn, &old.inn, &range, false, false)?;
        self.edge_count += (old.out.offsets.iter())
            .map(|off| off[range.end] as usize - off[range.start] as usize)
            .sum::<usize>();
        Ok(())
    }

    /// Add an out-edge from the *current* (last pushed) row.
    #[inline]
    pub fn push_out(&mut self, label: EdgeLabel, dst_row: u32, eprops: Option<Arc<PropertyMap>>) {
        let l = label as usize;
        self.out.targets[l].push(dst_row);
        if self.has_edge_props {
            self.out.eprops[l].push(eprops);
        }
        self.edge_count += 1;
    }

    /// Add an in-edge to the *current* (last pushed) row.
    #[inline]
    pub fn push_in(&mut self, label: EdgeLabel, src_row: u32) {
        self.inn.targets[label as usize].push(src_row);
    }

    pub fn finish(mut self) -> crate::error::Result<CsrSnapshot> {
        for l in 0..NUM_ELABELS {
            self.out.offsets[l].push(checked_offset(self.out.targets[l].len())?);
            self.inn.offsets[l].push(checked_offset(self.inn.targets[l].len())?);
        }
        let mut direct: [Vec<u32>; NUM_VLABELS] = std::array::from_fn(|_| Vec::new());
        let mut sparse = FastMap::default();
        let mut by_label: [Vec<u32>; NUM_VLABELS] = std::array::from_fn(|_| Vec::new());
        for (row, &vid) in self.vids.iter().enumerate() {
            let row = row as u32; // ≤ NO_ROW: checked at push time
            let local = vid.local();
            if local < DIRECT_LIMIT {
                let d = &mut direct[vid.label() as usize];
                if d.len() <= local as usize {
                    d.resize(local as usize + 1, NO_ROW);
                }
                d[local as usize] = row;
            } else {
                sparse.insert(vid, row);
            }
            by_label[vid.label() as usize].push(row);
        }
        Ok(CsrSnapshot {
            epoch: self.epoch,
            vids: self.vids,
            props: self.props,
            first_name: self.first_name,
            names: self.names,
            creation_date: self.creation_date,
            direct,
            sparse,
            by_label,
            out: self.out,
            inn: self.inn,
            edge_count: self.edge_count,
            has_edge_props: self.has_edge_props,
        })
    }
}

/// Arc-swap-style publication cell. The write critical section is the
/// pointer swap alone, so `load` never waits behind a snapshot build —
/// only behind another pointer swap (nanoseconds).
pub struct EpochCell {
    slot: RwLock<Option<Arc<CsrSnapshot>>>,
}

impl EpochCell {
    pub const fn new() -> Self {
        EpochCell { slot: RwLock::new(None) }
    }

    /// Pin the current snapshot (cheap: read-lock + Arc clone).
    #[inline]
    pub fn load(&self) -> Option<Arc<CsrSnapshot>> {
        self.slot.read().clone()
    }

    /// Epoch of the published snapshot, if any.
    #[inline]
    pub fn epoch(&self) -> Option<u64> {
        self.slot.read().as_ref().map(|s| s.epoch())
    }

    /// Publish a new snapshot (pointer swap under the write lock).
    pub fn store(&self, snap: Arc<CsrSnapshot>) {
        *self.slot.write() = Some(snap);
    }
}

impl Default for EpochCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Build a snapshot by scanning any [`GraphBackend`] through its public
/// API (label scans + per-label neighbour calls). Used by engines with
/// no native compactor (kvgraph, sqlg); edge properties are not
/// captured, so executors must route edge-property reads to the live
/// store. The caller supplies the epoch it observed *before* scanning —
/// if writes land mid-scan the result is stale on arrival and a
/// freshness check will refuse to serve it.
pub fn snapshot_from_backend<B: GraphBackend + ?Sized>(backend: &B, epoch: u64) -> crate::error::Result<CsrSnapshot> {
    let mut vids: Vec<Vid> = Vec::new();
    for label in VERTEX_LABELS {
        vids.extend(backend.vertices_by_label(label)?);
    }
    let mut row_of: FastMap<Vid, u32> = FastMap::default();
    row_of.reserve(vids.len());
    for (row, &vid) in vids.iter().enumerate() {
        row_of.insert(vid, row as u32);
    }
    let mut b = CsrBuilder::new(epoch, vids.len(), false);
    let mut buf: Vec<Vid> = Vec::new();
    for &vid in &vids {
        let props = Arc::new(PropertyMap::from_pairs(&backend.vertex_props(vid)?));
        b.push_row(vid, props)?;
        for label in EDGE_LABELS {
            buf.clear();
            backend.neighbors(vid, Direction::Out, Some(label), &mut buf)?;
            for dst in &buf {
                // A neighbour missing from the scan means it was added
                // mid-build; the snapshot is already stale, skip it.
                if let Some(&r) = row_of.get(dst) {
                    b.push_out(label, r, None);
                }
            }
            buf.clear();
            backend.neighbors(vid, Direction::In, Some(label), &mut buf)?;
            for src in &buf {
                if let Some(&r) = row_of.get(src) {
                    b.push_in(label, r);
                }
            }
        }
    }
    b.finish()
}

/// How many consecutive stale pins a [`SnapshotCache`] tolerates before
/// paying for a rebuild. A write burst invalidates the snapshot; the
/// first few reads after it run on the live path, and a sustained read
/// phase triggers one rebuild that the rest of the phase amortizes.
const REBUILD_AFTER_STALE_PINS: u64 = 32;

/// Freshness-checked snapshot cache for engines without a native
/// compactor. The engine bumps [`SnapshotCache::note_writes`] on every
/// mutation; [`SnapshotCache::pin`] serves the cached snapshot only
/// when its epoch equals the current write count, and rebuilds (with
/// hysteresis) otherwise.
pub struct SnapshotCache {
    cell: EpochCell,
    writes: AtomicU64,
    stale_pins: AtomicU64,
    rebuild: Mutex<()>,
}

impl SnapshotCache {
    pub const fn new() -> Self {
        SnapshotCache {
            cell: EpochCell::new(),
            writes: AtomicU64::new(0),
            stale_pins: AtomicU64::new(0),
            rebuild: Mutex::new(()),
        }
    }

    /// Record `n` applied writes (invalidates the cached epoch).
    #[inline]
    pub fn note_writes(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Release);
    }

    /// Current write sequence (the epoch a fresh snapshot must carry).
    #[inline]
    pub fn write_seq(&self) -> u64 {
        self.writes.load(Ordering::Acquire)
    }

    /// Pin a snapshot that reflects *exactly* the writes applied so
    /// far, or `None` (caller falls back to its live read path — this
    /// preserves read-your-writes).
    pub fn pin<B: GraphBackend + ?Sized>(&self, backend: &B) -> Option<Arc<CsrSnapshot>> {
        self.pin_with(|seq| snapshot_from_backend(backend, seq))
    }

    /// [`SnapshotCache::pin`] with a caller-supplied builder — for
    /// engines whose natural scan is not the `GraphBackend` API (e.g.
    /// the SQL/SPARQL adapters build a Person/Knows CSR from two bulk
    /// queries). The builder receives the epoch to stamp.
    pub fn pin_with<F>(&self, build: F) -> Option<Arc<CsrSnapshot>>
    where
        F: FnOnce(u64) -> crate::error::Result<CsrSnapshot>,
    {
        let seq = self.writes.load(Ordering::Acquire);
        if let Some(snap) = self.cell.load() {
            if snap.epoch() == seq {
                self.stale_pins.store(0, Ordering::Relaxed);
                return Some(snap);
            }
        }
        let stale = self.stale_pins.fetch_add(1, Ordering::Relaxed) + 1;
        if stale < REBUILD_AFTER_STALE_PINS && self.cell.epoch().is_some() {
            return None;
        }
        // One rebuilder at a time; everyone else keeps using the live
        // path rather than piling up behind the build.
        let _g = self.rebuild.try_lock()?;
        let seq = self.writes.load(Ordering::Acquire);
        let snap = Arc::new(build(seq).ok()?);
        self.cell.store(snap.clone());
        self.stale_pins.store(0, Ordering::Relaxed);
        // Serve only if no write raced the scan (see module docs).
        if self.writes.load(Ordering::Acquire) == seq {
            Some(snap)
        } else {
            None
        }
    }
}

impl Default for SnapshotCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm(pairs: &[(PropKey, Value)]) -> Arc<PropertyMap> {
        Arc::new(PropertyMap::from_pairs(pairs))
    }

    #[test]
    fn builder_roundtrip_and_ranges() {
        // 0 -Knows-> 1, 0 -Knows-> 2, 2 -Likes-> 0
        let mut b = CsrBuilder::new(7, 3, true);
        let v = [
            Vid::new(VertexLabel::Person, 10),
            Vid::new(VertexLabel::Person, 11),
            Vid::new(VertexLabel::Post, 5),
        ];
        b.push_row(v[0], pm(&[(PropKey::FirstName, Value::str("a"))])).unwrap();
        b.push_out(EdgeLabel::Knows, 1, Some(pm(&[(PropKey::CreationDate, Value::Date(9))])));
        b.push_out(EdgeLabel::Knows, 2, None);
        b.push_in(EdgeLabel::Likes, 2);
        b.push_row(v[1], pm(&[])).unwrap();
        b.push_in(EdgeLabel::Knows, 0);
        b.push_row(v[2], pm(&[(PropKey::CreationDate, Value::Date(3))])).unwrap();
        b.push_out(EdgeLabel::Likes, 0, None);
        b.push_in(EdgeLabel::Knows, 0);
        let s = b.finish().unwrap();

        assert_eq!(s.epoch(), 7);
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.row_of(v[0]), Some(0));
        assert_eq!(s.row_of(v[2]), Some(2));
        assert_eq!(s.row_of(Vid::new(VertexLabel::Person, 99)), None);
        assert_eq!(s.vid_of(2), v[2]);
        assert_eq!(s.range(0, Direction::Out, EdgeLabel::Knows), &[1, 2]);
        assert_eq!(s.range(1, Direction::In, EdgeLabel::Knows), &[0]);
        let mut both = Vec::new();
        s.neighbors_into(0, Direction::Both, None, &mut both);
        assert_eq!(both, vec![1, 2, 2]);
        assert_eq!(s.degree(0, Direction::Both, None), 3);
        assert_eq!(s.degree(0, Direction::Out, Some(EdgeLabel::Knows)), 2);
        assert_eq!(s.prop(0, PropKey::FirstName), Some(Value::str("a")));
        assert_eq!(s.prop(1, PropKey::FirstName), None);
        assert_eq!(s.prop(2, PropKey::CreationDate), Some(Value::Date(3)));
        assert_eq!(s.rows_by_label(VertexLabel::Person), &[0, 1]);
        assert_eq!(s.rows_by_label(VertexLabel::Post), &[2]);
        let ep = s.out_edge_props(0, EdgeLabel::Knows, 1).unwrap().unwrap();
        assert_eq!(ep.get(PropKey::CreationDate), Some(&Value::Date(9)));
        assert_eq!(s.out_edge_props(0, EdgeLabel::Knows, 2).unwrap(), None);
        assert!(s.out_edge_props(1, EdgeLabel::Knows, 0).is_err());
    }

    #[test]
    fn sparse_local_ids_indexed() {
        let mut b = CsrBuilder::new(0, 1, false);
        let v = Vid::new(VertexLabel::Person, DIRECT_LIMIT + 5);
        b.push_row(v, pm(&[])).unwrap();
        let s = b.finish().unwrap();
        assert_eq!(s.row_of(v), Some(0));
        assert_eq!(s.row_of(Vid::new(VertexLabel::Person, DIRECT_LIMIT + 6)), None);
    }

    #[test]
    fn epoch_cell_swap() {
        let cell = EpochCell::new();
        assert!(cell.load().is_none());
        cell.store(Arc::new(CsrBuilder::new(1, 0, false).finish().unwrap()));
        assert_eq!(cell.epoch(), Some(1));
        cell.store(Arc::new(CsrBuilder::new(2, 0, false).finish().unwrap()));
        assert_eq!(cell.load().unwrap().epoch(), 2);
    }

    /// Reference snapshot: 4 person rows in a knows-chain with names,
    /// dates, and an edge property on the first edge.
    fn chain_snapshot(epoch: u64) -> CsrSnapshot {
        let mut b = CsrBuilder::new(epoch, 4, true);
        let names = ["ada", "bob", "ada", "eve"];
        for (i, name) in names.iter().enumerate() {
            b.push_row(
                Vid::new(VertexLabel::Person, 100 + i as u64),
                pm(&[
                    (PropKey::FirstName, Value::str(name)),
                    (PropKey::CreationDate, Value::Date(10 + i as i64)),
                ]),
            )
            .unwrap();
            if i > 0 {
                let ep = (i == 1).then(|| pm(&[(PropKey::CreationDate, Value::Date(99))]));
                b.push_out(EdgeLabel::Knows, i as u32 - 1, ep);
                b.push_in(EdgeLabel::Knows, i as u32 - 1);
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn dictionary_coded_hot_columns_roundtrip() {
        let s = chain_snapshot(1);
        assert_eq!(s.prop(0, PropKey::FirstName), Some(Value::str("ada")));
        assert_eq!(s.prop(2, PropKey::FirstName), Some(Value::str("ada")));
        assert_eq!(s.prop(3, PropKey::FirstName), Some(Value::str("eve")));
        assert_eq!(s.prop(1, PropKey::CreationDate), Some(Value::Date(11)));
        assert_eq!(s.creation_date_ms(3), Some(13));
        // Shared names collapse to one dictionary entry.
        assert_eq!(s.names.len(), 3);
        // Non-string / absent hot values fall back to the map.
        let mut b = CsrBuilder::new(2, 1, false);
        b.push_row(Vid::new(VertexLabel::Person, 1), pm(&[(PropKey::FirstName, Value::Int(7))])).unwrap();
        let s2 = b.finish().unwrap();
        assert_eq!(s2.prop(0, PropKey::FirstName), Some(Value::Int(7)));
        assert_eq!(s2.creation_date_ms(0), None);
    }

    #[test]
    fn extend_rows_from_replays_rows_exactly() {
        let old = chain_snapshot(5);
        // Rebuild rows 0..2 by bulk copy, rows 2..4 by hand — the
        // snapshot must be indistinguishable from a full rebuild.
        let mut b = CsrBuilder::new(6, 4, true);
        b.extend_rows_from(&old, 0..2).unwrap();
        for row in 2..4u32 {
            b.push_row(old.vid_of(row), Arc::clone(old.props_arc(row))).unwrap();
            let (ts, eps) = old.out_slice(row, EdgeLabel::Knows);
            for (t, ep) in ts.iter().zip(eps) {
                b.push_out(EdgeLabel::Knows, *t, ep.clone());
            }
            for t in old.range(row, Direction::In, EdgeLabel::Knows) {
                b.push_in(EdgeLabel::Knows, *t);
            }
        }
        let s = b.finish().unwrap();
        assert_eq!(s.n_rows(), old.n_rows());
        assert_eq!(s.edge_count(), old.edge_count());
        for row in 0..4u32 {
            assert_eq!(s.vid_of(row), old.vid_of(row));
            assert_eq!(s.row_of(s.vid_of(row)), Some(row));
            assert_eq!(s.prop(row, PropKey::FirstName), old.prop(row, PropKey::FirstName));
            assert_eq!(s.creation_date_ms(row), old.creation_date_ms(row));
            assert_eq!(
                s.range(row, Direction::Out, EdgeLabel::Knows),
                old.range(row, Direction::Out, EdgeLabel::Knows)
            );
            assert_eq!(
                s.range(row, Direction::In, EdgeLabel::Knows),
                old.range(row, Direction::In, EdgeLabel::Knows)
            );
        }
        let ep = s.out_edge_props(1, EdgeLabel::Knows, 0).unwrap().unwrap();
        assert_eq!(ep.get(PropKey::CreationDate), Some(&Value::Date(99)));
        assert_eq!(s.out_edge_props(2, EdgeLabel::Knows, 1).unwrap(), None);
    }

    #[test]
    fn byte_accounting_is_positive_and_split() {
        let s = chain_snapshot(1);
        assert!(s.vertex_bytes() > 0);
        assert!(s.edge_bytes() > 0);
        assert_eq!(s.heap_bytes(), s.vertex_bytes() + s.edge_bytes());
        assert!(s.bytes_per_vertex() > 0.0);
        assert!(s.bytes_per_edge() > 0.0);
        // The dense hot columns cost 12 bytes/row, not two 32-byte Values.
        assert_eq!(s.first_name.capacity() * 4 + s.creation_date.capacity() * 8, 4 * 12);
    }
}
