//! Core types shared by every engine and harness in the benchmark suite.
//!
//! This crate defines the property-graph data model of the LDBC Social
//! Network Benchmark (vertex/edge labels, property keys, values, global
//! vertex identifiers), the [`backend::GraphBackend`] trait — a
//! TinkerPop-structure-like API implemented by every store that can be
//! driven through the Gremlin layer — and the measurement utilities
//! (latency recorders, throughput series, text tables) used by the
//! experiment harness.

pub mod backend;
pub mod error;
pub mod fxhash;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod schema;
pub mod shard;
pub mod snapshot;
pub mod topk;
pub mod value;

pub use backend::{GraphBackend, GraphWrite};
pub use error::{Result, SnbError};
pub use fxhash::{FastMap, FastSet, FxBuildHasher};
pub use graph::{Direction, PropertyMap};
pub use ids::{EdgeLabel, VertexLabel, Vid};
pub use schema::PropKey;
pub use shard::ShardMap;
pub use snapshot::{CsrBuilder, CsrSnapshot, EpochCell, SnapshotCache};
pub use topk::top_k_by;
pub use value::Value;
