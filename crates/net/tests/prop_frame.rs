//! Property tests: the frame decoder must never panic or over-allocate
//! on arbitrary bytes — the server feeds it raw socket input.

use proptest::prelude::*;
use snb_net::frame::{self, Frame, FrameKind, HEADER_LEN};
use std::io::Cursor;

proptest! {
    #[test]
    fn read_frame_never_panics_on_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..128)
    ) {
        // Err or Ok are both fine; panicking or hanging is not.
        let _ = frame::read_frame(&mut Cursor::new(&data));
    }

    #[test]
    fn valid_frames_roundtrip(
        kind in 0..3u8,
        corr_id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let kind = match kind {
            0 => FrameKind::Request,
            1 => FrameKind::Response,
            _ => FrameKind::Error,
        };
        let f = Frame { kind, corr_id, payload };
        let bytes = frame::encode_frame(&f);
        let got = frame::read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
        prop_assert_eq!(got, f);
    }

    #[test]
    fn corrupting_any_header_byte_never_misdecodes_the_payload(
        corr_id in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..32),
        flip_at in 0..HEADER_LEN,
        flip_bits in 1..255u8
    ) {
        let f = Frame { kind: FrameKind::Request, corr_id, payload };
        let mut bytes = frame::encode_frame(&f);
        bytes[flip_at] ^= flip_bits;
        // A flipped header byte must either fail outright or decode to a
        // frame whose payload still checksums (the corr_id/kind bytes are
        // legitimately mutable); it must never panic.
        if let Ok(Some(got)) = frame::read_frame(&mut Cursor::new(&bytes)) {
            prop_assert_eq!(got.payload, f.payload);
        }
    }
}
