//! Loopback integration tests: real TCP round trips between the pooled
//! client and the framed server over 127.0.0.1.
//!
//! Every test runs under BOTH I/O models (`threaded::*` and
//! `reactor::*` below) — the reactor replaces the socket machinery, not
//! the execution semantics, so typed overload, graceful drain,
//! connection-fatal frames, and correlation-id routing must be
//! indistinguishable across models.
//!
//! The headline test is the acceptance gate for this subsystem: 8
//! concurrent clients each pipeline 100+ point-lookup traversals over a
//! pooled connection set against a populated `NativeGraphStore`, and
//! every response must answer exactly the request that asked for it —
//! each lookup targets a distinct vertex and asserts the returned id,
//! so one misrouted correlation id fails the run.

use snb_core::{EdgeLabel, GraphBackend, PropKey, SnbError, Value, VertexLabel, Vid};
use snb_graph_native::NativeGraphStore;
use snb_gremlin::{wire, GremlinServer, ServerConfig, Traversal};
use snb_net::frame::{self, Frame, FrameKind};
use snb_net::{ClientConfig, IoModel, NetPool, NetServer, NetServerConfig};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const PERSONS: u64 = 64;

fn p(id: u64) -> Vid {
    Vid::new(VertexLabel::Person, id)
}

/// A populated store: a ring of persons with Knows edges.
fn backend() -> Arc<dyn GraphBackend> {
    let s = NativeGraphStore::new();
    for id in 0..PERSONS {
        s.add_vertex(
            VertexLabel::Person,
            id,
            &[(PropKey::FirstName, Value::str(&format!("p{id}")))],
        )
        .unwrap();
    }
    for id in 0..PERSONS {
        s.add_edge(EdgeLabel::Knows, p(id), p((id + 1) % PERSONS), &[]).unwrap();
    }
    Arc::new(s)
}

fn start_server(server_config: ServerConfig, net_config: NetServerConfig) -> NetServer {
    let gremlin = GremlinServer::start(backend(), server_config);
    NetServer::start(gremlin, net_config).unwrap()
}

fn default_server(io: IoModel) -> NetServer {
    start_server(ServerConfig::default(), NetServerConfig::default().with_io_model(io))
}

/// Instantiate every test once per I/O model.
macro_rules! io_model_suite {
    ($($name:ident),+ $(,)?) => {
        mod threaded {
            $(#[test] fn $name() { super::$name(snb_net::IoModel::Threaded); })+
        }
        mod reactor {
            $(#[test] fn $name() { super::$name(snb_net::IoModel::Reactor); })+
        }
    };
}

io_model_suite!(
    eight_clients_pipeline_100_lookups_each_no_misrouting,
    raw_frames_pipeline_and_responses_carry_matching_corr_ids,
    queue_overflow_surfaces_as_typed_overloaded_error,
    query_errors_come_back_typed_and_are_not_retried,
    mutations_roundtrip_over_the_socket,
    connection_limit_rejects_with_fatal_error_frame,
    malformed_frames_get_a_fatal_codec_error,
    client_reconnects_after_server_restart,
    graceful_shutdown_answers_in_flight_requests,
    batched_submission_round_trips_in_order,
    batch_tolerates_per_request_query_errors,
    analytics_jobs_roundtrip_over_the_socket,
    analytics_cancel_stops_a_running_job,
    unknown_frame_kind_gets_typed_error_and_connection_survives,
    malformed_analytics_payload_gets_typed_error_not_disconnect,
);

fn eight_clients_pipeline_100_lookups_each_no_misrouting(io: IoModel) {
    let server = default_server(io);
    let addr = server.local_addr();
    let mut handles = Vec::new();
    for client_id in 0..8u64 {
        handles.push(std::thread::spawn(move || {
            // One pooled connection per client...
            let pool = Arc::new(
                NetPool::connect(addr, ClientConfig { connections: 1, ..Default::default() })
                    .unwrap(),
            );
            // ...shared by 4 submitter threads, so requests genuinely
            // overlap in flight on a single TCP connection.
            let mut inner = Vec::new();
            for t in 0..4u64 {
                let pool = Arc::clone(&pool);
                inner.push(std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let id = (client_id * 31 + t * 7 + i) % PERSONS;
                        let got = pool
                            .submit(&Traversal::v(p(id)).values(PropKey::Id))
                            .unwrap();
                        // The response must answer THIS request: the id it
                        // carries is the one we asked for.
                        assert_eq!(got, vec![Value::Int(id as i64)], "misrouted response");
                    }
                }));
            }
            for h in inner {
                h.join().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn raw_frames_pipeline_and_responses_carry_matching_corr_ids(io: IoModel) {
    // 100 requests are written before any response is read, so the queue
    // must hold the whole burst (the default capacity of 64 would —
    // correctly — answer the overflow with Overloaded error frames).
    let server = start_server(
        ServerConfig { queue_capacity: 256, ..Default::default() },
        NetServerConfig::default().with_io_model(io),
    );
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Write 100 request frames before reading a single response.
    let n = 100u64;
    for corr_id in 1..=n {
        let t = Traversal::v(p((corr_id - 1) % PERSONS)).values(PropKey::Id);
        let f = Frame { kind: FrameKind::Request, corr_id, payload: wire::encode_traversal(&t) };
        frame::write_frame(&mut stream, &f).unwrap();
    }
    // Read all 100 responses (any order) and check each one answers the
    // request its correlation id names.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n {
        let f = frame::read_frame(&mut stream).unwrap().expect("response frame");
        assert_eq!(f.kind, FrameKind::Response);
        assert!(seen.insert(f.corr_id), "duplicate response for {}", f.corr_id);
        let values = wire::decode_values(&f.payload).unwrap();
        assert_eq!(values, vec![Value::Int(((f.corr_id - 1) % PERSONS) as i64)]);
    }
    assert_eq!(seen.len(), n as usize, "no responses lost");
}

fn queue_overflow_surfaces_as_typed_overloaded_error(io: IoModel) {
    // One worker, capacity-1 queue: flooding must yield Overloaded error
    // frames (typed), never dropped connections or hangs. The heavy
    // traversal is a repeat-until search, which the reactor's inline
    // fast path must refuse (unbounded cost) — so saturation reaches
    // the bounded queue under both I/O models.
    let server = start_server(
        ServerConfig { workers: 1, queue_capacity: 1, request_timeout: Duration::from_secs(10) , ..Default::default() },
        NetServerConfig::default().with_io_model(io),
    );
    let addr = server.local_addr();
    let heavy =
        Traversal::v(p(0)).repeat_both_until(EdgeLabel::Knows, p(PERSONS / 2), 12).path_len();
    let mut handles = Vec::new();
    for _ in 0..16 {
        let heavy = heavy.clone();
        handles.push(std::thread::spawn(move || {
            let pool = NetPool::connect(
                addr,
                ClientConfig {
                    connections: 1,
                    request_timeout: Duration::from_secs(30),
                    ..Default::default()
                },
            )
            .unwrap();
            match pool.submit(&heavy) {
                Ok(_) => false,
                Err(SnbError::Overloaded(_)) => true,
                Err(e) => panic!("expected Overloaded, got {e}"),
            }
        }));
    }
    let overloaded =
        handles.into_iter().map(|h| h.join().unwrap()).filter(|&was_overloaded| was_overloaded).count();
    assert!(overloaded > 0, "at least one request must be rejected with Overloaded");
}

fn query_errors_come_back_typed_and_are_not_retried(io: IoModel) {
    let server = default_server(io);
    let pool = NetPool::connect(server.local_addr(), ClientConfig::default()).unwrap();
    // values() on a property then out_any() is an execution error.
    let r = pool.submit(&Traversal::v(p(1)).values(PropKey::FirstName).out_any());
    assert!(matches!(r, Err(SnbError::Exec(_))), "{r:?}");
    // The connection is still healthy afterwards.
    let ok = pool.submit(&Traversal::v(p(1)).values(PropKey::Id)).unwrap();
    assert_eq!(ok, vec![Value::Int(1)]);
}

fn mutations_roundtrip_over_the_socket(io: IoModel) {
    let server = default_server(io);
    let pool = NetPool::connect(server.local_addr(), ClientConfig::default()).unwrap();
    pool.submit(&Traversal::g().add_v(VertexLabel::Person, 9999, vec![])).unwrap();
    let r = pool.submit(&Traversal::v(p(9999)).count()).unwrap();
    assert_eq!(r, vec![Value::Int(1)]);
}

fn connection_limit_rejects_with_fatal_error_frame(io: IoModel) {
    let server = start_server(
        ServerConfig::default(),
        NetServerConfig { max_connections: 2, ..Default::default() }.with_io_model(io),
    );
    let addr = server.local_addr();
    // Occupy both slots with live pools.
    let a = NetPool::connect(addr, ClientConfig { connections: 1, ..Default::default() }).unwrap();
    let b = NetPool::connect(addr, ClientConfig { connections: 1, ..Default::default() }).unwrap();
    assert_eq!(a.submit(&Traversal::v(p(0)).count()).unwrap(), vec![Value::Int(1)]);
    assert_eq!(b.submit(&Traversal::v(p(0)).count()).unwrap(), vec![Value::Int(1)]);
    // The third connection gets a connection-fatal typed error frame
    // (correlation id 0) before the server hangs up.
    let mut extra = TcpStream::connect(addr).unwrap();
    let f = frame::read_frame(&mut extra).unwrap().expect("rejection frame");
    assert_eq!(f.kind, FrameKind::Error);
    assert_eq!(f.corr_id, 0);
    let err = wire::decode_error(&f.payload).unwrap();
    assert!(matches!(err, SnbError::Overloaded(_)), "{err}");
}

fn malformed_frames_get_a_fatal_codec_error(io: IoModel) {
    let server = default_server(io);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Garbage that cannot be a frame header (bad magic).
    use std::io::Write as _;
    stream.write_all(&[0u8; 64]).unwrap();
    stream.flush().unwrap();
    let f = frame::read_frame(&mut stream).unwrap().expect("fatal error frame");
    assert_eq!(f.kind, FrameKind::Error);
    assert_eq!(f.corr_id, 0);
    assert!(matches!(wire::decode_error(&f.payload).unwrap(), SnbError::Codec(_)));
    // ...and then the server hangs up.
    assert!(frame::read_frame(&mut stream).unwrap().is_none());
}

fn client_reconnects_after_server_restart(io: IoModel) {
    // A pool pointed at a dead server errors with Io after retries...
    let (addr, pool) = {
        let server = default_server(io);
        let addr = server.local_addr();
        let pool = NetPool::connect(
            addr,
            ClientConfig {
                connections: 1,
                max_retries: 2,
                backoff_base: Duration::from_millis(5),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pool.submit(&Traversal::v(p(3)).count()).unwrap(), vec![Value::Int(1)]);
        (addr, pool)
        // server drops here: graceful shutdown.
    };
    let r = pool.submit(&Traversal::v(p(3)).count());
    assert!(matches!(r, Err(SnbError::Io(_))), "{r:?}");
    // ...and transparently reconnects once a server is back on the same
    // port (retry-with-backoff re-establishes the TCP connection).
    let gremlin = GremlinServer::start(backend(), ServerConfig::default());
    let _server = NetServer::start(
        gremlin,
        NetServerConfig { bind_addr: addr.to_string(), ..Default::default() }.with_io_model(io),
    )
    .unwrap();
    assert_eq!(pool.submit(&Traversal::v(p(3)).count()).unwrap(), vec![Value::Int(1)]);
}

fn graceful_shutdown_answers_in_flight_requests(io: IoModel) {
    let server = start_server(
        // Single worker so queued requests are genuinely in flight when
        // shutdown begins.
        ServerConfig { workers: 1, queue_capacity: 64, request_timeout: Duration::from_secs(10) , ..Default::default() },
        NetServerConfig::default().with_io_model(io),
    );
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    // Prime the connection with one round trip so the acceptor has
    // definitely spawned our handler before shutdown begins (TCP connect
    // succeeds via the backlog long before the server accepts).
    let prime = Traversal::v(p(0)).count();
    frame::write_frame(
        &mut stream,
        &Frame { kind: FrameKind::Request, corr_id: 1000, payload: wire::encode_traversal(&prime) },
    )
    .unwrap();
    let primed = frame::read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(primed.corr_id, 1000);
    let n = 32u64;
    for corr_id in 1..=n {
        let t = Traversal::v(p(corr_id % PERSONS)).values(PropKey::Id);
        let f = Frame { kind: FrameKind::Request, corr_id, payload: wire::encode_traversal(&t) };
        frame::write_frame(&mut stream, &f).unwrap();
    }
    // Begin shutdown while responses are still streaming back.
    let shutdown_handle = std::thread::spawn(move || drop(server));
    let mut got = 0u64;
    while let Ok(Some(f)) = frame::read_frame(&mut stream) {
        assert_eq!(f.kind, FrameKind::Response);
        got += 1;
        if got == n {
            break;
        }
    }
    shutdown_handle.join().unwrap();
    assert_eq!(got, n, "every in-flight request was answered before close");
}

fn batched_submission_round_trips_in_order(io: IoModel) {
    // submit_batch writes all requests in one syscall; results come back
    // one per traversal, in submission order, each answering its own
    // request.
    let server = start_server(
        ServerConfig { queue_capacity: 256, ..Default::default() },
        NetServerConfig::default().with_io_model(io),
    );
    let pool = NetPool::connect(
        server.local_addr(),
        ClientConfig { connections: 1, ..Default::default() },
    )
    .unwrap();
    let batch: Vec<Traversal> =
        (0..PERSONS).map(|id| Traversal::v(p(id)).values(PropKey::Id)).collect();
    let results = pool.submit_batch(&batch).unwrap();
    assert_eq!(results.len(), PERSONS as usize);
    for (id, r) in results.into_iter().enumerate() {
        assert_eq!(r.unwrap(), vec![Value::Int(id as i64)], "batch slot {id} misrouted");
    }
    // An empty batch is a no-op, not an error.
    assert_eq!(pool.submit_batch(&[]).unwrap().len(), 0);
}

/// A server over an asymmetric graph (chain + hub fan-out). The shared
/// ring backend is vertex-transitive, so PageRank's uniform init is
/// already the fixed point and the kernel converges at iteration 1 —
/// useless for observing progress. The chain+hub shape keeps deltas
/// nonzero for hundreds of iterations.
fn analytics_server(io: IoModel) -> NetServer {
    let s = NativeGraphStore::new();
    for id in 0..PERSONS {
        s.add_vertex(
            VertexLabel::Person,
            id,
            &[(PropKey::FirstName, Value::str(&format!("p{id}")))],
        )
        .unwrap();
    }
    for id in 0..PERSONS - 1 {
        s.add_edge(EdgeLabel::Knows, p(id), p(id + 1), &[]).unwrap();
    }
    for id in 2..PERSONS / 2 {
        s.add_edge(EdgeLabel::Knows, p(0), p(id), &[]).unwrap();
    }
    let gremlin = GremlinServer::start(Arc::new(s), ServerConfig::default());
    NetServer::start(gremlin, NetServerConfig::default().with_io_model(io)).unwrap()
}

fn analytics_jobs_roundtrip_over_the_socket(io: IoModel) {
    use snb_analytics::{JobKind, JobOutput, JobSpec, JobState, PageRankConfig};
    let server = analytics_server(io);
    let pool = NetPool::connect(server.local_addr(), ClientConfig::default()).unwrap();
    let jobs = snb_net::AnalyticsClient::new(&pool);

    // PageRank with per-iteration pacing so Running-state progress is
    // observable from the remote side.
    let mut spec = JobSpec::pagerank(PageRankConfig { epsilon: 0.0, max_iters: 40, ..Default::default() });
    spec.label = Some(EdgeLabel::Knows);
    spec.pacing = Duration::from_millis(5);
    let id = jobs.submit_job(spec).unwrap();

    // Poll to completion, recording distinct Running iterations.
    let mut running_iters = std::collections::BTreeSet::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let st = jobs.poll_job(id).unwrap();
        match st.state {
            JobState::Running { iteration, .. } => {
                running_iters.insert(iteration);
            }
            JobState::Done => break,
            JobState::Queued => {}
            other => panic!("unexpected state {other:?}"),
        }
        assert!(std::time::Instant::now() < deadline, "job did not finish");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        running_iters.len() >= 2,
        "expected >=2 distinct progress observations, saw {running_iters:?}"
    );

    // Top-k fetch: 5 entries, descending, all positive.
    match jobs.fetch_result(id, Some(5)).unwrap() {
        JobOutput::PageRank { ranks, iterations, .. } => {
            assert_eq!(iterations, 40, "epsilon 0 runs the full budget");
            assert_eq!(ranks.len(), 5);
            for w in ranks.windows(2) {
                assert!(w[0].1 >= w[1].1, "top-k must be rank-descending");
            }
            assert!(ranks.iter().all(|(_, r)| *r > 0.0));
        }
        other => panic!("expected PageRank output, got {other:?}"),
    }

    // WCC over the same graph: the chain connects everything.
    let mut wcc = JobSpec::wcc();
    wcc.label = Some(EdgeLabel::Knows);
    assert_eq!(wcc.kind, JobKind::Wcc);
    let wid = jobs.submit_job(wcc).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while !jobs.poll_job(wid).unwrap().state.is_terminal() {
        assert!(std::time::Instant::now() < deadline, "wcc did not finish");
        std::thread::sleep(Duration::from_millis(2));
    }
    match jobs.fetch_result(wid, None).unwrap() {
        JobOutput::Wcc { components, assignment } => {
            assert_eq!(components, 1);
            assert_eq!(assignment.len(), PERSONS as usize);
            let comp = assignment[0].1;
            assert!(assignment.iter().all(|(_, c)| *c == comp));
        }
        other => panic!("expected Wcc output, got {other:?}"),
    }
}

fn analytics_cancel_stops_a_running_job(io: IoModel) {
    use snb_analytics::{JobSpec, JobState, PageRankConfig};
    let server = analytics_server(io);
    let pool = NetPool::connect(server.local_addr(), ClientConfig::default()).unwrap();
    let jobs = snb_net::AnalyticsClient::new(&pool);
    // A slow job: epsilon 0 never converges, pacing stretches each of
    // the 10_000 iterations, so the cancel lands mid-run.
    let mut spec = JobSpec::pagerank(PageRankConfig { epsilon: 0.0, max_iters: 10_000, ..Default::default() });
    spec.label = Some(EdgeLabel::Knows);
    spec.pacing = Duration::from_millis(10);
    let id = jobs.submit_job(spec).unwrap();
    // Wait until it is genuinely running...
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let st = jobs.poll_job(id).unwrap();
        if matches!(st.state, JobState::Running { .. }) {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    // ...then cancel and watch it reach the Cancelled terminal state.
    assert!(jobs.cancel_job(id).unwrap(), "job should still be live");
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let st = jobs.poll_job(id).unwrap();
        if st.state.is_terminal() {
            assert_eq!(st.state, JobState::Cancelled);
            break;
        }
        assert!(std::time::Instant::now() < deadline, "cancel never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
    // A cancelled job has no result to fetch: typed Conflict, and the
    // connection stays healthy for interactive traffic.
    let r = jobs.fetch_result(id, None);
    assert!(matches!(r, Err(SnbError::Conflict(_))), "{r:?}");
    assert_eq!(pool.submit(&Traversal::v(p(1)).count()).unwrap(), vec![Value::Int(1)]);
}

fn unknown_frame_kind_gets_typed_error_and_connection_survives(io: IoModel) {
    let server = default_server(io);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A frame with an unknown kind tag but a valid header and checksum:
    // the server must answer with a typed error on ITS corr_id and keep
    // the connection — a newer client speaking a future frame kind gets
    // an error it can read, not a dropped socket.
    let mut raw = frame::encode_frame(&Frame {
        kind: FrameKind::Request,
        corr_id: 77,
        payload: b"from the future".to_vec(),
    });
    raw[5] = 42; // kind byte
    use std::io::Write as _;
    stream.write_all(&raw).unwrap();
    stream.flush().unwrap();
    let f = frame::read_frame(&mut stream).unwrap().expect("typed error frame");
    assert_eq!(f.kind, FrameKind::Error);
    assert_eq!(f.corr_id, 77, "error must answer the offending frame, not kill the connection");
    assert!(matches!(wire::decode_error(&f.payload).unwrap(), SnbError::Codec(_)));
    // The same connection still serves ordinary requests.
    let t = Traversal::v(p(5)).values(PropKey::Id);
    frame::write_frame(
        &mut stream,
        &Frame { kind: FrameKind::Request, corr_id: 78, payload: wire::encode_traversal(&t) },
    )
    .unwrap();
    let ok = frame::read_frame(&mut stream).unwrap().expect("response frame");
    assert_eq!(ok.kind, FrameKind::Response);
    assert_eq!(ok.corr_id, 78);
    assert_eq!(wire::decode_values(&ok.payload).unwrap(), vec![Value::Int(5)]);
}

fn malformed_analytics_payload_gets_typed_error_not_disconnect(io: IoModel) {
    let server = default_server(io);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Garbage analytics payloads — empty, unknown op, truncated Submit —
    // must each answer with a typed Codec error on their corr_id.
    for (corr_id, payload) in
        [(10u64, vec![]), (11, vec![0xEE]), (12, vec![0u8, 0, 0xFF])]
    {
        frame::write_frame(
            &mut stream,
            &Frame { kind: FrameKind::Analytics, corr_id, payload },
        )
        .unwrap();
        let f = frame::read_frame(&mut stream).unwrap().expect("typed error frame");
        assert_eq!(f.kind, FrameKind::Error);
        assert_eq!(f.corr_id, corr_id);
        assert!(matches!(wire::decode_error(&f.payload).unwrap(), SnbError::Codec(_)));
    }
    // The connection survives and still answers interactive requests.
    let t = Traversal::v(p(7)).values(PropKey::Id);
    frame::write_frame(
        &mut stream,
        &Frame { kind: FrameKind::Request, corr_id: 13, payload: wire::encode_traversal(&t) },
    )
    .unwrap();
    let ok = frame::read_frame(&mut stream).unwrap().expect("response frame");
    assert_eq!(ok.kind, FrameKind::Response);
    assert_eq!(wire::decode_values(&ok.payload).unwrap(), vec![Value::Int(7)]);
}

fn batch_tolerates_per_request_query_errors(io: IoModel) {
    // A query error in the middle of a batch fails that slot only; the
    // surrounding requests still answer, and the connection stays up.
    let server = default_server(io);
    let pool = NetPool::connect(
        server.local_addr(),
        ClientConfig { connections: 1, ..Default::default() },
    )
    .unwrap();
    let batch = vec![
        Traversal::v(p(1)).values(PropKey::Id),
        Traversal::v(p(1)).values(PropKey::FirstName).out_any(), // Exec error
        Traversal::v(p(2)).values(PropKey::Id),
    ];
    let results = pool.submit_batch(&batch).unwrap();
    assert_eq!(results[0], Ok(vec![Value::Int(1)]));
    assert!(matches!(results[1], Err(SnbError::Exec(_))), "{:?}", results[1]);
    assert_eq!(results[2], Ok(vec![Value::Int(2)]));
    // Connection still healthy.
    assert_eq!(pool.submit(&Traversal::v(p(3)).count()).unwrap(), vec![Value::Int(1)]);
}
