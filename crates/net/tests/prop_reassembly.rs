//! Property tests for the incremental stream decoder behind the epoll
//! reactor: a valid frame sequence, however the kernel fragments it
//! across `read(2)` calls, must decode to exactly the frames that were
//! sent — same frames, same order, nothing duplicated or dropped. This
//! is the invariant the edge-triggered drain loop leans on: it commits
//! whatever byte count each read returns and trusts the decoder to
//! reassemble frame boundaries.

use proptest::prelude::*;
use snb_net::frame::{self, Frame, FrameDecoder, FrameEvent, FrameKind};

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (0..5u8, any::<u64>(), proptest::collection::vec(any::<u8>(), 0..96)).prop_map(
        |(kind, corr_id, payload)| {
            let kind = match kind {
                0 => FrameKind::Request,
                1 => FrameKind::Response,
                2 => FrameKind::Error,
                3 => FrameKind::Frontier,
                _ => FrameKind::Analytics,
            };
            Frame { kind, corr_id, payload }
        },
    )
}

/// Split `bytes` into chunks at the given fractional cut points and
/// feed them to the decoder one at a time, draining complete frames
/// after every chunk (exactly what the reactor's read loop does).
fn decode_chunked(bytes: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut cut_points: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    cut_points.sort_unstable();
    cut_points.dedup();
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let mut prev = 0;
    for cut in cut_points.into_iter().chain(std::iter::once(bytes.len())) {
        decoder.push_bytes(&bytes[prev..cut]);
        prev = cut;
        while let Some(f) = decoder.next_frame().expect("valid stream must decode") {
            out.push(f);
        }
    }
    assert_eq!(decoder.buffered(), 0, "no bytes may linger after the last frame");
    out
}

proptest! {
    #[test]
    fn arbitrary_fragmentation_reassembles_identically(
        frames in proptest::collection::vec(frame_strategy(), 1..12),
        cuts in proptest::collection::vec(any::<usize>(), 0..24)
    ) {
        // One contiguous byte stream carrying all frames back to back —
        // the shape a pipelining client produces.
        let mut stream = Vec::new();
        for f in &frames {
            frame::encode_frame_into(&mut stream, f.kind, f.corr_id, &f.payload);
        }
        // However the stream is fragmented — byte-at-a-time, mid-header,
        // mid-payload, several frames per chunk — the decoded sequence
        // is identical.
        let got = decode_chunked(&stream, &cuts);
        prop_assert_eq!(got, frames);
    }

    #[test]
    fn byte_at_a_time_reassembles_identically(
        frames in proptest::collection::vec(frame_strategy(), 1..4)
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            frame::encode_frame_into(&mut stream, f.kind, f.corr_id, &f.payload);
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            decoder.push_bytes(std::slice::from_ref(b));
            while let Some(f) = decoder.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn unknown_kind_frames_are_skipped_not_fatal(
        frames in proptest::collection::vec(frame_strategy(), 1..8),
        bad_tags in proptest::collection::vec(5..255u8, 1..4),
        positions in proptest::collection::vec(any::<usize>(), 1..4),
        cuts in proptest::collection::vec(any::<usize>(), 0..16)
    ) {
        // Interleave well-formed frames with frames whose kind tag the
        // decoder does not know (tag >= 5, valid header + checksum).
        // The event stream must surface each unknown frame exactly once
        // — with its tag and corr_id — and decode every known frame
        // around it, under arbitrary fragmentation.
        let mut expected = Vec::new();
        let mut stream = Vec::new();
        let mut bad_iter = bad_tags.iter().zip(&positions).peekable();
        for (i, f) in frames.iter().enumerate() {
            if let Some(&(&tag, &pos)) = bad_iter.peek() {
                if pos % frames.len() == i {
                    bad_iter.next();
                    let corr_id = 1000 + i as u64;
                    let mut raw = frame::encode_frame(&Frame {
                        kind: FrameKind::Request,
                        corr_id,
                        payload: vec![7; i % 5],
                    });
                    raw[5] = tag; // kind byte; payload/checksum untouched
                    stream.extend_from_slice(&raw);
                    expected.push(FrameEvent::UnknownKind { tag, corr_id });
                }
            }
            frame::encode_frame_into(&mut stream, f.kind, f.corr_id, &f.payload);
            expected.push(FrameEvent::Frame(f.clone()));
        }

        let mut cut_points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        cut_points.sort_unstable();
        cut_points.dedup();
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut prev = 0;
        for cut in cut_points.into_iter().chain(std::iter::once(stream.len())) {
            decoder.push_bytes(&stream[prev..cut]);
            prev = cut;
            while let Some(ev) = decoder.next_event().expect("stream stays syncable") {
                got.push(ev);
            }
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..8)
    ) {
        // Garbage input may error (and the reactor then kills the
        // connection), but must never panic or loop forever.
        let mut decoder = FrameDecoder::new();
        'outer: for chunk in &chunks {
            decoder.push_bytes(chunk);
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => break 'outer,
                }
            }
        }
    }
}
