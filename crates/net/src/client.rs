//! The remote Gremlin client: a connection pool over the framed
//! protocol with timeouts and retry-with-backoff.
//!
//! Each pooled connection owns a background reader thread that routes
//! incoming frames to waiting callers by correlation id, so any number
//! of threads can share one connection and keep requests pipelined.
//! [`NetPool::submit_batch`] exploits that directly: N requests are
//! encoded into one buffer and written with a single syscall, then the
//! N tagged responses are gathered as they stream back — one round of
//! kernel crossings instead of N.
//!
//! Reconnection policy: transport failures (`SnbError::Io` — refused,
//! reset, closed) are retried with capped-exponential jittered backoff
//! up to `max_retries`, re-establishing the TCP connection first;
//! *query* errors (`Exec`, `Overloaded`, `NotFound`, ...) came from a
//! healthy server and are returned to the caller untouched — retrying
//! those would double-apply mutations and mask real backpressure.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use snb_core::fxhash::FastMap;
use snb_core::{Result, SnbError, Value};
use snb_gremlin::{wire, Traversal, TraversalEndpoint};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::frame::{self, Frame, FrameKind};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connections in the pool; requests round-robin across them.
    pub connections: usize,
    /// TCP connect timeout (also bounds each reconnect attempt).
    pub connect_timeout: Duration,
    /// How long one request waits for its response frame.
    pub request_timeout: Duration,
    /// Reconnect attempts on transport failures before giving up.
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt (with jitter) up to
    /// [`ClientConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Ceiling on any single backoff sleep, however many attempts have
    /// failed.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connections: 2,
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            max_retries: 3,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

/// The sleep before retry `attempt` (0-based): exponential in the
/// attempt number with the exponent capped (so a large retry budget can
/// never overflow the shift or overshoot the cap), clamped to `cap`,
/// then jittered uniformly into `[50%, 100%]` of the clamped value so a
/// burst of clients whose connections died together does not
/// reconnect-stampede in lockstep. `rand` supplies the jitter entropy.
fn backoff_delay(base: Duration, cap: Duration, attempt: u32, rand: u64) -> Duration {
    const MAX_EXPONENT: u32 = 10; // 1024× base is past any sane cap
    let factor = 1u32 << attempt.min(MAX_EXPONENT);
    let capped = base.saturating_mul(factor).min(cap);
    let half = capped / 2;
    // capped/2 + uniform(0..=capped/2)
    half + Duration::from_nanos((half.as_nanos() as u64).saturating_mul(rand % 1025) / 1024)
}

/// A small xorshift PRNG for backoff jitter — no `rand` dependency, and
/// quality hardly matters: it only decorrelates sleep lengths.
fn jitter_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x9e3779b97f4a7c15);
    let tid = std::thread::current().id();
    let mut x = nanos ^ (&tid as *const _ as u64) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// State shared between a connection and its reader thread.
struct ConnShared {
    /// In-flight requests: correlation id → reply slot.
    pending: Mutex<FastMap<u64, Sender<Result<Vec<u8>>>>>,
    /// Set once the reader has observed EOF or a transport error.
    dead: AtomicBool,
    /// A connection-fatal error frame (correlation id 0), e.g. the
    /// server's connection limit; reported to every subsequent caller.
    fatal: Mutex<Option<SnbError>>,
}

impl ConnShared {
    fn fail_all(&self, err: &SnbError) {
        let mut pending = self.pending.lock();
        for (_, tx) in pending.drain() {
            let _ = tx.try_send(Err(err.clone()));
        }
    }
}

/// One live TCP connection.
struct ConnInner {
    stream: TcpStream,
    /// Serializes frame writes so interleaved requests stay framed.
    write_lock: Mutex<()>,
    /// Correlation ids start at 1; 0 is reserved for connection-fatal
    /// server errors.
    next_id: AtomicU64,
    shared: Arc<ConnShared>,
}

impl ConnInner {
    fn connect(addr: SocketAddr, cfg: &ClientConfig) -> Result<ConnInner> {
        let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)
            .map_err(|e| SnbError::Io(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let read_half =
            stream.try_clone().map_err(|e| SnbError::Io(format!("clone stream: {e}")))?;
        let shared = Arc::new(ConnShared {
            pending: Mutex::new(FastMap::default()),
            dead: AtomicBool::new(false),
            fatal: Mutex::new(None),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reader_loop(read_half, shared));
        }
        Ok(ConnInner { stream, write_lock: Mutex::new(()), next_id: AtomicU64::new(0), shared })
    }

    fn dead_error(&self) -> SnbError {
        self.shared
            .fatal
            .lock()
            .clone()
            .unwrap_or_else(|| SnbError::Io("connection lost".into()))
    }

    /// Put one frame on the wire without waiting for its response:
    /// registers the reply slot, writes the frame, and hands back the
    /// correlation id and receiver. The building block under both the
    /// blocking [`ConnInner::request`] round trip and the router's
    /// scatter phase (start a wave on every shard, then gather).
    fn start(
        &self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(u64, Receiver<Result<Vec<u8>>>)> {
        if self.shared.dead.load(Ordering::Acquire) {
            return Err(self.dead_error());
        }
        let corr_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(corr_id, tx);
        let write_result = {
            let _guard = self.write_lock.lock();
            let mut w = &self.stream;
            frame::write_frame(&mut w, &Frame { kind, corr_id, payload: payload.to_vec() })
        };
        if let Err(e) = write_result {
            self.shared.pending.lock().remove(&corr_id);
            self.shared.dead.store(true, Ordering::Release);
            return Err(e);
        }
        Ok((corr_id, rx))
    }

    /// One pipelined request/response round trip.
    fn request(&self, payload: &[u8], timeout: Duration) -> Result<Vec<u8>> {
        let (corr_id, rx) = self.start(FrameKind::Request, payload)?;
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => {
                // Give up on this request; a late response frame for this
                // id is dropped by the reader (no pending entry).
                self.shared.pending.lock().remove(&corr_id);
                Err(SnbError::Overloaded("request timed out".into()))
            }
        }
    }

    /// Pipelined batch submission: every payload is framed with a
    /// consecutive correlation id into ONE buffer and written with a
    /// single syscall; the tagged responses are then gathered (they may
    /// arrive in any order — the reader routes by id). One entry per
    /// payload, in payload order. The whole batch shares one deadline.
    fn request_batch(
        &self,
        payloads: &[Vec<u8>],
        timeout: Duration,
    ) -> Result<Vec<Result<Vec<u8>>>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        if self.shared.dead.load(Ordering::Acquire) {
            return Err(self.dead_error());
        }
        let first_id = self.next_id.fetch_add(payloads.len() as u64, Ordering::Relaxed) + 1;
        let mut slots: Vec<(u64, Receiver<Result<Vec<u8>>>)> =
            Vec::with_capacity(payloads.len());
        let mut wire_buf = Vec::new();
        {
            let mut pending = self.shared.pending.lock();
            for (i, payload) in payloads.iter().enumerate() {
                let corr_id = first_id + i as u64;
                let (tx, rx) = bounded(1);
                pending.insert(corr_id, tx);
                frame::encode_frame_into(&mut wire_buf, FrameKind::Request, corr_id, payload);
                slots.push((corr_id, rx));
            }
        }
        let write_result = {
            let _guard = self.write_lock.lock();
            let mut w = &self.stream;
            w.write_all(&wire_buf).and_then(|()| w.flush())
        };
        if let Err(e) = write_result {
            let mut pending = self.shared.pending.lock();
            for (corr_id, _) in &slots {
                pending.remove(corr_id);
            }
            self.shared.dead.store(true, Ordering::Release);
            return Err(SnbError::Io(format!("batch write: {e}")));
        }
        let deadline = Instant::now() + timeout;
        let mut results = Vec::with_capacity(slots.len());
        for (corr_id, rx) in slots {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(result) => results.push(result),
                Err(_) => {
                    self.shared.pending.lock().remove(&corr_id);
                    results.push(Err(SnbError::Overloaded("request timed out".into())));
                }
            }
        }
        Ok(results)
    }
}

impl Drop for ConnInner {
    fn drop(&mut self) {
        // Unblocks the reader thread, which then fails any stragglers.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

fn reader_loop(mut stream: TcpStream, shared: Arc<ConnShared>) {
    loop {
        match frame::read_frame(&mut stream) {
            Ok(Some(f)) => match f.kind {
                FrameKind::Response => deliver(&shared, f.corr_id, Ok(f.payload)),
                FrameKind::Error => {
                    // A malformed error payload is itself reported as the
                    // decode error.
                    let err = match wire::decode_error(&f.payload) {
                        Ok(e) => e,
                        Err(e) => e,
                    };
                    if f.corr_id == 0 {
                        *shared.fatal.lock() = Some(err.clone());
                        shared.dead.store(true, Ordering::Release);
                        shared.fail_all(&err);
                        return;
                    }
                    deliver(&shared, f.corr_id, Err(err));
                }
                // Server → client frames are only Response/Error.
                FrameKind::Request | FrameKind::Frontier | FrameKind::Analytics => break, // protocol violation
            },
            Ok(None) | Err(_) => break,
        }
    }
    shared.dead.store(true, Ordering::Release);
    shared.fail_all(&SnbError::Io("connection lost".into()));
}

fn deliver(shared: &ConnShared, corr_id: u64, result: Result<Vec<u8>>) {
    if let Some(tx) = shared.pending.lock().remove(&corr_id) {
        // The caller may have timed out between the map lookup and here.
        let _ = tx.try_send(result);
    }
}

/// An in-flight request whose frame is already on the wire. Produced by
/// [`NetPool::start_frontier`]; [`PendingReply::wait`] blocks for the
/// tagged response. Separating start from wait is what lets one router
/// thread fan a scatter-gather wave out to every shard *concurrently* —
/// all the frames go out back-to-back, then the replies are gathered —
/// instead of paying one sequential round trip per shard.
pub struct PendingReply {
    conn: Arc<ConnInner>,
    corr_id: u64,
    rx: Receiver<Result<Vec<u8>>>,
    timeout: Duration,
}

impl PendingReply {
    /// Block for the response (bounded by the client's request timeout).
    pub fn wait(self) -> Result<Vec<u8>> {
        match self.rx.recv_timeout(self.timeout) {
            Ok(result) => result,
            Err(_) => {
                // A late frame for this id is dropped by the reader.
                self.conn.shared.pending.lock().remove(&self.corr_id);
                Err(SnbError::Overloaded("request timed out".into()))
            }
        }
    }
}

/// One pool slot: the current connection plus enough to rebuild it.
struct PooledConn {
    addr: SocketAddr,
    cfg: ClientConfig,
    slot: Mutex<Option<Arc<ConnInner>>>,
}

impl PooledConn {
    fn get(&self) -> Result<Arc<ConnInner>> {
        let mut slot = self.slot.lock();
        if let Some(c) = slot.as_ref() {
            if !c.shared.dead.load(Ordering::Acquire) {
                return Ok(Arc::clone(c));
            }
        }
        let c = Arc::new(ConnInner::connect(self.addr, &self.cfg)?);
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }

    fn request(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut attempt = 0u32;
        loop {
            let result =
                self.get().and_then(|c| c.request(payload, self.cfg.request_timeout));
            match result {
                Err(SnbError::Io(_)) if attempt < self.cfg.max_retries => {
                    self.back_off(attempt);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Batch round trip with the same Io-only retry policy, applied at
    /// batch granularity: only a failure to *send* the batch (or to
    /// reconnect) retries — once frames are on the wire, per-request
    /// errors come back in the result vector untouched.
    fn request_batch(&self, payloads: &[Vec<u8>]) -> Result<Vec<Result<Vec<u8>>>> {
        let mut attempt = 0u32;
        loop {
            let result =
                self.get().and_then(|c| c.request_batch(payloads, self.cfg.request_timeout));
            match result {
                Err(SnbError::Io(_)) if attempt < self.cfg.max_retries => {
                    self.back_off(attempt);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Start one frame of the given kind without waiting for the reply,
    /// with the usual Io-only retry policy applied to the *send*: once
    /// the frame is on the wire, the caller owns the wait.
    fn start(&self, kind: FrameKind, payload: &[u8]) -> Result<PendingReply> {
        let mut attempt = 0u32;
        loop {
            let result = self.get().and_then(|c| {
                c.start(kind, payload).map(|(corr_id, rx)| PendingReply {
                    conn: Arc::clone(&c),
                    corr_id,
                    rx,
                    timeout: self.cfg.request_timeout,
                })
            });
            match result {
                Err(SnbError::Io(_)) if attempt < self.cfg.max_retries => {
                    self.back_off(attempt);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Reconnectable transport failure: sleep (capped exponential with
    /// jitter) before the next get() replaces the dead connection.
    fn back_off(&self, attempt: u32) {
        std::thread::sleep(backoff_delay(
            self.cfg.backoff_base,
            self.cfg.backoff_cap,
            attempt,
            jitter_seed(),
        ));
    }
}

/// A connection-pooled remote Gremlin client; cheap to share across
/// threads behind an `Arc`, or use [`NetPool::submit`] directly — every
/// method is `&self`.
pub struct NetPool {
    conns: Vec<PooledConn>,
    next: AtomicUsize,
}

impl NetPool {
    /// Connect `cfg.connections` sockets to `addr` eagerly, so a dead
    /// endpoint fails fast here rather than on the first query.
    pub fn connect(addr: SocketAddr, cfg: ClientConfig) -> Result<NetPool> {
        let n = cfg.connections.max(1);
        let conns: Vec<PooledConn> = (0..n)
            .map(|_| PooledConn { addr, cfg: cfg.clone(), slot: Mutex::new(None) })
            .collect();
        for c in &conns {
            c.get()?;
        }
        Ok(NetPool { conns, next: AtomicUsize::new(0) })
    }

    /// Execute one traversal round trip over the next pooled connection.
    pub fn submit(&self, traversal: &Traversal) -> Result<Vec<Value>> {
        let payload = wire::encode_traversal(traversal);
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        let bytes = self.conns[slot].request(&payload)?;
        wire::decode_values(&bytes).map_err(|e| SnbError::Codec(format!("bad response: {e}")))
    }

    /// Execute a batch of traversals as ONE pipelined submission on a
    /// single pooled connection: all requests go out in one syscall and
    /// the tagged responses are gathered as they complete. Returns one
    /// result per traversal, in order — per-request failures (a typed
    /// query error, an individual timeout) do not fail the batch.
    ///
    /// This is the client half the reactor's batched read path is built
    /// for: the server decodes the whole burst from one `read(2)` and
    /// coalesces the responses into one `writev(2)`.
    pub fn submit_batch(&self, traversals: &[Traversal]) -> Result<Vec<Result<Vec<Value>>>> {
        let payloads: Vec<Vec<u8>> =
            traversals.iter().map(wire::encode_traversal).collect();
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        let raw = self.conns[slot].request_batch(&payloads)?;
        Ok(raw
            .into_iter()
            .map(|r| {
                r.and_then(|bytes| {
                    wire::decode_values(&bytes)
                        .map_err(|e| SnbError::Codec(format!("bad response: {e}")))
                })
            })
            .collect())
    }

    /// Start one frontier-batch request (the sharded router's
    /// scatter-gather wave) on the next pooled connection without
    /// waiting for the reply. The caller gathers via
    /// [`PendingReply::wait`] after starting the wave on every shard.
    pub fn start_frontier(&self, payload: &[u8]) -> Result<PendingReply> {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        self.conns[slot].start(FrameKind::Frontier, payload)
    }

    /// One blocking frontier round trip (start + wait).
    pub fn submit_frontier(&self, payload: &[u8]) -> Result<Vec<u8>> {
        self.start_frontier(payload)?.wait()
    }

    /// Start one analytics control request (submit / poll / fetch /
    /// cancel an analytics job) without waiting for the reply.
    pub fn start_analytics(&self, payload: &[u8]) -> Result<PendingReply> {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        self.conns[slot].start(FrameKind::Analytics, payload)
    }

    /// One blocking analytics round trip (start + wait). The typed
    /// wrappers in [`crate::analytics`] sit on top of this.
    pub fn submit_analytics(&self, payload: &[u8]) -> Result<Vec<u8>> {
        self.start_analytics(payload)?.wait()
    }

    /// Pool size.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_caps_exponent_and_total() {
        let base = Duration::from_millis(20);
        let cap = Duration::from_secs(1);
        // The old `base * 2u32.pow(attempt)` panicked (debug) or wrapped
        // (release) past attempt 31 and overshot wildly before that;
        // the capped version must stay within [cap/2, cap] forever.
        for attempt in [0u32, 5, 10, 31, 32, 1000, u32::MAX] {
            for rand in [0u64, 1, 512, 1024, u64::MAX] {
                let d = backoff_delay(base, cap, attempt, rand);
                assert!(d <= cap, "attempt {attempt}: {d:?} exceeds cap");
                if attempt >= 6 {
                    // 20ms << 64 = 1.28s > cap, so the clamp is active.
                    assert!(d >= cap / 2, "attempt {attempt}: {d:?} below jitter floor");
                }
            }
        }
    }

    #[test]
    fn backoff_grows_then_saturates() {
        let base = Duration::from_millis(20);
        let cap = Duration::from_secs(1);
        // Deterministic upper edge of the jitter range (rand % 1025 == 1024).
        let at = |attempt| backoff_delay(base, cap, attempt, 1024);
        assert_eq!(at(0), Duration::from_millis(20));
        assert_eq!(at(1), Duration::from_millis(40));
        assert_eq!(at(2), Duration::from_millis(80));
        assert_eq!(at(20), cap);
        // Jitter never goes below half of the deterministic value.
        assert!(backoff_delay(base, cap, 0, 0) >= Duration::from_millis(10));
    }
}

impl TraversalEndpoint for NetPool {
    fn submit(&self, traversal: &Traversal) -> Result<Vec<Value>> {
        NetPool::submit(self, traversal)
    }
}
