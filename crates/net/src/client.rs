//! The remote Gremlin client: a connection pool over the framed
//! protocol with timeouts and retry-with-backoff.
//!
//! Each pooled connection owns a background reader thread that routes
//! incoming frames to waiting callers by correlation id, so any number
//! of threads can share one connection and keep requests pipelined.
//! Reconnection policy: transport failures (`SnbError::Io` — refused,
//! reset, closed) are retried with exponential backoff up to
//! `max_retries`, re-establishing the TCP connection first; *query*
//! errors (`Exec`, `Overloaded`, `NotFound`, ...) came from a healthy
//! server and are returned to the caller untouched — retrying those
//! would double-apply mutations and mask real backpressure.

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use snb_core::fxhash::FastMap;
use snb_core::{Result, SnbError, Value};
use snb_gremlin::{wire, Traversal, TraversalEndpoint};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::frame::{self, Frame, FrameKind};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connections in the pool; requests round-robin across them.
    pub connections: usize,
    /// TCP connect timeout (also bounds each reconnect attempt).
    pub connect_timeout: Duration,
    /// How long one request waits for its response frame.
    pub request_timeout: Duration,
    /// Reconnect attempts on transport failures before giving up.
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connections: 2,
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(10),
            max_retries: 3,
            backoff_base: Duration::from_millis(20),
        }
    }
}

/// State shared between a connection and its reader thread.
struct ConnShared {
    /// In-flight requests: correlation id → reply slot.
    pending: Mutex<FastMap<u64, Sender<Result<Vec<u8>>>>>,
    /// Set once the reader has observed EOF or a transport error.
    dead: AtomicBool,
    /// A connection-fatal error frame (correlation id 0), e.g. the
    /// server's connection limit; reported to every subsequent caller.
    fatal: Mutex<Option<SnbError>>,
}

impl ConnShared {
    fn fail_all(&self, err: &SnbError) {
        let mut pending = self.pending.lock();
        for (_, tx) in pending.drain() {
            let _ = tx.try_send(Err(err.clone()));
        }
    }
}

/// One live TCP connection.
struct ConnInner {
    stream: TcpStream,
    /// Serializes frame writes so interleaved requests stay framed.
    write_lock: Mutex<()>,
    /// Correlation ids start at 1; 0 is reserved for connection-fatal
    /// server errors.
    next_id: AtomicU64,
    shared: Arc<ConnShared>,
}

impl ConnInner {
    fn connect(addr: SocketAddr, cfg: &ClientConfig) -> Result<ConnInner> {
        let stream = TcpStream::connect_timeout(&addr, cfg.connect_timeout)
            .map_err(|e| SnbError::Io(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let read_half =
            stream.try_clone().map_err(|e| SnbError::Io(format!("clone stream: {e}")))?;
        let shared = Arc::new(ConnShared {
            pending: Mutex::new(FastMap::default()),
            dead: AtomicBool::new(false),
            fatal: Mutex::new(None),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reader_loop(read_half, shared));
        }
        Ok(ConnInner { stream, write_lock: Mutex::new(()), next_id: AtomicU64::new(0), shared })
    }

    fn dead_error(&self) -> SnbError {
        self.shared
            .fatal
            .lock()
            .clone()
            .unwrap_or_else(|| SnbError::Io("connection lost".into()))
    }

    /// One pipelined request/response round trip.
    fn request(&self, payload: &[u8], timeout: Duration) -> Result<Vec<u8>> {
        if self.shared.dead.load(Ordering::Acquire) {
            return Err(self.dead_error());
        }
        let corr_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(corr_id, tx);
        let write_result = {
            let _guard = self.write_lock.lock();
            let mut w = &self.stream;
            frame::write_frame(
                &mut w,
                &Frame { kind: FrameKind::Request, corr_id, payload: payload.to_vec() },
            )
        };
        if let Err(e) = write_result {
            self.shared.pending.lock().remove(&corr_id);
            self.shared.dead.store(true, Ordering::Release);
            return Err(e);
        }
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => {
                // Give up on this request; a late response frame for this
                // id is dropped by the reader (no pending entry).
                self.shared.pending.lock().remove(&corr_id);
                Err(SnbError::Overloaded("request timed out".into()))
            }
        }
    }
}

impl Drop for ConnInner {
    fn drop(&mut self) {
        // Unblocks the reader thread, which then fails any stragglers.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

fn reader_loop(mut stream: TcpStream, shared: Arc<ConnShared>) {
    loop {
        match frame::read_frame(&mut stream) {
            Ok(Some(f)) => match f.kind {
                FrameKind::Response => deliver(&shared, f.corr_id, Ok(f.payload)),
                FrameKind::Error => {
                    // A malformed error payload is itself reported as the
                    // decode error.
                    let err = match wire::decode_error(&f.payload) {
                        Ok(e) => e,
                        Err(e) => e,
                    };
                    if f.corr_id == 0 {
                        *shared.fatal.lock() = Some(err.clone());
                        shared.dead.store(true, Ordering::Release);
                        shared.fail_all(&err);
                        return;
                    }
                    deliver(&shared, f.corr_id, Err(err));
                }
                FrameKind::Request => break, // protocol violation
            },
            Ok(None) | Err(_) => break,
        }
    }
    shared.dead.store(true, Ordering::Release);
    shared.fail_all(&SnbError::Io("connection lost".into()));
}

fn deliver(shared: &ConnShared, corr_id: u64, result: Result<Vec<u8>>) {
    if let Some(tx) = shared.pending.lock().remove(&corr_id) {
        // The caller may have timed out between the map lookup and here.
        let _ = tx.try_send(result);
    }
}

/// One pool slot: the current connection plus enough to rebuild it.
struct PooledConn {
    addr: SocketAddr,
    cfg: ClientConfig,
    slot: Mutex<Option<Arc<ConnInner>>>,
}

impl PooledConn {
    fn get(&self) -> Result<Arc<ConnInner>> {
        let mut slot = self.slot.lock();
        if let Some(c) = slot.as_ref() {
            if !c.shared.dead.load(Ordering::Acquire) {
                return Ok(Arc::clone(c));
            }
        }
        let c = Arc::new(ConnInner::connect(self.addr, &self.cfg)?);
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }

    fn request(&self, payload: &[u8]) -> Result<Vec<u8>> {
        let mut attempt = 0u32;
        loop {
            let result =
                self.get().and_then(|c| c.request(payload, self.cfg.request_timeout));
            match result {
                Err(SnbError::Io(_)) if attempt < self.cfg.max_retries => {
                    // Reconnectable transport failure: back off and retry
                    // (the dead connection is replaced on the next get()).
                    std::thread::sleep(self.cfg.backoff_base * 2u32.pow(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

/// A connection-pooled remote Gremlin client; cheap to share across
/// threads behind an `Arc`, or use [`NetPool::submit`] directly — every
/// method is `&self`.
pub struct NetPool {
    conns: Vec<PooledConn>,
    next: AtomicUsize,
}

impl NetPool {
    /// Connect `cfg.connections` sockets to `addr` eagerly, so a dead
    /// endpoint fails fast here rather than on the first query.
    pub fn connect(addr: SocketAddr, cfg: ClientConfig) -> Result<NetPool> {
        let n = cfg.connections.max(1);
        let conns: Vec<PooledConn> = (0..n)
            .map(|_| PooledConn { addr, cfg: cfg.clone(), slot: Mutex::new(None) })
            .collect();
        for c in &conns {
            c.get()?;
        }
        Ok(NetPool { conns, next: AtomicUsize::new(0) })
    }

    /// Execute one traversal round trip over the next pooled connection.
    pub fn submit(&self, traversal: &Traversal) -> Result<Vec<Value>> {
        let payload = wire::encode_traversal(traversal);
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        let bytes = self.conns[slot].request(&payload)?;
        wire::decode_values(&bytes).map_err(|e| SnbError::Codec(format!("bad response: {e}")))
    }

    /// Pool size.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }
}

impl TraversalEndpoint for NetPool {
    fn submit(&self, traversal: &Traversal) -> Result<Vec<Value>> {
        NetPool::submit(self, traversal)
    }
}
