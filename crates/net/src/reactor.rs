//! The readiness-driven epoll reactor — the server's second I/O model.
//!
//! The thread-per-connection server spends its fan-in budget on
//! threads: two per socket, one syscall per frame, one wakeup chain per
//! request. The reactor replaces all of that with a small fixed pool of
//! event-loop threads, each owning an `epoll` instance and a slab of
//! connections:
//!
//! * **Accept** — the listener is just another epoll registration on
//!   reactor 0; accepted sockets are handed round-robin to the pool
//!   through per-reactor inboxes plus an `eventfd` wakeup. No
//!   sleep-polling anywhere.
//! * **Read** — edge-triggered drain loops: each `read(2)` lands in the
//!   connection's reusable [`FrameDecoder`] arena and *every* complete
//!   frame buffered so far is decoded and dispatched — a client that
//!   pipelines N requests pays one syscall, not N.
//! * **Execute** — bounded-cost traversals run inline on the reactor
//!   thread while a worker-sized permit is free (the same
//!   [`InlineSlots`](snb_gremlin::GremlinClient) accounting the
//!   in-process fast path uses); everything else — unbounded searches,
//!   permit misses — flows into the existing Gremlin worker pool via
//!   [`RawSubmitter::submit_sink`], so `Overloaded` backpressure,
//!   correlation-id routing, and graceful-drain semantics are exactly
//!   the thread-per-connection server's. The reactor replaces the I/O
//!   layer, not the execution layer.
//! * **Write** — completed responses are corked into the connection's
//!   [`OutQueue`] (pooled buffers, zero steady-state allocation in the
//!   I/O layer) and flushed as a single vectored `writev(2)` per
//!   readiness cycle instead of one `write(2)` per frame.
//! * **Complete** — workers hand results to a per-reactor completion
//!   queue through a [`ReplySink`] and signal the reactor's `eventfd`;
//!   the reactor drains the queue, corks the frames, and flushes.
//!
//! Shutdown drains: reactors stop accepting, take one final read drain
//! per connection (picking up every request already buffered in the
//! kernel), then keep each connection alive until its last in-flight
//! request has produced a response frame and the out queue has flushed.

#![cfg(target_os = "linux")]

use parking_lot::Mutex;
use snb_core::fxhash::FastMap;
use snb_core::{Result, SnbError};
use snb_gremlin::wire;
use snb_gremlin::{RawSubmitter, ReplySink};
use std::collections::VecDeque;
use std::io;
use std::net::TcpListener;
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::frame::{self, FrameDecoder, FrameEvent, FrameKind};
use crate::server::{reject_connection, reject_connection_with, NetServerConfig};
use crate::sys;

/// Epoll token of the reactor's wakeup eventfd.
const TOKEN_WAKE: u64 = 0;
/// Epoll token of the listener (reactor 0 only).
const TOKEN_LISTENER: u64 = 1;
/// First connection token; tokens are never reused.
const TOKEN_CONN0: u64 = 2;

/// Bytes asked of each `read(2)` in the drain loop.
const READ_CHUNK: usize = 32 * 1024;
/// Max iovecs per `writev(2)`.
const MAX_IOV: usize = 64;
/// Buffers kept in a connection's encode pool.
const POOL_BUFS: usize = 64;
/// Pooled buffers above this capacity are dropped instead of reused, so
/// one huge response cannot pin its arena forever.
const POOL_BUF_CAP: usize = 256 * 1024;
/// How long graceful shutdown waits for in-flight responses to flush.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);
/// How long the drain keeps *reading* after shutdown begins. A request
/// written by a client just before the shutdown flag flipped can still
/// be in flight through the network stack (on loopback, softirq
/// delivery is deferred under CPU load), so a single final read pass
/// would silently miss it; the threaded model gets this grace for free
/// from its read-timeout poll loop.
const DRAIN_READ_GRACE: Duration = Duration::from_millis(150);

/// A finished request routed back to the reactor that owns the
/// connection it arrived on.
struct Completion {
    token: u64,
    corr_id: u64,
    result: Result<Vec<u8>>,
}

/// The cross-thread face of one reactor: workers push completions and
/// the acceptor pushes fresh sockets, then signal the eventfd so the
/// event loop wakes and drains both queues.
struct ReactorShared {
    wake_fd: i32,
    completions: Mutex<Vec<Completion>>,
    inbox: Mutex<Vec<TcpStream>>,
}

impl ReactorShared {
    fn wake(&self) {
        sys::eventfd_signal(self.wake_fd);
    }

    fn push_completion(&self, c: Completion) {
        self.completions.lock().push(c);
        self.wake();
    }
}

impl Drop for ReactorShared {
    fn drop(&mut self) {
        sys::close_fd(self.wake_fd);
    }
}

/// The per-connection [`ReplySink`] handed to the worker pool: routes a
/// result to the owning reactor's completion queue, tagged with the
/// connection token so late completions for a closed connection are
/// dropped instead of misrouted.
struct ConnSink {
    token: u64,
    reactor: Arc<ReactorShared>,
}

impl ReplySink for ConnSink {
    fn complete(&self, tag: u64, result: Result<Vec<u8>>) {
        self.reactor.push_completion(Completion { token: self.token, corr_id: tag, result });
    }
}

/// The coalescing write side of a connection: encoded frames queue in
/// pooled buffers and flush as one vectored write per readiness cycle.
struct OutQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of `bufs[0]` already written.
    front_off: usize,
    pool: Vec<Vec<u8>>,
}

impl OutQueue {
    fn new() -> OutQueue {
        OutQueue { bufs: VecDeque::new(), front_off: 0, pool: Vec::new() }
    }

    fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Encode one frame into a pooled buffer and cork it.
    fn push_frame(&mut self, kind: FrameKind, corr_id: u64, payload: &[u8]) {
        let mut buf = self.pool.pop().unwrap_or_default();
        frame::encode_frame_into(&mut buf, kind, corr_id, payload);
        self.bufs.push_back(buf);
    }

    /// Flush as much as the socket accepts, gathering up to [`MAX_IOV`]
    /// corked frames per `writev(2)`. `Ok(true)` = fully drained,
    /// `Ok(false)` = EAGAIN with bytes still pending (wait for
    /// EPOLLOUT), `Err` = the connection is dead.
    fn flush(&mut self, fd: i32) -> io::Result<bool> {
        while !self.bufs.is_empty() {
            let mut iov: Vec<sys::IoVec> = Vec::with_capacity(self.bufs.len().min(MAX_IOV));
            for (i, buf) in self.bufs.iter().take(MAX_IOV).enumerate() {
                let skip = if i == 0 { self.front_off } else { 0 };
                iov.push(sys::IoVec {
                    base: buf[skip..].as_ptr(),
                    len: buf.len() - skip,
                });
            }
            match sys::writev_fd(fd, &iov) {
                Ok(n) => self.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Retire `n` written bytes, recycling fully-written buffers.
    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let remaining = self.bufs[0].len() - self.front_off;
            if n >= remaining {
                let mut buf = self.bufs.pop_front().unwrap();
                self.front_off = 0;
                n -= remaining;
                if self.pool.len() < POOL_BUFS && buf.capacity() <= POOL_BUF_CAP {
                    buf.clear();
                    self.pool.push(buf);
                }
            } else {
                self.front_off += n;
                n = 0;
            }
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: OutQueue,
    sink: Arc<dyn ReplySink>,
    /// Requests handed to the worker pool whose completions have not
    /// come back yet. Inline executions never count: their response is
    /// corked synchronously.
    in_flight: usize,
    /// No more requests will be decoded (EOF, protocol error, or
    /// graceful drain). The connection closes once `in_flight` reaches
    /// zero and the out queue is flushed.
    read_closed: bool,
}

impl Conn {
    fn fd(&self) -> i32 {
        self.stream.as_raw_fd()
    }

    fn finished(&self) -> bool {
        self.read_closed && self.in_flight == 0 && self.out.is_empty()
    }
}

/// Handle owned by `NetServer`: wakes and joins the reactor pool.
pub(crate) struct ReactorHandle {
    shared: Vec<Arc<ReactorShared>>,
    threads: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Wake every reactor (they observe the shutdown flag) and join.
    pub(crate) fn shutdown(&mut self) {
        for s in &self.shared {
            s.wake();
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// Start `config.reactor_threads` event loops; reactor 0 owns the
/// listener and deals accepted sockets round-robin across the pool.
pub(crate) fn start(
    listener: TcpListener,
    submitter: RawSubmitter,
    shutdown: Arc<AtomicBool>,
    config: NetServerConfig,
) -> Result<ReactorHandle> {
    let threads_n = config.reactor_threads.max(1);
    let mut shared = Vec::with_capacity(threads_n);
    for _ in 0..threads_n {
        let wake_fd = sys::eventfd_create()
            .map_err(|e| SnbError::Io(format!("eventfd: {e}")))?;
        shared.push(Arc::new(ReactorShared {
            wake_fd,
            completions: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
        }));
    }
    let active = Arc::new(AtomicUsize::new(0));
    // Build every reactor — each owning an epoll fd — BEFORE spawning
    // any thread: once an event loop runs, a mid-loop setup failure
    // would leave it accepting connections behind a reported startup
    // error (a phantom server plus a thread/fd leak). With all fallible
    // setup done first, spawning cannot fail partway.
    let mut listener = Some(listener);
    let mut reactors: Vec<Reactor> = Vec::with_capacity(threads_n);
    for i in 0..threads_n {
        let epfd = match sys::epoll_create() {
            Ok(fd) => fd,
            Err(e) => {
                for r in reactors.drain(..) {
                    sys::close_fd(r.epfd);
                }
                return Err(SnbError::Io(format!("epoll_create1: {e}")));
            }
        };
        reactors.push(Reactor {
            epfd,
            shared: Arc::clone(&shared[i]),
            peers: shared.clone(),
            next_peer: 0,
            // Reactor 0 owns the listening socket itself.
            listener: if i == 0 { listener.take() } else { None },
            submitter: submitter.clone(),
            shutdown: Arc::clone(&shutdown),
            active: Arc::clone(&active),
            max_connections: config.max_connections,
            conns: FastMap::default(),
            next_token: TOKEN_CONN0,
            draining: false,
            drain_deadline: None,
            read_grace_until: None,
        });
    }
    let threads = reactors
        .into_iter()
        .map(|reactor| std::thread::spawn(move || reactor.run()))
        .collect();
    Ok(ReactorHandle { shared, threads })
}

struct Reactor {
    epfd: i32,
    shared: Arc<ReactorShared>,
    /// Every reactor in the pool (self included), for round-robin
    /// connection dealing by the acceptor.
    peers: Vec<Arc<ReactorShared>>,
    next_peer: usize,
    listener: Option<TcpListener>,
    submitter: RawSubmitter,
    shutdown: Arc<AtomicBool>,
    /// Live connections across the whole pool (the connection limit is
    /// global, like the thread-per-connection server's).
    active: Arc<AtomicUsize>,
    max_connections: usize,
    conns: FastMap<u64, Conn>,
    next_token: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// While draining and `Instant::now()` is before this, connections
    /// keep reading (late-delivered requests are still served); once it
    /// passes, a final read pass runs and reads close for good.
    read_grace_until: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        if sys::epoll_add(self.epfd, self.shared.wake_fd, sys::EPOLLIN | sys::EPOLLET, TOKEN_WAKE)
            .is_err()
        {
            sys::close_fd(self.epfd);
            return;
        }
        if let Some(l) = &self.listener {
            if sys::epoll_add(self.epfd, l.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER).is_err() {
                sys::close_fd(self.epfd);
                return;
            }
        }
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
        loop {
            let timeout_ms = if self.draining { 10 } else { 100 };
            let ready = match sys::epoll_wait_events(self.epfd, &mut events, timeout_ms) {
                Ok(ready) => ready.to_vec(),
                Err(_) => break,
            };
            for ev in &ready {
                match ev.data {
                    TOKEN_WAKE => sys::eventfd_drain(self.shared.wake_fd),
                    TOKEN_LISTENER => self.accept_ready(),
                    token => self.conn_event(token, ev.events),
                }
            }
            self.register_inbox();
            self.apply_completions();
            if !self.draining && self.shutdown.load(Ordering::Relaxed) {
                self.begin_drain();
            }
            if self.read_grace_until.is_some_and(|g| Instant::now() >= g) {
                self.end_read_grace();
            }
            self.reap_finished();
            if self.draining {
                let expired = self.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if self.conns.is_empty() || expired {
                    break;
                }
            }
        }
        // Force-close stragglers (past the drain deadline).
        for (_, conn) in self.conns.drain() {
            sys::epoll_del(self.epfd, conn.stream.as_raw_fd());
            self.active.fetch_sub(1, Ordering::Relaxed);
        }
        sys::close_fd(self.epfd);
    }

    /// Accept everything the backlog holds (the listener registration
    /// is level-triggered, so leftovers re-arm the next wait anyway).
    fn accept_ready(&mut self) {
        let Some(listener) = &self.listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Global limit, same typed rejection as the
                    // threaded model.
                    if self.active.load(Ordering::Relaxed) >= self.max_connections {
                        reject_connection(stream);
                        continue;
                    }
                    self.active.fetch_add(1, Ordering::Relaxed);
                    let peer = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    self.peers[peer].inbox.lock().push(stream);
                    self.peers[peer].wake();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Register connections dealt to this reactor.
    fn register_inbox(&mut self) {
        let inbox = std::mem::take(&mut *self.shared.inbox.lock());
        for stream in inbox {
            if self.draining {
                // Too late to serve — but never silently: a typed
                // corr-0 error frame (like the over-limit path) lets
                // the client fail fast instead of hanging until its
                // request timeout. The stream is still blocking here
                // (nonblocking is set only on registration below).
                reject_connection_with(
                    stream,
                    &SnbError::Backend("server is shutting down".into()),
                );
                self.active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                self.active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
            if sys::epoll_add(self.epfd, stream.as_raw_fd(), interest, token).is_err() {
                self.active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let sink: Arc<dyn ReplySink> =
                Arc::new(ConnSink { token, reactor: Arc::clone(&self.shared) });
            self.conns.insert(
                token,
                Conn {
                    stream,
                    decoder: FrameDecoder::new(),
                    out: OutQueue::new(),
                    sink,
                    in_flight: 0,
                    read_closed: false,
                },
            );
            // Data may already be buffered; don't wait for the first
            // edge to serve it.
            self.conn_event(token, sys::EPOLLIN);
        }
    }

    fn conn_event(&mut self, token: u64, events: u32) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if events & (sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            Self::close_conn(self.epfd, &self.active, &mut self.conns, token);
            return;
        }
        let mut dead = false;
        if events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 && !conn.read_closed {
            dead = drain_read(conn, &self.submitter);
        }
        if !dead && events & sys::EPOLLOUT != 0 && !conn.out.is_empty() {
            dead = conn.out.flush(conn.fd()).is_err();
        }
        if dead {
            Self::close_conn(self.epfd, &self.active, &mut self.conns, token);
        }
    }

    /// Cork every completed response into its connection's out queue,
    /// then flush each touched connection once — the reply-coalescing
    /// path: many results, one `writev` per connection per cycle.
    fn apply_completions(&mut self) {
        let completions = std::mem::take(&mut *self.shared.completions.lock());
        if completions.is_empty() {
            return;
        }
        let mut touched: Vec<u64> = Vec::with_capacity(completions.len());
        for c in completions {
            // Late completion for a closed connection: drop it (the
            // threaded model's writer does the same when the client is
            // gone).
            let Some(conn) = self.conns.get_mut(&c.token) else { continue };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            match c.result {
                Ok(payload) => conn.out.push_frame(FrameKind::Response, c.corr_id, &payload),
                Err(e) => {
                    conn.out.push_frame(FrameKind::Error, c.corr_id, &wire::encode_error(&e))
                }
            }
            if touched.last() != Some(&c.token) {
                touched.push(c.token);
            }
        }
        touched.dedup();
        for token in touched {
            let Some(conn) = self.conns.get_mut(&token) else { continue };
            if conn.out.flush(conn.fd()).is_err() {
                Self::close_conn(self.epfd, &self.active, &mut self.conns, token);
            }
        }
    }

    /// Graceful drain: stop accepting, drain every connection's
    /// buffered reads immediately, then keep serving reads for a short
    /// grace window ([`DRAIN_READ_GRACE`]) so requests written just
    /// before shutdown — but still in flight through the network stack
    /// — are answered rather than dropped. After the grace a final read
    /// pass runs, reads close, and the loop waits for in-flight
    /// responses to flush (bounded by [`DRAIN_TIMEOUT`]).
    fn begin_drain(&mut self) {
        self.draining = true;
        let now = Instant::now();
        self.drain_deadline = Some(now + DRAIN_TIMEOUT);
        self.read_grace_until = Some(now + DRAIN_READ_GRACE);
        if let Some(l) = self.listener.take() {
            sys::epoll_del(self.epfd, l.as_raw_fd());
        }
        self.drain_all_reads();
    }

    /// The read-grace window is over: one last read pass, then no more
    /// requests are decoded on any connection.
    fn end_read_grace(&mut self) {
        self.read_grace_until = None;
        self.drain_all_reads();
        for conn in self.conns.values_mut() {
            conn.read_closed = true;
        }
    }

    /// One read drain over every connection (everything the kernel has
    /// buffered gets decoded and submitted).
    fn drain_all_reads(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else { continue };
            let dead = if conn.read_closed { false } else { drain_read(conn, &self.submitter) };
            if dead {
                Self::close_conn(self.epfd, &self.active, &mut self.conns, token);
            }
        }
    }

    fn reap_finished(&mut self) {
        let done: Vec<u64> =
            self.conns.iter().filter(|(_, c)| c.finished()).map(|(t, _)| *t).collect();
        for token in done {
            Self::close_conn(self.epfd, &self.active, &mut self.conns, token);
        }
    }

    fn close_conn(
        epfd: i32,
        active: &AtomicUsize,
        conns: &mut FastMap<u64, Conn>,
        token: u64,
    ) {
        if let Some(conn) = conns.remove(&token) {
            sys::epoll_del(epfd, conn.stream.as_raw_fd());
            active.fetch_sub(1, Ordering::Relaxed);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Edge-triggered read drain: read until EAGAIN (or EOF), decoding and
/// dispatching every complete frame per pass. Returns `true` when the
/// connection must be closed immediately (transport error).
fn drain_read(conn: &mut Conn, submitter: &RawSubmitter) -> bool {
    let fd = conn.fd();
    loop {
        let spare = conn.decoder.spare_mut(READ_CHUNK);
        match sys::read_fd(fd, spare) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.decoder.commit(n);
                dispatch_frames(conn, submitter);
                if conn.read_closed {
                    // Protocol error mid-buffer: stop reading, let the
                    // fatal frame flush.
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    if !conn.out.is_empty() {
        return conn.out.flush(fd).is_err();
    }
    false
}

/// Decode every complete frame in the connection's arena and dispatch:
/// bounded-cost requests execute inline while a worker permit is free;
/// the rest take the worker pool via the connection's [`ReplySink`].
/// Queue overflow answers the request with a typed `Overloaded` frame,
/// never by dropping the connection — identical to the threaded model.
fn dispatch_frames(conn: &mut Conn, submitter: &RawSubmitter) {
    loop {
        match conn.decoder.next_event() {
            Ok(Some(FrameEvent::Frame(f))) if f.kind == FrameKind::Request => {
                match submitter.try_execute_inline(&f.payload) {
                    Some(Ok(payload)) => {
                        conn.out.push_frame(FrameKind::Response, f.corr_id, &payload);
                    }
                    Some(Err(e)) => {
                        conn.out.push_frame(FrameKind::Error, f.corr_id, &wire::encode_error(&e));
                    }
                    None => {
                        conn.in_flight += 1;
                        if let Err(e) = submitter.submit_sink(f.corr_id, f.payload, &conn.sink) {
                            // Typed backpressure (Overloaded / Backend)
                            // answers the request itself.
                            conn.in_flight -= 1;
                            conn.out.push_frame(
                                FrameKind::Error,
                                f.corr_id,
                                &wire::encode_error(&e),
                            );
                        }
                    }
                }
            }
            Ok(Some(FrameEvent::Frame(f))) if f.kind == FrameKind::Frontier => {
                // A frontier batch is bounded by construction (one
                // adjacency scan or property row per listed vertex), so
                // it runs right here on the event loop — no worker
                // queue, no Overloaded: a scatter-gather wave either
                // answers or fails as a whole.
                match submitter.execute_frontier(&f.payload) {
                    Ok(payload) => {
                        conn.out.push_frame(FrameKind::Response, f.corr_id, &payload)
                    }
                    Err(e) => {
                        conn.out.push_frame(FrameKind::Error, f.corr_id, &wire::encode_error(&e))
                    }
                }
            }
            Ok(Some(FrameEvent::Frame(f))) if f.kind == FrameKind::Analytics => {
                // Analytics ops are cheap control actions (submit /
                // poll / fetch / cancel — the kernel runs on the job
                // manager's own low-priority pool), so like frontier
                // batches they execute right here on the event loop. A
                // malformed payload answers with a typed Codec error on
                // this corr_id; the connection lives on.
                match submitter.execute_analytics(&f.payload) {
                    Ok(payload) => {
                        conn.out.push_frame(FrameKind::Response, f.corr_id, &payload)
                    }
                    Err(e) => {
                        conn.out.push_frame(FrameKind::Error, f.corr_id, &wire::encode_error(&e))
                    }
                }
            }
            Ok(Some(FrameEvent::Frame(f))) => {
                let e = SnbError::Codec("client may only send Request frames".into());
                conn.out.push_frame(FrameKind::Error, f.corr_id, &wire::encode_error(&e));
            }
            Ok(Some(FrameEvent::UnknownKind { tag, corr_id })) => {
                // A fully delimited frame of a kind this server doesn't
                // know: answer it and keep decoding — a newer client
                // must get a typed error, not a dropped socket.
                let e = SnbError::Codec(format!("unsupported frame kind {tag}"));
                conn.out.push_frame(FrameKind::Error, corr_id, &wire::encode_error(&e));
            }
            Ok(None) => break,
            Err(e) => {
                // Framing is broken — no resync possible. Tell the
                // client (connection-fatal, correlation id 0) and stop
                // reading; the connection closes once in-flight
                // responses have flushed.
                conn.out.push_frame(FrameKind::Error, 0, &wire::encode_error(&e));
                conn.read_closed = true;
                break;
            }
        }
    }
}
