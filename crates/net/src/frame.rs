//! The framed RPC protocol spoken on the wire.
//!
//! Every message is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic       0x31424E53 ("SNB1" little-endian)
//! 4       1     version     1
//! 5       1     kind        0=Request 1=Response 2=Error 3=Frontier 4=Analytics
//! 6       8     corr_id     u64 correlation id (echoed in the reply)
//! 14      4     len         payload length in bytes
//! 18      4     checksum    FNV-1a over the payload
//! 22      len   payload     wire-encoded traversal / values / error
//! ```
//!
//! The correlation id is what buys pipelining: a client may write many
//! request frames before reading any response, and responses may come
//! back in any order — each one names the request it answers. The
//! checksum and the `MAX_PAYLOAD` bound protect the server from
//! corrupted or hostile frames: a bad magic, an oversized declared
//! length, or a checksum mismatch is a protocol error, never a panic or
//! an unbounded allocation.
//!
//! An *unknown kind tag* is deliberately softer than those: the header
//! is otherwise valid and the declared length plus checksum still
//! delimit the frame exactly, so the stream remains syncable. Servers
//! consume such a frame as [`FrameEvent::UnknownKind`], answer it with
//! a typed error on its correlation id, and keep the connection — a
//! newer client using a frame kind this server predates must get an
//! error it can read, not a dropped socket.

use snb_core::{Result, SnbError};
use std::io::{ErrorKind, Read, Write};

/// "SNB1" as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"SNB1");
/// Protocol version carried in every frame.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 22;
/// Upper bound on a payload; larger declared lengths are rejected
/// before any allocation happens.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: an encoded traversal.
    Request = 0,
    /// Server → client: encoded result values.
    Response = 1,
    /// Server → client: an encoded [`SnbError`]. With `corr_id` 0 the
    /// error is connection-fatal (e.g. the connection limit), otherwise
    /// it answers the named request.
    Error = 2,
    /// Client → server: an encoded frontier-batch request (the sharded
    /// router's scatter-gather wave). Answered with an ordinary
    /// Response/Error frame, so the client reader needs no new route.
    Frontier = 3,
    /// Client → server: an encoded analytics control request (submit /
    /// poll / fetch / cancel a snapshot-pinned job). Also answered with
    /// an ordinary Response/Error frame.
    Analytics = 4,
}

impl FrameKind {
    fn from_tag(tag: u8) -> Result<FrameKind> {
        Ok(match tag {
            0 => FrameKind::Request,
            1 => FrameKind::Response,
            2 => FrameKind::Error,
            3 => FrameKind::Frontier,
            4 => FrameKind::Analytics,
            other => return Err(SnbError::Codec(format!("unknown frame kind {other}"))),
        })
    }
}

/// What a server-side frame read produces: either a well-formed frame,
/// or a frame whose kind tag this endpoint does not know. The unknown
/// variant is still fully delimited and checksum-verified — its payload
/// has been consumed from the stream — so the caller can reply with a
/// typed error on `corr_id` and keep reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame of a known kind.
    Frame(Frame),
    /// A complete, checksum-valid frame of an unknown kind; skipped.
    UnknownKind {
        /// The unrecognized kind tag.
        tag: u8,
        /// The frame's correlation id (0 if the sender left it unset).
        corr_id: u64,
    },
}

/// One framed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Correlation id; responses echo the id of the request they answer.
    pub corr_id: u64,
    /// Wire-encoded body.
    pub payload: Vec<u8>,
}

/// FNV-1a over the payload — cheap, and enough to catch framing bugs
/// and line corruption (this is not a cryptographic integrity check).
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in payload {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Serialize a frame to a byte vector (header + payload).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len());
    encode_frame_into(&mut out, frame.kind, frame.corr_id, &frame.payload);
    out
}

/// Append one encoded frame to `out` without allocating a fresh buffer
/// — the reactor's reply coalescing and the client's pipelined batch
/// submission both encode many frames into one reused arena and hand
/// the kernel a single contiguous (or vectored) write.
pub fn encode_frame_into(out: &mut Vec<u8>, kind: FrameKind, corr_id: u64, payload: &[u8]) {
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&corr_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Write one frame. A single `write_all` keeps the frame contiguous so
/// concurrent writers only need to serialize at this call.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    w.write_all(&encode_frame(frame)).map_err(io_err)?;
    w.flush().map_err(io_err)
}

fn io_err(e: std::io::Error) -> SnbError {
    SnbError::Io(e.to_string())
}

/// Validate a header and return `(kind tag, corr_id, len, checksum)`.
///
/// The kind tag is returned raw: an unknown tag is not a header error,
/// because the frame is still exactly delimited (see
/// [`FrameEvent::UnknownKind`]). Magic, version, and the declared
/// length *are* hard errors — past any of those the stream cannot be
/// resynced.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u64, usize, u32)> {
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(SnbError::Codec(format!("bad magic 0x{magic:08x}")));
    }
    if header[4] != VERSION {
        return Err(SnbError::Codec(format!("unsupported protocol version {}", header[4])));
    }
    let tag = header[5];
    let corr_id = u64::from_le_bytes(header[6..14].try_into().unwrap());
    let len = u32::from_le_bytes(header[14..18].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(SnbError::Codec(format!("declared payload length {len} exceeds limit")));
    }
    let sum = u32::from_le_bytes(header[18..22].try_into().unwrap());
    Ok((tag, corr_id, len, sum))
}

fn event_of(tag: u8, corr_id: u64, payload: Vec<u8>) -> FrameEvent {
    match FrameKind::from_tag(tag) {
        Ok(kind) => FrameEvent::Frame(Frame { kind, corr_id, payload }),
        Err(_) => FrameEvent::UnknownKind { tag, corr_id },
    }
}

fn unknown_kind_err(tag: u8) -> SnbError {
    SnbError::Codec(format!("unknown frame kind {tag}"))
}

/// Read one frame, blocking until it is complete. EOF before the first
/// header byte yields `Ok(None)` (clean close); EOF mid-frame is an
/// error. An unknown kind tag is an error here — this is the strict
/// (client-side) entry point; servers use
/// [`read_event_interruptible`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    match read_event_interruptible(r, &|| false)? {
        None => Ok(None),
        Some(FrameEvent::Frame(f)) => Ok(Some(f)),
        Some(FrameEvent::UnknownKind { tag, .. }) => Err(unknown_kind_err(tag)),
    }
}

/// Like [`read_frame`], but tolerates read-timeout wakeups so the caller
/// can poll `should_stop` between them (the server sets a short read
/// timeout on accepted sockets for exactly this). Returns `Ok(None)` on
/// clean EOF or when stopped.
pub fn read_frame_interruptible(
    r: &mut impl Read,
    should_stop: &dyn Fn() -> bool,
) -> Result<Option<Frame>> {
    match read_event_interruptible(r, should_stop)? {
        None => Ok(None),
        Some(FrameEvent::Frame(f)) => Ok(Some(f)),
        Some(FrameEvent::UnknownKind { tag, .. }) => Err(unknown_kind_err(tag)),
    }
}

/// The tolerant server-side read: like [`read_frame_interruptible`],
/// but a complete, checksum-valid frame with an unknown kind tag comes
/// back as [`FrameEvent::UnknownKind`] instead of an error, so the
/// caller can answer it and keep the connection alive.
pub fn read_event_interruptible(
    r: &mut impl Read,
    should_stop: &dyn Fn() -> bool,
) -> Result<Option<FrameEvent>> {
    let mut header = [0u8; HEADER_LEN];
    match fill_interruptible(r, &mut header, true, should_stop)? {
        FillOutcome::Eof => return Ok(None),
        FillOutcome::Full => {}
    }
    let (tag, corr_id, len, sum) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    match fill_interruptible(r, &mut payload, false, should_stop)? {
        FillOutcome::Eof => Err(SnbError::Io("connection closed mid-frame".into())),
        FillOutcome::Full => {
            if checksum(&payload) != sum {
                return Err(SnbError::Codec("frame checksum mismatch".into()));
            }
            Ok(Some(event_of(tag, corr_id, payload)))
        }
    }
}

/// Incremental frame decoder for readiness-driven reads.
///
/// A nonblocking socket hands bytes over in arbitrary chunks — partial
/// headers, partial payloads, many frames per `read(2)` — so the
/// decoder owns a single reusable arena: the reactor reads straight
/// into [`FrameDecoder::spare_mut`], commits what arrived, and then
/// drains every complete frame with [`FrameDecoder::next_frame`].
/// Consumed bytes are reclaimed by compaction, so steady-state decoding
/// allocates nothing (payload extraction aside, which must hand
/// ownership to the execution layer).
///
/// Validation is identical to [`read_frame`]: bad magic, bad version,
/// oversized declared length, unknown kind, or a checksum mismatch is a
/// `Codec` error — and the declared-length bound is enforced *before*
/// the payload is buffered, so a hostile header cannot force an
/// unbounded allocation.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of undecoded bytes in `buf`.
    head: usize,
    /// End of valid bytes in `buf` (bytes past this are spare space).
    tail: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Undecoded bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.tail - self.head
    }

    /// Expose at least `min` bytes of spare space to read into; pair
    /// with [`FrameDecoder::commit`] for however many bytes arrived.
    pub fn spare_mut(&mut self, min: usize) -> &mut [u8] {
        if self.buf.len() - self.tail < min {
            self.compact();
            if self.buf.len() - self.tail < min {
                self.buf.resize(self.tail + min, 0);
            }
        }
        &mut self.buf[self.tail..]
    }

    /// Mark `n` bytes of the spare area as valid (just read).
    pub fn commit(&mut self, n: usize) {
        debug_assert!(self.tail + n <= self.buf.len());
        self.tail += n;
    }

    /// Append bytes by copy (tests and non-syscall feeds).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.spare_mut(bytes.len())[..bytes.len()].copy_from_slice(bytes);
        self.commit(bytes.len());
    }

    /// Decode the next complete frame, `Ok(None)` if more bytes are
    /// needed. After a `Codec` error the stream cannot be resynced; the
    /// caller must drop the connection. An unknown kind tag is an error
    /// here — tolerant callers use [`FrameDecoder::next_event`].
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        match self.next_event()? {
            None => Ok(None),
            Some(FrameEvent::Frame(f)) => Ok(Some(f)),
            Some(FrameEvent::UnknownKind { tag, .. }) => Err(unknown_kind_err(tag)),
        }
    }

    /// Decode the next complete frame as a [`FrameEvent`]: unknown kind
    /// tags are consumed (payload skipped, checksum still verified) and
    /// surfaced as [`FrameEvent::UnknownKind`] so a server can reply
    /// with a typed error and keep decoding the stream.
    pub fn next_event(&mut self) -> Result<Option<FrameEvent>> {
        if self.buffered() < HEADER_LEN {
            return Ok(None);
        }
        let header: &[u8; HEADER_LEN] =
            self.buf[self.head..self.head + HEADER_LEN].try_into().unwrap();
        let (tag, corr_id, len, sum) = parse_header(header)?;
        if self.buffered() < HEADER_LEN + len {
            return Ok(None);
        }
        let start = self.head + HEADER_LEN;
        let payload_bytes = &self.buf[start..start + len];
        if checksum(payload_bytes) != sum {
            return Err(SnbError::Codec("frame checksum mismatch".into()));
        }
        let payload = payload_bytes.to_vec();
        self.head += HEADER_LEN + len;
        if self.head == self.tail {
            // Everything consumed: reset without moving any bytes.
            self.head = 0;
            self.tail = 0;
        }
        Ok(Some(event_of(tag, corr_id, payload)))
    }

    /// Move the undecoded suffix to the front of the arena.
    fn compact(&mut self) {
        if self.head > 0 {
            self.buf.copy_within(self.head..self.tail, 0);
            self.tail -= self.head;
            self.head = 0;
        }
    }
}

enum FillOutcome {
    Full,
    Eof,
}

/// Fill `buf` completely, retrying on `Interrupted`/timeout wakeups.
/// Stopping (or EOF) with zero bytes read is clean; mid-buffer it is a
/// hard error, because the stream position is lost either way.
fn fill_interruptible(
    r: &mut impl Read,
    buf: &mut [u8],
    eof_ok_at_start: bool,
    should_stop: &dyn Fn() -> bool,
) -> Result<FillOutcome> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && eof_ok_at_start {
                    Ok(FillOutcome::Eof)
                } else {
                    Err(SnbError::Io("connection closed mid-frame".into()))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if should_stop() {
                    return if filled == 0 {
                        Ok(FillOutcome::Eof)
                    } else {
                        Err(SnbError::Io("stopped mid-frame".into()))
                    };
                }
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    Ok(FillOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame(kind: FrameKind, corr_id: u64, payload: &[u8]) -> Frame {
        Frame { kind, corr_id, payload: payload.to_vec() }
    }

    #[test]
    fn frames_roundtrip() {
        for f in [
            frame(FrameKind::Request, 1, b"hello"),
            frame(FrameKind::Response, u64::MAX, &[]),
            frame(FrameKind::Error, 0, &[0xFF; 300]),
            frame(FrameKind::Frontier, 9, b"wave"),
            frame(FrameKind::Analytics, 17, b"job"),
        ] {
            let bytes = encode_frame(&f);
            assert_eq!(bytes.len(), HEADER_LEN + f.payload.len());
            let got = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
            assert_eq!(got, f);
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = frame(FrameKind::Request, 1, b"aa");
        let b = frame(FrameKind::Request, 2, b"bbbb");
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let mut cur = Cursor::new(&bytes);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b);
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF after last frame");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_frame(&frame(FrameKind::Request, 1, b"x"));
        bytes[0] ^= 0xAA;
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnbError::Codec(ref m) if m.contains("magic")), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_frame(&frame(FrameKind::Request, 1, b"x"));
        bytes[4] = 99;
        assert!(read_frame(&mut Cursor::new(&bytes)).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut bytes = encode_frame(&frame(FrameKind::Request, 1, b"x"));
        bytes[5] = 42;
        assert!(read_frame(&mut Cursor::new(&bytes)).is_err());
    }

    #[test]
    fn unknown_kind_is_a_survivable_event() {
        // A frame with an unrecognized kind tag but an otherwise valid
        // header must be consumed and surfaced — not kill the stream:
        // the next frame still decodes.
        let mut bytes = encode_frame(&frame(FrameKind::Request, 7, b"future stuff"));
        bytes[5] = 42;
        let follow = frame(FrameKind::Request, 8, b"normal");
        bytes.extend_from_slice(&encode_frame(&follow));

        // Blocking read path.
        let mut cur = Cursor::new(&bytes);
        assert_eq!(
            read_event_interruptible(&mut cur, &|| false).unwrap(),
            Some(FrameEvent::UnknownKind { tag: 42, corr_id: 7 })
        );
        assert_eq!(
            read_event_interruptible(&mut cur, &|| false).unwrap(),
            Some(FrameEvent::Frame(follow.clone()))
        );
        assert!(read_event_interruptible(&mut cur, &|| false).unwrap().is_none());

        // Incremental decoder path, fed one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut events = Vec::new();
        for &b in &bytes {
            dec.push_bytes(&[b]);
            while let Some(ev) = dec.next_event().unwrap() {
                events.push(ev);
            }
        }
        assert_eq!(
            events,
            vec![
                FrameEvent::UnknownKind { tag: 42, corr_id: 7 },
                FrameEvent::Frame(follow),
            ]
        );
    }

    #[test]
    fn unknown_kind_with_bad_checksum_is_still_fatal() {
        // The unknown-kind tolerance only applies to delimitable frames;
        // a checksum mismatch means the length itself can't be trusted.
        let mut bytes = encode_frame(&frame(FrameKind::Request, 7, b"payload"));
        bytes[5] = 42;
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(read_event_interruptible(&mut Cursor::new(&bytes), &|| false).is_err());
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut bytes = encode_frame(&frame(FrameKind::Request, 1, b"x"));
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnbError::Codec(ref m) if m.contains("exceeds limit")), "{err}");
    }

    #[test]
    fn checksum_mismatch_rejected() {
        let mut bytes = encode_frame(&frame(FrameKind::Response, 3, b"payload"));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(&bytes)).unwrap_err();
        assert!(matches!(err, SnbError::Codec(ref m) if m.contains("checksum")), "{err}");
    }

    #[test]
    fn truncation_mid_header_and_mid_payload() {
        let bytes = encode_frame(&frame(FrameKind::Request, 9, b"abcdef"));
        // Mid-header: an error (bytes were consumed, stream is broken).
        assert!(read_frame(&mut Cursor::new(&bytes[..HEADER_LEN - 3])).is_err());
        // Mid-payload: also an error.
        assert!(read_frame(&mut Cursor::new(&bytes[..bytes.len() - 2])).is_err());
        // Zero bytes: clean EOF.
        assert!(read_frame(&mut Cursor::new(&[] as &[u8])).unwrap().is_none());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b""), 0x811c_9dc5);
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_ne!(checksum(b"ab"), checksum(b"ba"));
    }
}
