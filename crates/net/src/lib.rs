//! `snb-net`: the real socket layer in front of the Gremlin Server
//! analogue — the client/server split the paper's Figure 1 architecture
//! (and the LDBC driver spec) require, so that driver-side and
//! server-side latency can be attributed separately.
//!
//! Three pieces:
//!
//! * [`frame`] — the framed RPC protocol: magic/version header, a `u64`
//!   correlation id so one connection pipelines many in-flight
//!   requests, a length prefix bounded by [`frame::MAX_PAYLOAD`], and an
//!   FNV-1a payload checksum. Payloads are the existing
//!   [`snb_gremlin::wire`] encodings (traversal, values, typed error).
//! * [`server`] — [`NetServer`]: two selectable I/O models over one
//!   execution layer. [`server::IoModel::Threaded`] is a
//!   `std::net::TcpListener` acceptor (no async runtime; plain threads)
//!   with a per-connection reader/writer pair;
//!   [`server::IoModel::Reactor`] is a fixed pool of epoll event loops
//!   (edge-triggered batched reads, coalesced `writev` responses,
//!   pooled buffers, bounded-cost inline execution). Both dispatch into
//!   the [`snb_gremlin::GremlinServer`] worker pool via
//!   [`snb_gremlin::RawSubmitter`]; queue overflow and
//!   oversized/broken frames come back as typed error frames, and
//!   shutdown drains in-flight requests before the worker pool stops.
//! * [`client`] — [`NetPool`]: a connection pool with connect/request
//!   timeouts and capped-exponential jittered backoff retry on
//!   *transport* failures only (never on query errors). Single
//!   round trips via [`NetPool::submit`]; pipelined batches —
//!   N requests in one syscall, tagged replies gathered as they
//!   stream back — via [`NetPool::submit_batch`]. Implements
//!   [`snb_gremlin::TraversalEndpoint`], so the driver's Gremlin
//!   adapters run unchanged over the socket.

pub mod analytics;
pub mod client;
pub mod frame;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;
mod sys;

pub use analytics::AnalyticsClient;
pub use client::{ClientConfig, NetPool, PendingReply};
pub use frame::{Frame, FrameEvent, FrameKind};
pub use server::{default_reactor_threads, IoModel, NetServer, NetServerConfig};
