//! `snb-net`: the real socket layer in front of the Gremlin Server
//! analogue — the client/server split the paper's Figure 1 architecture
//! (and the LDBC driver spec) require, so that driver-side and
//! server-side latency can be attributed separately.
//!
//! Three pieces:
//!
//! * [`frame`] — the framed RPC protocol: magic/version header, a `u64`
//!   correlation id so one connection pipelines many in-flight
//!   requests, a length prefix bounded by [`frame::MAX_PAYLOAD`], and an
//!   FNV-1a payload checksum. Payloads are the existing
//!   [`snb_gremlin::wire`] encodings (traversal, values, typed error).
//! * [`server`] — [`NetServer`]: a `std::net::TcpListener` acceptor
//!   (no async runtime; plain threads, shutdown-polled reads), a
//!   per-connection reader/writer pair, a connection limit, and dispatch
//!   into the [`snb_gremlin::GremlinServer`] worker pool via
//!   [`snb_gremlin::RawSubmitter`]. Queue overflow and oversized/broken
//!   frames come back as typed error frames; shutdown drains in-flight
//!   requests before the worker pool stops.
//! * [`client`] — [`NetPool`]: a connection pool with connect/request
//!   timeouts and exponential-backoff retry on *transport* failures
//!   only (never on query errors). Implements
//!   [`snb_gremlin::TraversalEndpoint`], so the driver's Gremlin
//!   adapters run unchanged over the socket.

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientConfig, NetPool};
pub use frame::{Frame, FrameKind};
pub use server::{NetServer, NetServerConfig};
