//! Typed remote API for the analytics tier: thin wrappers that encode
//! an [`AnalyticsRequest`], send it as one Analytics frame over a
//! [`NetPool`], and decode the response — so drivers and benchmarks
//! talk in terms of jobs, not payload bytes.
//!
//! Response frames for analytics requests are ordinary Response/Error
//! frames, so the pooled connections' correlation-id routing (and their
//! pipelining) applies unchanged: a driver can poll one job while
//! interactive traversals stream over the same sockets.

use snb_analytics::{
    decode_response, encode_request, AnalyticsRequest, AnalyticsResponse, JobId, JobOutput,
    JobSpec, JobStatus,
};
use snb_core::{Result, SnbError};

use crate::client::NetPool;

/// A typed view of a pool's analytics channel. Borrow-based and
/// stateless: make one wherever a [`NetPool`] is handy.
pub struct AnalyticsClient<'a> {
    pool: &'a NetPool,
}

impl<'a> AnalyticsClient<'a> {
    pub fn new(pool: &'a NetPool) -> AnalyticsClient<'a> {
        AnalyticsClient { pool }
    }

    fn round_trip(&self, req: &AnalyticsRequest) -> Result<AnalyticsResponse> {
        let bytes = self.pool.submit_analytics(&encode_request(req))?;
        decode_response(&bytes).map_err(|e| SnbError::Codec(format!("bad analytics response: {e}")))
    }

    /// Submit a job; returns its server-assigned id. A full job queue
    /// surfaces as [`SnbError::Overloaded`].
    pub fn submit_job(&self, spec: JobSpec) -> Result<JobId> {
        match self.round_trip(&AnalyticsRequest::Submit(spec))? {
            AnalyticsResponse::Submitted { id } => Ok(id),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// Poll a job's state (Queued / Running with iteration progress /
    /// Done / Failed / Cancelled).
    pub fn poll_job(&self, id: JobId) -> Result<JobStatus> {
        match self.round_trip(&AnalyticsRequest::Poll { id })? {
            AnalyticsResponse::Status(st) => Ok(st),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Fetch a finished job's result; `top_k = None` fetches the full
    /// result, `Some(k)` just the k highest-ranked entries. A job that
    /// is not Done yet answers with [`SnbError::Conflict`].
    pub fn fetch_result(&self, id: JobId, top_k: Option<usize>) -> Result<JobOutput> {
        let top_k = top_k.map(|k| k.min(u32::MAX as usize) as u32).unwrap_or(0);
        match self.round_trip(&AnalyticsRequest::Fetch { id, top_k })? {
            AnalyticsResponse::Result(out) => Ok(out),
            other => Err(unexpected("Result", &other)),
        }
    }

    /// Cancel a job. Returns `true` if the job was still live (queued
    /// or running) when the cancel landed.
    pub fn cancel_job(&self, id: JobId) -> Result<bool> {
        match self.round_trip(&AnalyticsRequest::Cancel { id })? {
            AnalyticsResponse::Cancelled { was_live } => Ok(was_live),
            other => Err(unexpected("Cancelled", &other)),
        }
    }
}

fn unexpected(want: &str, got: &AnalyticsResponse) -> SnbError {
    SnbError::Codec(format!("expected {want} analytics response, got {got:?}"))
}
