//! The TCP face of the Gremlin Server analogue.
//!
//! One acceptor thread (non-blocking accept + shutdown poll) hands each
//! connection to a reader thread; a paired writer thread owns the
//! response channel. The reader decodes request frames and dispatches
//! them into the existing [`GremlinServer`] worker pool through its
//! [`RawSubmitter`] — it never executes traversals itself, so a slow
//! query on one connection cannot stall frame decoding on another, and
//! responses stream back in completion order tagged with the request's
//! correlation id (pipelining).
//!
//! Backpressure is typed, not silent: when the worker queue is full the
//! client receives an Error frame carrying `SnbError::Overloaded` for
//! that request; when the connection limit is hit the client receives a
//! connection-fatal Error frame (correlation id 0) before the socket is
//! closed. Graceful shutdown stops accepting, lets readers finish the
//! frame in progress, and keeps each writer alive until every in-flight
//! request has produced its response frame.

use crossbeam::channel::{unbounded, Receiver, Sender};
use snb_core::{Result, SnbError};
use snb_gremlin::wire;
use snb_gremlin::{GremlinServer, RawSubmitter};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::frame::{self, Frame, FrameKind};

/// Transport tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub bind_addr: String,
    /// Connections beyond this are rejected with a typed error frame.
    pub max_connections: usize,
    /// Socket read timeout used to poll the shutdown flag.
    pub poll_interval: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// The TCP server. Dropping it (or calling [`NetServer::shutdown`])
/// stops the acceptor, drains in-flight requests, and only then tears
/// down the owned [`GremlinServer`].
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    /// Kept alive until the transport has fully drained: the field is
    /// declared after the join handle but dropped explicitly in
    /// [`NetServer::shutdown`] after joining the acceptor.
    gremlin: Option<GremlinServer>,
}

impl NetServer {
    /// Bind and start serving the given Gremlin worker pool.
    pub fn start(gremlin: GremlinServer, config: NetServerConfig) -> Result<NetServer> {
        let listener = TcpListener::bind(&config.bind_addr)
            .map_err(|e| SnbError::Io(format!("bind {}: {e}", config.bind_addr)))?;
        let local_addr =
            listener.local_addr().map_err(|e| SnbError::Io(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SnbError::Io(format!("set_nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let submitter = gremlin.raw_submitter();
        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let config = config.clone();
            std::thread::spawn(move || accept_loop(listener, submitter, shutdown, config))
        };
        Ok(NetServer {
            local_addr,
            shutdown,
            accept_handle: Some(accept_handle),
            gremlin: Some(gremlin),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// then stop the worker pool. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Workers only stop after the transport has drained.
        self.gremlin.take();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn accept_loop(
    listener: TcpListener,
    submitter: RawSubmitter,
    shutdown: Arc<AtomicBool>,
    config: NetServerConfig,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                handles.retain(|h| !h.is_finished());
                if active.load(Ordering::Relaxed) >= config.max_connections {
                    reject_connection(stream);
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let guard = ConnGuard(Arc::clone(&active));
                let submitter = submitter.clone();
                let shutdown = Arc::clone(&shutdown);
                let poll = config.poll_interval;
                handles.push(std::thread::spawn(move || {
                    let _guard = guard;
                    handle_connection(stream, submitter, shutdown, poll);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

/// Over-limit connections get a connection-fatal typed error frame
/// (correlation id 0) instead of a silent close.
fn reject_connection(mut stream: TcpStream) {
    let err = SnbError::Overloaded("connection limit reached".into());
    let f = Frame { kind: FrameKind::Error, corr_id: 0, payload: wire::encode_error(&err) };
    let _ = frame::write_frame(&mut stream, &f);
    let _ = stream.flush();
}

fn handle_connection(
    mut stream: TcpStream,
    submitter: RawSubmitter,
    shutdown: Arc<AtomicBool>,
    poll_interval: Duration,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(poll_interval)).is_err() {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Results flow worker → writer on this channel; the reader holds one
    // sender, every queued request holds another (inside the worker
    // pool), so the writer's drain loop ends exactly when the reader has
    // stopped AND the last in-flight request has answered.
    let (results_tx, results_rx): (
        Sender<(u64, Result<Vec<u8>>)>,
        Receiver<(u64, Result<Vec<u8>>)>,
    ) = unbounded();
    let writer = std::thread::spawn(move || writer_loop(write_half, results_rx));

    let stop = || shutdown.load(Ordering::Relaxed);
    loop {
        match frame::read_frame_interruptible(&mut stream, &stop) {
            Ok(None) => break, // clean EOF or shutdown
            Ok(Some(f)) if f.kind == FrameKind::Request => {
                if let Err(e) = submitter.submit_raw(f.corr_id, f.payload, &results_tx) {
                    // Typed backpressure: Overloaded (queue full) or
                    // Backend (pool gone) answers the request instead of
                    // killing the connection.
                    let _ = results_tx.send((f.corr_id, Err(e)));
                }
            }
            Ok(Some(f)) => {
                let e = SnbError::Codec("client may only send Request frames".into());
                let _ = results_tx.send((f.corr_id, Err(e)));
            }
            Err(SnbError::Codec(m)) => {
                // Framing is broken — no way to resync; tell the client
                // (connection-fatal, correlation id 0) and hang up.
                let _ = results_tx.send((0, Err(SnbError::Codec(m))));
                break;
            }
            Err(_) => break, // transport error
        }
    }
    drop(results_tx);
    let _ = writer.join(); // drains every in-flight response
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn writer_loop(mut stream: TcpStream, results_rx: Receiver<(u64, Result<Vec<u8>>)>) {
    while let Ok((corr_id, result)) = results_rx.recv() {
        let f = match result {
            Ok(payload) => Frame { kind: FrameKind::Response, corr_id, payload },
            Err(e) => Frame { kind: FrameKind::Error, corr_id, payload: wire::encode_error(&e) },
        };
        if frame::write_frame(&mut stream, &f).is_err() {
            // Client is gone; keep draining so workers never block on a
            // full channel (it is unbounded, but exiting early would
            // just drop results on the floor anyway).
            break;
        }
    }
}
