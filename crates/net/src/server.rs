//! The TCP face of the Gremlin Server analogue.
//!
//! Two I/O models serve the same execution layer (selected by
//! [`NetServerConfig::io_model`]):
//!
//! * [`IoModel::Threaded`] — one acceptor thread (readiness-waited
//!   accept via `poll(2)`) hands each connection to a reader thread; a
//!   paired writer thread owns the response channel. The reader decodes
//!   request frames and dispatches them into the existing
//!   [`GremlinServer`] worker pool through its [`RawSubmitter`] — it
//!   never executes traversals itself, so a slow query on one
//!   connection cannot stall frame decoding on another, and responses
//!   stream back in completion order tagged with the request's
//!   correlation id (pipelining).
//! * [`IoModel::Reactor`] — a fixed pool of epoll event loops
//!   (see [`crate::reactor`]): edge-triggered reads that decode every
//!   pipelined frame per syscall, coalesced `writev` responses, pooled
//!   per-connection buffers, and inline execution of bounded-cost
//!   requests. Linux-only; requesting it elsewhere falls back to the
//!   threaded model.
//!
//! Backpressure is typed, not silent, under both models: when the
//! worker queue is full the client receives an Error frame carrying
//! `SnbError::Overloaded` for that request; when the connection limit
//! is hit the client receives a connection-fatal Error frame
//! (correlation id 0) before the socket is closed. Graceful shutdown
//! stops accepting, lets readers finish the frame in progress, and
//! keeps each connection alive until every in-flight request has
//! produced its response frame.

use crossbeam::channel::{unbounded, Receiver, Sender};
use snb_core::{Result, SnbError};
use snb_gremlin::wire;
use snb_gremlin::{GremlinServer, RawSubmitter};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::frame::{self, Frame, FrameEvent, FrameKind};

/// Which I/O machinery serves the sockets. Execution semantics
/// (worker pool, bounded queue, `Overloaded`, graceful drain,
/// correlation ids) are identical under both — only syscall and thread
/// structure differ, which is exactly what the benchmark compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// Two threads per connection (reader + writer), one blocking
    /// syscall per frame.
    Threaded,
    /// A fixed pool of epoll event loops: edge-triggered batched reads,
    /// coalesced vectored writes, pooled buffers, inline execution of
    /// bounded-cost requests. Linux-only; silently degrades to
    /// [`IoModel::Threaded`] elsewhere.
    Reactor,
}

impl IoModel {
    /// The preferred model for this platform.
    pub fn default_for_platform() -> IoModel {
        if cfg!(target_os = "linux") {
            IoModel::Reactor
        } else {
            IoModel::Threaded
        }
    }
}

/// Transport tuning knobs.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub bind_addr: String,
    /// Connections beyond this are rejected with a typed error frame.
    pub max_connections: usize,
    /// How long the acceptor (threaded model) waits for listener
    /// readiness before re-checking the shutdown flag.
    pub poll_interval: Duration,
    /// Which I/O machinery to use.
    pub io_model: IoModel,
    /// Event-loop threads for [`IoModel::Reactor`] (clamped to ≥ 1).
    /// The loops only do I/O, frame codec work, and bounded-cost inline
    /// execution, so a small number covers many connections. Defaults
    /// to [`default_reactor_threads`].
    pub reactor_threads: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            poll_interval: Duration::from_millis(25),
            io_model: IoModel::default_for_platform(),
            reactor_threads: default_reactor_threads(),
        }
    }
}

/// Default reactor-pool size: track the machine like the Gremlin worker
/// pool does, but capped — event loops only do I/O, codec work, and
/// bounded inline execution, so past a handful they just contend on the
/// accept path — and clamped to at least one so a 1-core box (or a box
/// where `available_parallelism` errors) still serves.
pub fn default_reactor_threads() -> usize {
    clamp_reactor_threads(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Ceiling on the derived reactor-pool default.
const MAX_DEFAULT_REACTOR_THREADS: usize = 8;

fn clamp_reactor_threads(n: usize) -> usize {
    n.clamp(1, MAX_DEFAULT_REACTOR_THREADS)
}

impl NetServerConfig {
    /// This config with the given I/O model (builder-style, for tests
    /// and benchmarks that sweep both).
    pub fn with_io_model(mut self, io_model: IoModel) -> Self {
        self.io_model = io_model;
        self
    }
}

/// The TCP server. Dropping it (or calling [`NetServer::shutdown`])
/// stops the acceptor, drains in-flight requests, and only then tears
/// down the owned [`GremlinServer`].
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    transport: Transport,
    /// Kept alive until the transport has fully drained: the field is
    /// declared after the transport but dropped explicitly in
    /// [`NetServer::shutdown`] after the transport has stopped.
    gremlin: Option<GremlinServer>,
    /// The model actually serving (after platform fallback).
    io_model: IoModel,
}

/// The running I/O machinery behind a [`NetServer`].
enum Transport {
    Threaded(Option<JoinHandle<()>>),
    #[cfg(target_os = "linux")]
    Reactor(crate::reactor::ReactorHandle),
    /// Already shut down.
    Stopped,
}

impl NetServer {
    /// Bind and start serving the given Gremlin worker pool.
    pub fn start(gremlin: GremlinServer, config: NetServerConfig) -> Result<NetServer> {
        let listener = TcpListener::bind(&config.bind_addr)
            .map_err(|e| SnbError::Io(format!("bind {}: {e}", config.bind_addr)))?;
        let local_addr =
            listener.local_addr().map_err(|e| SnbError::Io(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SnbError::Io(format!("set_nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let submitter = gremlin.raw_submitter();
        let io_model = match config.io_model {
            IoModel::Reactor if cfg!(target_os = "linux") => IoModel::Reactor,
            _ => IoModel::Threaded,
        };
        let transport = match io_model {
            #[cfg(target_os = "linux")]
            IoModel::Reactor => Transport::Reactor(crate::reactor::start(
                listener,
                submitter,
                Arc::clone(&shutdown),
                config.clone(),
            )?),
            _ => Transport::Threaded(Some({
                let shutdown = Arc::clone(&shutdown);
                let config = config.clone();
                std::thread::spawn(move || accept_loop(listener, submitter, shutdown, config))
            })),
        };
        Ok(NetServer { local_addr, shutdown, transport, gremlin: Some(gremlin), io_model })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The I/O model actually serving (after platform fallback).
    pub fn io_model(&self) -> IoModel {
        self.io_model
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// then stop the worker pool. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        match std::mem::replace(&mut self.transport, Transport::Stopped) {
            Transport::Threaded(handle) => {
                if let Some(h) = handle {
                    let _ = h.join();
                }
            }
            #[cfg(target_os = "linux")]
            Transport::Reactor(mut handle) => handle.shutdown(),
            Transport::Stopped => {}
        }
        // Workers only stop after the transport has drained.
        self.gremlin.take();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn accept_loop(
    listener: TcpListener,
    submitter: RawSubmitter,
    shutdown: Arc<AtomicBool>,
    config: NetServerConfig,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                handles.retain(|h| !h.is_finished());
                if active.load(Ordering::Relaxed) >= config.max_connections {
                    reject_connection(stream);
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let guard = ConnGuard(Arc::clone(&active));
                let submitter = submitter.clone();
                let shutdown = Arc::clone(&shutdown);
                let poll = config.poll_interval;
                handles.push(std::thread::spawn(move || {
                    let _guard = guard;
                    handle_connection(stream, submitter, shutdown, poll);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Readiness wait instead of a sleep-poll: wakes the
                // moment a connection arrives, re-checks the shutdown
                // flag on timeout.
                wait_accept_ready(&listener, config.poll_interval);
            }
            Err(_) => break,
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

#[cfg(unix)]
fn wait_accept_ready(listener: &TcpListener, poll_interval: Duration) {
    use std::os::unix::io::AsRawFd;
    let timeout_ms = poll_interval.as_millis().min(i32::MAX as u128) as i32;
    let _ = crate::sys::wait_readable(listener.as_raw_fd(), timeout_ms);
}

#[cfg(not(unix))]
fn wait_accept_ready(_listener: &TcpListener, poll_interval: Duration) {
    std::thread::sleep(poll_interval.min(Duration::from_millis(2)));
}

/// Over-limit connections get a connection-fatal typed error frame
/// (correlation id 0) instead of a silent close.
pub(crate) fn reject_connection(stream: TcpStream) {
    reject_connection_with(stream, &SnbError::Overloaded("connection limit reached".into()));
}

/// Write a connection-fatal error frame (correlation id 0) and drop the
/// socket: the client surfaces the typed error immediately instead of
/// hanging until its request timeout.
pub(crate) fn reject_connection_with(mut stream: TcpStream, err: &SnbError) {
    let f = Frame { kind: FrameKind::Error, corr_id: 0, payload: wire::encode_error(err) };
    let _ = frame::write_frame(&mut stream, &f);
    let _ = stream.flush();
}

fn handle_connection(
    mut stream: TcpStream,
    submitter: RawSubmitter,
    shutdown: Arc<AtomicBool>,
    poll_interval: Duration,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(poll_interval)).is_err() {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Results flow worker → writer on this channel; the reader holds one
    // sender, every queued request holds another (inside the worker
    // pool), so the writer's drain loop ends exactly when the reader has
    // stopped AND the last in-flight request has answered.
    let (results_tx, results_rx): (
        Sender<(u64, Result<Vec<u8>>)>,
        Receiver<(u64, Result<Vec<u8>>)>,
    ) = unbounded();
    let writer = std::thread::spawn(move || writer_loop(write_half, results_rx));

    let stop = || shutdown.load(Ordering::Relaxed);
    loop {
        match frame::read_event_interruptible(&mut stream, &stop) {
            Ok(None) => break, // clean EOF or shutdown
            Ok(Some(FrameEvent::Frame(f))) if f.kind == FrameKind::Request => {
                if let Err(e) = submitter.submit_raw(f.corr_id, f.payload, &results_tx) {
                    // Typed backpressure: Overloaded (queue full) or
                    // Backend (pool gone) answers the request instead of
                    // killing the connection.
                    let _ = results_tx.send((f.corr_id, Err(e)));
                }
            }
            Ok(Some(FrameEvent::Frame(f))) if f.kind == FrameKind::Frontier => {
                // Frontier batches are bounded by construction (one
                // adjacency scan per listed vertex), so they execute on
                // the reader thread, bypassing the worker queue — a
                // scatter-gather wave is never rejected with Overloaded.
                let result = submitter.execute_frontier(&f.payload);
                let _ = results_tx.send((f.corr_id, result));
            }
            Ok(Some(FrameEvent::Frame(f))) if f.kind == FrameKind::Analytics => {
                // Analytics ops are cheap control actions (the kernel
                // runs on the job manager's own pool); execute inline
                // like frontier batches. A malformed payload comes back
                // as a typed Codec error on this corr_id — never a
                // dropped connection.
                let result = submitter.execute_analytics(&f.payload);
                let _ = results_tx.send((f.corr_id, result));
            }
            Ok(Some(FrameEvent::Frame(f))) => {
                let e = SnbError::Codec("client may only send Request frames".into());
                let _ = results_tx.send((f.corr_id, Err(e)));
            }
            Ok(Some(FrameEvent::UnknownKind { tag, corr_id })) => {
                // A future frame kind from a newer client: the frame is
                // fully delimited and consumed, so answer it and keep
                // serving this connection.
                let e = SnbError::Codec(format!("unsupported frame kind {tag}"));
                let _ = results_tx.send((corr_id, Err(e)));
            }
            Err(SnbError::Codec(m)) => {
                // Framing is broken — no way to resync; tell the client
                // (connection-fatal, correlation id 0) and hang up.
                let _ = results_tx.send((0, Err(SnbError::Codec(m))));
                break;
            }
            Err(_) => break, // transport error
        }
    }
    drop(results_tx);
    let _ = writer.join(); // drains every in-flight response
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reactor_threads_track_available_parallelism_clamped() {
        // Regression for the hard-coded `reactor_threads: 2`: the
        // default must be derived from the machine (mirroring what the
        // Gremlin worker pool did for `workers`), capped so a huge box
        // doesn't spawn useless event loops, and floored at one so a
        // 1-core box (or an `available_parallelism` error, modelled by
        // the 0 input) still serves.
        assert_eq!(clamp_reactor_threads(0), 1);
        assert_eq!(clamp_reactor_threads(1), 1);
        assert_eq!(clamp_reactor_threads(4), 4);
        assert_eq!(clamp_reactor_threads(MAX_DEFAULT_REACTOR_THREADS), MAX_DEFAULT_REACTOR_THREADS);
        assert_eq!(clamp_reactor_threads(64), MAX_DEFAULT_REACTOR_THREADS);
        assert_eq!(clamp_reactor_threads(usize::MAX), MAX_DEFAULT_REACTOR_THREADS);
        let expect = clamp_reactor_threads(
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        );
        assert_eq!(default_reactor_threads(), expect);
        assert_eq!(NetServerConfig::default().reactor_threads, expect);
        assert!(NetServerConfig::default().reactor_threads >= 1);
    }
}

fn writer_loop(mut stream: TcpStream, results_rx: Receiver<(u64, Result<Vec<u8>>)>) {
    while let Ok((corr_id, result)) = results_rx.recv() {
        let f = match result {
            Ok(payload) => Frame { kind: FrameKind::Response, corr_id, payload },
            Err(e) => Frame { kind: FrameKind::Error, corr_id, payload: wire::encode_error(&e) },
        };
        if frame::write_frame(&mut stream, &f).is_err() {
            // Client is gone; keep draining so workers never block on a
            // full channel (it is unbounded, but exiting early would
            // just drop results on the floor anyway).
            break;
        }
    }
}
