//! Raw syscall bindings for the readiness-driven I/O paths.
//!
//! std already links libc, so `extern "C"` declarations are enough —
//! no new dependency. Two tiers:
//!
//! * `poll(2)` (all unix): used by the thread-per-connection acceptor
//!   to wait for listener readiness instead of sleep-polling.
//! * `epoll(7)` + `eventfd(2)` + `writev(2)` (linux): the reactor's
//!   event loop, cross-thread wakeup, and coalesced vectored writes.
//!
//! Everything here returns raw results; callers translate errno through
//! [`std::io::Error::last_os_error`]. The only unsafe surface is the
//! FFI itself — every wrapper takes lengths from Rust slices.

#![allow(dead_code)]

#[cfg(unix)]
pub use unix::*;

#[cfg(unix)]
mod unix {
    use std::io;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    }

    /// Wait until `fd` is readable or `timeout_ms` elapses. Returns
    /// `Ok(true)` when readable, `Ok(false)` on timeout.
    pub fn wait_readable(fd: i32, timeout_ms: i32) -> io::Result<bool> {
        let mut pfd = PollFd { fd, events: POLLIN, revents: 0 };
        loop {
            let n = unsafe { poll(&mut pfd, 1, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            return Ok(n > 0);
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(target_os = "linux")]
mod linux {
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI packs it there so 32- and 64-bit layouts match); naturally
    /// aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        /// Caller-chosen token echoed back with each event.
        pub data: u64,
    }

    #[repr(C)]
    pub struct IoVec {
        pub base: *const u8,
        pub len: usize,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
        fn close(fd: i32) -> i32;
    }

    pub fn epoll_create() -> io::Result<i32> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn epoll_add(epfd: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        if unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn epoll_del(epfd: i32, fd: i32) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // Failure here means the fd is already gone; nothing to do.
        let _ = unsafe { epoll_ctl(epfd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Wait for events; retries on EINTR. Returns the filled prefix.
    pub fn epoll_wait_events<'a>(
        epfd: i32,
        events: &'a mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<&'a [EpollEvent]> {
        loop {
            let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            return Ok(&events[..n as usize]);
        }
    }

    /// A nonblocking eventfd for cross-thread reactor wakeups.
    pub fn eventfd_create() -> io::Result<i32> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    /// Signal an eventfd (adds 1 to its counter). Never blocks: a full
    /// counter (u64::MAX - 1 pending wakeups) would mean the reactor is
    /// long dead anyway.
    pub fn eventfd_signal(fd: i32) {
        let one = 1u64.to_ne_bytes();
        let _ = unsafe { write(fd, one.as_ptr(), one.len()) };
    }

    /// Drain an eventfd's counter after a wakeup.
    pub fn eventfd_drain(fd: i32) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    }

    /// `read(2)` into a slice. `Ok(0)` is EOF.
    pub fn read_fd(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
        let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    /// `write(2)` from a slice.
    pub fn write_fd(fd: i32, buf: &[u8]) -> io::Result<usize> {
        let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    /// Gathered `writev(2)` over the given iovecs.
    pub fn writev_fd(fd: i32, iov: &[IoVec]) -> io::Result<usize> {
        let n = unsafe { writev(fd, iov.as_ptr(), iov.len() as i32) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    pub fn close_fd(fd: i32) {
        let _ = unsafe { close(fd) };
    }
}
