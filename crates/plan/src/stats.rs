//! Statistics feeding the cost model.
//!
//! The pipeline consumes statistics through [`PlanStats`] so front ends
//! can plug in whatever they have: the Cypher engine samples degree
//! counts from the pinned [`CsrSnapshot`] ([`CsrStats`]), the SQL
//! engine reports table row counts and index presence, and tests plan
//! against fixed defaults ([`NoStats`]). Estimates only order work —
//! correctness never depends on them — so cheap sampled numbers are
//! plenty.

use snb_core::{CsrSnapshot, Direction, EdgeLabel, VertexLabel};
use std::sync::Arc;

/// Rows sampled per label when estimating average degree.
pub const DEGREE_SAMPLE_CAP: usize = 256;

/// Cost-model inputs. Defaults are deliberately bland: a planner with
/// no statistics should behave like a planner with uniform data.
pub trait PlanStats {
    /// Total vertex/row population of the store.
    fn total_rows(&self) -> f64 {
        1000.0
    }
    /// Vertices carrying `label` (`None` = all vertices).
    fn label_rows(&self, _label: Option<VertexLabel>) -> f64 {
        self.total_rows()
    }
    /// Average adjacency fan-out from vertices of `label` along
    /// `dir`/`elabel`.
    fn avg_degree(&self, _label: Option<VertexLabel>, _dir: Direction, _elabel: Option<EdgeLabel>) -> f64 {
        10.0
    }
    /// Row count of a relational table.
    fn table_rows(&self, _table: &str) -> f64 {
        1000.0
    }
    /// Whether `table.col` has an equality index.
    fn table_indexed(&self, _table: &str, _col: &str) -> bool {
        false
    }
}

/// No statistics: every default, everywhere.
pub struct NoStats;

impl PlanStats for NoStats {}

/// Degree statistics sampled from a pinned CSR snapshot. Sampling is
/// capped at [`DEGREE_SAMPLE_CAP`] rows per query, so planning stays
/// cheap even on large snapshots; label populations are exact (the
/// snapshot already groups rows by label).
pub struct CsrStats {
    snap: Arc<CsrSnapshot>,
}

impl CsrStats {
    pub fn new(snap: Arc<CsrSnapshot>) -> Self {
        CsrStats { snap }
    }
}

impl PlanStats for CsrStats {
    fn total_rows(&self) -> f64 {
        self.snap.n_rows() as f64
    }

    fn label_rows(&self, label: Option<VertexLabel>) -> f64 {
        match label {
            Some(l) => self.snap.rows_by_label(l).len() as f64,
            None => self.snap.n_rows() as f64,
        }
    }

    fn avg_degree(&self, label: Option<VertexLabel>, dir: Direction, elabel: Option<EdgeLabel>) -> f64 {
        self.snap.sampled_avg_degree(label, dir, elabel, DEGREE_SAMPLE_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_stats_defaults_are_uniform() {
        let s = NoStats;
        assert_eq!(s.total_rows(), s.label_rows(Some(VertexLabel::Person)));
        assert!(!s.table_indexed("person", "id"));
    }
}
