//! The phase-ordered rewrite pipeline.
//!
//! Phases run in a fixed order — Analyze → Canonicalize → Optimize →
//! Lower — and the Optimize phase applies its rule set repeatedly until
//! a whole pass changes nothing (a fixpoint), bounded by [`MAX_PASSES`]
//! so a buggy rule pair that keeps undoing each other's work surfaces
//! as a plan error instead of a hang. Invariants are validated after
//! every phase: binding order, single predicate attachment, in-range
//! references, and (at Lower) fully resolved strategies with no
//! residual predicates.
//!
//! Optimize rules:
//! * `scan_strategy` — pick dense id lookup vs label scan vs full scan
//!   (graph) and indexed probe vs sequential scan (tables), seeding
//!   cardinality estimates from statistics.
//! * `expansion_reorder` — orient a Cypher chain so the id-anchored
//!   end drives the expansion (mirrors the executor's anchoring
//!   heuristic, with the cost model recorded in the trace).
//! * `join_order` — order SQL sources by estimated cardinality,
//!   walking join predicates greedily from the cheapest seed.
//! * `predicate_pushdown` — attach each predicate to the earliest
//!   operator at which all its slots are bound.
//! * `projection_prune` — annotate each operator with the columns the
//!   projection actually reads, so executors fetch nothing else.

use crate::ir::{OpKind, OpNode, Plan, PlanKind, Strategy};
use crate::stats::PlanStats;
use std::collections::HashSet;
use std::fmt;

/// Upper bound on Optimize passes before the pipeline reports a
/// non-converging rule set.
pub const MAX_PASSES: usize = 8;

/// Pipeline phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Analyze,
    Canonicalize,
    Optimize,
    Lower,
}

impl Phase {
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Analyze => "analyze",
            Phase::Canonicalize => "canonicalize",
            Phase::Optimize => "optimize",
            Phase::Lower => "lower",
        }
    }
}

/// One recorded rule application.
#[derive(Debug, Clone)]
pub struct RuleFire {
    pub phase: Phase,
    pub rule: &'static str,
    pub detail: String,
}

/// The full rewrite trace of one plan (rendered by `EXPLAIN`).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub fires: Vec<RuleFire>,
    pub passes: usize,
}

impl Trace {
    fn fire(&mut self, phase: Phase, rule: &'static str, detail: String) {
        self.fires.push(RuleFire { phase, rule, detail });
    }
}

/// Plan-time failures (all indicate front-end or rule bugs, not user
/// errors; callers surface them as planning errors).
#[derive(Debug, Clone)]
pub enum PlanError {
    /// The Optimize phase did not converge within [`MAX_PASSES`].
    Fixpoint(usize),
    /// An invariant check failed after the named phase.
    Invariant(Phase, String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Fixpoint(p) => write!(f, "optimizer did not converge after {p} passes"),
            PlanError::Invariant(ph, m) => write!(f, "invariant violated after {}: {m}", ph.as_str()),
        }
    }
}

/// Run the full pipeline over a lowered plan, mutating it in place and
/// returning the rewrite trace.
pub fn optimize(plan: &mut Plan, stats: &dyn PlanStats) -> Result<Trace, PlanError> {
    let mut trace = Trace::default();

    analyze(plan, stats, &mut trace);
    check_invariants(plan, Phase::Analyze)?;

    canonicalize(plan, &mut trace);
    check_invariants(plan, Phase::Canonicalize)?;

    loop {
        trace.passes += 1;
        if trace.passes > MAX_PASSES {
            return Err(PlanError::Fixpoint(trace.passes));
        }
        let before = trace.fires.len();
        rule_scan_strategy(plan, stats, &mut trace);
        rule_expansion_reorder(plan, &mut trace);
        rule_join_order(plan, &mut trace);
        rule_predicate_pushdown(plan, &mut trace);
        rule_projection_prune(plan, &mut trace);
        if trace.fires.len() == before {
            break;
        }
    }
    check_invariants(plan, Phase::Optimize)?;

    lower(plan, &mut trace)?;
    check_invariants(plan, Phase::Lower)?;
    Ok(trace)
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// Analyze: sanity-shape the plan and record gross input cardinality.
fn analyze(plan: &Plan, stats: &dyn PlanStats, trace: &mut Trace) {
    let total = stats.total_rows();
    trace.fire(
        Phase::Analyze,
        "shape",
        format!(
            "{} ops, {} slots, {} preds over ~{:.0} rows",
            plan.ops.len(),
            plan.slots.len(),
            plan.preds.len(),
            total
        ),
    );
}

/// Canonicalize: order the predicate list by (selectivity, payload) so
/// later rules see the most selective predicates first and two
/// syntactic spellings of one query produce one plan. Runs before any
/// attachment, so reindexing is safe.
fn canonicalize(plan: &mut Plan, trace: &mut Trace) {
    debug_assert!(plan.ops.iter().all(|o| o.preds.is_empty()));
    let mut order: Vec<usize> = (0..plan.preds.len()).collect();
    order.sort_by(|&a, &b| {
        plan.preds[a]
            .sel
            .partial_cmp(&plan.preds[b].sel)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(plan.preds[a].payload.cmp(&plan.preds[b].payload))
    });
    if order.iter().enumerate().any(|(i, &p)| i != p) {
        let mut sorted = Vec::with_capacity(plan.preds.len());
        for &p in &order {
            sorted.push(plan.preds[p].clone());
        }
        plan.preds = sorted;
        trace.fire(Phase::Canonicalize, "pred_order", format!("sorted {} predicates by selectivity", plan.preds.len()));
    }
}

/// Lower: final validation before the front end consumes the plan.
fn lower(plan: &Plan, trace: &mut Trace) -> Result<(), PlanError> {
    for op in &plan.ops {
        if op.strategy == Strategy::Unresolved {
            return Err(PlanError::Invariant(Phase::Lower, format!("op #{} has no access strategy", op.id)));
        }
    }
    let residual = plan.unattached();
    if !residual.is_empty() {
        return Err(PlanError::Invariant(Phase::Lower, format!("{} predicates left unattached", residual.len())));
    }
    trace.fire(Phase::Lower, "validate", format!("{} ops resolved, all {} predicates placed", plan.ops.len(), plan.preds.len()));
    Ok(())
}

// ---------------------------------------------------------------------------
// Optimize rules
// ---------------------------------------------------------------------------

/// Whether `slot` is pinned to a single vertex/row by an id anchor.
fn id_anchored(plan: &Plan, slot: usize) -> bool {
    plan.slots[slot].label.is_some()
        && plan.preds.iter().any(|p| p.anchor.as_ref().map_or(false, |(s, c)| *s == slot && c == "id"))
}

fn rule_scan_strategy(plan: &mut Plan, stats: &dyn PlanStats, trace: &mut Trace) {
    let mut prev_est = 1.0f64;
    for i in 0..plan.ops.len() {
        if plan.ops[i].strategy != Strategy::Unresolved {
            prev_est = plan.ops[i].est_rows;
            continue;
        }
        let (strategy, est, detail) = match plan.ops[i].kind.clone() {
            OpKind::NodeScan { slot, label } => {
                if id_anchored(plan, slot) {
                    (Strategy::ById, 1.0, format!("{}: dense id lookup", plan.slots[slot].name))
                } else if let Some(l) = label {
                    let rows = stats.label_rows(Some(l));
                    (Strategy::ByLabel, rows, format!("{}: label scan over ~{rows:.0} rows", plan.slots[slot].name))
                } else {
                    let rows = stats.total_rows();
                    (Strategy::FullScan, rows, format!("{}: full scan over ~{rows:.0} rows", plan.slots[slot].name))
                }
            }
            OpKind::Expand { from, dir, label, min: _, max, .. } => {
                let flabel = plan.slots[from].label;
                let deg = stats.avg_degree(flabel, dir, label);
                let hops = max.min(4);
                let est = prev_est * deg.powi(hops as i32).max(deg);
                (Strategy::Adjacency, est, format!("avg degree {deg:.1} → ~{est:.1} rows"))
            }
            OpKind::PathLen { .. } => (Strategy::Adjacency, prev_est, "bidirectional BFS".to_string()),
            OpKind::TableScan { slot, table } => {
                let rows = stats.table_rows(&table);
                let anchor = plan
                    .preds
                    .iter()
                    .find(|p| p.anchor.as_ref().map_or(false, |(s, _)| *s == slot));
                match anchor {
                    Some(p) if stats.table_indexed(&table, &p.anchor.as_ref().unwrap().1) => {
                        let col = p.anchor.as_ref().unwrap().1.clone();
                        let detail = format!("{table}: indexed probe on {col}");
                        (Strategy::IndexEq(col), (rows * p.sel).max(1.0), detail)
                    }
                    Some(p) => {
                        let est = (rows * p.sel).max(1.0);
                        (Strategy::Seq, est, format!("{table}: seq scan, anchored to ~{est:.1} rows"))
                    }
                    None => (Strategy::Seq, rows, format!("{table}: seq scan over ~{rows:.0} rows")),
                }
            }
        };
        let op = &mut plan.ops[i];
        op.strategy = strategy;
        op.est_rows = est;
        prev_est = est;
        trace.fire(Phase::Optimize, "scan_strategy", format!("op #{} {} ({})", op.id, op.strategy.as_str(), detail));
    }
}

/// Orient a Cypher chain so the id-anchored end drives the match. The
/// executor's correctness does not depend on orientation, but the cost
/// difference is the gap between one dense lookup and a whole label
/// scan. Fires exactly when the head is unanchored and the tail is
/// anchored (the same decision the reference executor makes, so
/// optimized and naive row order stay comparable 1:1).
fn rule_expansion_reorder(plan: &mut Plan, trace: &mut Trace) {
    if plan.kind != PlanKind::Cypher || plan.ops.len() < 2 {
        return;
    }
    // Only a pure linear chain qualifies: NodeScan then Expands.
    if !matches!(plan.ops[0].kind, OpKind::NodeScan { .. }) {
        return;
    }
    if !plan.ops[1..].iter().all(|o| matches!(o.kind, OpKind::Expand { .. })) {
        return;
    }
    // Attached predicates would need re-placement; pushdown runs after
    // this rule in the same pass, so attachment implies a settled plan.
    if plan.ops.iter().any(|o| !o.preds.is_empty()) {
        return;
    }
    let head = plan.ops[0].binds();
    let tail = plan.ops.last().unwrap().binds();
    if id_anchored(plan, head) || !id_anchored(plan, tail) {
        return;
    }
    let forward_cost = plan.ops.iter().map(|o| o.est_rows).sum::<f64>();
    // Rebuild the chain from the anchored tail.
    let mut chain: Vec<OpNode> = Vec::with_capacity(plan.ops.len());
    let scan_id = plan.ops[0].id;
    chain.push(OpNode::new(scan_id, OpKind::NodeScan { slot: tail, label: plan.slots[tail].label }));
    for op in plan.ops[1..].iter().rev() {
        let OpKind::Expand { from, to, dir, label, min, max, .. } = op.kind.clone() else { unreachable!() };
        let mut rev = OpNode::new(
            op.id,
            OpKind::Expand {
                from: to,
                to: from,
                dir: dir.reverse(),
                label,
                to_label: plan.slots[from].label,
                min,
                max,
            },
        );
        rev.fetch = op.fetch.clone();
        chain.push(rev);
    }
    plan.ops = chain;
    trace.fire(
        Phase::Optimize,
        "expansion_reorder",
        format!(
            "reversed chain to start at anchored `{}` (forward cost ~{forward_cost:.1}, anchored start costs 1 seed row)",
            plan.slots[tail].name
        ),
    );
}

/// Order SQL sources cheapest-first, walking join predicates greedily
/// from the lowest-cardinality seed. Mirrors the textbook greedy
/// cost-based join ordering; estimates come from `scan_strategy`.
fn rule_join_order(plan: &mut Plan, trace: &mut Trace) {
    if plan.kind != PlanKind::Sql || plan.ops.len() < 2 {
        return;
    }
    if !plan.ops.iter().all(|o| matches!(o.kind, OpKind::TableScan { .. })) {
        return;
    }
    if plan.ops.iter().any(|o| !o.preds.is_empty() || o.strategy == Strategy::Unresolved) {
        return;
    }
    let n = plan.ops.len();
    let slot_of: Vec<usize> = plan.ops.iter().map(|o| o.binds()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound_slots: HashSet<usize> = HashSet::new();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Seed: cheapest source.
    let seed = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| plan.ops[a].est_rows.partial_cmp(&plan.ops[b].est_rows).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap();
    order.push(seed);
    bound_slots.insert(slot_of[seed]);
    remaining.retain(|&x| x != seed);
    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                plan.preds.iter().any(|p| {
                    p.join.as_ref().map_or(false, |(s1, _, s2, _)| {
                        (bound_slots.contains(s1) && *s2 == slot_of[i])
                            || (bound_slots.contains(s2) && *s1 == slot_of[i])
                    })
                })
            })
            .collect();
        let pool = if connected.is_empty() { &remaining } else { &connected };
        let next = pool
            .iter()
            .copied()
            .min_by(|&a, &b| plan.ops[a].est_rows.partial_cmp(&plan.ops[b].est_rows).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap();
        order.push(next);
        bound_slots.insert(slot_of[next]);
        remaining.retain(|&x| x != next);
    }
    if order.iter().enumerate().all(|(i, &p)| i == p) {
        return;
    }
    let names: Vec<&str> = order.iter().map(|&i| plan.slots[slot_of[i]].name.as_str()).collect();
    plan.ops = order.iter().map(|&i| plan.ops[i].clone()).collect();
    trace.fire(Phase::Optimize, "join_order", format!("reordered sources: {}", names.join(" ⋈ ")));
}

/// Attach every predicate to the earliest operator at which all of its
/// slots are bound.
fn rule_predicate_pushdown(plan: &mut Plan, trace: &mut Trace) {
    for p in plan.unattached() {
        let refs = plan.preds[p].refs.clone();
        let mut bound: HashSet<usize> = HashSet::new();
        let mut target = None;
        for (i, op) in plan.ops.iter().enumerate() {
            bound.insert(op.binds());
            if refs.iter().all(|r| bound.contains(r)) {
                target = Some(i);
                break;
            }
        }
        // A predicate over unbound slots would already have failed the
        // front end; attach to the last op as a defensive residual.
        let i = target.unwrap_or(plan.ops.len() - 1);
        plan.ops[i].preds.push(p);
        let desc = plan.preds[p].desc.clone();
        trace.fire(
            Phase::Optimize,
            "predicate_pushdown",
            format!("`{desc}` → op #{} (sel {:.2})", plan.ops[i].id, plan.preds[p].sel),
        );
    }
}

/// Annotate each operator with the columns the projection reads from
/// the slot it binds, so executors materialize nothing else.
fn rule_projection_prune(plan: &mut Plan, trace: &mut Trace) {
    for i in 0..plan.ops.len() {
        let slot = plan.ops[i].binds();
        let mut fetch: Vec<String> = plan
            .proj
            .used
            .iter()
            .filter(|(s, _)| *s == slot)
            .map(|(_, c)| c.clone())
            .collect();
        fetch.sort();
        fetch.dedup();
        if fetch != plan.ops[i].fetch {
            let shown = if fetch.is_empty() { "∅ (row id only)".to_string() } else { fetch.join(", ") };
            plan.ops[i].fetch = fetch;
            trace.fire(Phase::Optimize, "projection_prune", format!("op #{} fetches [{shown}]", plan.ops[i].id));
        }
    }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

fn check_invariants(plan: &Plan, phase: Phase) -> Result<(), PlanError> {
    let err = |m: String| Err(PlanError::Invariant(phase, m));
    if plan.ops.is_empty() {
        return err("plan has no operators".into());
    }
    for p in &plan.preds {
        if p.refs.iter().any(|&r| r >= plan.slots.len()) {
            return err(format!("predicate `{}` references an out-of-range slot", p.desc));
        }
    }
    let mut bound: HashSet<usize> = HashSet::new();
    let mut attached: HashSet<usize> = HashSet::new();
    for op in &plan.ops {
        for r in op.requires() {
            if !bound.contains(&r) {
                return err(format!("op #{} consumes slot {r} before it is bound", op.id));
            }
        }
        let b = op.binds();
        if b >= plan.slots.len() {
            return err(format!("op #{} binds out-of-range slot {b}", op.id));
        }
        if !bound.insert(b) {
            return err(format!("op #{} rebinds slot {b}", op.id));
        }
        for &p in &op.preds {
            if p >= plan.preds.len() {
                return err(format!("op #{} attaches unknown predicate {p}", op.id));
            }
            if !attached.insert(p) {
                return err(format!("predicate `{}` attached twice", plan.preds[p].desc));
            }
            if plan.preds[p].refs.iter().any(|r| !bound.contains(r)) {
                return err(format!("predicate `{}` runs before its slots are bound", plan.preds[p].desc));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Plan, PlanKind, Pred, Projection, Slot};
    use crate::stats::NoStats;
    use snb_core::Direction;

    fn node_slot(name: &str, label: Option<snb_core::VertexLabel>) -> Slot {
        Slot { name: name.into(), label }
    }

    fn eq_pred(slot: usize, col: &str, payload: usize, sel: f64) -> Pred {
        Pred {
            refs: vec![slot],
            sel,
            desc: format!("s{slot}.{col} = $x"),
            payload,
            anchor: Some((slot, col.into())),
            join: None,
        }
    }

    #[test]
    fn chain_reorders_to_anchored_tail_and_converges() {
        use snb_core::VertexLabel::Person;
        let mut plan = Plan {
            kind: PlanKind::Cypher,
            slots: vec![node_slot("m", None), node_slot("p", Some(Person))],
            preds: vec![eq_pred(1, "id", 0, 0.001)],
            ops: vec![
                OpNode::new(0, OpKind::NodeScan { slot: 0, label: None }),
                OpNode::new(1, OpKind::Expand {
                    from: 0,
                    to: 1,
                    dir: Direction::Out,
                    label: None,
                    to_label: Some(Person),
                    min: 1,
                    max: 1,
                }),
            ],
            proj: Projection::default(),
        };
        let trace = optimize(&mut plan, &NoStats).unwrap();
        assert!(trace.fires.iter().any(|f| f.rule == "expansion_reorder"));
        // Reversed: scan the anchored `p`, expand In toward `m`.
        assert!(matches!(plan.ops[0].kind, OpKind::NodeScan { slot: 1, .. }));
        assert_eq!(plan.ops[0].strategy, Strategy::ById);
        match &plan.ops[1].kind {
            OpKind::Expand { from: 1, to: 0, dir: Direction::In, .. } => {}
            other => panic!("unexpected op: {other:?}"),
        }
        assert!(trace.passes <= MAX_PASSES);
        assert!(plan.unattached().is_empty());
    }

    #[test]
    fn join_order_seeds_from_anchored_source() {
        let mut plan = Plan {
            kind: PlanKind::Sql,
            slots: vec![node_slot("k", None), node_slot("p", None)],
            preds: vec![
                Pred {
                    refs: vec![0, 1],
                    sel: 0.1,
                    desc: "k.dst = p.id".into(),
                    payload: 0,
                    anchor: None,
                    join: Some((0, "dst".into(), 1, "id".into())),
                },
                eq_pred(1, "id", 1, 0.001),
            ],
            ops: vec![
                OpNode::new(0, OpKind::TableScan { slot: 0, table: "person_knows_person".into() }),
                OpNode::new(1, OpKind::TableScan { slot: 1, table: "person".into() }),
            ],
            proj: Projection::default(),
        };
        struct S;
        impl PlanStats for S {
            fn total_rows(&self) -> f64 {
                2000.0
            }
            fn label_rows(&self, _l: Option<snb_core::VertexLabel>) -> f64 {
                1000.0
            }
            fn avg_degree(&self, _l: Option<snb_core::VertexLabel>, _d: Direction, _e: Option<snb_core::EdgeLabel>) -> f64 {
                10.0
            }
            fn table_rows(&self, t: &str) -> f64 {
                if t == "person" { 1000.0 } else { 5000.0 }
            }
            fn table_indexed(&self, _t: &str, _c: &str) -> bool {
                true
            }
        }
        let trace = optimize(&mut plan, &S).unwrap();
        assert!(trace.fires.iter().any(|f| f.rule == "join_order"));
        assert_eq!(plan.ops[0].binds(), 1, "anchored person table seeds the join");
        assert_eq!(plan.ops[0].strategy, Strategy::IndexEq("id".into()));
    }

    #[test]
    fn unresolvable_predicate_is_caught() {
        let mut plan = Plan {
            kind: PlanKind::Cypher,
            slots: vec![node_slot("a", None)],
            preds: vec![Pred { refs: vec![5], sel: 0.5, desc: "bad".into(), payload: 0, anchor: None, join: None }],
            ops: vec![OpNode::new(0, OpKind::NodeScan { slot: 0, label: None })],
            proj: Projection::default(),
        };
        assert!(optimize(&mut plan, &NoStats).is_err());
    }
}
