//! The shared whole-query optimizer.
//!
//! The paper's central finding is that whole-query planning beats
//! step-at-a-time execution. This crate is where that planning lives:
//! a logical plan IR that both the Cypher and the SQL front ends lower
//! into, a phase-ordered rewrite pipeline (Analyze → Canonicalize →
//! Optimize → Lower) whose Optimize phase runs rule passes to a
//! fixpoint, and a statistics interface fed by sampled CSR degree
//! counts so join/expansion ordering is cost-based rather than
//! syntactic.
//!
//! Predicates are *opaque* to the pipeline: a [`ir::Pred`] carries only
//! the slots it reads, a selectivity estimate, a display string, and a
//! payload index back into the front end's typed predicate array. The
//! pipeline decides *where* predicates run; the front ends decide
//! *how*. That keeps one optimizer shared across two query languages
//! without either language's expression tree leaking into the other.
//!
//! Every phase validates invariants on entry to the next (binding
//! order, single attachment, resolved strategies), so a buggy rule
//! fails loudly at plan time instead of silently corrupting results.

pub mod explain;
pub mod ir;
pub mod pipeline;
pub mod stats;

pub use explain::render;
pub use ir::{OpKind, OpNode, Plan, PlanKind, Pred, Projection, Slot, Strategy};
pub use pipeline::{optimize, Phase, PlanError, RuleFire, Trace};
pub use stats::{CsrStats, NoStats, PlanStats};
