//! The logical plan IR both front ends lower into.
//!
//! A [`Plan`] is a flat list of operators over a slot space. Cypher
//! slots are pattern variables (node bindings plus one slot for a
//! shortest-path length); SQL slots are the sources of a select core.
//! Operators are deliberately coarse — scan, expand, path, table scan —
//! because the optimizer only needs enough structure to choose access
//! strategies, orientation/ordering, predicate placement, and fetch
//! lists. Everything finer-grained stays in the front end, reachable
//! through each node's stable `id` and each predicate's `payload`.

use snb_core::{Direction, EdgeLabel, VertexLabel};

/// Which front end produced the plan (affects rule applicability).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    Cypher,
    Sql,
}

/// One binding slot: a pattern variable (Cypher) or a source alias
/// (SQL). `label` is the statically known vertex label, when any.
#[derive(Debug, Clone)]
pub struct Slot {
    pub name: String,
    pub label: Option<VertexLabel>,
}

/// An opaque predicate. The pipeline never interprets its expression —
/// it only knows which slots the predicate reads (`refs`), how
/// selective it is believed to be (`sel`), and, for the two shapes the
/// rules exploit, structural hints: `anchor` marks `slot.col = const`
/// equalities, `join` marks `a.x = b.y` equi-joins.
#[derive(Debug, Clone)]
pub struct Pred {
    /// Slots the predicate reads; it may only run once all are bound.
    pub refs: Vec<usize>,
    /// Estimated fraction of rows that survive the predicate.
    pub sel: f64,
    /// Display form for `EXPLAIN`.
    pub desc: String,
    /// Index back into the front end's typed predicate array.
    pub payload: usize,
    /// `Some((slot, column))` when the predicate pins `slot.column` to
    /// a constant — usable as an index/id anchor.
    pub anchor: Option<(usize, String)>,
    /// `Some((s1, c1, s2, c2))` when the predicate equates columns of
    /// two different slots — usable to order joins.
    pub join: Option<(usize, String, usize, String)>,
}

/// How an operator accesses storage. Resolved by the `scan_strategy`
/// rule; `Lower` rejects plans with unresolved strategies.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    Unresolved,
    /// Dense vertex-index point lookup (Cypher anchored node).
    ById,
    /// Per-label row scan.
    ByLabel,
    /// Whole-graph scan.
    FullScan,
    /// Indexed equality probe on the named column (SQL).
    IndexEq(String),
    /// Sequential table scan (SQL).
    Seq,
    /// CSR adjacency range scan (expansions and path search).
    Adjacency,
}

impl Strategy {
    pub fn as_str(&self) -> &str {
        match self {
            Strategy::Unresolved => "unresolved",
            Strategy::ById => "by_id",
            Strategy::ByLabel => "label_scan",
            Strategy::FullScan => "full_scan",
            Strategy::IndexEq(_) => "index_eq",
            Strategy::Seq => "seq_scan",
            Strategy::Adjacency => "csr_range",
        }
    }
}

/// Operator shapes.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// Bind `slot` to vertices (Cypher chain head / shortest-path end).
    NodeScan { slot: usize, label: Option<VertexLabel> },
    /// Expand `from` → `to` over adjacency. `min`/`max` of 1/1 is a
    /// single hop; anything else is a distinct-vertex var-expansion.
    Expand {
        from: usize,
        to: usize,
        dir: Direction,
        label: Option<EdgeLabel>,
        to_label: Option<VertexLabel>,
        min: u32,
        max: u32,
    },
    /// Bidirectional BFS shortest-path length from `from` to `to`,
    /// written into `out`.
    PathLen { from: usize, to: usize, out: usize, dir: Direction, label: Option<EdgeLabel>, max: u32 },
    /// Bind `slot` to rows of `table` (SQL source; the first op in a
    /// core seeds the intermediate, later ones join into it).
    TableScan { slot: usize, table: String },
}

/// One operator node. `id` is stable across rewrites so front ends can
/// map optimized operators back to their typed pattern elements.
#[derive(Debug, Clone)]
pub struct OpNode {
    pub id: usize,
    pub kind: OpKind,
    pub strategy: Strategy,
    /// Predicates attached by pushdown (indices into `Plan::preds`),
    /// evaluated as each row leaves this operator.
    pub preds: Vec<usize>,
    /// Columns/properties this operator must materialize (projection
    /// pruning annotation).
    pub fetch: Vec<String>,
    /// Estimated output cardinality.
    pub est_rows: f64,
}

impl OpNode {
    pub fn new(id: usize, kind: OpKind) -> Self {
        OpNode { id, kind, strategy: Strategy::Unresolved, preds: Vec::new(), fetch: Vec::new(), est_rows: 0.0 }
    }

    /// The slot this operator binds.
    pub fn binds(&self) -> usize {
        match &self.kind {
            OpKind::NodeScan { slot, .. } | OpKind::TableScan { slot, .. } => *slot,
            OpKind::Expand { to, .. } => *to,
            OpKind::PathLen { out, .. } => *out,
        }
    }

    /// Slots this operator requires bound before it runs.
    pub fn requires(&self) -> Vec<usize> {
        match &self.kind {
            OpKind::NodeScan { .. } | OpKind::TableScan { .. } => Vec::new(),
            OpKind::Expand { from, .. } => vec![*from],
            OpKind::PathLen { from, to, .. } => vec![*from, *to],
        }
    }
}

/// Projection summary: which `(slot, column)` pairs the query output
/// actually reads, plus the clause shape (used by projection pruning
/// and rendered by `EXPLAIN`).
#[derive(Debug, Clone, Default)]
pub struct Projection {
    pub used: Vec<(usize, String)>,
    pub distinct: bool,
    pub order_by: usize,
    pub limit: Option<usize>,
    /// Front-end rendering of the output clause for `EXPLAIN`.
    pub display: String,
}

/// A whole logical plan.
#[derive(Debug, Clone)]
pub struct Plan {
    pub kind: PlanKind,
    pub slots: Vec<Slot>,
    pub preds: Vec<Pred>,
    pub ops: Vec<OpNode>,
    pub proj: Projection,
}

impl Plan {
    /// Pred indices not yet attached to any operator.
    pub fn unattached(&self) -> Vec<usize> {
        let mut attached = vec![false; self.preds.len()];
        for op in &self.ops {
            for &p in &op.preds {
                attached[p] = true;
            }
        }
        (0..self.preds.len()).filter(|&p| !attached[p]).collect()
    }
}
