//! Deterministic plan rendering for `EXPLAIN`.
//!
//! The output is consumed by golden-file snapshot tests, so the format
//! is stable on purpose: one line per operator (kind, access strategy,
//! cardinality estimate, attached predicates, pruned fetch list), the
//! projection, then the rewrite trace. Planner regressions show up as
//! readable text diffs instead of silent performance loss.

use crate::ir::{OpKind, Plan, PlanKind};
use crate::pipeline::Trace;
use snb_core::Direction;
use std::fmt::Write;

fn dir_glyph(dir: Direction) -> &'static str {
    match dir {
        Direction::Out => "->",
        Direction::In => "<-",
        Direction::Both => "--",
    }
}

/// Render an optimized plan and its rewrite trace.
pub fn render(plan: &Plan, trace: &Trace) -> String {
    let mut s = String::new();
    let kind = match plan.kind {
        PlanKind::Cypher => "cypher",
        PlanKind::Sql => "sql",
    };
    let _ = writeln!(s, "plan ({kind})");
    for (i, op) in plan.ops.iter().enumerate() {
        let head = match &op.kind {
            OpKind::NodeScan { slot, label } => {
                let l = label.map(|l| format!(":{}", l.as_str())).unwrap_or_default();
                format!("NodeScan ({}{l})", plan.slots[*slot].name)
            }
            OpKind::Expand { from, to, dir, label, to_label, min, max } => {
                let l = label.map(|l| format!(":{}", l.as_str())).unwrap_or_default();
                let hops = if (*min, *max) == (1, 1) { String::new() } else { format!("*{min}..{max}") };
                let tl = to_label.map(|l| format!(":{}", l.as_str())).unwrap_or_default();
                format!(
                    "Expand ({}){}[{l}{hops}]{}({}{tl})",
                    plan.slots[*from].name,
                    if *dir == Direction::In { dir_glyph(*dir) } else { "-" },
                    if *dir == Direction::Out { dir_glyph(*dir) } else { "-" },
                    plan.slots[*to].name
                )
            }
            OpKind::PathLen { from, to, out, max, .. } => {
                let cap = if *max == u32::MAX { "∞".to_string() } else { max.to_string() };
                format!(
                    "ShortestPathLen ({})==({}) max={cap} -> {}",
                    plan.slots[*from].name, plan.slots[*to].name, plan.slots[*out].name
                )
            }
            OpKind::TableScan { slot, table } => {
                let verb = if i == 0 { "Scan" } else { "Join" };
                format!("{verb} {table} AS {}", plan.slots[*slot].name)
            }
        };
        let _ = writeln!(s, "  {}. {head}  [{}]  est={:.1}", i + 1, op.strategy.as_str(), op.est_rows);
        for &p in &op.preds {
            let _ = writeln!(s, "       where {} (sel {:.2})", plan.preds[p].desc, plan.preds[p].sel);
        }
        if !op.fetch.is_empty() {
            let _ = writeln!(s, "       fetch [{}]", op.fetch.join(", "));
        }
    }
    if !plan.proj.display.is_empty() {
        let _ = writeln!(s, "  *. Project {}", plan.proj.display);
    }
    let _ = writeln!(s, "rewrites ({} pass{}):", trace.passes, if trace.passes == 1 { "" } else { "es" });
    for f in &trace.fires {
        let _ = writeln!(s, "  [{}] {}: {}", f.phase.as_str(), f.rule, f.detail);
    }
    s
}
