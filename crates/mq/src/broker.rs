//! The broker: a registry of topics.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use crate::consumer::Consumer;
use crate::producer::Producer;
use crate::topic::Topic;
use crate::{MqError, Result};

/// In-process broker holding all topics. Cheap to share (`Arc`).
#[derive(Default)]
pub struct Broker {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
}

impl Broker {
    /// Fresh broker with no topics.
    pub fn new() -> Arc<Self> {
        Arc::new(Broker::default())
    }

    /// Create a topic. Fails if it already exists.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<Arc<Topic>> {
        let topic = Arc::new(Topic::new(name, partitions)?);
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(MqError::TopicExists(name.to_string()));
        }
        topics.insert(name.to_string(), Arc::clone(&topic));
        Ok(topic)
    }

    /// Create (or recover) a disk-backed topic whose partitions persist
    /// to segment files under `dir`.
    pub fn create_durable_topic(
        &self,
        name: &str,
        partitions: u32,
        dir: &std::path::Path,
    ) -> Result<Arc<Topic>> {
        let topic = Arc::new(Topic::durable(name, partitions, dir)?);
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(MqError::TopicExists(name.to_string()));
        }
        topics.insert(name.to_string(), Arc::clone(&topic));
        Ok(topic)
    }

    /// Look up a topic.
    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MqError::UnknownTopic(name.to_string()))
    }

    /// Create a producer for a topic.
    pub fn producer(&self, topic: &str) -> Result<Producer> {
        Ok(Producer::new(self.topic(topic)?))
    }

    /// Create a consumer reading every partition of a topic from the
    /// beginning.
    pub fn consumer(&self, topic: &str) -> Result<Consumer> {
        Ok(Consumer::new(self.topic(topic)?))
    }

    /// Names of all topics.
    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<_> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let b = Broker::new();
        b.create_topic("updates", 2).unwrap();
        assert!(b.topic("updates").is_ok());
        assert_eq!(b.topic("updates").unwrap().partition_count(), 2);
        assert!(matches!(b.topic("nope"), Err(MqError::UnknownTopic(_))));
        assert!(matches!(b.create_topic("updates", 1), Err(MqError::TopicExists(_))));
        assert_eq!(b.topic_names(), vec!["updates".to_string()]);
    }

    #[test]
    fn producer_consumer_construction() {
        let b = Broker::new();
        b.create_topic("t", 1).unwrap();
        assert!(b.producer("t").is_ok());
        assert!(b.consumer("t").is_ok());
        assert!(b.producer("missing").is_err());
    }
}
