//! Stable key → partition routing.
//!
//! Producers and consumers must agree on where a key lands so that all
//! updates touching the same entity (person, forum, message) ride one
//! partition and therefore keep their relative order. [`Partitioner`]
//! is that shared contract: a fixed hash (FNV-1a, 64-bit) over the key
//! bytes, reduced modulo the partition count. It deliberately does not
//! use `std`'s `DefaultHasher`, whose algorithm is unspecified and may
//! change between releases — routing must be stable across processes
//! and builds, exactly like Kafka's default partitioner.

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps record keys to partitions of a topic with `partitions`
/// partitions. Stateless and cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    partitions: u32,
}

impl Partitioner {
    /// Partitioner for a topic with `partitions` partitions (≥ 1).
    pub fn new(partitions: u32) -> Self {
        assert!(partitions > 0, "topics have at least one partition");
        Partitioner { partitions }
    }

    /// Number of partitions this partitioner routes across.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The partition the given key routes to.
    pub fn partition_for(&self, key: &[u8]) -> u32 {
        (fnv1a64(key) % self.partitions as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable() {
        // Fixed expectations pin the algorithm: a silent hash change
        // would strand committed offsets on the wrong partitions.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let p = Partitioner::new(8);
        let first = p.partition_for(b"person-42");
        for _ in 0..10 {
            assert_eq!(p.partition_for(b"person-42"), first);
        }
    }

    #[test]
    fn keys_spread_across_partitions() {
        let p = Partitioner::new(8);
        let mut hit = vec![false; 8];
        for i in 0..1000u64 {
            hit[p.partition_for(&i.to_le_bytes()) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "every partition receives some keys");
    }

    #[test]
    fn single_partition_takes_everything() {
        let p = Partitioner::new(1);
        assert_eq!(p.partition_for(b"anything"), 0);
    }
}
