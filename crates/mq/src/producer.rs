//! Producers: append records to a topic, routing by key hash.

use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::partitioner::Partitioner;
use crate::topic::Topic;

/// Appends records to a topic. Keyed records route through the stable
/// [`Partitioner`] and always land in the same partition (per-key
/// ordering, like Kafka); unkeyed records are sprayed round-robin.
pub struct Producer {
    topic: Arc<Topic>,
    partitioner: Partitioner,
    round_robin: AtomicU64,
}

impl Producer {
    /// Producer over an existing topic.
    pub fn new(topic: Arc<Topic>) -> Self {
        let partitioner = Partitioner::new(topic.partition_count());
        Producer { topic, partitioner, round_robin: AtomicU64::new(0) }
    }

    /// The topic this producer writes to.
    pub fn topic(&self) -> &Arc<Topic> {
        &self.topic
    }

    /// The key→partition mapping this producer routes with.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Send a record; returns `(partition, offset)`.
    pub fn send(&self, timestamp_ms: i64, key: Option<Bytes>, value: Bytes) -> (u32, u64) {
        let n = self.topic.partition_count();
        let partition = match &key {
            Some(k) => self.partitioner.partition_for(k),
            None => (self.round_robin.fetch_add(1, Ordering::Relaxed) % n as u64) as u32,
        };
        let offset = self
            .topic
            .partition(partition)
            .expect("partition index is in range by construction")
            .append(timestamp_ms, key, value);
        (partition, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(parts: u32) -> Arc<Topic> {
        Arc::new(Topic::new("t", parts).unwrap())
    }

    #[test]
    fn keyed_records_stay_in_one_partition() {
        let t = topic(8);
        let p = Producer::new(Arc::clone(&t));
        let mut seen = None;
        for i in 0..20 {
            let (part, _) = p.send(i, Some(Bytes::from_static(b"person-42")), Bytes::new());
            match seen {
                None => seen = Some(part),
                Some(s) => assert_eq!(s, part),
            }
        }
    }

    #[test]
    fn unkeyed_records_round_robin() {
        let t = topic(4);
        let p = Producer::new(Arc::clone(&t));
        let parts: Vec<u32> = (0..8).map(|i| p.send(i, None, Bytes::new()).0).collect();
        assert_eq!(parts, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn keyed_routing_agrees_with_partitioner() {
        // Consumers that need to know where a key lives (e.g. the
        // driver's appliers) use the same Partitioner the producer
        // routes with; the two must agree.
        let t = topic(8);
        let p = Producer::new(Arc::clone(&t));
        for i in 0..50u64 {
            let key = Bytes::from(i.to_le_bytes().to_vec());
            let (part, _) = p.send(0, Some(key.clone()), Bytes::new());
            assert_eq!(part, p.partitioner().partition_for(&key));
        }
    }

    #[test]
    fn offsets_are_per_partition() {
        let t = topic(2);
        let p = Producer::new(Arc::clone(&t));
        let a = p.send(0, Some(Bytes::from_static(b"a")), Bytes::new());
        let b = p.send(0, Some(Bytes::from_static(b"a")), Bytes::new());
        assert_eq!(a.0, b.0);
        assert_eq!(b.1, a.1 + 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let t = topic(4);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t2 = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let p = Producer::new(t2);
                for i in 0..500 {
                    p.send(i, None, Bytes::from(vec![1u8]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.total_records(), 2000);
    }
}
