//! Immutable log records.

use bytes::Bytes;

/// One record in a partition log. Payload and key are opaque bytes, as
/// in Kafka: the queue never interprets what flows through it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Position within the partition (dense, starting at 0).
    pub offset: u64,
    /// Producer-supplied event time in milliseconds.
    pub timestamp_ms: i64,
    /// Optional routing/identity key.
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
}

impl Record {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_len() {
        let r = Record { offset: 0, timestamp_ms: 1, key: None, value: Bytes::from_static(b"abc") };
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }
}
