//! Topics and partitions.

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use std::io::{BufWriter, Read as _, Write as _};
use std::sync::Arc;

use crate::record::Record;
use crate::{MqError, Result};

/// One append-only partition log. Appends take a short write lock;
/// reads copy out the requested slice under a read lock, so consumers
/// never block producers for long. Optionally backed by an on-disk
/// segment file in Kafka's length-prefixed frame format.
pub struct Partition {
    log: RwLock<Vec<Record>>,
    /// Signals consumers blocked in `poll_wait` that data arrived.
    notify: (Mutex<()>, Condvar),
    segment: Option<Mutex<BufWriter<std::fs::File>>>,
}

/// Sentinel for a missing record key in the segment frame format.
const NO_KEY: u32 = u32::MAX;

impl Partition {
    fn new() -> Self {
        Partition {
            log: RwLock::new(Vec::new()),
            notify: (Mutex::new(()), Condvar::new()),
            segment: None,
        }
    }

    /// A partition persisting every record to `path`, loading whatever
    /// the file already holds (crash recovery).
    fn durable(path: &std::path::Path) -> Result<Self> {
        let mut records = Vec::new();
        if let Ok(mut f) = std::fs::File::open(path) {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf).map_err(|e| MqError::Config(e.to_string()))?;
            let mut at = 0usize;
            let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
                if *at + n > buf.len() {
                    return None;
                }
                let s = &buf[*at..*at + n];
                *at += n;
                Some(s)
            };
            loop {
                let Some(ts) = take(&mut at, 8) else { break };
                let timestamp_ms = i64::from_le_bytes(ts.try_into().expect("8 bytes"));
                let Some(klen) = take(&mut at, 4) else { break };
                let klen = u32::from_le_bytes(klen.try_into().expect("4 bytes"));
                let key = if klen == NO_KEY {
                    None
                } else {
                    let Some(k) = take(&mut at, klen as usize) else { break };
                    Some(Bytes::copy_from_slice(k))
                };
                let Some(vlen) = take(&mut at, 4) else { break };
                let vlen = u32::from_le_bytes(vlen.try_into().expect("4 bytes"));
                let Some(v) = take(&mut at, vlen as usize) else { break };
                let value = Bytes::copy_from_slice(v);
                records.push(Record {
                    offset: records.len() as u64,
                    timestamp_ms,
                    key,
                    value,
                });
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| MqError::Config(e.to_string()))?;
        Ok(Partition {
            log: RwLock::new(records),
            notify: (Mutex::new(()), Condvar::new()),
            segment: Some(Mutex::new(BufWriter::new(file))),
        })
    }

    /// Append a record, returning its offset.
    pub fn append(&self, timestamp_ms: i64, key: Option<Bytes>, value: Bytes) -> u64 {
        if let Some(segment) = &self.segment {
            let mut w = segment.lock();
            let _ = w.write_all(&timestamp_ms.to_le_bytes());
            match &key {
                Some(k) => {
                    let _ = w.write_all(&(k.len() as u32).to_le_bytes());
                    let _ = w.write_all(k);
                }
                None => {
                    let _ = w.write_all(&NO_KEY.to_le_bytes());
                }
            }
            let _ = w.write_all(&(value.len() as u32).to_le_bytes());
            let _ = w.write_all(&value);
        }
        let offset = {
            let mut log = self.log.write();
            let offset = log.len() as u64;
            log.push(Record { offset, timestamp_ms, key, value });
            offset
        };
        self.notify.1.notify_all();
        offset
    }

    /// Flush buffered segment writes to the OS.
    pub fn flush(&self) {
        if let Some(segment) = &self.segment {
            let _ = segment.lock().flush();
        }
    }

    /// Copy out up to `max` records starting at `from` (inclusive).
    pub fn fetch(&self, from: u64, max: usize) -> Vec<Record> {
        let log = self.log.read();
        let start = (from as usize).min(log.len());
        let end = (start + max).min(log.len());
        log[start..end].to_vec()
    }

    /// Visit up to `max` records starting at `from` (inclusive) under
    /// the read lock, returning how many were visited. Lets consumers
    /// copy records straight into a reused buffer instead of allocating
    /// a fresh `Vec` per fetch.
    pub fn fetch_map<F: FnMut(&Record)>(&self, from: u64, max: usize, mut f: F) -> usize {
        let log = self.log.read();
        let start = (from as usize).min(log.len());
        let end = (start + max).min(log.len());
        for r in &log[start..end] {
            f(r);
        }
        end - start
    }

    /// Offset one past the last appended record.
    pub fn end_offset(&self) -> u64 {
        self.log.read().len() as u64
    }

    /// Block until `end_offset() > from` or the timeout elapses.
    pub fn wait_for(&self, from: u64, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.notify.0.lock();
        while self.end_offset() <= from {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.notify.1.wait_for(&mut guard, deadline - now);
        }
        true
    }
}

/// A named topic: a fixed set of partitions.
pub struct Topic {
    name: String,
    partitions: Vec<Arc<Partition>>,
}

impl Topic {
    /// Create a topic with `partitions` partitions (must be ≥ 1).
    pub fn new(name: &str, partitions: u32) -> Result<Self> {
        if partitions == 0 {
            return Err(MqError::Config("topics need at least one partition".into()));
        }
        Ok(Topic {
            name: name.to_string(),
            partitions: (0..partitions).map(|_| Arc::new(Partition::new())).collect(),
        })
    }

    /// Create (or recover) a disk-backed topic: each partition persists
    /// to `<dir>/<name>-<partition>.seg` and reloads it on creation.
    pub fn durable(name: &str, partitions: u32, dir: &std::path::Path) -> Result<Self> {
        if partitions == 0 {
            return Err(MqError::Config("topics need at least one partition".into()));
        }
        std::fs::create_dir_all(dir).map_err(|e| MqError::Config(e.to_string()))?;
        let mut parts = Vec::with_capacity(partitions as usize);
        for p in 0..partitions {
            parts.push(Arc::new(Partition::durable(&dir.join(format!("{name}-{p}.seg")))?));
        }
        Ok(Topic { name: name.to_string(), partitions: parts })
    }

    /// Flush all partitions' segment buffers.
    pub fn flush(&self) {
        for p in &self.partitions {
            p.flush();
        }
    }

    /// Topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Access one partition.
    pub fn partition(&self, idx: u32) -> Result<&Arc<Partition>> {
        self.partitions.get(idx as usize).ok_or_else(|| MqError::UnknownPartition {
            topic: self.name.clone(),
            partition: idx,
        })
    }

    /// End offsets of all partitions (for lag computation).
    pub fn end_offsets(&self) -> Vec<u64> {
        self.partitions.iter().map(|p| p.end_offset()).collect()
    }

    /// Total records across partitions.
    pub fn total_records(&self) -> u64 {
        self.end_offsets().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn append_assigns_dense_offsets() {
        let p = Partition::new();
        for i in 0..5u64 {
            assert_eq!(p.append(i as i64, None, Bytes::from(vec![i as u8])), i);
        }
        assert_eq!(p.end_offset(), 5);
    }

    #[test]
    fn fetch_respects_bounds() {
        let p = Partition::new();
        for i in 0..10u8 {
            p.append(0, None, Bytes::from(vec![i]));
        }
        let r = p.fetch(7, 100);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].offset, 7);
        assert!(p.fetch(99, 10).is_empty());
        assert_eq!(p.fetch(0, 2).len(), 2);
    }

    #[test]
    fn wait_for_times_out_without_data() {
        let p = Partition::new();
        assert!(!p.wait_for(0, Duration::from_millis(10)));
        p.append(0, None, Bytes::new());
        assert!(p.wait_for(0, Duration::from_millis(10)));
    }

    #[test]
    fn wait_for_wakes_on_append() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let p = Arc::new(Partition::new());
        let p2 = Arc::clone(&p);
        let entered = Arc::new(AtomicBool::new(false));
        let entered2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            entered2.store(true, Ordering::SeqCst);
            p2.wait_for(0, Duration::from_secs(5))
        });
        // Deadline-poll for the waiter thread instead of a fixed sleep;
        // wait_for re-checks end_offset under the lock, so the append
        // is observed whether it lands before or after the wait begins.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !entered.load(Ordering::SeqCst) {
            assert!(std::time::Instant::now() < deadline, "waiter thread never started");
            std::thread::yield_now();
        }
        p.append(0, None, Bytes::from_static(b"x"));
        assert!(h.join().unwrap());
    }

    #[test]
    fn fetch_map_visits_without_allocating() {
        let p = Partition::new();
        for i in 0..10u8 {
            p.append(i as i64, None, Bytes::from(vec![i]));
        }
        let mut seen = Vec::new();
        assert_eq!(p.fetch_map(7, 100, |r| seen.push(r.offset)), 3);
        assert_eq!(seen, vec![7, 8, 9]);
        assert_eq!(p.fetch_map(99, 10, |_| panic!("out of range visits nothing")), 0);
    }

    #[test]
    fn durable_partition_recovers_after_restart() {
        let dir = std::env::temp_dir().join(format!("snb-mq-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let t = Topic::durable("updates", 2, &dir).unwrap();
            t.partition(0).unwrap().append(1, Some(Bytes::from_static(b"k")), Bytes::from_static(b"v0"));
            t.partition(0).unwrap().append(2, None, Bytes::from_static(b"v1"));
            t.partition(1).unwrap().append(3, None, Bytes::from_static(b"v2"));
            t.flush();
        }
        // "Restart": reopen from the same directory.
        let t = Topic::durable("updates", 2, &dir).unwrap();
        assert_eq!(t.end_offsets(), vec![2, 1]);
        let r = t.partition(0).unwrap().fetch(0, 10);
        assert_eq!(r[0].key, Some(Bytes::from_static(b"k")));
        assert_eq!(&r[0].value[..], b"v0");
        assert_eq!(r[1].key, None);
        assert_eq!(r[1].timestamp_ms, 2);
        // Appends continue at the recovered offset.
        let off = t.partition(1).unwrap().append(4, None, Bytes::from_static(b"v3"));
        assert_eq!(off, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_recovery_tolerates_truncated_tail() {
        let dir = std::env::temp_dir().join(format!("snb-mq-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let t = Topic::durable("t", 1, &dir).unwrap();
            t.partition(0).unwrap().append(1, None, Bytes::from_static(b"complete"));
            t.flush();
        }
        // Simulate a crash mid-write: append garbage half-frame.
        let path = dir.join("t-0.seg");
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        std::io::Write::write_all(&mut f, &[1, 2, 3]).unwrap();
        drop(f);
        let t = Topic::durable("t", 1, &dir).unwrap();
        assert_eq!(t.end_offsets(), vec![1], "only the complete frame survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topic_rejects_zero_partitions() {
        assert!(Topic::new("t", 0).is_err());
        let t = Topic::new("t", 4).unwrap();
        assert_eq!(t.partition_count(), 4);
        assert!(t.partition(4).is_err());
        assert_eq!(t.end_offsets(), vec![0, 0, 0, 0]);
    }
}
