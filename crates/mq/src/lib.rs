//! A Kafka-like partitioned message log.
//!
//! The paper's benchmarking architecture feeds the LDBC update stream
//! through a dedicated Kafka queue so that updates reach the system
//! under test as a real-time stream rather than a pre-scheduled script.
//! This crate is the in-process substitute: named topics split into
//! partitions, each partition an append-only offset-addressed log,
//! producers that route by key hash, and consumer groups with committed
//! offsets and at-least-once delivery.
//!
//! What is intentionally preserved from Kafka's model:
//! * total order *within* a partition, no order across partitions;
//! * consumers poll (pull model) and control their own commit points;
//! * a record is never mutated or removed once appended;
//! * producers and consumers cross a real thread boundary — payloads are
//!   opaque bytes, so the driver pays genuine serialize/deserialize costs.

pub mod broker;
pub mod consumer;
pub mod partitioner;
pub mod producer;
pub mod record;
pub mod topic;

pub use broker::Broker;
pub use consumer::Consumer;
pub use partitioner::Partitioner;
pub use producer::Producer;
pub use record::Record;
pub use topic::Topic;

/// Crate-local error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqError {
    /// Topic does not exist.
    UnknownTopic(String),
    /// Topic already exists.
    TopicExists(String),
    /// Partition index out of range.
    UnknownPartition { topic: String, partition: u32 },
    /// Invalid configuration (e.g. zero partitions).
    Config(String),
}

impl std::fmt::Display for MqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MqError::UnknownTopic(t) => write!(f, "unknown topic `{t}`"),
            MqError::TopicExists(t) => write!(f, "topic `{t}` already exists"),
            MqError::UnknownPartition { topic, partition } => {
                write!(f, "topic `{topic}` has no partition {partition}")
            }
            MqError::Config(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for MqError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, MqError>;
