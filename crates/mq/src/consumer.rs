//! Consumers: poll records, track positions, commit offsets.

use std::sync::Arc;
use std::time::Duration;

use crate::record::Record;
use crate::topic::Topic;
use crate::{MqError, Result};

/// A consumer over an assigned subset of one topic's partitions.
///
/// [`Consumer::new`] assigns every partition (the standalone mode the
/// driver used historically); [`Consumer::group`] splits a topic's
/// partitions across N members so each record is consumed by exactly
/// one member — Kafka's consumer-group contract, which is what lets N
/// appliers ingest the update stream in parallel without coordination.
///
/// `poll` advances the in-memory *position*; `commit` persists it, per
/// partition. On `reset_to_committed` the position rewinds to the last
/// commit, so a crashed consumer re-reads uncommitted records —
/// at-least-once delivery, the same contract Kafka gives the paper's
/// update executor.
pub struct Consumer {
    topic: Arc<Topic>,
    /// Owned partitions; `positions`/`committed` are parallel to this.
    assignment: Vec<u32>,
    positions: Vec<u64>,
    committed: Vec<u64>,
}

impl Consumer {
    /// Consumer owning every partition, starting at the beginning.
    pub fn new(topic: Arc<Topic>) -> Self {
        let assignment: Vec<u32> = (0..topic.partition_count()).collect();
        Consumer::with_assignment(topic, assignment).expect("full assignment is in range")
    }

    /// Consumer owning exactly the given partitions. Duplicates are
    /// dropped; an out-of-range partition is an error. An empty
    /// assignment is legal (a group can have more members than
    /// partitions) — such a consumer simply never receives records.
    pub fn with_assignment(topic: Arc<Topic>, mut assignment: Vec<u32>) -> Result<Self> {
        assignment.sort_unstable();
        assignment.dedup();
        for &p in &assignment {
            if p >= topic.partition_count() {
                return Err(MqError::UnknownPartition { topic: topic.name().to_string(), partition: p });
            }
        }
        let n = assignment.len();
        Ok(Consumer { topic, assignment, positions: vec![0; n], committed: vec![0; n] })
    }

    /// Split a topic's partitions across `members` consumers: member
    /// `i` owns every partition `p` with `p % members == i`. Together
    /// the members cover the topic exactly once, each committing its
    /// own partitions' offsets independently.
    pub fn group(topic: &Arc<Topic>, members: usize) -> Vec<Consumer> {
        let members = members.max(1);
        (0..members)
            .map(|i| {
                let assignment: Vec<u32> = (0..topic.partition_count())
                    .filter(|p| *p as usize % members == i)
                    .collect();
                Consumer::with_assignment(Arc::clone(topic), assignment)
                    .expect("group assignment is in range by construction")
            })
            .collect()
    }

    /// The partitions this consumer owns (sorted).
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Non-blocking poll into a caller-supplied buffer: appends up to
    /// `max` records across the assigned partitions, in partition
    /// order, and returns how many were appended. Advances positions
    /// past the returned records. The buffer is *not* cleared — reusing
    /// one `Vec` across polls is what keeps the hot ingest loop free of
    /// per-poll allocation.
    pub fn poll_into(&mut self, max: usize, out: &mut Vec<(u32, Record)>) -> usize {
        let mut appended = 0usize;
        for (slot, &part) in self.assignment.iter().enumerate() {
            if appended >= max {
                break;
            }
            let pos = self.positions[slot];
            let n = self
                .topic
                .partition(part)
                .expect("assigned partition in range")
                .fetch_map(pos, max - appended, |r| out.push((part, r.clone())));
            self.positions[slot] = pos + n as u64;
            appended += n;
        }
        appended
    }

    /// Non-blocking poll: up to `max` records across the assigned
    /// partitions, in partition order. Allocates a fresh buffer; hot
    /// loops should use [`Consumer::poll_into`].
    pub fn poll(&mut self, max: usize) -> Vec<(u32, Record)> {
        let mut out = Vec::new();
        self.poll_into(max, &mut out);
        out
    }

    /// Blocking poll into a caller-supplied buffer: waits up to
    /// `timeout` for at least one record on the assigned partitions.
    pub fn poll_wait_into(&mut self, max: usize, timeout: Duration, out: &mut Vec<(u32, Record)>) -> usize {
        let n = self.poll_into(max, out);
        if n > 0 {
            return n;
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let n = self.poll_into(max, out);
            if n > 0 {
                return n;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return 0;
            }
            let wait = (deadline - now).min(Duration::from_millis(5));
            match self.assignment.first() {
                // Block on the first assigned partition's condvar as the
                // wakeup source, then re-check all assigned partitions.
                // Busy-looping across condvars is not worth it for the
                // benchmark's single-digit partition counts.
                Some(&first) => {
                    let pos = self.positions[0];
                    self.topic
                        .partition(first)
                        .expect("assigned partition in range")
                        .wait_for(pos, wait);
                }
                // No partitions assigned: nothing can ever arrive.
                None => std::thread::sleep(wait),
            }
        }
    }

    /// Blocking poll: waits up to `timeout` for at least one record.
    pub fn poll_wait(&mut self, max: usize, timeout: Duration) -> Vec<(u32, Record)> {
        let mut out = Vec::new();
        self.poll_wait_into(max, timeout, &mut out);
        out
    }

    /// Persist the current positions as the committed offsets, per
    /// owned partition.
    pub fn commit(&mut self) {
        self.committed.clone_from(&self.positions);
    }

    /// Rewind positions to the last committed offsets (crash-recovery
    /// semantics).
    pub fn reset_to_committed(&mut self) {
        self.positions.clone_from(&self.committed);
    }

    /// Records appended but not yet polled, across owned partitions.
    pub fn lag(&self) -> u64 {
        self.assignment
            .iter()
            .zip(&self.positions)
            .map(|(&part, pos)| {
                self.topic
                    .partition(part)
                    .expect("assigned partition in range")
                    .end_offset()
                    .saturating_sub(*pos)
            })
            .sum()
    }

    /// Current (uncommitted) positions, parallel to [`Consumer::assignment`].
    pub fn positions(&self) -> &[u64] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::Producer;
    use bytes::Bytes;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn setup(parts: u32) -> (Arc<Topic>, Producer) {
        let t = Arc::new(Topic::new("t", parts).unwrap());
        let p = Producer::new(Arc::clone(&t));
        (t, p)
    }

    /// Deadline-poll until `pred` holds; false if `timeout` elapses
    /// first. Replaces fixed `sleep` waits that raced on slow CI.
    fn eventually(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while !pred() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    #[test]
    fn poll_preserves_partition_order() {
        let (t, p) = setup(1);
        for i in 0..10i64 {
            p.send(i, None, Bytes::from(i.to_le_bytes().to_vec()));
        }
        let mut c = Consumer::new(t);
        let records = c.poll(100);
        let offsets: Vec<u64> = records.iter().map(|(_, r)| r.offset).collect();
        assert_eq!(offsets, (0..10).collect::<Vec<u64>>());
        assert!(c.poll(100).is_empty(), "second poll sees nothing new");
    }

    #[test]
    fn poll_respects_max() {
        let (t, p) = setup(2);
        for i in 0..20 {
            p.send(i, None, Bytes::new());
        }
        let mut c = Consumer::new(t);
        let batch = c.poll(7);
        assert_eq!(batch.len(), 7);
        let rest = c.poll(100);
        assert_eq!(rest.len(), 13);
    }

    #[test]
    fn poll_into_reuses_buffer_without_clearing() {
        let (t, p) = setup(1);
        for i in 0..6 {
            p.send(i, None, Bytes::new());
        }
        let mut c = Consumer::new(t);
        let mut buf = Vec::new();
        assert_eq!(c.poll_into(4, &mut buf), 4);
        let cap = buf.capacity();
        buf.clear();
        assert_eq!(c.poll_into(4, &mut buf), 2);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].1.offset, 4);
        assert_eq!(buf.capacity(), cap, "no reallocation on the second poll");
    }

    #[test]
    fn uncommitted_records_are_redelivered_after_reset() {
        let (t, p) = setup(1);
        for i in 0..5 {
            p.send(i, None, Bytes::new());
        }
        let mut c = Consumer::new(t);
        assert_eq!(c.poll(2).len(), 2);
        c.commit();
        assert_eq!(c.poll(2).len(), 2); // read but not committed
        c.reset_to_committed();
        let replay = c.poll(10);
        assert_eq!(replay.len(), 3, "records 2..5 are redelivered");
        assert_eq!(replay[0].1.offset, 2);
    }

    #[test]
    fn lag_tracks_unpolled_records() {
        let (t, p) = setup(2);
        let mut c = Consumer::new(Arc::clone(&t));
        assert_eq!(c.lag(), 0);
        for i in 0..6 {
            p.send(i, None, Bytes::new());
        }
        assert_eq!(c.lag(), 6);
        c.poll(4);
        assert_eq!(c.lag(), 2);
    }

    #[test]
    fn group_members_partition_the_topic() {
        let (t, p) = setup(4);
        for i in 0..40 {
            // Unkeyed records round-robin across all 4 partitions.
            p.send(i, None, Bytes::from(vec![i as u8]));
        }
        let mut group = Consumer::group(&t, 2);
        assert_eq!(group[0].assignment(), &[0, 2]);
        assert_eq!(group[1].assignment(), &[1, 3]);
        let a = group[0].poll(100);
        let b = group[1].poll(100);
        assert_eq!(a.len() + b.len(), 40);
        // No record is seen by both members.
        assert!(a.iter().all(|(part, _)| *part == 0 || *part == 2));
        assert!(b.iter().all(|(part, _)| *part == 1 || *part == 3));
        // Per-member lag and commit are scoped to owned partitions.
        assert_eq!(group[0].lag(), 0);
        group[0].commit();
        assert_eq!(group[0].positions(), &[10, 10]);
    }

    #[test]
    fn group_with_more_members_than_partitions_leaves_idle_members() {
        let (t, p) = setup(2);
        p.send(0, None, Bytes::new());
        let mut group = Consumer::group(&t, 3);
        assert_eq!(group[2].assignment(), &[] as &[u32]);
        assert_eq!(group[2].lag(), 0);
        assert!(group[2].poll(10).is_empty());
        assert!(group[2].poll_wait(10, Duration::from_millis(5)).is_empty());
    }

    #[test]
    fn with_assignment_rejects_out_of_range_partitions() {
        let (t, _p) = setup(2);
        assert!(Consumer::with_assignment(Arc::clone(&t), vec![0, 5]).is_err());
        let c = Consumer::with_assignment(t, vec![1, 1, 0]).unwrap();
        assert_eq!(c.assignment(), &[0, 1], "sorted and deduplicated");
    }

    #[test]
    fn poll_wait_returns_promptly_when_data_arrives() {
        let (t, p) = setup(1);
        let mut c = Consumer::new(Arc::clone(&t));
        let entered = Arc::new(AtomicBool::new(false));
        let entered2 = Arc::clone(&entered);
        let h = std::thread::spawn(move || {
            entered2.store(true, Ordering::SeqCst);
            c.poll_wait(10, Duration::from_secs(5))
        });
        // Deadline-poll for the waiter to start instead of a fixed
        // sleep; poll_wait re-checks after blocking, so the send is
        // observed whether it lands before or after the wait begins.
        assert!(eventually(Duration::from_secs(5), || entered.load(Ordering::SeqCst)));
        p.send(1, None, Bytes::from_static(b"hello"));
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1.value[..], b"hello");
    }

    #[test]
    fn poll_wait_times_out_empty() {
        let (t, _p) = setup(1);
        let mut c = Consumer::new(t);
        let got = c.poll_wait(10, Duration::from_millis(20));
        assert!(got.is_empty());
    }
}
