//! Consumers: poll records, track positions, commit offsets.

use std::sync::Arc;
use std::time::Duration;

use crate::record::Record;
use crate::topic::Topic;

/// A consumer over every partition of one topic.
///
/// `poll` advances the in-memory *position*; `commit` persists it. On
/// `reset_to_committed` the position rewinds to the last commit, so a
/// crashed consumer re-reads uncommitted records — at-least-once
/// delivery, the same contract Kafka gives the paper's update executor.
pub struct Consumer {
    topic: Arc<Topic>,
    positions: Vec<u64>,
    committed: Vec<u64>,
}

impl Consumer {
    /// Consumer starting at the beginning of every partition.
    pub fn new(topic: Arc<Topic>) -> Self {
        let n = topic.partition_count() as usize;
        Consumer { topic, positions: vec![0; n], committed: vec![0; n] }
    }

    /// Non-blocking poll: up to `max` records across partitions, in
    /// partition order. Advances positions past the returned records.
    pub fn poll(&mut self, max: usize) -> Vec<(u32, Record)> {
        let mut out = Vec::new();
        for part in 0..self.topic.partition_count() {
            if out.len() >= max {
                break;
            }
            let pos = self.positions[part as usize];
            let batch = self
                .topic
                .partition(part)
                .expect("partition in range")
                .fetch(pos, max - out.len());
            if let Some(last) = batch.last() {
                self.positions[part as usize] = last.offset + 1;
            }
            out.extend(batch.into_iter().map(|r| (part, r)));
        }
        out
    }

    /// Blocking poll: waits up to `timeout` for at least one record.
    pub fn poll_wait(&mut self, max: usize, timeout: Duration) -> Vec<(u32, Record)> {
        let got = self.poll(max);
        if !got.is_empty() {
            return got;
        }
        // Block on partition 0's condvar as the wakeup source, then
        // re-check all partitions. Busy-looping across condvars is not
        // worth it for the benchmark's single-digit partition counts.
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let got = self.poll(max);
            if !got.is_empty() {
                return got;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let pos = self.positions[0];
            self.topic
                .partition(0)
                .expect("partition 0 exists")
                .wait_for(pos, (deadline - now).min(Duration::from_millis(5)));
        }
    }

    /// Persist the current positions as the committed offsets.
    pub fn commit(&mut self) {
        self.committed.clone_from(&self.positions);
    }

    /// Rewind positions to the last committed offsets (crash-recovery
    /// semantics).
    pub fn reset_to_committed(&mut self) {
        self.positions.clone_from(&self.committed);
    }

    /// Records appended but not yet polled, across all partitions.
    pub fn lag(&self) -> u64 {
        self.topic
            .end_offsets()
            .iter()
            .zip(&self.positions)
            .map(|(end, pos)| end.saturating_sub(*pos))
            .sum()
    }

    /// Current (uncommitted) positions per partition.
    pub fn positions(&self) -> &[u64] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::Producer;
    use bytes::Bytes;

    fn setup(parts: u32) -> (Arc<Topic>, Producer) {
        let t = Arc::new(Topic::new("t", parts).unwrap());
        let p = Producer::new(Arc::clone(&t));
        (t, p)
    }

    #[test]
    fn poll_preserves_partition_order() {
        let (t, p) = setup(1);
        for i in 0..10i64 {
            p.send(i, None, Bytes::from(i.to_le_bytes().to_vec()));
        }
        let mut c = Consumer::new(t);
        let records = c.poll(100);
        let offsets: Vec<u64> = records.iter().map(|(_, r)| r.offset).collect();
        assert_eq!(offsets, (0..10).collect::<Vec<u64>>());
        assert!(c.poll(100).is_empty(), "second poll sees nothing new");
    }

    #[test]
    fn poll_respects_max() {
        let (t, p) = setup(2);
        for i in 0..20 {
            p.send(i, None, Bytes::new());
        }
        let mut c = Consumer::new(t);
        let batch = c.poll(7);
        assert_eq!(batch.len(), 7);
        let rest = c.poll(100);
        assert_eq!(rest.len(), 13);
    }

    #[test]
    fn uncommitted_records_are_redelivered_after_reset() {
        let (t, p) = setup(1);
        for i in 0..5 {
            p.send(i, None, Bytes::new());
        }
        let mut c = Consumer::new(t);
        assert_eq!(c.poll(2).len(), 2);
        c.commit();
        assert_eq!(c.poll(2).len(), 2); // read but not committed
        c.reset_to_committed();
        let replay = c.poll(10);
        assert_eq!(replay.len(), 3, "records 2..5 are redelivered");
        assert_eq!(replay[0].1.offset, 2);
    }

    #[test]
    fn lag_tracks_unpolled_records() {
        let (t, p) = setup(2);
        let mut c = Consumer::new(Arc::clone(&t));
        assert_eq!(c.lag(), 0);
        for i in 0..6 {
            p.send(i, None, Bytes::new());
        }
        assert_eq!(c.lag(), 6);
        c.poll(4);
        assert_eq!(c.lag(), 2);
    }

    #[test]
    fn poll_wait_returns_promptly_when_data_arrives() {
        let (t, p) = setup(1);
        let mut c = Consumer::new(Arc::clone(&t));
        let h = std::thread::spawn(move || c.poll_wait(10, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        p.send(1, None, Bytes::from_static(b"hello"));
        let got = h.join().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1.value[..], b"hello");
    }

    #[test]
    fn poll_wait_times_out_empty() {
        let (t, _p) = setup(1);
        let mut c = Consumer::new(t);
        let got = c.poll_wait(10, Duration::from_millis(20));
        assert!(got.is_empty());
    }
}
