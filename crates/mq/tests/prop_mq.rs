//! Property tests for the message queue: no record loss, per-partition
//! ordering, and commit/reset semantics under arbitrary interleavings.

use bytes::Bytes;
use proptest::prelude::*;
use snb_mq::{Broker, Consumer};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_keyed_record_arrives_in_order(
        keys in proptest::collection::vec(0u8..4, 1..60),
        partitions in 1u32..5,
        poll_sizes in proptest::collection::vec(1usize..10, 1..40),
    ) {
        let broker = Broker::new();
        broker.create_topic("t", partitions).unwrap();
        let producer = broker.producer("t").unwrap();
        for (seq, key) in keys.iter().enumerate() {
            producer.send(seq as i64, Some(Bytes::from(vec![*key])), Bytes::from(vec![seq as u8]));
        }
        let mut consumer: Consumer = broker.consumer("t").unwrap();
        let mut got: Vec<(u8, u8)> = Vec::new(); // (key, seq)
        let mut polls = poll_sizes.iter().cycle();
        loop {
            let batch = consumer.poll(*polls.next().unwrap());
            if batch.is_empty() {
                break;
            }
            for (_, r) in batch {
                got.push((r.key.as_ref().unwrap()[0], r.value[0]));
            }
        }
        prop_assert_eq!(got.len(), keys.len(), "no loss, no duplication");
        // Per key: sequence numbers arrive in send order.
        for key in 0u8..4 {
            let seqs: Vec<u8> = got.iter().filter(|(k, _)| *k == key).map(|(_, s)| *s).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seqs, sorted, "key {} order preserved", key);
        }
    }

    #[test]
    fn reset_to_committed_replays_exactly_the_uncommitted_suffix(
        n in 1usize..50,
        committed_after in 0usize..50,
    ) {
        let broker = Broker::new();
        broker.create_topic("t", 1).unwrap();
        let producer = broker.producer("t").unwrap();
        for i in 0..n {
            producer.send(i as i64, None, Bytes::from(vec![i as u8]));
        }
        let mut consumer = broker.consumer("t").unwrap();
        let commit_point = committed_after.min(n);
        let first = consumer.poll(commit_point);
        prop_assert_eq!(first.len(), commit_point);
        consumer.commit();
        let _rest = consumer.poll(usize::MAX >> 1);
        consumer.reset_to_committed();
        let replay = consumer.poll(usize::MAX >> 1);
        prop_assert_eq!(replay.len(), n - commit_point);
        if let Some((_, r)) = replay.first() {
            prop_assert_eq!(r.offset as usize, commit_point);
        }
    }
}
