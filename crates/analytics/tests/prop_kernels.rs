//! Property tests for the analytics kernels against naive oracles.
//!
//! Graphs are random directed edge lists (self-loops and duplicate
//! edges included on purpose — the kernels must tolerate both). The
//! oracles are deliberately dumb: BFS over an undirected adjacency map
//! for WCC, triple-nested membership checks for triangles.

use proptest::prelude::*;
use snb_analytics::kernels::{self, KernelCtl, PageRankConfig};
use snb_core::snapshot::{CsrBuilder, CsrSnapshot};
use snb_core::{EdgeLabel, PropertyMap, VertexLabel, Vid};
use std::collections::BTreeSet;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Symmetric CSR over `n` Person rows from a directed edge list.
fn snap(n: usize, edges: &[(u32, u32)]) -> CsrSnapshot {
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut inn: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        out[a as usize].push(b);
        inn[b as usize].push(a);
    }
    let mut bld = CsrBuilder::new(1, n, false);
    for row in 0..n {
        bld.push_row(
            Vid::new(VertexLabel::Person, row as u64 + 1),
            Arc::new(PropertyMap::from_pairs(&[])),
        )
        .expect("test graph fits u32 rows");
        for &t in &out[row] {
            bld.push_out(EdgeLabel::Knows, t, None);
        }
        for &s in &inn[row] {
            bld.push_in(EdgeLabel::Knows, s);
        }
    }
    bld.finish().expect("test graph fits u32 rows")
}

/// Undirected, deduplicated, self-loop-free adjacency sets.
fn undirected_adj(n: usize, edges: &[(u32, u32)]) -> Vec<BTreeSet<u32>> {
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for &(a, b) in edges {
        if a != b {
            adj[a as usize].insert(b);
            adj[b as usize].insert(a);
        }
    }
    adj
}

/// Oracle: component id per row = smallest row reachable over
/// undirected edges, found by plain BFS.
fn wcc_oracle(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let adj = undirected_adj(n, edges);
    let mut comp = vec![u32::MAX; n];
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let mut queue = vec![start as u32];
        comp[start] = start as u32;
        while let Some(v) = queue.pop() {
            for &w in &adj[v as usize] {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = start as u32;
                    queue.push(w);
                }
            }
        }
    }
    comp
}

/// Oracle: per-vertex triangle membership by membership testing.
fn triangles_oracle(n: usize, edges: &[(u32, u32)]) -> Vec<u64> {
    let adj = undirected_adj(n, edges);
    let mut tri = vec![0u64; n];
    for u in 0..n {
        let nbrs: Vec<u32> = adj[u].iter().copied().collect();
        for (i, &v) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                if adj[v as usize].contains(&w) {
                    tri[u] += 1;
                }
            }
        }
    }
    tri
}

/// Map raw (src, dst) pairs onto 0..n. Using modulo keeps the strategy
/// independent of `n`, which the shim's tuple strategies require.
fn clamp_edges(n: u32, raw: &[(u32, u32)]) -> Vec<(u32, u32)> {
    raw.iter().map(|&(a, b)| (a % n, b % n)).collect()
}

proptest! {
    #[test]
    fn wcc_matches_bfs_oracle(
        n in 1..48u32,
        raw in proptest::collection::vec((0..1024u32, 0..1024u32), 0..160)
    ) {
        let edges = clamp_edges(n, &raw);
        let s = snap(n as usize, &edges);
        let cancel = AtomicBool::new(false);
        let labels = kernels::wcc(&s, Some(EdgeLabel::Knows), 3, &KernelCtl::noop(&cancel))
            .expect("not cancelled");
        prop_assert_eq!(labels, wcc_oracle(n as usize, &edges));
    }

    #[test]
    fn triangles_match_naive_oracle(
        n in 1..32u32,
        raw in proptest::collection::vec((0..1024u32, 0..1024u32), 0..120)
    ) {
        let edges = clamp_edges(n, &raw);
        let s = snap(n as usize, &edges);
        let cancel = AtomicBool::new(false);
        let counts = kernels::triangles(&s, Some(EdgeLabel::Knows), 2, &KernelCtl::noop(&cancel))
            .expect("not cancelled");
        let oracle = triangles_oracle(n as usize, &edges);
        prop_assert_eq!(&counts, &oracle);
        // Each triangle is seen at exactly three corners.
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total % 3, 0);
    }

    #[test]
    fn pagerank_mass_conserved_and_worker_invariant(
        n in 1..40u32,
        raw in proptest::collection::vec((0..1024u32, 0..1024u32), 0..120)
    ) {
        let edges = clamp_edges(n, &raw);
        let s = snap(n as usize, &edges);
        let cfg = PageRankConfig { damping: 0.85, epsilon: 1e-12, max_iters: 60 };
        let cancel = AtomicBool::new(false);
        let baseline = kernels::pagerank(&s, Some(EdgeLabel::Knows), &cfg, 1, &KernelCtl::noop(&cancel))
            .expect("not cancelled");
        // Dangling redistribution keeps total rank mass at exactly 1.
        let sum: f64 = baseline.ranks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "rank mass {} drifted", sum);
        prop_assert!(baseline.ranks.iter().all(|r| *r >= 0.0));
        // Fixed morsel size + ordered reduction: bit-identical across
        // worker counts, not merely close.
        for workers in [2usize, 5] {
            let alt = kernels::pagerank(&s, Some(EdgeLabel::Knows), &cfg, workers, &KernelCtl::noop(&cancel))
                .expect("not cancelled");
            prop_assert_eq!(&alt.ranks, &baseline.ranks, "workers={}", workers);
            prop_assert_eq!(alt.iterations, baseline.iterations);
        }
    }
}
