//! The analytics job subsystem: long-running kernels as first-class,
//! pollable, cancellable jobs.
//!
//! A [`JobManager`] owns a small dedicated pool of runner threads —
//! deliberately separate from (and much smaller than) the interactive
//! worker pool, so a PageRank sweep never occupies a slot a point
//! lookup is waiting for. Admission is bounded: at most
//! `runners + max_pending` jobs may be live at once, and submissions
//! beyond that fail fast with [`SnbError::Overloaded`], the same typed
//! backpressure contract the interactive queue uses.
//!
//! A job pins **one** snapshot at start
//! ([`GraphBackend::pin_analytics_snapshot`], falling back to an ad-hoc
//! backend scan) and holds it for its whole run: results are exact for
//! that epoch and deliberately blind to concurrent writes. The state
//! machine is
//!
//! ```text
//! Queued ──▶ Running{iteration, delta} ──▶ Done
//!    │                 │                     └─(fetch top-k / full)
//!    │                 ├──▶ Failed(reason)
//!    └─────────────────┴──▶ Cancelled
//! ```
//!
//! and every transition is observable through [`JobManager::poll`] —
//! kernels report per-iteration progress into the record, so a remote
//! poller sees the iteration counter advance while the job runs.

use crate::kernels::{self, KernelCtl, PageRankConfig};
use snb_core::snapshot::{snapshot_from_backend, CsrSnapshot};
use snb_core::{EdgeLabel, GraphBackend, Result, SnbError, Vid};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Job identifier, unique per manager, never reused.
pub type JobId = u64;

/// Which kernel a job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    PageRank(PageRankConfig),
    Wcc,
    Triangles,
}

impl JobKind {
    pub fn tag(&self) -> u8 {
        match self {
            JobKind::PageRank(_) => 0,
            JobKind::Wcc => 1,
            JobKind::Triangles => 2,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            JobKind::PageRank(_) => "pagerank",
            JobKind::Wcc => "wcc",
            JobKind::Triangles => "triangles",
        }
    }
}

/// Everything a submission carries.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub kind: JobKind,
    /// Edge label to traverse (`None` = all labels).
    pub label: Option<EdgeLabel>,
    /// Intra-job kernel workers (0 = the manager's default).
    pub workers: usize,
    /// Cooperative throttle: sleep this long after every iteration.
    /// Zero for full speed; benchmarks and the coexistence scenario use
    /// it to stretch a job so progress/cancellation are observable and
    /// interactive traffic keeps its share of the cores.
    pub pacing: Duration,
}

impl JobSpec {
    pub fn pagerank(cfg: PageRankConfig) -> JobSpec {
        JobSpec { kind: JobKind::PageRank(cfg), label: None, workers: 0, pacing: Duration::ZERO }
    }

    pub fn wcc() -> JobSpec {
        JobSpec { kind: JobKind::Wcc, label: None, workers: 0, pacing: Duration::ZERO }
    }

    pub fn triangles() -> JobSpec {
        JobSpec { kind: JobKind::Triangles, label: None, workers: 0, pacing: Duration::ZERO }
    }
}

/// Observable job state (see the module-level state machine).
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    Queued,
    Running { iteration: u32, delta: f64 },
    Done,
    Failed(String),
    Cancelled,
}

impl JobState {
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed(_) | JobState::Cancelled)
    }
}

/// A poll answer: the state plus run metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    pub id: JobId,
    pub kind_tag: u8,
    pub state: JobState,
    /// Epoch of the pinned snapshot (0 until the job starts).
    pub epoch: u64,
    /// Rows in the pinned snapshot (0 until the job starts).
    pub n_rows: u64,
    /// Milliseconds since submission.
    pub elapsed_ms: u64,
}

/// A finished job's result, as fetched (already mapped to [`Vid`]s).
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Ranks, descending; `iterations`/`delta` echo convergence.
    PageRank { iterations: u32, delta: f64, ranks: Vec<(Vid, f64)> },
    /// Component id per vertex — the smallest member `Vid` raw value.
    Wcc { components: u64, assignment: Vec<(Vid, u64)> },
    /// Per-vertex triangle count; `total` is the global count (Σ/3).
    Triangles { total: u64, counts: Vec<(Vid, u64)> },
}

impl JobOutput {
    /// Keep only the `k` *top* entries (by rank / component size
    /// already encoded in sort order / triangle count). Full results
    /// are pre-sorted at completion, so this is a truncation.
    pub fn truncate_top(&mut self, k: usize) {
        match self {
            JobOutput::PageRank { ranks, .. } => ranks.truncate(k),
            JobOutput::Wcc { assignment, .. } => assignment.truncate(k),
            JobOutput::Triangles { counts, .. } => counts.truncate(k),
        }
    }
}

/// Manager tuning knobs.
#[derive(Debug, Clone)]
pub struct AnalyticsConfig {
    /// Dedicated runner threads = jobs that may run concurrently.
    pub runners: usize,
    /// Jobs that may wait in the queue beyond the running ones.
    pub max_pending: usize,
    /// Kernel workers when the spec asks for 0.
    pub default_workers: usize,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        AnalyticsConfig { runners: 1, max_pending: 4, default_workers: 2 }
    }
}

struct JobRecord {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    output: Option<JobOutput>,
    epoch: u64,
    n_rows: u64,
    submitted: Instant,
}

struct ManagerInner {
    jobs: Vec<(JobId, Arc<Mutex<JobRecord>>)>,
    queue: VecDeque<JobId>,
    next_id: JobId,
    /// Queued + running, for bounded admission.
    live: usize,
    shutdown: bool,
}

/// Bounded, cancellable admission of analytics jobs onto a dedicated
/// low-priority runner pool. See the module docs for the state machine.
pub struct JobManager {
    backend: Arc<dyn GraphBackend>,
    inner: Mutex<ManagerInner>,
    cv: Condvar,
    cfg: AnalyticsConfig,
    runners: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Finished jobs kept for late fetches before the oldest are evicted.
const FINISHED_JOBS_KEPT: usize = 64;

impl JobManager {
    pub fn new(backend: Arc<dyn GraphBackend>, cfg: AnalyticsConfig) -> Arc<JobManager> {
        let mgr = Arc::new(JobManager {
            backend,
            inner: Mutex::new(ManagerInner {
                jobs: Vec::new(),
                queue: VecDeque::new(),
                next_id: 1,
                live: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            cfg: cfg.clone(),
            runners: Mutex::new(Vec::new()),
        });
        let mut handles = mgr.runners.lock().unwrap();
        for _ in 0..cfg.runners.max(1) {
            let m = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || m.runner_loop()));
        }
        drop(handles);
        mgr
    }

    /// Admit a job or fail fast with `Overloaded` (bounded admission).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Err(SnbError::Backend("analytics manager is shut down".into()));
        }
        let cap = self.cfg.runners.max(1) + self.cfg.max_pending;
        if inner.live >= cap {
            return Err(SnbError::Overloaded(format!(
                "analytics job queue is full ({cap} live jobs)"
            )));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.live += 1;
        let record = Arc::new(Mutex::new(JobRecord {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            output: None,
            epoch: 0,
            n_rows: 0,
            submitted: Instant::now(),
        }));
        inner.jobs.push((id, record));
        // Evict the oldest *finished* records past the retention cap so
        // a long-lived server does not accumulate results forever.
        let finished: Vec<usize> = inner
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, r))| r.lock().unwrap().state.is_terminal())
            .map(|(i, _)| i)
            .collect();
        if finished.len() > FINISHED_JOBS_KEPT {
            for &i in finished[..finished.len() - FINISHED_JOBS_KEPT].iter().rev() {
                inner.jobs.remove(i);
            }
        }
        inner.queue.push_back(id);
        drop(inner);
        self.cv.notify_one();
        Ok(id)
    }

    /// Current status of a job.
    pub fn poll(&self, id: JobId) -> Result<JobStatus> {
        let record = self.record(id)?;
        let r = record.lock().unwrap();
        Ok(JobStatus {
            id,
            kind_tag: r.spec.kind.tag(),
            state: r.state.clone(),
            epoch: r.epoch,
            n_rows: r.n_rows,
            elapsed_ms: r.submitted.elapsed().as_millis() as u64,
        })
    }

    /// Fetch a finished job's result; `top_k = None` is the full
    /// result. Fails with `Conflict` while the job is not `Done`.
    pub fn fetch(&self, id: JobId, top_k: Option<usize>) -> Result<JobOutput> {
        let record = self.record(id)?;
        let r = record.lock().unwrap();
        match (&r.state, &r.output) {
            (JobState::Done, Some(out)) => {
                let mut out = out.clone();
                if let Some(k) = top_k {
                    out.truncate_top(k);
                }
                Ok(out)
            }
            (state, _) => Err(SnbError::Conflict(format!(
                "job {id} is not done (state {state:?})"
            ))),
        }
    }

    /// Request cancellation. `true` if the job was still live (queued
    /// jobs flip to `Cancelled` immediately; running ones within one
    /// morsel). Cancelling a finished job is a no-op returning `false`.
    pub fn cancel(&self, id: JobId) -> Result<bool> {
        let record = self.record(id)?;
        let mut r = record.lock().unwrap();
        match r.state {
            JobState::Queued => {
                r.state = JobState::Cancelled;
                r.cancel.store(true, Ordering::Relaxed);
                drop(r);
                let mut inner = self.inner.lock().unwrap();
                inner.live = inner.live.saturating_sub(1);
                Ok(true)
            }
            JobState::Running { .. } => {
                r.cancel.store(true, Ordering::Relaxed);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Stop the runner pool (idempotent; also run by `Drop`). Queued
    /// jobs flip to `Cancelled`; running jobs are cancelled and joined.
    pub fn shutdown(&self) {
        let records: Vec<Arc<Mutex<JobRecord>>>;
        {
            let mut inner = self.inner.lock().unwrap();
            if inner.shutdown {
                return;
            }
            inner.shutdown = true;
            records = inner.jobs.iter().map(|(_, r)| Arc::clone(r)).collect();
        }
        for r in records {
            let mut rec = r.lock().unwrap();
            rec.cancel.store(true, Ordering::Relaxed);
            if rec.state == JobState::Queued {
                rec.state = JobState::Cancelled;
            }
        }
        self.cv.notify_all();
        let handles = std::mem::take(&mut *self.runners.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }

    fn record(&self, id: JobId) -> Result<Arc<Mutex<JobRecord>>> {
        let inner = self.inner.lock().unwrap();
        inner
            .jobs
            .iter()
            .find(|(jid, _)| *jid == id)
            .map(|(_, r)| Arc::clone(r))
            .ok_or_else(|| SnbError::NotFound(format!("analytics job {id}")))
    }

    fn runner_loop(&self) {
        loop {
            let (id, record) = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if inner.shutdown {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        let rec = inner
                            .jobs
                            .iter()
                            .find(|(jid, _)| *jid == id)
                            .map(|(_, r)| Arc::clone(r));
                        match rec {
                            Some(r) => break (id, r),
                            None => continue, // evicted — skip
                        }
                    }
                    inner = self.cv.wait(inner).unwrap();
                }
            };
            // Cancelled while queued: nothing to run.
            {
                let mut r = record.lock().unwrap();
                if r.state != JobState::Queued {
                    continue;
                }
                r.state = JobState::Running { iteration: 0, delta: f64::INFINITY };
            }
            let outcome = self.run_job(&record);
            {
                let mut r = record.lock().unwrap();
                match outcome {
                    Ok(Some(out)) => {
                        r.output = Some(out);
                        r.state = JobState::Done;
                    }
                    Ok(None) => r.state = JobState::Cancelled,
                    Err(e) => r.state = JobState::Failed(e.to_string()),
                }
            }
            let mut inner = self.inner.lock().unwrap();
            inner.live = inner.live.saturating_sub(1);
            let _ = id;
        }
    }

    /// Pin a snapshot and run the kernel, streaming progress into the
    /// record. `Ok(None)` = cancelled.
    fn run_job(&self, record: &Arc<Mutex<JobRecord>>) -> Result<Option<JobOutput>> {
        let (spec, cancel) = {
            let r = record.lock().unwrap();
            (r.spec.clone(), Arc::clone(&r.cancel))
        };
        let snap = self.pin_for_job()?;
        {
            let mut r = record.lock().unwrap();
            r.epoch = snap.epoch();
            r.n_rows = snap.n_rows() as u64;
        }
        let workers =
            if spec.workers == 0 { self.cfg.default_workers.max(1) } else { spec.workers };
        let pacing = spec.pacing;
        let progress = |iteration: u32, delta: f64| {
            {
                let mut r = record.lock().unwrap();
                if !r.state.is_terminal() {
                    r.state = JobState::Running { iteration, delta };
                }
            }
            if !pacing.is_zero() {
                std::thread::sleep(pacing);
            }
        };
        let ctl = KernelCtl { cancel: &cancel, on_iter: &progress };
        let out = match spec.kind {
            JobKind::PageRank(cfg) => {
                match kernels::pagerank(&snap, spec.label, &cfg, workers, &ctl) {
                    None => return Ok(None),
                    Some(o) => {
                        let mut ranks: Vec<(Vid, f64)> = o
                            .ranks
                            .iter()
                            .enumerate()
                            .map(|(row, &r)| (snap.vid_of(row as u32), r))
                            .collect();
                        // Descending by rank, vid-raw tiebreak: a top-k
                        // fetch is then a plain truncation.
                        ranks.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1)
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.0.raw().cmp(&b.0.raw()))
                        });
                        JobOutput::PageRank { iterations: o.iterations, delta: o.delta, ranks }
                    }
                }
            }
            JobKind::Wcc => match kernels::wcc(&snap, spec.label, workers, &ctl) {
                None => return Ok(None),
                Some(labels) => {
                    let (components, assignment) = wcc_assignment(&snap, &labels);
                    JobOutput::Wcc { components, assignment }
                }
            },
            JobKind::Triangles => match kernels::triangles(&snap, spec.label, workers, &ctl) {
                None => return Ok(None),
                Some(counts) => {
                    let total: u64 = counts.iter().sum::<u64>() / 3;
                    let mut counts: Vec<(Vid, u64)> = counts
                        .iter()
                        .enumerate()
                        .map(|(row, &c)| (snap.vid_of(row as u32), c))
                        .collect();
                    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
                    JobOutput::Triangles { total, counts }
                }
            },
        };
        Ok(Some(out))
    }

    /// The snapshot a job runs over: the newest published epoch, or an
    /// ad-hoc backend scan for engines with no compactor at all. The
    /// scan is stamped with epoch 0 ("unversioned") — fine for a job
    /// that only promises point-in-time-ish semantics on such engines.
    fn pin_for_job(&self) -> Result<Arc<CsrSnapshot>> {
        if let Some(s) = self.backend.pin_analytics_snapshot() {
            return Ok(s);
        }
        Ok(Arc::new(snapshot_from_backend(&*self.backend, 0)?))
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Map row labels (smallest row id per component) to `(Vid, component
/// id)` pairs where the component id is the smallest member Vid raw —
/// the representation the sharded merge also produces, so single-node
/// and merged results are directly comparable. The assignment is sorted
/// by **descending component size** (component-id tiebreak), so a top-k
/// fetch surfaces the largest communities first.
pub fn wcc_assignment(snap: &CsrSnapshot, labels: &[u32]) -> (u64, Vec<(Vid, u64)>) {
    use std::collections::HashMap;
    let mut comp_vid: HashMap<u32, u64> = HashMap::new();
    let mut sizes: HashMap<u32, u64> = HashMap::new();
    for (row, &l) in labels.iter().enumerate() {
        let vid = snap.vid_of(row as u32).raw();
        let e = comp_vid.entry(l).or_insert(vid);
        if vid < *e {
            *e = vid;
        }
        *sizes.entry(l).or_insert(0) += 1;
    }
    let mut rows: Vec<(Vid, u64, u64)> = labels
        .iter()
        .enumerate()
        .map(|(row, l)| (snap.vid_of(row as u32), comp_vid[l], sizes[l]))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)).then(a.0.raw().cmp(&b.0.raw())));
    (comp_vid.len() as u64, rows.into_iter().map(|(v, c, _)| (v, c)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::{PropKey, Value, VertexLabel};
    use snb_graph_native::NativeGraphStore;

    fn backend(n: u64, edges: &[(u64, u64)]) -> Arc<dyn GraphBackend> {
        let s = NativeGraphStore::new();
        for id in 1..=n {
            s.add_vertex(VertexLabel::Person, id, &[(PropKey::FirstName, Value::str("p"))])
                .unwrap();
        }
        for &(a, b) in edges {
            s.add_edge(
                EdgeLabel::Knows,
                Vid::new(VertexLabel::Person, a),
                Vid::new(VertexLabel::Person, b),
                &[],
            )
            .unwrap();
        }
        s.compact_now();
        Arc::new(s)
    }

    fn wait_done(mgr: &JobManager, id: JobId) -> JobStatus {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let st = mgr.poll(id).unwrap();
            if st.state.is_terminal() {
                return st;
            }
            assert!(Instant::now() < deadline, "job {id} did not finish: {st:?}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn submit_poll_fetch_lifecycle() {
        let mgr = JobManager::new(
            backend(5, &[(1, 2), (2, 3), (3, 1), (4, 5)]),
            AnalyticsConfig::default(),
        );
        let id = mgr.submit(JobSpec::pagerank(PageRankConfig::default())).unwrap();
        let st = wait_done(&mgr, id);
        assert_eq!(st.state, JobState::Done);
        assert!(st.epoch > 0, "native store stamps a real epoch");
        assert_eq!(st.n_rows, 5);
        let out = mgr.fetch(id, None).unwrap();
        match out {
            JobOutput::PageRank { ranks, iterations, .. } => {
                assert_eq!(ranks.len(), 5);
                assert!(iterations >= 1);
                let sum: f64 = ranks.iter().map(|(_, r)| r).sum();
                assert!((sum - 1.0).abs() < 1e-9, "{sum}");
                // Sorted descending for top-k truncation.
                for w in ranks.windows(2) {
                    assert!(w[0].1 >= w[1].1);
                }
            }
            other => panic!("wrong output {other:?}"),
        }
        // Top-k is a prefix of the full result.
        let top = mgr.fetch(id, Some(2)).unwrap();
        match top {
            JobOutput::PageRank { ranks, .. } => assert_eq!(ranks.len(), 2),
            other => panic!("wrong output {other:?}"),
        }
    }

    #[test]
    fn wcc_and_triangles_jobs() {
        let mgr = JobManager::new(
            backend(6, &[(1, 2), (2, 3), (1, 3), (4, 5)]),
            AnalyticsConfig::default(),
        );
        let id = mgr.submit(JobSpec::wcc()).unwrap();
        wait_done(&mgr, id);
        match mgr.fetch(id, None).unwrap() {
            JobOutput::Wcc { components, assignment } => {
                assert_eq!(components, 3);
                assert_eq!(assignment.len(), 6);
                // Largest component first in the sorted assignment.
                let first_comp = assignment[0].1;
                assert_eq!(
                    assignment.iter().filter(|(_, c)| *c == first_comp).count(),
                    3
                );
            }
            other => panic!("wrong output {other:?}"),
        }
        let id = mgr.submit(JobSpec::triangles()).unwrap();
        wait_done(&mgr, id);
        match mgr.fetch(id, None).unwrap() {
            JobOutput::Triangles { total, counts } => {
                assert_eq!(total, 1, "one triangle (1,2,3)");
                assert_eq!(counts.iter().map(|(_, c)| c).sum::<u64>(), 3);
            }
            other => panic!("wrong output {other:?}"),
        }
    }

    #[test]
    fn bounded_admission_overflows_typed() {
        let mgr = JobManager::new(
            backend(30, &[(1, 2)]),
            AnalyticsConfig { runners: 1, max_pending: 1, default_workers: 1 },
        );
        // Slow jobs (pacing) so the queue actually fills.
        let mut spec = JobSpec::pagerank(PageRankConfig {
            epsilon: 0.0,
            max_iters: 10_000,
            ..Default::default()
        });
        spec.pacing = Duration::from_millis(20);
        let a = mgr.submit(spec.clone()).unwrap();
        let b = mgr.submit(spec.clone()).unwrap();
        let err = mgr.submit(spec).unwrap_err();
        assert!(matches!(err, SnbError::Overloaded(_)), "{err}");
        assert!(mgr.cancel(a).unwrap());
        assert!(mgr.cancel(b).unwrap());
        for id in [a, b] {
            let st = wait_done(&mgr, id);
            assert_eq!(st.state, JobState::Cancelled);
        }
        // Capacity freed: a fresh job is admitted again.
        let c = mgr.submit(JobSpec::wcc()).unwrap();
        assert_eq!(wait_done(&mgr, c).state, JobState::Done);
    }

    #[test]
    fn cancel_mid_run_and_progress_advances() {
        let mgr = JobManager::new(
            backend(40, &(1..40).map(|i| (i, i + 1)).collect::<Vec<_>>()),
            AnalyticsConfig { runners: 1, max_pending: 2, default_workers: 2 },
        );
        let mut spec = JobSpec::pagerank(PageRankConfig {
            epsilon: 0.0,
            max_iters: 100_000,
            ..Default::default()
        });
        spec.pacing = Duration::from_millis(5);
        let id = mgr.submit(spec).unwrap();
        // Observe two distinct advancing Running iterations.
        let mut seen: Vec<u32> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while seen.len() < 2 && Instant::now() < deadline {
            if let JobState::Running { iteration, .. } = mgr.poll(id).unwrap().state {
                if iteration > 0 && seen.last() != Some(&iteration) {
                    seen.push(iteration);
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(seen.len() >= 2 && seen[1] > seen[0], "progress advanced: {seen:?}");
        assert!(mgr.cancel(id).unwrap());
        let st = wait_done(&mgr, id);
        assert_eq!(st.state, JobState::Cancelled);
        assert!(matches!(mgr.fetch(id, None), Err(SnbError::Conflict(_))));
    }

    #[test]
    fn unknown_job_is_not_found() {
        let mgr = JobManager::new(backend(2, &[]), AnalyticsConfig::default());
        assert!(matches!(mgr.poll(999), Err(SnbError::NotFound(_))));
        assert!(matches!(mgr.fetch(999, None), Err(SnbError::NotFound(_))));
        assert!(matches!(mgr.cancel(999), Err(SnbError::NotFound(_))));
    }
}
