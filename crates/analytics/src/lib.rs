//! snb-analytics: bulk-synchronous graph analytics served alongside
//! interactive traffic.
//!
//! The crate has three layers:
//!
//! * [`kernels`] — morsel-parallel PageRank, weakly-connected
//!   components, and per-vertex triangle counting over a pinned
//!   [`snb_core::snapshot::CsrSnapshot`]. Deterministic across worker
//!   counts (fixed morsel size, ordered reduction), cancellable at
//!   morsel boundaries, cooperative (`yield_now` per morsel) so they
//!   coexist with interactive reads on the same cores.
//! * [`job`] — the job subsystem: [`JobManager`] pins one snapshot per
//!   job, runs it on a small dedicated runner pool, tracks
//!   Queued/Running/Done/Failed/Cancelled states with per-iteration
//!   progress, bounds admission, and serves top-k or full results.
//! * [`wire`] — the binary codec for the Analytics frame and
//!   [`wire::handle_analytics`], the one-call server-side handler used
//!   by both net transports.

pub mod job;
pub mod kernels;
pub mod wire;

pub use job::{
    wcc_assignment, AnalyticsConfig, JobId, JobKind, JobManager, JobOutput, JobSpec, JobState,
    JobStatus,
};
pub use kernels::{pagerank, triangles, wcc, KernelCtl, PageRankConfig, PageRankOutcome};
pub use wire::{
    decode_request, decode_response, encode_request, encode_response, handle_analytics,
    AnalyticsRequest, AnalyticsResponse,
};
