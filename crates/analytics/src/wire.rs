//! Binary codec for the Analytics frame payload, and the server-side
//! handler that turns one payload into one response.
//!
//! Same idiom as the frontier codec: a tag byte selects the operation,
//! integers are little-endian, floats travel as IEEE-754 bits, and any
//! truncation, unknown tag, or trailing garbage is a `Codec` error —
//! which the transports answer with a *typed error frame on the
//! request's correlation id*, never by dropping the connection
//! (malformed analytics payloads are a per-request problem, not stream
//! corruption).

use crate::job::{JobId, JobManager, JobOutput, JobSpec, JobState, JobStatus, JobKind};
use crate::kernels::PageRankConfig;
use snb_core::{EdgeLabel, Result, SnbError, Vid};
use std::time::Duration;

/// One analytics operation, as carried by an Analytics frame.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyticsRequest {
    Submit(JobSpec),
    Poll { id: JobId },
    /// `top_k == 0` fetches the full result.
    Fetch { id: JobId, top_k: u32 },
    Cancel { id: JobId },
}

/// The server's answer (travels in an ordinary Response frame).
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyticsResponse {
    Submitted { id: JobId },
    Status(JobStatus),
    Result(JobOutput),
    /// Whether the cancel found the job still live.
    Cancelled { was_live: bool },
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.0.len() < n {
            return Err(SnbError::Codec("truncated analytics payload".into()));
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn done(self) -> Result<()> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(SnbError::Codec("trailing bytes after analytics payload".into()))
        }
    }
}

fn put_label(label: Option<EdgeLabel>, out: &mut Vec<u8>) {
    match label {
        None => out.push(0xFF),
        Some(l) => out.push(l as u8),
    }
}

fn get_label(r: &mut Reader) -> Result<Option<EdgeLabel>> {
    Ok(match r.u8()? {
        0xFF => None,
        tag => Some(EdgeLabel::from_tag(tag)?),
    })
}

/// Encode an analytics request (the payload of an Analytics frame).
pub fn encode_request(req: &AnalyticsRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    match req {
        AnalyticsRequest::Submit(spec) => {
            out.push(0);
            out.push(spec.kind.tag());
            put_label(spec.label, &mut out);
            out.push(spec.workers.min(255) as u8);
            out.extend_from_slice(&(spec.pacing.as_millis().min(u32::MAX as u128) as u32).to_le_bytes());
            if let JobKind::PageRank(cfg) = spec.kind {
                out.extend_from_slice(&cfg.damping.to_bits().to_le_bytes());
                out.extend_from_slice(&cfg.epsilon.to_bits().to_le_bytes());
                out.extend_from_slice(&cfg.max_iters.to_le_bytes());
            }
        }
        AnalyticsRequest::Poll { id } => {
            out.push(1);
            out.extend_from_slice(&id.to_le_bytes());
        }
        AnalyticsRequest::Fetch { id, top_k } => {
            out.push(2);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&top_k.to_le_bytes());
        }
        AnalyticsRequest::Cancel { id } => {
            out.push(3);
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

/// Decode an analytics request payload.
pub fn decode_request(data: &[u8]) -> Result<AnalyticsRequest> {
    let mut r = Reader(data);
    let req = match r.u8()? {
        0 => {
            let kind_tag = r.u8()?;
            let label = get_label(&mut r)?;
            let workers = r.u8()? as usize;
            let pacing = Duration::from_millis(r.u32()? as u64);
            let kind = match kind_tag {
                0 => {
                    let damping = r.f64()?;
                    let epsilon = r.f64()?;
                    let max_iters = r.u32()?;
                    if !(0.0..1.0).contains(&damping) || !epsilon.is_finite() || epsilon < 0.0 {
                        return Err(SnbError::Codec(format!(
                            "pagerank parameters out of range (damping {damping}, epsilon {epsilon})"
                        )));
                    }
                    JobKind::PageRank(PageRankConfig { damping, epsilon, max_iters })
                }
                1 => JobKind::Wcc,
                2 => JobKind::Triangles,
                other => return Err(SnbError::Codec(format!("unknown analytics kind {other}"))),
            };
            AnalyticsRequest::Submit(JobSpec { kind, label, workers, pacing })
        }
        1 => AnalyticsRequest::Poll { id: r.u64()? },
        2 => AnalyticsRequest::Fetch { id: r.u64()?, top_k: r.u32()? },
        3 => AnalyticsRequest::Cancel { id: r.u64()? },
        other => return Err(SnbError::Codec(format!("unknown analytics op {other}"))),
    };
    r.done()?;
    Ok(req)
}

fn state_tag(state: &JobState) -> u8 {
    match state {
        JobState::Queued => 0,
        JobState::Running { .. } => 1,
        JobState::Done => 2,
        JobState::Failed(_) => 3,
        JobState::Cancelled => 4,
    }
}

/// Encode an analytics response (the payload of the Response frame
/// answering an Analytics request).
pub fn encode_response(resp: &AnalyticsResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match resp {
        AnalyticsResponse::Submitted { id } => {
            out.push(0);
            out.extend_from_slice(&id.to_le_bytes());
        }
        AnalyticsResponse::Status(st) => {
            out.push(1);
            out.extend_from_slice(&st.id.to_le_bytes());
            out.push(st.kind_tag);
            out.push(state_tag(&st.state));
            let (iteration, delta) = match st.state {
                JobState::Running { iteration, delta } => (iteration, delta),
                _ => (0, 0.0),
            };
            out.extend_from_slice(&iteration.to_le_bytes());
            out.extend_from_slice(&delta.to_bits().to_le_bytes());
            out.extend_from_slice(&st.epoch.to_le_bytes());
            out.extend_from_slice(&st.n_rows.to_le_bytes());
            out.extend_from_slice(&st.elapsed_ms.to_le_bytes());
            let msg = match &st.state {
                JobState::Failed(m) => m.as_str(),
                _ => "",
            };
            out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            out.extend_from_slice(msg.as_bytes());
        }
        AnalyticsResponse::Result(output) => {
            out.push(2);
            match output {
                JobOutput::PageRank { iterations, delta, ranks } => {
                    out.push(0);
                    out.extend_from_slice(&iterations.to_le_bytes());
                    out.extend_from_slice(&delta.to_bits().to_le_bytes());
                    out.extend_from_slice(&(ranks.len() as u32).to_le_bytes());
                    for (v, r) in ranks {
                        out.extend_from_slice(&v.raw().to_le_bytes());
                        out.extend_from_slice(&r.to_bits().to_le_bytes());
                    }
                }
                JobOutput::Wcc { components, assignment } => {
                    out.push(1);
                    out.extend_from_slice(&components.to_le_bytes());
                    out.extend_from_slice(&(assignment.len() as u32).to_le_bytes());
                    for (v, c) in assignment {
                        out.extend_from_slice(&v.raw().to_le_bytes());
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                }
                JobOutput::Triangles { total, counts } => {
                    out.push(2);
                    out.extend_from_slice(&total.to_le_bytes());
                    out.extend_from_slice(&(counts.len() as u32).to_le_bytes());
                    for (v, c) in counts {
                        out.extend_from_slice(&v.raw().to_le_bytes());
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                }
            }
        }
        AnalyticsResponse::Cancelled { was_live } => {
            out.push(3);
            out.push(u8::from(*was_live));
        }
    }
    out
}

/// Decode an analytics response payload.
pub fn decode_response(data: &[u8]) -> Result<AnalyticsResponse> {
    let mut r = Reader(data);
    let resp = match r.u8()? {
        0 => AnalyticsResponse::Submitted { id: r.u64()? },
        1 => {
            let id = r.u64()?;
            let kind_tag = r.u8()?;
            let state_tag = r.u8()?;
            let iteration = r.u32()?;
            let delta = r.f64()?;
            let epoch = r.u64()?;
            let n_rows = r.u64()?;
            let elapsed_ms = r.u64()?;
            let msg_len = r.u32()? as usize;
            let msg = String::from_utf8(r.take(msg_len)?.to_vec())
                .map_err(|_| SnbError::Codec("bad utf-8 in job error".into()))?;
            let state = match state_tag {
                0 => JobState::Queued,
                1 => JobState::Running { iteration, delta },
                2 => JobState::Done,
                3 => JobState::Failed(msg),
                4 => JobState::Cancelled,
                other => return Err(SnbError::Codec(format!("unknown job state {other}"))),
            };
            AnalyticsResponse::Status(JobStatus { id, kind_tag, state, epoch, n_rows, elapsed_ms })
        }
        2 => {
            let output = match r.u8()? {
                0 => {
                    let iterations = r.u32()?;
                    let delta = r.f64()?;
                    let n = r.u32()? as usize;
                    let mut ranks = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        ranks.push((Vid::from_raw(r.u64()?)?, r.f64()?));
                    }
                    JobOutput::PageRank { iterations, delta, ranks }
                }
                1 => {
                    let components = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut assignment = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        assignment.push((Vid::from_raw(r.u64()?)?, r.u64()?));
                    }
                    JobOutput::Wcc { components, assignment }
                }
                2 => {
                    let total = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut counts = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        counts.push((Vid::from_raw(r.u64()?)?, r.u64()?));
                    }
                    JobOutput::Triangles { total, counts }
                }
                other => return Err(SnbError::Codec(format!("unknown result kind {other}"))),
            };
            AnalyticsResponse::Result(output)
        }
        3 => AnalyticsResponse::Cancelled { was_live: r.u8()? != 0 },
        other => return Err(SnbError::Codec(format!("unknown analytics response {other}"))),
    };
    r.done()?;
    Ok(resp)
}

/// Decode + execute + encode: the full server-side handling of one
/// Analytics frame payload. Every operation here is a cheap control
/// action (enqueue, state read, result clone, flag flip) — the kernel
/// itself runs on the manager's dedicated pool — so transports may call
/// this directly on an I/O thread, exactly like frontier batches.
pub fn handle_analytics(jobs: &JobManager, payload: &[u8]) -> Result<Vec<u8>> {
    let req = decode_request(payload)
        .map_err(|e| SnbError::Codec(format!("bad analytics request: {e}")))?;
    let resp = match req {
        AnalyticsRequest::Submit(spec) => {
            AnalyticsResponse::Submitted { id: jobs.submit(spec)? }
        }
        AnalyticsRequest::Poll { id } => AnalyticsResponse::Status(jobs.poll(id)?),
        AnalyticsRequest::Fetch { id, top_k } => {
            let k = if top_k == 0 { None } else { Some(top_k as usize) };
            AnalyticsResponse::Result(jobs.fetch(id, k)?)
        }
        AnalyticsRequest::Cancel { id } => {
            AnalyticsResponse::Cancelled { was_live: jobs.cancel(id)? }
        }
    };
    Ok(encode_response(&resp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::VertexLabel;

    fn p(id: u64) -> Vid {
        Vid::new(VertexLabel::Person, id)
    }

    #[test]
    fn requests_roundtrip() {
        let mut paced = JobSpec::pagerank(PageRankConfig {
            damping: 0.9,
            epsilon: 1e-6,
            max_iters: 42,
        });
        paced.label = Some(EdgeLabel::Knows);
        paced.workers = 3;
        paced.pacing = Duration::from_millis(15);
        for req in [
            AnalyticsRequest::Submit(paced),
            AnalyticsRequest::Submit(JobSpec::wcc()),
            AnalyticsRequest::Submit(JobSpec::triangles()),
            AnalyticsRequest::Poll { id: 7 },
            AnalyticsRequest::Fetch { id: u64::MAX, top_k: 10 },
            AnalyticsRequest::Cancel { id: 1 },
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            AnalyticsResponse::Submitted { id: 9 },
            AnalyticsResponse::Status(JobStatus {
                id: 9,
                kind_tag: 0,
                state: JobState::Running { iteration: 4, delta: 0.125 },
                epoch: 77,
                n_rows: 1000,
                elapsed_ms: 12,
            }),
            AnalyticsResponse::Status(JobStatus {
                id: 10,
                kind_tag: 1,
                state: JobState::Failed("boom".into()),
                epoch: 0,
                n_rows: 0,
                elapsed_ms: 1,
            }),
            AnalyticsResponse::Result(JobOutput::PageRank {
                iterations: 12,
                delta: 1e-10,
                ranks: vec![(p(1), 0.5), (p(2), 0.25)],
            }),
            AnalyticsResponse::Result(JobOutput::Wcc {
                components: 2,
                assignment: vec![(p(1), p(1).raw()), (p(2), p(1).raw())],
            }),
            AnalyticsResponse::Result(JobOutput::Triangles {
                total: 4,
                counts: vec![(p(3), 3)],
            }),
            AnalyticsResponse::Cancelled { was_live: true },
        ] {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn malformed_payloads_are_codec_errors() {
        assert!(matches!(decode_request(&[]), Err(SnbError::Codec(_))));
        assert!(matches!(decode_request(&[9]), Err(SnbError::Codec(_))), "unknown op");
        assert!(matches!(decode_request(&[0, 9]), Err(SnbError::Codec(_))), "unknown kind");
        let good = encode_request(&AnalyticsRequest::Poll { id: 3 });
        for cut in 1..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(decode_request(&long), Err(SnbError::Codec(_))), "trailing bytes");
        // Out-of-range PageRank parameters are rejected at decode time.
        let mut bad = encode_request(&AnalyticsRequest::Submit(JobSpec::pagerank(
            PageRankConfig::default(),
        )));
        // Overwrite damping bits with 2.0 (offset: op(1)+kind(1)+label(1)+workers(1)+pacing(4)).
        bad[8..16].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(matches!(decode_request(&bad), Err(SnbError::Codec(_))));
        assert!(matches!(decode_response(&[42]), Err(SnbError::Codec(_))));
    }
}
