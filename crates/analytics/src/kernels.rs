//! Bulk-synchronous kernels over an immutable [`CsrSnapshot`].
//!
//! Every kernel follows the same shape (the GraphBLAS-style "analytics
//! as kernels over sparse adjacency" framing): pin one snapshot, then
//! iterate *vertex-parallel* over its dense u32 rows in fixed-size
//! morsels claimed from a shared counter. All cross-row reductions
//! (rank delta, dangling mass, changed-label counts) are accumulated
//! **per morsel** and summed in morsel order, and per-row outputs are
//! written into the morsel's own disjoint chunk — so results are
//! bit-identical across worker counts, which is what lets the proptests
//! compare worker sweeps exactly instead of within a tolerance.
//!
//! Kernels are *pull*-based where it matters: PageRank computes
//! `next[v]` from `v`'s in-neighbours, WCC computes `next[v]` from the
//! previous iteration's labels, so no row ever writes another row's
//! slot and no atomics are needed on the data arrays.
//!
//! Cancellation is cooperative: workers re-check the shared flag at
//! every morsel boundary, so a cancel lands within one morsel's worth
//! of work. The same boundary yields the thread, which is what makes a
//! dedicated analytics pool "low priority" on a small box: the OS gets
//! a scheduling point every few thousand rows.

use snb_core::snapshot::CsrSnapshot;
use snb_core::{Direction, EdgeLabel};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows per morsel. Fixed (never derived from the worker count) so the
/// per-morsel reduction layout — and therefore the floating-point
/// summation order — is identical no matter how many workers run.
pub const MORSEL_ROWS: usize = 2048;

/// PageRank tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (the classic 0.85).
    pub damping: f64,
    /// Stop once the L1 rank delta falls to or below this.
    pub epsilon: f64,
    /// Hard iteration cap (safety net when epsilon is tiny or zero).
    pub max_iters: u32,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, epsilon: 1e-9, max_iters: 100 }
    }
}

/// Per-iteration progress + cancellation surface shared by every
/// kernel. `on_iter(iteration, delta)` fires after each completed
/// bulk-synchronous step; `cancel` is checked at every morsel boundary.
pub struct KernelCtl<'a> {
    pub cancel: &'a AtomicBool,
    pub on_iter: &'a (dyn Fn(u32, f64) + Sync),
}

impl<'a> KernelCtl<'a> {
    /// A control block that never cancels and ignores progress.
    pub fn noop(cancel: &'a AtomicBool) -> KernelCtl<'a> {
        KernelCtl { cancel, on_iter: &|_, _| {} }
    }
}

/// Converged PageRank over the snapshot's rows.
#[derive(Debug, Clone)]
pub struct PageRankOutcome {
    /// Rank per dense row id (sums to ~1.0 over all rows).
    pub ranks: Vec<f64>,
    /// Iterations actually run.
    pub iterations: u32,
    /// Final L1 delta.
    pub delta: f64,
}

/// One parallel sweep: split `out` into [`MORSEL_ROWS`]-sized chunks,
/// have `workers` scoped threads claim chunks from a shared counter,
/// and return the per-morsel partials summed **in morsel order** (so
/// the reduction is deterministic across worker counts). `None` means
/// the sweep was cancelled mid-flight.
///
/// `f(start_row, chunk)` computes rows `start_row .. start_row +
/// chunk.len()` into its disjoint chunk and returns the morsel's
/// contribution to the sweep-wide reduction. The per-chunk mutex is
/// uncontended by construction (each morsel index is claimed exactly
/// once); it exists to hand `&mut` chunks across the scope safely.
fn par_sweep<T: Send, F>(out: &mut [T], workers: usize, cancel: &AtomicBool, f: F) -> Option<f64>
where
    F: Fn(usize, &mut [T]) -> f64 + Sync,
{
    let chunks: Vec<Mutex<(usize, &mut [T])>> = out
        .chunks_mut(MORSEL_ROWS)
        .enumerate()
        .map(|(i, c)| Mutex::new((i * MORSEL_ROWS, c)))
        .collect();
    let n_chunks = chunks.len();
    let partials: Vec<Mutex<f64>> = (0..n_chunks).map(|_| Mutex::new(0.0)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.clamp(1, n_chunks.max(1));
    if workers <= 1 {
        for i in 0..n_chunks {
            if cancel.load(Ordering::Relaxed) {
                return None;
            }
            let (start, chunk) = &mut *chunks[i].lock().unwrap();
            *partials[i].lock().unwrap() = f(*start, chunk);
        }
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    if cancel.load(Ordering::Relaxed) {
                        return;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        return;
                    }
                    {
                        let (start, chunk) = &mut *chunks[i].lock().unwrap();
                        *partials[i].lock().unwrap() = f(*start, chunk);
                    }
                    // Low-priority by construction: give interactive
                    // threads a scheduling point every morsel.
                    std::thread::yield_now();
                });
            }
        });
    }
    if cancel.load(Ordering::Relaxed) {
        return None;
    }
    Some(partials.iter().map(|p| *p.lock().unwrap()).sum())
}

/// Out-degree per row along `label` (any label if `None`), computed in
/// one parallel sweep.
fn out_degrees(snap: &CsrSnapshot, label: Option<EdgeLabel>, workers: usize, cancel: &AtomicBool) -> Option<Vec<u32>> {
    let mut deg = vec![0u32; snap.n_rows()];
    par_sweep(&mut deg, workers, cancel, |start, chunk| {
        for (i, d) in chunk.iter_mut().enumerate() {
            *d = snap.degree((start + i) as u32, Direction::Out, label) as u32;
        }
        0.0
    })?;
    Some(deg)
}

/// Power-iteration PageRank with dangling-mass redistribution.
///
/// Pull-based: `next[v] = (1-d)/n + d * (dangling/n + Σ rank[u] /
/// outdeg[u])` over `v`'s in-neighbours, so every row writes only its
/// own slot. Ranks sum to 1.0 (up to float error) at every iteration.
/// Returns `None` when cancelled.
pub fn pagerank(
    snap: &CsrSnapshot,
    label: Option<EdgeLabel>,
    cfg: &PageRankConfig,
    workers: usize,
    ctl: &KernelCtl,
) -> Option<PageRankOutcome> {
    let n = snap.n_rows();
    if n == 0 {
        return Some(PageRankOutcome { ranks: Vec::new(), iterations: 0, delta: 0.0 });
    }
    let d = cfg.damping;
    let outdeg = out_degrees(snap, label, workers, ctl.cancel)?;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0u32;
    let mut delta = f64::INFINITY;
    // Dangling mass of the uniform start vector.
    let mut dangling: f64 =
        outdeg.iter().filter(|&&od| od == 0).count() as f64 / n as f64;
    while iterations < cfg.max_iters.max(1) {
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        let rank_ref = &rank;
        let outdeg_ref = &outdeg;
        delta = par_sweep(&mut next, workers, ctl.cancel, |start, chunk| {
            let mut morsel_delta = 0.0;
            for (i, slot) in chunk.iter_mut().enumerate() {
                let row = (start + i) as u32;
                let mut s = 0.0;
                match label {
                    Some(l) => {
                        for &u in snap.range(row, Direction::In, l) {
                            s += rank_ref[u as usize] / outdeg_ref[u as usize] as f64;
                        }
                    }
                    None => {
                        for l in snb_core::ids::EDGE_LABELS {
                            for &u in snap.range(row, Direction::In, l) {
                                s += rank_ref[u as usize] / outdeg_ref[u as usize] as f64;
                            }
                        }
                    }
                }
                *slot = base + d * s;
                morsel_delta += (*slot - rank_ref[start + i]).abs();
            }
            morsel_delta
        })?;
        std::mem::swap(&mut rank, &mut next);
        iterations += 1;
        (ctl.on_iter)(iterations, delta);
        if delta <= cfg.epsilon {
            break;
        }
        // Dangling mass for the next iteration (deterministic: summed
        // sequentially in row order, O(n) and branch-cheap).
        dangling = rank
            .iter()
            .zip(&outdeg)
            .filter(|(_, &od)| od == 0)
            .map(|(&r, _)| r)
            .sum();
    }
    Some(PageRankOutcome { ranks: rank, iterations, delta })
}

/// Weakly-connected components by min-label propagation over the
/// undirected (Both-direction) adjacency. Returns the component label
/// per row — the smallest row id in the component — or `None` when
/// cancelled. Converges when an iteration changes nothing; the
/// iteration count is reported through `ctl.on_iter` with the number of
/// changed rows as the delta.
pub fn wcc(
    snap: &CsrSnapshot,
    label: Option<EdgeLabel>,
    workers: usize,
    ctl: &KernelCtl,
) -> Option<Vec<u32>> {
    let n = snap.n_rows();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut next = labels.clone();
    let mut iterations = 0u32;
    loop {
        let labels_ref = &labels;
        let changed = par_sweep(&mut next, workers, ctl.cancel, |start, chunk| {
            let mut changed = 0.0;
            let mut neigh: Vec<u32> = Vec::new();
            for (i, slot) in chunk.iter_mut().enumerate() {
                let row = (start + i) as u32;
                let mut m = labels_ref[start + i];
                neigh.clear();
                snap.neighbors_into(row, Direction::Both, label, &mut neigh);
                for &u in &neigh {
                    m = m.min(labels_ref[u as usize]);
                }
                if m != labels_ref[start + i] {
                    changed += 1.0;
                }
                *slot = m;
            }
            changed
        })?;
        std::mem::swap(&mut labels, &mut next);
        iterations += 1;
        (ctl.on_iter)(iterations, changed);
        if changed == 0.0 {
            break;
        }
    }
    Some(labels)
}

/// Per-vertex triangle counts by sorted-adjacency intersection.
///
/// The undirected, deduplicated adjacency is materialized once (sorted
/// per row); then `tri[u] = |{(v, w) : v < w, v,w ∈ adj(u), w ∈
/// adj(v)}|` — each triangle is counted exactly once at *each* of its
/// three corners, so the global triangle count is `Σ tri / 3`. Every
/// row's count reads only adjacency lists and writes only its own slot,
/// so the sweep parallelizes without merges. Returns `None` when
/// cancelled. Progress reports one iteration per phase (build,
/// count).
pub fn triangles(
    snap: &CsrSnapshot,
    label: Option<EdgeLabel>,
    workers: usize,
    ctl: &KernelCtl,
) -> Option<Vec<u64>> {
    let n = snap.n_rows();
    // Phase 1: sorted dedup undirected adjacency (self-loops dropped).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    par_sweep(&mut adj, workers, ctl.cancel, |start, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            let row = (start + i) as u32;
            snap.neighbors_into(row, Direction::Both, label, slot);
            slot.sort_unstable();
            slot.dedup();
            slot.retain(|&v| v != row);
        }
        0.0
    })?;
    (ctl.on_iter)(1, 0.0);
    // Phase 2: count wedges that close.
    let mut tri = vec![0u64; n];
    let adj_ref = &adj;
    let total = par_sweep(&mut tri, workers, ctl.cancel, |start, chunk| {
        let mut morsel_total = 0.0;
        for (i, slot) in chunk.iter_mut().enumerate() {
            let a = &adj_ref[start + i];
            let mut count = 0u64;
            for (vi, &v) in a.iter().enumerate() {
                // Intersect adj(u)[vi+1..] (all > v, sorted) with
                // adj(v): every common w closes the triangle (u, v, w)
                // with v < w.
                count += sorted_intersection_count(&a[vi + 1..], &adj_ref[v as usize]);
            }
            *slot = count;
            morsel_total += count as f64;
        }
        morsel_total
    })?;
    (ctl.on_iter)(2, total);
    Some(tri)
}

/// |a ∩ b| for two sorted, deduplicated slices (linear merge).
fn sorted_intersection_count(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::snapshot::CsrBuilder;
    use snb_core::{PropertyMap, VertexLabel, Vid};
    use std::sync::Arc;

    /// Build a snapshot from an undirected edge list over `n` Person
    /// rows (each undirected edge becomes one directed Knows edge plus
    /// its reverse in-slot, i.e. a standard symmetric CSR).
    pub(crate) fn snap_undirected(n: usize, edges: &[(u32, u32)]) -> CsrSnapshot {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            out[a as usize].push(b);
            inn[b as usize].push(a);
        }
        let mut bld = CsrBuilder::new(1, n, false);
        for row in 0..n {
            bld.push_row(
                Vid::new(VertexLabel::Person, row as u64 + 1),
                Arc::new(PropertyMap::from_pairs(&[])),
            )
            .expect("test graph fits u32 rows");
            for &t in &out[row] {
                bld.push_out(EdgeLabel::Knows, t, None);
            }
            for &s in &inn[row] {
                bld.push_in(EdgeLabel::Knows, s);
            }
        }
        bld.finish().expect("test graph fits u32 rows")
    }

    fn never() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        // On a directed cycle every vertex has the same rank: 1/n.
        let n = 5;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let s = snap_undirected(n as usize, &edges);
        let cancel = never();
        let out = pagerank(&s, None, &PageRankConfig::default(), 2, &KernelCtl::noop(&cancel))
            .unwrap();
        for r in &out.ranks {
            assert!((r - 1.0 / n as f64).abs() < 1e-9, "{r}");
        }
        let sum: f64 = out.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "rank mass conserved, got {sum}");
    }

    #[test]
    fn pagerank_sink_absorbs_rank_and_mass_is_conserved() {
        // 0→2, 1→2: the sink (2) must outrank its feeders, and dangling
        // redistribution must keep the total at 1.
        let s = snap_undirected(3, &[(0, 2), (1, 2)]);
        let cancel = never();
        let out = pagerank(&s, None, &PageRankConfig::default(), 1, &KernelCtl::noop(&cancel))
            .unwrap();
        assert!(out.ranks[2] > out.ranks[0]);
        assert!((out.ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_deterministic_across_worker_counts() {
        let edges: Vec<(u32, u32)> = (0..400u32).map(|i| (i % 57, (i * 31 + 7) % 57)).collect();
        let s = snap_undirected(57, &edges);
        let cancel = never();
        let base = pagerank(&s, None, &PageRankConfig::default(), 1, &KernelCtl::noop(&cancel))
            .unwrap();
        for workers in [2, 3, 8] {
            let out =
                pagerank(&s, None, &PageRankConfig::default(), workers, &KernelCtl::noop(&cancel))
                    .unwrap();
            assert_eq!(out.iterations, base.iterations);
            assert_eq!(out.ranks, base.ranks, "bit-identical across {workers} workers");
        }
    }

    #[test]
    fn wcc_labels_components() {
        // Two components: {0,1,2} chained, {3,4} paired; 5 isolated.
        let s = snap_undirected(6, &[(0, 1), (1, 2), (3, 4)]);
        let cancel = never();
        let labels = wcc(&s, None, 2, &KernelCtl::noop(&cancel)).unwrap();
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn triangles_on_clique_and_path() {
        // K4: every vertex is in C(3,2) = 3 triangles; total 4*3/3 = 4.
        let k4: Vec<(u32, u32)> =
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let s = snap_undirected(4, &k4);
        let cancel = never();
        let tri = triangles(&s, None, 2, &KernelCtl::noop(&cancel)).unwrap();
        assert_eq!(tri, vec![3, 3, 3, 3]);
        // A path has none.
        let s = snap_undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let tri = triangles(&s, None, 1, &KernelCtl::noop(&cancel)).unwrap();
        assert_eq!(tri, vec![0, 0, 0, 0]);
    }

    #[test]
    fn cancellation_stops_mid_run() {
        let edges: Vec<(u32, u32)> = (0..300u32).map(|i| (i % 40, (i * 13 + 1) % 40)).collect();
        let s = snap_undirected(40, &edges);
        let cancel = never();
        // Cancel from the progress callback after the first iteration.
        let ctl = KernelCtl { cancel: &cancel, on_iter: &|_, _| cancel.store(true, Ordering::Relaxed) };
        let cfg = PageRankConfig { epsilon: 0.0, max_iters: 1_000, ..Default::default() };
        assert!(pagerank(&s, None, &cfg, 2, &ctl).is_none(), "cancel must abort the kernel");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let s = snap_undirected(0, &[]);
        let cancel = never();
        assert_eq!(pagerank(&s, None, &PageRankConfig::default(), 4, &KernelCtl::noop(&cancel)).unwrap().ranks, Vec::<f64>::new());
        assert_eq!(wcc(&s, None, 4, &KernelCtl::noop(&cancel)).unwrap(), Vec::<u32>::new());
        assert_eq!(triangles(&s, None, 4, &KernelCtl::noop(&cancel)).unwrap(), Vec::<u64>::new());
    }
}
