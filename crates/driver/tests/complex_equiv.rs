//! Equivalence gate for the IC-style complex-read suite: every adapter
//! (all eight configurations of the paper) must return exactly the
//! rows of the brute-force oracles computed straight off the generated
//! dataset.
//!
//! The two new reads have unique total orders — (creationDate DESC,
//! post id ASC) and (mutual count DESC, candidate id ASC) — so the
//! comparison is exact row-for-row equality, not multiset equality.
//! RecentFriendMessages keeps its date-multiset comparison (ties at
//! the limit boundary are legitimately engine-dependent).

use snb_core::Value;
use snb_datagen::{generate, GeneratedData, GeneratorConfig};
use snb_driver::ops::ReadOp;
use snb_driver::{build_all_adapters, naive_foaf_posts, naive_mutual_friends};

fn data() -> GeneratedData {
    generate(&GeneratorConfig { persons: 50, seed: 0xc0ffee, ..Default::default() })
}

#[test]
fn complex_reads_match_the_naive_oracles_on_every_adapter() {
    let data = data();
    let min_date = data.cut_ms - 300 * 24 * 3600 * 1000;
    let adapters = build_all_adapters();
    for adapter in &adapters {
        adapter.load(&data.snapshot).unwrap();
    }
    for person in [0u64, 5, 17, 33, 49] {
        let foaf_oracle = naive_foaf_posts(&data.snapshot, person, min_date, 20);
        let mutual_oracle = naive_mutual_friends(&data.snapshot, person, 10);
        for adapter in &adapters {
            let foaf = adapter
                .execute_read(&ReadOp::IcFoafPosts { person, min_date, limit: 20 })
                .unwrap();
            assert_eq!(
                foaf,
                foaf_oracle,
                "IcFoafPosts diverges from oracle: {} person {person}",
                adapter.name()
            );
            let mutual = adapter
                .execute_read(&ReadOp::IcMutualFriends { person, limit: 10 })
                .unwrap();
            assert_eq!(
                mutual,
                mutual_oracle,
                "IcMutualFriends diverges from oracle: {} person {person}",
                adapter.name()
            );
        }
    }
}

/// RecentFriendMessages (the third IC read of the suite) agrees across
/// engines on the *dates* it returns: the limit boundary can cut a tie
/// group differently per engine, so the gate is the sorted date
/// multiset, which any correct top-k must reproduce when ties are
/// absent — and the generator's millisecond timeline makes ties
/// vanishingly rare at this scale.
#[test]
fn recent_friend_messages_dates_agree_across_adapters() {
    let data = data();
    let adapters = build_all_adapters();
    for adapter in &adapters {
        adapter.load(&data.snapshot).unwrap();
    }
    // The CSR-served operator (what the scale bench measures) must
    // produce the same date multiset as every adapter's own query.
    let csr_adapter = snb_driver::adapter::cypher::CypherAdapter::new();
    snb_driver::SutAdapter::load(&csr_adapter, &data.snapshot).unwrap();
    csr_adapter.store().compact_now();
    let snap =
        snb_core::GraphBackend::pin_snapshot(csr_adapter.store()).expect("CSR after compact");
    for person in [3u64, 21, 42] {
        let operator = snb_driver::recent_messages(&snap, person, 20);
        let mut reference: Vec<Value> = operator.iter().map(|r| r[1].clone()).collect();
        reference.sort();
        for adapter in &adapters {
            let rows = adapter
                .execute_read(&ReadOp::RecentFriendMessages { person, limit: 20 })
                .unwrap();
            let mut dates: Vec<Value> = rows.iter().map(|r| r[1].clone()).collect();
            dates.sort();
            assert_eq!(
                dates,
                reference,
                "RecentFriendMessages date multiset diverges: {} person {person}",
                adapter.name()
            );
        }
    }
}
