//! Property test for the parallel ingestion pipeline: for arbitrary
//! dependency-correct update streams, N concurrent appliers draining a
//! key-partitioned topic must leave the store in exactly the state
//! sequential application produces — same counts, same adjacency — with
//! zero dependency violations.

use proptest::prelude::*;
use snb_core::{Direction, GraphBackend, PropKey, Value, Vid};
use snb_core::{EdgeLabel, VertexLabel};
use snb_datagen::{EdgeRec, UpdateKind, UpdateOp, VertexRec};
use snb_driver::adapter::cypher::CypherAdapter;
use snb_driver::adapter::SutAdapter;
use snb_driver::router::{graph_edges, graph_vertices, ShardRouter};
use snb_driver::{run_ingest, shard_aligned_appliers, IngestConfig};
use std::collections::HashSet;

/// Turn a spec list into a well-formed stream: strictly increasing
/// timestamps, vertices created before any edge references them, and
/// `dependency_ms` = the latest referenced creation time (always < the
/// op's own timestamp, as the real generator guarantees).
fn build_stream(specs: &[(bool, usize, usize)]) -> Vec<UpdateOp> {
    let mut created: Vec<(Vid, i64)> = Vec::new();
    let mut seen: HashSet<(Vid, Vid)> = HashSet::new();
    let mut ops = Vec::new();
    let mut ts = 10i64;
    for &(is_vertex, a, b) in specs {
        if is_vertex || created.len() < 2 {
            let id = 50_000 + created.len() as u64;
            let v = VertexRec {
                label: VertexLabel::Person,
                id,
                props: vec![(PropKey::CreationDate, Value::Date(ts))],
                creation_ms: ts,
            };
            created.push((v.vid(), ts));
            ops.push(UpdateOp {
                kind: UpdateKind::AddPerson,
                ts_ms: ts,
                dependency_ms: 0,
                new_vertex: Some(v),
                new_edges: vec![],
            });
        } else {
            let ai = a % created.len();
            let mut bi = b % created.len();
            if bi == ai {
                bi = (bi + 1) % created.len();
            }
            let (src, src_ts) = created[ai];
            let (dst, dst_ts) = created[bi];
            if !seen.insert((src, dst)) {
                continue; // a duplicate edge would make both runs error-dependent
            }
            ops.push(UpdateOp {
                kind: UpdateKind::AddFriendship,
                ts_ms: ts,
                dependency_ms: src_ts.max(dst_ts),
                new_vertex: None,
                new_edges: vec![EdgeRec {
                    label: EdgeLabel::Knows,
                    src,
                    dst,
                    props: vec![(PropKey::CreationDate, Value::Date(ts))],
                    creation_ms: ts,
                }],
            });
        }
        ts += 10;
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_appliers_match_sequential_application(
        specs in proptest::collection::vec(
            (any::<bool>(), 0usize..1000, 0usize..1000),
            1..120,
        ),
        appliers in 1usize..6,
        batch_size in 1usize..32,
    ) {
        let ops = build_stream(&specs);

        let sequential = CypherAdapter::new();
        for op in &ops {
            sequential.execute_update(op).unwrap();
        }

        let parallel = CypherAdapter::new();
        let report = run_ingest(
            &parallel,
            &ops,
            0,
            &IngestConfig { appliers, batch_size, ..IngestConfig::default() },
        );

        prop_assert_eq!(report.applied, ops.len() as u64, "every op applied exactly once");
        prop_assert_eq!(report.errors, 0, "no dependency violations or failed writes");
        prop_assert_eq!(parallel.store().vertex_count(), sequential.store().vertex_count());
        prop_assert_eq!(parallel.store().edge_count(), sequential.store().edge_count());

        // Per-vertex adjacency must match in both directions: the
        // partitioned, batched path may reorder independent ops but
        // never change what the graph looks like.
        for op in &ops {
            let Some(v) = &op.new_vertex else { continue };
            for dir in [Direction::Out, Direction::In] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                sequential.store().neighbors(v.vid(), dir, None, &mut a).unwrap();
                parallel.store().neighbors(v.vid(), dir, None, &mut b).unwrap();
                a.sort_by_key(|x| x.raw());
                b.sort_by_key(|x| x.raw());
                prop_assert_eq!(a, b, "adjacency of {:?} diverged", v.vid());
            }
        }
    }

    // Shard equivalence: the same update stream drained through 1, 2,
    // and 4 engine shards (shard-aligned partitioned topic, shard-local
    // appliers, scatter-gather router) must merge to exactly the graph
    // a single unsharded store holds after sequential application —
    // same vertices with the same properties, same directed edge
    // multiset, ghosts excluded by the ownership filter. Few cases:
    // each one boots up to seven TCP server stacks.
    #[test]
    fn sharded_ingest_merges_to_the_single_store_state(
        specs in proptest::collection::vec(
            (any::<bool>(), 0usize..1000, 0usize..1000),
            1..80,
        ),
        batch_size in 1usize..32,
    ) {
        let ops = build_stream(&specs);

        let baseline = snb_graph_native::NativeGraphStore::new();
        for op in &ops {
            if let Some(v) = &op.new_vertex {
                baseline.add_vertex(v.label, v.id, &v.props).unwrap();
            }
            for e in &op.new_edges {
                baseline.add_edge(e.label, e.src, e.dst, &e.props).unwrap();
            }
        }
        let want_vertices = graph_vertices(&baseline);
        let want_edges = graph_edges(&baseline);

        for shards in [1usize, 2, 4] {
            let router = ShardRouter::native(shards).unwrap();
            let report = run_ingest(
                &router,
                &ops,
                0,
                &IngestConfig {
                    appliers: shard_aligned_appliers(4, shards),
                    batch_size,
                    ..IngestConfig::default()
                },
            );
            prop_assert_eq!(report.applied, ops.len() as u64, "{} shards", shards);
            prop_assert_eq!(report.errors, 0, "{} shards", shards);
            prop_assert_eq!(
                router.merged_vertices(), want_vertices.clone(),
                "{}-shard merged vertices diverged", shards
            );
            prop_assert_eq!(
                router.merged_edges(), want_edges.clone(),
                "{}-shard merged edges diverged", shards
            );
        }
    }
}
