//! Property tests for the epoch-keyed result caches (PR 9): for
//! arbitrary interleavings of reads and writes, every cached layer must
//! return exactly what a cache-bypassed execution returns at the same
//! point in the stream, and the stale-serve tripwire must never fire.
//!
//! Three layers, three properties:
//! * adapter caches — `CypherAdapter` and `SqlAdapter` with the default
//!   cache vs capacity-0 twins fed the identical op stream,
//! * the router's hot-frontier cache — a 2-shard `ShardRouter` vs an
//!   uncached single-store oracle,
//! * the reactor inline cache — two `RawSubmitter`s over the SAME store,
//!   one caching and one with capacity 0, with writes landing directly
//!   on the shared store between reads.

use proptest::prelude::*;
use snb_core::{EdgeLabel, GraphBackend, PropKey, Value, VertexLabel, Vid};
use snb_datagen::{EdgeRec, UpdateKind, UpdateOp, VertexRec};
use snb_driver::adapter::cypher::CypherAdapter;
use snb_driver::adapter::sql::SqlAdapter;
use snb_driver::adapter::SutAdapter;
use snb_driver::ops::ReadOp;
use snb_driver::router::ShardRouter;
use snb_gremlin::{wire, GremlinServer, ServerConfig, Traversal};
use snb_relational::Layout;
use std::collections::HashSet;

/// One step of an interleaved stream: either a write (vertex or edge)
/// or a read against a person created so far.
enum Step {
    Write(UpdateOp),
    Read { person: u64 },
}

/// Turn specs into a well-formed interleaving: vertices exist before
/// edges or reads reference them, timestamps strictly increase, and
/// reads re-visit a bounded id space so repeat hits actually occur.
fn build_steps(specs: &[(u8, usize, usize)]) -> Vec<Step> {
    let mut created: Vec<(Vid, i64)> = Vec::new();
    let mut seen: HashSet<(Vid, Vid)> = HashSet::new();
    let mut steps = Vec::new();
    let mut ts = 10i64;
    for &(action, a, b) in specs {
        match action % 4 {
            // Writes are rarer than reads (one action in four) so the
            // caches get windows of stable epochs to serve hits in.
            0 if created.len() < 2 || a % 3 == 0 => {
                let id = 50_000 + created.len() as u64;
                let v = VertexRec {
                    label: VertexLabel::Person,
                    id,
                    props: vec![(PropKey::CreationDate, Value::Date(ts))],
                    creation_ms: ts,
                };
                created.push((v.vid(), ts));
                steps.push(Step::Write(UpdateOp {
                    kind: UpdateKind::AddPerson,
                    ts_ms: ts,
                    dependency_ms: 0,
                    new_vertex: Some(v),
                    new_edges: vec![],
                }));
            }
            0 => {
                let ai = a % created.len();
                let mut bi = b % created.len();
                if bi == ai {
                    bi = (bi + 1) % created.len();
                }
                let (src, src_ts) = created[ai];
                let (dst, dst_ts) = created[bi];
                if !seen.insert((src, dst)) {
                    continue;
                }
                steps.push(Step::Write(UpdateOp {
                    kind: UpdateKind::AddFriendship,
                    ts_ms: ts,
                    dependency_ms: src_ts.max(dst_ts),
                    new_vertex: None,
                    new_edges: vec![EdgeRec {
                        label: EdgeLabel::Knows,
                        src,
                        dst,
                        props: vec![(PropKey::CreationDate, Value::Date(ts))],
                        creation_ms: ts,
                    }],
                }));
            }
            _ if created.is_empty() => continue,
            _ => {
                let (v, _) = created[a % created.len()];
                steps.push(Step::Read { person: v.local() });
            }
        }
        ts += 10;
    }
    steps
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

/// Counter-accounting invariants every cache must keep, plus the
/// correctness tripwire: a hit whose epochs do not match the probe must
/// never be served, so `stale_served` is exactly 0 by construction.
fn assert_clean(stats: snb_cache::CacheStats, layer: &str) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(stats.stale_served, 0, "{}: stale entry served", layer);
    prop_assert_eq!(
        stats.hits + stats.misses,
        stats.lookups(),
        "{}: hits + misses must equal lookups ({:?})",
        layer,
        stats
    );
    prop_assert!(
        stats.stale_evicted <= stats.misses,
        "{}: every stale eviction is a miss ({:?})",
        layer,
        stats
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    // Layer 2: the adapter result caches. Cached and capacity-0 twins
    // of both declarative adapters replay the identical interleaving;
    // every read must agree, at every point in the stream.
    #[test]
    fn adapter_caches_match_bypassed_execution(
        specs in proptest::collection::vec(
            (any::<u8>(), 0usize..1000, 0usize..1000),
            4..120,
        ),
    ) {
        let steps = build_steps(&specs);
        let cy_cached = CypherAdapter::new();
        let cy_bypass = CypherAdapter::with_result_cache(0);
        let sql_cached = SqlAdapter::row_store();
        let sql_bypass = SqlAdapter::with_result_cache(Layout::Row, 0);
        prop_assert!(cy_cached.result_cache().is_some());
        prop_assert!(cy_bypass.result_cache().is_none());

        for step in &steps {
            match step {
                Step::Write(op) => {
                    cy_cached.execute_update(op).unwrap();
                    cy_bypass.execute_update(op).unwrap();
                    sql_cached.execute_update(op).unwrap();
                    sql_bypass.execute_update(op).unwrap();
                }
                Step::Read { person } => {
                    for op in [
                        ReadOp::PointLookup { person: *person },
                        ReadOp::OneHop { person: *person },
                    ] {
                        prop_assert_eq!(
                            sorted(cy_cached.execute_read(&op).unwrap()),
                            sorted(cy_bypass.execute_read(&op).unwrap()),
                            "cypher {:?} diverged", &op
                        );
                        prop_assert_eq!(
                            sorted(sql_cached.execute_read(&op).unwrap()),
                            sorted(sql_bypass.execute_read(&op).unwrap()),
                            "sql {:?} diverged", &op
                        );
                    }
                }
            }
        }
        assert_clean(cy_cached.result_cache().unwrap().stats(), "cypher")?;
        assert_clean(sql_cached.result_cache().unwrap().stats(), "sql")?;
    }

    // Layer 1: the reactor inline cache. Both submitters execute over
    // the SAME store, so any stale entry the cached one served would
    // diverge from the bypass twin immediately after a write.
    #[test]
    fn inline_cache_matches_bypassed_execution(
        specs in proptest::collection::vec(
            (any::<u8>(), 0usize..1000, 0usize..1000),
            4..120,
        ),
    ) {
        let steps = build_steps(&specs);
        let store = std::sync::Arc::new(snb_graph_native::NativeGraphStore::new());
        let cached = GremlinServer::start(
            store.clone() as std::sync::Arc<dyn GraphBackend>,
            ServerConfig::default(),
        );
        let bypass = GremlinServer::start(
            store.clone() as std::sync::Arc<dyn GraphBackend>,
            ServerConfig { result_cache_capacity: 0, ..Default::default() },
        );
        let cached_raw = cached.raw_submitter();
        let bypass_raw = bypass.raw_submitter();

        for step in &steps {
            match step {
                Step::Write(op) => {
                    // Writes land directly on the shared store — the
                    // epoch advances underneath both submitters.
                    if let Some(v) = &op.new_vertex {
                        store.add_vertex(v.label, v.id, &v.props).unwrap();
                    }
                    for e in &op.new_edges {
                        store.add_edge(e.label, e.src, e.dst, &e.props).unwrap();
                    }
                }
                Step::Read { person } => {
                    let v = Vid::new(VertexLabel::Person, *person);
                    for t in [
                        Traversal::v(v).both(EdgeLabel::Knows).dedup().count(),
                        Traversal::v(v).values(PropKey::CreationDate),
                    ] {
                        let payload = wire::encode_traversal(&t);
                        let got = cached_raw
                            .try_execute_inline(&payload)
                            .expect("read is inline-eligible")
                            .unwrap();
                        let want = bypass_raw
                            .try_execute_inline(&payload)
                            .expect("read is inline-eligible")
                            .unwrap();
                        prop_assert_eq!(
                            wire::decode_values(&got).unwrap(),
                            wire::decode_values(&want).unwrap(),
                            "inline read diverged for person {}", person
                        );
                    }
                }
            }
        }
        assert_clean(cached.result_cache().unwrap().stats(), "inline")?;
        prop_assert!(bypass.result_cache().is_none());
    }
}

proptest! {
    // Few cases: every one boots three TCP server stacks.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // Layer 3: the hot-frontier cache. A cached 2-shard router replays
    // the interleaving against an uncached single-store oracle; the
    // scatter-gather reads must agree after every write.
    #[test]
    fn frontier_cache_matches_uncached_oracle(
        specs in proptest::collection::vec(
            (any::<u8>(), 0usize..1000, 0usize..1000),
            4..60,
        ),
    ) {
        let steps = build_steps(&specs);
        let router = ShardRouter::native(2).unwrap();
        prop_assert!(router.frontier_cache().is_some());
        let oracle = CypherAdapter::with_result_cache(0);

        for step in &steps {
            match step {
                Step::Write(op) => {
                    router.execute_update(op).unwrap();
                    oracle.execute_update(op).unwrap();
                }
                Step::Read { person } => {
                    for op in [
                        ReadOp::OneHop { person: *person },
                        ReadOp::TwoHop { person: *person },
                    ] {
                        prop_assert_eq!(
                            sorted(router.execute_read(&op).unwrap()),
                            sorted(oracle.execute_read(&op).unwrap()),
                            "sharded {:?} diverged", &op
                        );
                    }
                }
            }
        }
        assert_clean(router.frontier_cache().unwrap().stats(), "frontier")?;
    }
}
