//! TinkerPop-style adapters: any `GraphBackend` behind the Gremlin
//! Server. Covers four of the paper's configurations — "Neo4j
//! (Gremlin)", "Titan-C", "Titan-B", and "Sqlg" — with identical
//! traversal code, exactly as one Gremlin workload implementation runs
//! unchanged on every compliant system.
//!
//! Operations that a declarative language answers in one statement here
//! take one or more client↔server round trips plus client-side
//! assembly; that, and the step-at-a-time execution inside the server,
//! is the measured TinkerPop overhead.

use snb_core::{EdgeLabel, GraphBackend, PropKey, Result, SnbError, Value, VertexLabel, Vid};
use snb_datagen::{Dataset, UpdateOp};
use snb_gremlin::{
    GremlinClient, GremlinServer, Predicate, ServerConfig, Traversal, TraversalEndpoint,
};
use snb_kvgraph::{BTreeKv, KvGraph, PartitionedKv};
use std::collections::HashMap;
use std::sync::Arc;

use crate::adapter::{normalize, OpResult, SutAdapter};
use crate::ops::ReadOp;
use crate::sqlg::SqlgBackend;

/// Adapter: a backend behind the Gremlin Server.
pub struct GremlinAdapter {
    backend: Arc<dyn GraphBackend>,
    _server: GremlinServer,
    client: GremlinClient,
    name: &'static str,
    concurrent_load: bool,
}

impl GremlinAdapter {
    fn over(backend: Arc<dyn GraphBackend>, name: &'static str, concurrent_load: bool) -> Self {
        let server = GremlinServer::start(Arc::clone(&backend), ServerConfig::default());
        let client = server.client();
        GremlinAdapter {
            backend,
            _server: server,
            client,
            name,
            concurrent_load,
        }
    }

    /// "Neo4j (Gremlin)": the native store through TinkerPop.
    pub fn native() -> Self {
        Self::over(
            Arc::new(snb_graph_native::NativeGraphStore::new()),
            "Native (Gremlin)",
            false,
        )
    }

    /// "Titan-C": graph over the partitioned (Cassandra-like) backend.
    pub fn titan_c() -> Self {
        Self::over(
            Arc::new(KvGraph::new(PartitionedKv::new())),
            "Titan-C (Gremlin)",
            true,
        )
    }

    /// "Titan-B": graph over the embedded transactional B-tree.
    pub fn titan_b() -> Self {
        Self::over(
            Arc::new(KvGraph::new(BTreeKv::new())),
            "Titan-B (Gremlin)",
            true,
        )
    }

    /// "Sqlg": graph API over the relational row store.
    pub fn sqlg() -> Self {
        Self::over(
            Arc::new(SqlgBackend::new(snb_relational::Database::new_snb(
                snb_relational::Layout::Row,
            ))),
            "Sqlg (Gremlin)",
            true,
        )
    }

    /// A fresh client (one per benchmark thread).
    pub fn client(&self) -> GremlinClient {
        self.client.clone()
    }
}

/// Submit a traversal ending in `valueMap()` and decode the maps.
fn value_maps(
    endpoint: &dyn TraversalEndpoint,
    t: &Traversal,
) -> Result<Vec<HashMap<PropKey, Value>>> {
    let values = endpoint.submit(t)?;
    values
        .into_iter()
        .map(|v| match v {
            Value::List(items) => {
                let mut map = HashMap::new();
                let mut it = items.into_iter();
                while let (Some(k), Some(v)) = (it.next(), it.next()) {
                    let key = k
                        .as_str()
                        .ok_or_else(|| SnbError::Codec("non-string map key".into()))
                        .and_then(PropKey::parse)?;
                    map.insert(key, v);
                }
                Ok(map)
            }
            other => Err(SnbError::Codec(format!("expected value map, got {other}"))),
        })
        .collect()
}

fn pick(map: &HashMap<PropKey, Value>, key: PropKey) -> Value {
    map.get(&key).map(normalize).unwrap_or(Value::Null)
}

const PROFILE_KEYS: [PropKey; 7] = [
    PropKey::FirstName,
    PropKey::LastName,
    PropKey::Gender,
    PropKey::Birthday,
    PropKey::CreationDate,
    PropKey::LocationIp,
    PropKey::BrowserUsed,
];

fn person_vid(id: u64) -> Vid {
    Vid::new(VertexLabel::Person, id)
}

/// Execute one read operation as Gremlin traversals against any
/// endpoint — the in-process [`GremlinClient`] or a remote connection
/// pool. The multi-round-trip shapes (client-side unions, zip joins)
/// are the measured TinkerPop overhead, and they are identical whether
/// each round trip crosses a channel or a socket.
pub(crate) fn read_via(endpoint: &dyn TraversalEndpoint, op: &ReadOp) -> Result<OpResult> {
    match op {
        ReadOp::PointLookup { person } => {
            let maps = value_maps(endpoint, &Traversal::v(person_vid(*person)).value_map())?;
            Ok(maps
                .iter()
                .map(|m| PROFILE_KEYS.iter().map(|&k| pick(m, k)).collect())
                .collect())
        }
        ReadOp::OneHop { person } => {
            // Project only the two requested properties: one values()
            // round trip per property, zipped client-side (the Is3/Is6
            // pattern) instead of materializing whole value maps.
            let base = Traversal::v(person_vid(*person)).both(EdgeLabel::Knows).dedup();
            let ids = endpoint.submit(&base.clone().values(PropKey::Id))?;
            let names = endpoint.submit(&base.values(PropKey::FirstName))?;
            Ok(ids
                .iter()
                .zip(&names)
                .map(|(id, name)| vec![normalize(id), normalize(name)])
                .collect())
        }
        ReadOp::TwoHop { person } => {
            // No emit()/times() in the dialect: union two traversals
            // client-side, as many real Gremlin ports do, zipping the
            // projected id/firstName streams per branch.
            let start = person_vid(*person);
            let mut rows = Vec::new();
            let mut seen = std::collections::HashSet::new();
            seen.insert(Value::Int(*person as i64));
            for base in [
                Traversal::v(start).both(EdgeLabel::Knows).dedup(),
                Traversal::v(start)
                    .both(EdgeLabel::Knows)
                    .both(EdgeLabel::Knows)
                    .dedup(),
            ] {
                let ids = endpoint.submit(&base.clone().values(PropKey::Id))?;
                let names = endpoint.submit(&base.values(PropKey::FirstName))?;
                for (id, name) in ids.iter().zip(&names) {
                    let id = normalize(id);
                    if seen.insert(id.clone()) {
                        rows.push(vec![id, normalize(name)]);
                    }
                }
            }
            Ok(rows)
        }
        ReadOp::ShortestPath { a, b } => {
            let r = endpoint.submit(
                &Traversal::v(person_vid(*a))
                    .repeat_both_until(EdgeLabel::Knows, person_vid(*b), 10)
                    .path_len(),
            )?;
            Ok(r.into_iter().map(|v| vec![normalize(&v)]).collect())
        }
        ReadOp::Is1Profile { person } => {
            let v = person_vid(*person);
            let maps = value_maps(endpoint, &Traversal::v(v).value_map())?;
            let city = endpoint.submit(
                &Traversal::v(v)
                    .out(EdgeLabel::IsLocatedIn)
                    .values(PropKey::Id),
            )?;
            Ok(maps
                .iter()
                .map(|m| {
                    let mut row: Vec<Value> = PROFILE_KEYS.iter().map(|&k| pick(m, k)).collect();
                    row.push(city.first().map(normalize).unwrap_or(Value::Null));
                    row
                })
                .collect())
        }
        ReadOp::Is2RecentMessages { person, limit } => {
            let maps = value_maps(
                endpoint,
                &Traversal::v(person_vid(*person))
                    .in_(EdgeLabel::HasCreator)
                    .order_by(PropKey::CreationDate, false)
                    .limit(*limit)
                    .value_map(),
            )?;
            Ok(maps
                .iter()
                .map(|m| vec![pick(m, PropKey::Content), pick(m, PropKey::CreationDate)])
                .collect())
        }
        ReadOp::Is3Friends { person } => {
            let v = person_vid(*person);
            let base = Traversal::v(v)
                .both_e(EdgeLabel::Knows)
                .order_by(PropKey::CreationDate, false);
            let dates = endpoint.submit(&base.clone().edge_values(PropKey::CreationDate))?;
            let ids = endpoint.submit(&base.other_v().values(PropKey::Id))?;
            Ok(ids
                .iter()
                .zip(&dates)
                .map(|(id, d)| vec![normalize(id), normalize(d)])
                .collect())
        }
        ReadOp::Is4MessageContent { message } => {
            let maps = value_maps(endpoint, &Traversal::v(*message).value_map())?;
            Ok(maps
                .iter()
                .map(|m| vec![pick(m, PropKey::CreationDate), pick(m, PropKey::Content)])
                .collect())
        }
        ReadOp::Is5MessageCreator { message } => {
            let maps = value_maps(
                endpoint,
                &Traversal::v(*message)
                    .out(EdgeLabel::HasCreator)
                    .value_map(),
            )?;
            Ok(maps
                .iter()
                .map(|m| {
                    vec![
                        pick(m, PropKey::Id),
                        pick(m, PropKey::FirstName),
                        pick(m, PropKey::LastName),
                    ]
                })
                .collect())
        }
        ReadOp::Is6MessageForum { post } => {
            let post = Vid::new(VertexLabel::Post, *post);
            let forums = value_maps(
                endpoint,
                &Traversal::v(post).in_(EdgeLabel::ContainerOf).value_map(),
            )?;
            let moderators = endpoint.submit(
                &Traversal::v(post)
                    .in_(EdgeLabel::ContainerOf)
                    .out(EdgeLabel::HasModerator)
                    .values(PropKey::Id),
            )?;
            Ok(forums
                .iter()
                .zip(&moderators)
                .map(|(f, m)| vec![pick(f, PropKey::Id), pick(f, PropKey::Title), normalize(m)])
                .collect())
        }
        ReadOp::Is7MessageReplies { message } => {
            let base = Traversal::v(*message)
                .in_(EdgeLabel::ReplyOf)
                .order_by(PropKey::CreationDate, false);
            let replies = value_maps(endpoint, &base.clone().value_map())?;
            let authors = endpoint.submit(&base.out(EdgeLabel::HasCreator).values(PropKey::Id))?;
            Ok(replies
                .iter()
                .zip(&authors)
                .map(|(c, a)| {
                    vec![
                        pick(c, PropKey::Id),
                        pick(c, PropKey::CreationDate),
                        normalize(a),
                    ]
                })
                .collect())
        }
        ReadOp::Complex2Hop {
            person,
            first_name,
            limit,
        } => {
            let start = person_vid(*person);
            let pred = Predicate::Eq(Value::str(first_name));
            let one = value_maps(
                endpoint,
                &Traversal::v(start)
                    .both(EdgeLabel::Knows)
                    .dedup()
                    .has(PropKey::FirstName, pred.clone())
                    .value_map(),
            )?;
            let two = value_maps(
                endpoint,
                &Traversal::v(start)
                    .both(EdgeLabel::Knows)
                    .both(EdgeLabel::Knows)
                    .dedup()
                    .has(PropKey::FirstName, pred)
                    .value_map(),
            )?;
            let mut seen = std::collections::HashSet::new();
            let mut rows: Vec<Vec<Value>> = Vec::new();
            for m in one.iter().chain(two.iter()) {
                let id = pick(m, PropKey::Id);
                if id == Value::Int(*person as i64) || !seen.insert(id.clone()) {
                    continue;
                }
                rows.push(vec![
                    id,
                    pick(m, PropKey::LastName),
                    pick(m, PropKey::Birthday),
                ]);
            }
            rows.sort_by(|a, b| a[1].cmp(&b[1]).then(a[0].cmp(&b[0])));
            rows.truncate(*limit);
            Ok(rows)
        }
        ReadOp::RecentFriendMessages { person, limit } => {
            let maps = value_maps(
                endpoint,
                &Traversal::v(person_vid(*person))
                    .both(EdgeLabel::Knows)
                    .dedup()
                    .in_(EdgeLabel::HasCreator)
                    .order_by(PropKey::CreationDate, false)
                    .limit(*limit)
                    .value_map(),
            )?;
            Ok(maps
                .iter()
                .map(|m| vec![pick(m, PropKey::Content), pick(m, PropKey::CreationDate)])
                .collect())
        }
        ReadOp::IcFoafPosts { person, min_date, limit } => {
            // Ring ids client-side (the TwoHop union shape), then one
            // value-map round trip per ring member for its dated
            // messages. The dialect has no mid-traversal hasLabel
            // step, so posts are told from comments client-side by the
            // LDBC schema discriminator: posts carry `language`,
            // comments never do.
            let start = person_vid(*person);
            let mut ring: Vec<i64> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            seen.insert(*person as i64);
            for base in [
                Traversal::v(start).both(EdgeLabel::Knows).dedup(),
                Traversal::v(start)
                    .both(EdgeLabel::Knows)
                    .both(EdgeLabel::Knows)
                    .dedup(),
            ] {
                for id in endpoint.submit(&base.values(PropKey::Id))? {
                    if let Some(i) = id.as_int() {
                        if seen.insert(i) {
                            ring.push(i);
                        }
                    }
                }
            }
            let mut rows: OpResult = Vec::new();
            for member in ring {
                let maps = value_maps(
                    endpoint,
                    &Traversal::v(person_vid(member as u64))
                        .in_(EdgeLabel::HasCreator)
                        .has(
                            PropKey::CreationDate,
                            Predicate::Gte(Value::Int(*min_date)),
                        )
                        .value_map(),
                )?;
                for m in &maps {
                    if !m.contains_key(&PropKey::Language) {
                        continue;
                    }
                    rows.push(vec![
                        pick(m, PropKey::Id),
                        Value::Int(member),
                        pick(m, PropKey::CreationDate),
                    ]);
                }
            }
            rows.sort_by(|a, b| b[2].cmp(&a[2]).then(a[0].cmp(&b[0])));
            rows.truncate(*limit);
            Ok(rows)
        }
        ReadOp::IcMutualFriends { person, limit } => {
            // One round trip for the friend ring, then one per friend
            // for its ring; mutual counts, the non-friend filter, and
            // the ranking are all client-side — the classic TinkerPop
            // recommendation assembly.
            let friends = endpoint.submit(
                &Traversal::v(person_vid(*person))
                    .both(EdgeLabel::Knows)
                    .dedup()
                    .values(PropKey::Id),
            )?;
            let friend_ids: Vec<i64> = friends.iter().filter_map(|v| v.as_int()).collect();
            let friend_set: std::collections::HashSet<i64> =
                friend_ids.iter().copied().collect();
            let mut counts: std::collections::HashMap<i64, i64> =
                std::collections::HashMap::new();
            for &f in &friend_ids {
                let ring = endpoint.submit(
                    &Traversal::v(person_vid(f as u64))
                        .both(EdgeLabel::Knows)
                        .dedup()
                        .values(PropKey::Id),
                )?;
                for c in ring.iter().filter_map(|v| v.as_int()) {
                    if c != *person as i64 && !friend_set.contains(&c) {
                        *counts.entry(c).or_insert(0) += 1;
                    }
                }
            }
            let mut rows: OpResult = counts
                .into_iter()
                .map(|(c, n)| vec![Value::Int(c), Value::Int(n)])
                .collect();
            rows.sort_by(|a, b| b[1].cmp(&a[1]).then(a[0].cmp(&b[0])));
            rows.truncate(*limit);
            Ok(rows)
        }
    }
}

/// Execute one update operation as mutating traversals over any endpoint.
pub(crate) fn update_via(endpoint: &dyn TraversalEndpoint, op: &UpdateOp) -> Result<()> {
    if let Some(v) = &op.new_vertex {
        endpoint.submit(&Traversal::g().add_v(v.label, v.id, v.props.clone()))?;
    }
    for e in &op.new_edges {
        endpoint.submit(&Traversal::g().add_e(e.label, e.src, e.dst, e.props.clone()))?;
    }
    Ok(())
}

impl SutAdapter for GremlinAdapter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn load(&self, snapshot: &Dataset) -> Result<()> {
        // The LDBC Gremlin loading utilities: structure-API inserts.
        for v in &snapshot.vertices {
            self.backend.add_vertex(v.label, v.id, &v.props)?;
        }
        for e in &snapshot.edges {
            self.backend.add_edge(e.label, e.src, e.dst, &e.props)?;
        }
        Ok(())
    }

    fn execute_read(&self, op: &ReadOp) -> Result<OpResult> {
        read_via(&self.client, op)
    }

    fn execute_update(&self, op: &UpdateOp) -> Result<()> {
        update_via(&self.client, op)
    }

    fn execute_update_batch(&self, ops: &[UpdateOp]) -> Result<usize> {
        // The Gremlin batched-write path (`tx.commit()` every N
        // elements): one bulk structure-API call instead of one
        // client↔server round trip per element.
        let mut writes = Vec::new();
        crate::adapter::update_writes(ops, &mut writes);
        self.backend.apply_batch(&writes)?;
        Ok(ops.len())
    }

    fn storage_bytes(&self) -> usize {
        self.backend.storage_bytes()
    }

    fn graph_backend(&self) -> Option<Arc<dyn GraphBackend>> {
        Some(Arc::clone(&self.backend))
    }

    fn supports_concurrent_load(&self) -> bool {
        self.concurrent_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_configurations_answer_a_point_lookup() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let person = data
            .snapshot
            .vertices_of(VertexLabel::Person)
            .next()
            .unwrap();
        for adapter in [
            GremlinAdapter::native(),
            GremlinAdapter::titan_c(),
            GremlinAdapter::titan_b(),
            GremlinAdapter::sqlg(),
        ] {
            adapter.load(&data.snapshot).unwrap();
            let rows = adapter
                .execute_read(&ReadOp::PointLookup { person: person.id })
                .unwrap();
            assert_eq!(rows.len(), 1, "{}", adapter.name());
            assert_eq!(rows[0].len(), 7);
            assert!(adapter.storage_bytes() > 0);
        }
    }
}
