//! The driver's remote configuration: the same Gremlin workload, but
//! every round trip crosses a real TCP socket instead of an in-process
//! channel — the client/server split the paper's Figure 1 and the LDBC
//! driver architecture mandate. Comparing this adapter against
//! [`GremlinAdapter`](super::gremlin::GremlinAdapter) isolates the
//! network tax (framing, syscalls, loopback) from the TinkerPop tax
//! (step-at-a-time execution, multi-round-trip operations), because the
//! query code is byte-for-byte the same `read_via`/`update_via` path.

use snb_core::{GraphBackend, Result};
use snb_datagen::{Dataset, UpdateOp};
use snb_gremlin::{GremlinServer, ServerConfig, Traversal};
use snb_net::{ClientConfig, NetPool, NetServer, NetServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;

use crate::adapter::gremlin::{read_via, update_via};
use crate::adapter::{OpResult, SutAdapter};
use crate::ops::ReadOp;

/// A Gremlin system-under-test reached over TCP.
///
/// [`RemoteGremlinAdapter::native`] hosts the whole stack in one
/// process (store → worker pool → TCP server on an ephemeral loopback
/// port → pooled client), which is exactly how the paper benches a
/// Gremlin Server on the same machine as the driver.
pub struct RemoteGremlinAdapter {
    backend: Arc<dyn GraphBackend>,
    server: NetServer,
    pool: NetPool,
    name: &'static str,
    /// Traversals per pipelined wave in [`execute_update_batch`] —
    /// derived from the server's bounded queue capacity so one wave can
    /// never overflow it (see [`RemoteGremlinAdapter::over`]).
    ///
    /// [`execute_update_batch`]: SutAdapter::execute_update_batch
    batch_chunk: usize,
}

impl RemoteGremlinAdapter {
    /// "Native (Gremlin/TCP)": the native store behind the socket layer.
    pub fn native() -> Result<Self> {
        Self::over(
            Arc::new(snb_graph_native::NativeGraphStore::new()),
            "Native (Gremlin/TCP)",
        )
    }

    /// Host `backend` behind a loopback TCP server and connect a pool.
    pub fn over(backend: Arc<dyn GraphBackend>, name: &'static str) -> Result<Self> {
        let server_cfg = ServerConfig::default();
        // A pipelined mutation wave lands on the server's bounded
        // request queue all at once (mutations never execute inline on
        // the I/O threads). Size it to a quarter of the queue capacity
        // so a wave can never overflow the queue by itself — overflow
        // comes back as `Overloaded`, which the batch path deliberately
        // does not retry — and concurrent readers keep headroom.
        let batch_chunk = (server_cfg.queue_capacity / 4).max(1);
        let gremlin = GremlinServer::start(Arc::clone(&backend), server_cfg);
        let server = NetServer::start(gremlin, NetServerConfig::default())?;
        let pool = NetPool::connect(server.local_addr(), ClientConfig::default())?;
        Ok(RemoteGremlinAdapter { backend, server, pool, name, batch_chunk })
    }

    /// The server's loopback address (ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Connect another independent pool to the same server (one per
    /// benchmark client, to measure connection scaling).
    pub fn extra_pool(&self, config: ClientConfig) -> Result<NetPool> {
        NetPool::connect(self.server.local_addr(), config)
    }
}

impl SutAdapter for RemoteGremlinAdapter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn load(&self, snapshot: &Dataset) -> Result<()> {
        // Bulk load uses the structure API directly, like the local
        // Gremlin adapter: the paper's loading path is not the measured
        // network round-trip path.
        for v in &snapshot.vertices {
            self.backend.add_vertex(v.label, v.id, &v.props)?;
        }
        for e in &snapshot.edges {
            self.backend.add_edge(e.label, e.src, e.dst, &e.props)?;
        }
        Ok(())
    }

    fn execute_read(&self, op: &ReadOp) -> Result<OpResult> {
        read_via(&self.pool, op)
    }

    fn execute_update(&self, op: &UpdateOp) -> Result<()> {
        update_via(&self.pool, op)
    }

    fn execute_update_batch(&self, ops: &[UpdateOp]) -> Result<usize> {
        // The remote batched-write path stays on the wire — that's the
        // thing being measured — but pipelines it: many mutation
        // traversals go out in ONE syscall via `NetPool::submit_batch`
        // and the tagged replies stream back, instead of one blocking
        // round trip per element.
        //
        // The server executes a pipelined chunk on concurrent workers
        // with no ordering guarantee, and an edge may target a vertex
        // created by any op in the same batch — racing an `addE` ahead
        // of its endpoint's `addV` fails with `NotFound`. The batch is
        // therefore split into dependency waves: every vertex in the
        // batch is submitted AND confirmed before the first edge goes
        // out. Edges never depend on other edges, so each wave is
        // internally order-free.
        let mut vertices: Vec<Traversal> = Vec::new();
        let mut edges: Vec<Traversal> = Vec::new();
        for op in ops {
            if let Some(v) = &op.new_vertex {
                vertices.push(Traversal::g().add_v(v.label, v.id, v.props.clone()));
            }
            for e in &op.new_edges {
                edges.push(Traversal::g().add_e(e.label, e.src, e.dst, e.props.clone()));
            }
        }
        for wave in [&vertices, &edges] {
            for chunk in wave.chunks(self.batch_chunk) {
                // Gather every reply before deciding: the chunk is
                // pipelined, so a mid-chunk failure does NOT mean the
                // later entries were skipped server-side. Unlike the
                // default op-at-a-time implementation this is not
                // prefix-only — on error, operations after the failed
                // one may already be applied. Callers recover by
                // replaying the batch per-op, where `Conflict` on an
                // already-applied element counts as applied
                // (at-least-once, see `ingest::Applier::flush`).
                let mut first_err = None;
                for result in self.pool.submit_batch(chunk)? {
                    if let Err(e) = result {
                        first_err.get_or_insert(e);
                    }
                }
                if let Some(e) = first_err {
                    return Err(e);
                }
            }
        }
        Ok(ops.len())
    }

    fn storage_bytes(&self) -> usize {
        self.backend.storage_bytes()
    }

    fn graph_backend(&self) -> Option<Arc<dyn GraphBackend>> {
        Some(Arc::clone(&self.backend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::gremlin::GremlinAdapter;
    use crate::interactive::{run_interactive, InteractiveConfig};
    use std::time::Duration;

    #[test]
    fn remote_reads_match_the_in_process_adapter() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let local = GremlinAdapter::native();
        let remote = RemoteGremlinAdapter::native().unwrap();
        local.load(&data.snapshot).unwrap();
        remote.load(&data.snapshot).unwrap();
        let mut persons = data.snapshot.vertices_of(snb_core::VertexLabel::Person);
        let person = persons.next().unwrap().id;
        for op in [
            ReadOp::PointLookup { person },
            ReadOp::OneHop { person },
            ReadOp::TwoHop { person },
            ReadOp::Is1Profile { person },
        ] {
            let a = local.execute_read(&op).unwrap();
            let b = remote.execute_read(&op).unwrap();
            assert_eq!(a, b, "{op:?} diverged between channel and socket");
        }
    }

    #[test]
    fn remote_updates_apply_over_the_socket() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let remote = RemoteGremlinAdapter::native().unwrap();
        remote.load(&data.snapshot).unwrap();
        for op in data.updates.iter().take(20) {
            remote.execute_update(op).unwrap();
        }
        assert!(remote.storage_bytes() > 0);
    }

    #[test]
    fn remote_batched_updates_match_per_op_application() {
        // The pipelined batch path must leave the store in the same
        // state as op-at-a-time application.
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let one_by_one = RemoteGremlinAdapter::native().unwrap();
        let batched = RemoteGremlinAdapter::native().unwrap();
        one_by_one.load(&data.snapshot).unwrap();
        batched.load(&data.snapshot).unwrap();
        let ops: Vec<_> = data.updates.iter().take(100).cloned().collect();
        for op in &ops {
            one_by_one.execute_update(op).unwrap();
        }
        assert_eq!(batched.execute_update_batch(&ops).unwrap(), ops.len());
        let a = one_by_one.graph_backend().unwrap();
        let b = batched.graph_backend().unwrap();
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn batched_edges_to_same_batch_vertices_apply_reliably() {
        // Each op creates a vertex plus an edge to the vertex created by
        // the PREVIOUS op in the same batch — the dependency pattern
        // that raced under single-wave pipelining: the server schedules
        // a pipelined chunk across concurrent workers, so an addE could
        // execute before its endpoint's addV and fail with NotFound.
        // With dependency waves the whole batch must apply, every time.
        use snb_core::{EdgeLabel, VertexLabel, Vid};
        use snb_datagen::{EdgeRec, UpdateKind, VertexRec};
        let remote = RemoteGremlinAdapter::native().unwrap();
        let n = 150u64; // several waves' worth of chunks
        let ops: Vec<UpdateOp> = (0..n)
            .map(|i| UpdateOp {
                kind: UpdateKind::AddPerson,
                ts_ms: i as i64,
                dependency_ms: 0,
                new_vertex: Some(VertexRec {
                    label: VertexLabel::Person,
                    id: 1000 + i,
                    props: vec![],
                    creation_ms: i as i64,
                }),
                new_edges: if i == 0 {
                    vec![]
                } else {
                    vec![EdgeRec {
                        label: EdgeLabel::Knows,
                        src: Vid::new(VertexLabel::Person, 1000 + i),
                        dst: Vid::new(VertexLabel::Person, 1000 + i - 1),
                        props: vec![],
                        creation_ms: i as i64,
                    }]
                },
            })
            .collect();
        assert_eq!(remote.execute_update_batch(&ops).unwrap(), ops.len());
        let backend = remote.graph_backend().unwrap();
        assert_eq!(backend.vertex_count(), n as usize);
        assert_eq!(backend.edge_count(), n as usize - 1);
    }

    #[test]
    fn interactive_workload_runs_over_the_socket() {
        // The full Figure-1 pipeline — Kafka-like topic, dependency
        // tracking writer, concurrent closed-loop readers — driving the
        // SUT through real TCP round trips.
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let remote = RemoteGremlinAdapter::native().unwrap();
        remote.load(&data.snapshot).unwrap();
        let report = run_interactive(
            &remote,
            &data,
            &InteractiveConfig {
                readers: 4,
                duration: Duration::from_millis(600),
                seed: 7,
                ..InteractiveConfig::default()
            },
        );
        assert!(report.total_reads > 0, "readers made progress over TCP");
        assert!(report.total_writes > 0, "writer made progress over TCP");
    }
}
