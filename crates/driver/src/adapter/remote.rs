//! The driver's remote configuration: the same Gremlin workload, but
//! every round trip crosses a real TCP socket instead of an in-process
//! channel — the client/server split the paper's Figure 1 and the LDBC
//! driver architecture mandate. Comparing this adapter against
//! [`GremlinAdapter`](super::gremlin::GremlinAdapter) isolates the
//! network tax (framing, syscalls, loopback) from the TinkerPop tax
//! (step-at-a-time execution, multi-round-trip operations), because the
//! query code is byte-for-byte the same `read_via`/`update_via` path.

use snb_core::{GraphBackend, Result};
use snb_datagen::{Dataset, UpdateOp};
use snb_gremlin::{GremlinServer, ServerConfig};
use snb_net::{ClientConfig, NetPool, NetServer, NetServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;

use crate::adapter::gremlin::{read_via, update_via};
use crate::adapter::{OpResult, SutAdapter};
use crate::ops::ReadOp;

/// A Gremlin system-under-test reached over TCP.
///
/// [`RemoteGremlinAdapter::native`] hosts the whole stack in one
/// process (store → worker pool → TCP server on an ephemeral loopback
/// port → pooled client), which is exactly how the paper benches a
/// Gremlin Server on the same machine as the driver.
pub struct RemoteGremlinAdapter {
    backend: Arc<dyn GraphBackend>,
    server: NetServer,
    pool: NetPool,
    name: &'static str,
}

impl RemoteGremlinAdapter {
    /// "Native (Gremlin/TCP)": the native store behind the socket layer.
    pub fn native() -> Result<Self> {
        Self::over(
            Arc::new(snb_graph_native::NativeGraphStore::new()),
            "Native (Gremlin/TCP)",
        )
    }

    /// Host `backend` behind a loopback TCP server and connect a pool.
    pub fn over(backend: Arc<dyn GraphBackend>, name: &'static str) -> Result<Self> {
        let gremlin = GremlinServer::start(Arc::clone(&backend), ServerConfig::default());
        let server = NetServer::start(gremlin, NetServerConfig::default())?;
        let pool = NetPool::connect(server.local_addr(), ClientConfig::default())?;
        Ok(RemoteGremlinAdapter { backend, server, pool, name })
    }

    /// The server's loopback address (ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Connect another independent pool to the same server (one per
    /// benchmark client, to measure connection scaling).
    pub fn extra_pool(&self, config: ClientConfig) -> Result<NetPool> {
        NetPool::connect(self.server.local_addr(), config)
    }
}

impl SutAdapter for RemoteGremlinAdapter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn load(&self, snapshot: &Dataset) -> Result<()> {
        // Bulk load uses the structure API directly, like the local
        // Gremlin adapter: the paper's loading path is not the measured
        // network round-trip path.
        for v in &snapshot.vertices {
            self.backend.add_vertex(v.label, v.id, &v.props)?;
        }
        for e in &snapshot.edges {
            self.backend.add_edge(e.label, e.src, e.dst, &e.props)?;
        }
        Ok(())
    }

    fn execute_read(&self, op: &ReadOp) -> Result<OpResult> {
        read_via(&self.pool, op)
    }

    fn execute_update(&self, op: &UpdateOp) -> Result<()> {
        update_via(&self.pool, op)
    }

    fn storage_bytes(&self) -> usize {
        self.backend.storage_bytes()
    }

    fn graph_backend(&self) -> Option<Arc<dyn GraphBackend>> {
        Some(Arc::clone(&self.backend))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::gremlin::GremlinAdapter;
    use crate::interactive::{run_interactive, InteractiveConfig};
    use std::time::Duration;

    #[test]
    fn remote_reads_match_the_in_process_adapter() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let local = GremlinAdapter::native();
        let remote = RemoteGremlinAdapter::native().unwrap();
        local.load(&data.snapshot).unwrap();
        remote.load(&data.snapshot).unwrap();
        let mut persons = data.snapshot.vertices_of(snb_core::VertexLabel::Person);
        let person = persons.next().unwrap().id;
        for op in [
            ReadOp::PointLookup { person },
            ReadOp::OneHop { person },
            ReadOp::TwoHop { person },
            ReadOp::Is1Profile { person },
        ] {
            let a = local.execute_read(&op).unwrap();
            let b = remote.execute_read(&op).unwrap();
            assert_eq!(a, b, "{op:?} diverged between channel and socket");
        }
    }

    #[test]
    fn remote_updates_apply_over_the_socket() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let remote = RemoteGremlinAdapter::native().unwrap();
        remote.load(&data.snapshot).unwrap();
        for op in data.updates.iter().take(20) {
            remote.execute_update(op).unwrap();
        }
        assert!(remote.storage_bytes() > 0);
    }

    #[test]
    fn interactive_workload_runs_over_the_socket() {
        // The full Figure-1 pipeline — Kafka-like topic, dependency
        // tracking writer, concurrent closed-loop readers — driving the
        // SUT through real TCP round trips.
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let remote = RemoteGremlinAdapter::native().unwrap();
        remote.load(&data.snapshot).unwrap();
        let report = run_interactive(
            &remote,
            &data,
            &InteractiveConfig {
                readers: 4,
                duration: Duration::from_millis(600),
                seed: 7,
                ..InteractiveConfig::default()
            },
        );
        assert!(report.total_reads > 0, "readers made progress over TCP");
        assert!(report.total_writes > 0, "writer made progress over TCP");
    }
}
