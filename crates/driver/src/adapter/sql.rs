//! Relational adapters with native SQL text: "Postgres (SQL)" (row
//! store, recursive CTE for shortest path) and "Virtuoso (SQL)" (column
//! store, native TRANSITIVE operator).

use snb_cache::ResultCache;
use snb_core::schema::{edge_def, vertex_props};
use snb_core::{Result, SnapshotCache, Value};
use snb_datagen::{Dataset, UpdateOp};
use snb_relational::{Database, Layout};
use std::fmt::Write as _;

use crate::adapter::cypher::ADAPTER_RESULT_CACHE_CAPACITY;
use crate::adapter::{
    csr_shortest_path, csr_two_hop, normalize_rows, person_knows_csr, OpResult, SutAdapter,
};
use crate::ops::ReadOp;

/// Adapter: the relational engine with SQL text queries.
pub struct SqlAdapter {
    db: Database,
    name: &'static str,
    /// Epoch-pinned Person/Knows CSR for the multi-hop reads: two bulk
    /// table scans replace the six-branch UNION / recursive CTE once,
    /// then every traversal is a range scan until a write invalidates it.
    snaps: SnapshotCache,
    /// Epoch-keyed result cache for point lookups and one-hop rings,
    /// keyed on query text + params + the snapshot-cache write counter
    /// (the same counter that invalidates the pinned CSR above, so the
    /// two caches share one notion of "a write happened").
    cache: Option<ResultCache<OpResult>>,
}

impl SqlAdapter {
    /// Postgres analogue.
    pub fn row_store() -> Self {
        Self::with_result_cache(Layout::Row, ADAPTER_RESULT_CACHE_CAPACITY)
    }

    /// Virtuoso analogue.
    pub fn column_store() -> Self {
        Self::with_result_cache(Layout::Column, ADAPTER_RESULT_CACHE_CAPACITY)
    }

    /// Either layout with an explicit result-cache capacity
    /// (`0` = bypass everything — the uncached comparison arm).
    pub fn with_result_cache(layout: Layout, capacity: usize) -> Self {
        SqlAdapter {
            db: Database::new_snb(layout),
            name: match layout {
                Layout::Row => "Postgres (SQL)",
                Layout::Column => "Virtuoso (SQL)",
            },
            snaps: SnapshotCache::new(),
            cache: (capacity > 0).then(|| ResultCache::new("sql", capacity)),
        }
    }

    /// Access the database (for tests/benches).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The adapter result cache, when enabled (stats hook).
    pub fn result_cache(&self) -> Option<&ResultCache<OpResult>> {
        self.cache.as_ref()
    }

    fn run(&self, query: &str, params: &[Value]) -> Result<OpResult> {
        Ok(normalize_rows(self.db.sql(query, params)?.rows))
    }

    /// Cacheable read path for the point-shaped ops: key = query text +
    /// the person parameter, epoch = the adapter's write counter. The
    /// result is only stored if no write landed during execution.
    fn run_cached(&self, query: &str, params: &[Value], person: u64) -> Result<OpResult> {
        let cache = match &self.cache {
            Some(c) => c,
            None => return self.run(query, params),
        };
        let epoch = self.snaps.write_seq();
        let mut key = Vec::with_capacity(query.len() + 9);
        key.extend_from_slice(query.as_bytes());
        key.push(0);
        key.extend_from_slice(&person.to_le_bytes());
        if let Some(rows) = cache.get1(&key, epoch) {
            return Ok(rows);
        }
        let rows = self.run(query, params)?;
        if self.snaps.write_seq() == epoch {
            cache.insert1(&key, epoch, rows.clone());
        }
        Ok(rows)
    }

    /// Pin a fresh Person/Knows CSR, building one from two full-table
    /// scans when the cache is invalid and the hysteresis allows it.
    fn pin_knows(&self) -> Option<std::sync::Arc<snb_core::CsrSnapshot>> {
        self.snaps.pin_with(|epoch| {
            let persons: Vec<(u64, Value)> = self
                .db
                .sql("SELECT id, firstName FROM person", &[])?
                .rows
                .into_iter()
                .map(|mut r| {
                    let name = r.swap_remove(1);
                    (r[0].as_int().unwrap_or(0) as u64, name)
                })
                .collect();
            let knows: Vec<(u64, u64)> = self
                .db
                .sql("SELECT src, dst FROM person_knows_person", &[])?
                .rows
                .into_iter()
                .map(|r| {
                    (r[0].as_int().unwrap_or(0) as u64, r[1].as_int().unwrap_or(0) as u64)
                })
                .collect();
            person_knows_csr(epoch, &persons, &knows)
        })
    }
}

/// 2-hop UNION over directed `person_knows_person` (all four direction
/// combinations), plus the two 1-hop branches: the LDBC SQL idiom for an
/// undirected 1..2-hop neighbourhood. `select_cols` must reference `p`.
fn two_hop_union(select_cols: &str, extra_pred: &str) -> String {
    let one = [
        ("k1.dst", "k1.src = $1"),
        ("k1.src", "k1.dst = $1"),
    ];
    let two = [
        ("k2.dst", "k1.src = $1 AND k2.src = k1.dst"),
        ("k2.src", "k1.src = $1 AND k2.dst = k1.dst"),
        ("k2.dst", "k1.dst = $1 AND k2.src = k1.src"),
        ("k2.src", "k1.dst = $1 AND k2.dst = k1.src"),
    ];
    let mut q = String::new();
    for (end, cond) in one {
        if !q.is_empty() {
            q.push_str(" UNION ");
        }
        let _ = write!(
            q,
            "SELECT {select_cols} FROM person_knows_person k1 JOIN person p ON p.id = {end} \
             WHERE {cond} AND {end} <> $1{extra_pred}"
        );
    }
    for (end, cond) in two {
        let _ = write!(
            q,
            " UNION SELECT {select_cols} FROM person_knows_person k1 \
             JOIN person_knows_person k2 ON {} \
             JOIN person p ON p.id = {end} WHERE {} AND {end} <> $1{extra_pred}",
            cond.split(" AND ").nth(1).expect("two-part condition"),
            cond.split(" AND ").next().expect("two-part condition"),
        );
    }
    q
}

/// The FoF-posts complex read as one SQL statement: the six undirected
/// ring branches of [`two_hop_union`], each joined through
/// `post_has_creator_person` to `post` with the date predicate pushed
/// into every branch. Plain `UNION` dedups a post reached through
/// several ring paths; `$1` = person, `$2` = min creation date.
fn foaf_posts_union(limit: usize) -> String {
    let one = [("k1.dst", "k1.src = $1"), ("k1.src", "k1.dst = $1")];
    let two = [
        ("k2.dst", "k1.src = $1", "k2.src = k1.dst"),
        ("k2.src", "k1.src = $1", "k2.dst = k1.dst"),
        ("k2.dst", "k1.dst = $1", "k2.src = k1.src"),
        ("k2.src", "k1.dst = $1", "k2.dst = k1.src"),
    ];
    let mut q = String::new();
    for (end, cond) in one {
        if !q.is_empty() {
            q.push_str(" UNION ");
        }
        let _ = write!(
            q,
            "SELECT m.id, c.dst, m.creationDate FROM person_knows_person k1 \
             JOIN post_has_creator_person c ON c.dst = {end} \
             JOIN post m ON m.id = c.src \
             WHERE {cond} AND {end} <> $1 AND m.creationDate >= $2"
        );
    }
    for (end, cond, join) in two {
        let _ = write!(
            q,
            " UNION SELECT m.id, c.dst, m.creationDate FROM person_knows_person k1 \
             JOIN person_knows_person k2 ON {join} \
             JOIN post_has_creator_person c ON c.dst = {end} \
             JOIN post m ON m.id = c.src \
             WHERE {cond} AND {end} <> $1 AND m.creationDate >= $2"
        );
    }
    let _ = write!(q, " ORDER BY 3 DESC, 1 LIMIT {limit}");
    q
}

impl SutAdapter for SqlAdapter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn load(&self, snapshot: &Dataset) -> Result<()> {
        // Bracket the bulk load with invalidations: a CSR pinned before
        // or during the load must never be served afterwards.
        self.snaps.note_writes(1);
        // Vendor bulk loading: straight into the storage engine.
        for v in &snapshot.vertices {
            let def = self.db.table_def(v.label.as_str())?;
            let mut row = vec![Value::Null; def.arity()];
            row[0] = Value::Int(v.id as i64);
            for (k, val) in &v.props {
                row[def.col(k.as_str())?] = val.clone();
            }
            self.db.insert_row(v.label.as_str(), row)?;
        }
        for e in &snapshot.edges {
            let def = edge_def(e.src.label(), e.label, e.dst.label())?;
            let tdef = self.db.table_def(&def.table_name())?;
            let mut row = vec![Value::Null; tdef.arity()];
            row[0] = Value::Int(e.src.local() as i64);
            row[1] = Value::Int(e.dst.local() as i64);
            for (k, val) in &e.props {
                row[tdef.col(k.as_str())?] = val.clone();
            }
            self.db.insert_row(&def.table_name(), row)?;
        }
        self.snaps.note_writes(1);
        Ok(())
    }

    fn execute_read(&self, op: &ReadOp) -> Result<OpResult> {
        match op {
            ReadOp::PointLookup { person } => self.run_cached(
                "SELECT firstName, lastName, gender, birthday, creationDate, locationIP, \
                 browserUsed FROM person WHERE id = $1",
                &[Value::Int(*person as i64)],
                *person,
            ),
            ReadOp::OneHop { person } => self.run_cached(
                "SELECT p.id, p.firstName FROM person_knows_person k \
                 JOIN person p ON p.id = k.dst WHERE k.src = $1 \
                 UNION \
                 SELECT p.id, p.firstName FROM person_knows_person k \
                 JOIN person p ON p.id = k.src WHERE k.dst = $1",
                &[Value::Int(*person as i64)],
                *person,
            ),
            ReadOp::TwoHop { person } => {
                if let Some(s) = self.pin_knows() {
                    return Ok(csr_two_hop(&s, *person, false));
                }
                self.run(&two_hop_union("p.id, p.firstName", ""), &[Value::Int(*person as i64)])
            }
            ReadOp::ShortestPath { a, b } => {
                if a == b {
                    return Ok(vec![vec![Value::Int(0)]]);
                }
                if let Some(s) = self.pin_knows() {
                    let cap = if self.db.layout() == Layout::Column { 12 } else { 10 };
                    return Ok(csr_shortest_path(&s, *a, *b, cap));
                }
                let params = [Value::Int(*a as i64), Value::Int(*b as i64)];
                if self.db.layout() == Layout::Column {
                    // Virtuoso's graph-aware transitivity extension.
                    self.run("SELECT TRANSITIVE(person_knows_person, $1, $2, 12)", &params)
                } else {
                    // Postgres: recursive CTE with set semantics.
                    let r = self.run(
                        "WITH RECURSIVE reach(id, depth) AS ( \
                           SELECT dst, 1 FROM person_knows_person WHERE src = $1 \
                           UNION SELECT src, 1 FROM person_knows_person WHERE dst = $1 \
                           UNION SELECT k.dst, r.depth + 1 FROM reach r \
                             JOIN person_knows_person k ON k.src = r.id WHERE r.depth < 10 \
                           UNION SELECT k.src, r.depth + 1 FROM reach r \
                             JOIN person_knows_person k ON k.dst = r.id WHERE r.depth < 10 \
                         ) SELECT MIN(depth) FROM reach WHERE id = $2",
                        &params,
                    )?;
                    // MIN over an empty set is NULL: unreachable.
                    Ok(r.into_iter().filter(|row| !row[0].is_null()).collect())
                }
            }
            ReadOp::Is1Profile { person } => self.run(
                "SELECT p.firstName, p.lastName, p.gender, p.birthday, p.creationDate, \
                 p.locationIP, p.browserUsed, l.dst \
                 FROM person p JOIN person_is_located_in_place l ON l.src = p.id WHERE p.id = $1",
                &[Value::Int(*person as i64)],
            ),
            ReadOp::Is2RecentMessages { person, limit } => self.run(
                &format!(
                    "SELECT m.content, m.creationDate FROM post m \
                     JOIN post_has_creator_person c ON c.src = m.id WHERE c.dst = $1 \
                     UNION ALL \
                     SELECT m.content, m.creationDate FROM comment m \
                     JOIN comment_has_creator_person c ON c.src = m.id WHERE c.dst = $1 \
                     ORDER BY 2 DESC LIMIT {limit}"
                ),
                &[Value::Int(*person as i64)],
            ),
            ReadOp::Is3Friends { person } => self.run(
                "SELECT k.dst, k.creationDate FROM person_knows_person k WHERE k.src = $1 \
                 UNION SELECT k.src, k.creationDate FROM person_knows_person k WHERE k.dst = $1 \
                 ORDER BY 2 DESC",
                &[Value::Int(*person as i64)],
            ),
            ReadOp::Is4MessageContent { message } => self.run(
                &format!("SELECT creationDate, content FROM {} WHERE id = $1", message.label()),
                &[Value::Int(message.local() as i64)],
            ),
            ReadOp::Is5MessageCreator { message } => self.run(
                &format!(
                    "SELECT p.id, p.firstName, p.lastName FROM {}_has_creator_person c \
                     JOIN person p ON p.id = c.dst WHERE c.src = $1",
                    message.label()
                ),
                &[Value::Int(message.local() as i64)],
            ),
            ReadOp::Is6MessageForum { post } => self.run(
                "SELECT f.id, f.title, m.dst FROM forum_container_of_post c \
                 JOIN forum f ON f.id = c.src \
                 JOIN forum_has_moderator_person m ON m.src = f.id WHERE c.dst = $1",
                &[Value::Int(*post as i64)],
            ),
            ReadOp::Is7MessageReplies { message } => self.run(
                &format!(
                    "SELECT r.src, c.creationDate, h.dst FROM comment_reply_of_{} r \
                     JOIN comment c ON c.id = r.src \
                     JOIN comment_has_creator_person h ON h.src = r.src \
                     WHERE r.dst = $1 ORDER BY 2 DESC",
                    message.label()
                ),
                &[Value::Int(message.local() as i64)],
            ),
            ReadOp::Complex2Hop { person, first_name, limit } => {
                let q = format!(
                    "{} ORDER BY 2, 1 LIMIT {limit}",
                    two_hop_union("p.id, p.lastName, p.birthday", " AND p.firstName = $2")
                );
                self.run(&q, &[Value::Int(*person as i64), Value::str(first_name)])
            }
            ReadOp::RecentFriendMessages { person, limit } => {
                // Friends in both knows directions × both message kinds.
                let mut q = String::new();
                for (friend, cond) in [("k.dst", "k.src = $1"), ("k.src", "k.dst = $1")] {
                    for table in ["post", "comment"] {
                        if !q.is_empty() {
                            q.push_str(" UNION ALL ");
                        }
                        let _ = write!(
                            q,
                            "SELECT m.content, m.creationDate FROM person_knows_person k \
                             JOIN {table}_has_creator_person c ON c.dst = {friend} \
                             JOIN {table} m ON m.id = c.src WHERE {cond}"
                        );
                    }
                }
                let _ = write!(q, " ORDER BY 2 DESC LIMIT {limit}");
                self.run(&q, &[Value::Int(*person as i64)])
            }
            ReadOp::IcFoafPosts { person, min_date, limit } => self.run(
                &foaf_posts_union(*limit),
                &[Value::Int(*person as i64), Value::Int(*min_date)],
            ),
            ReadOp::IcMutualFriends { person, limit } => {
                // No GROUP BY in the dialect: serve from the pinned
                // Person/Knows CSR when fresh, else enumerate the
                // two-hop paths with UNION ALL (one row per connecting
                // friend) and tally client-side.
                if let Some(s) = self.pin_knows() {
                    return Ok(crate::complex::mutual_friends(&s, *person, *limit));
                }
                let friends = self.run(
                    "SELECT k.dst FROM person_knows_person k WHERE k.src = $1 \
                     UNION SELECT k.src FROM person_knows_person k WHERE k.dst = $1",
                    &[Value::Int(*person as i64)],
                )?;
                let two = [
                    ("k2.dst", "k1.src = $1", "k2.src = k1.dst"),
                    ("k2.src", "k1.src = $1", "k2.dst = k1.dst"),
                    ("k2.dst", "k1.dst = $1", "k2.src = k1.src"),
                    ("k2.src", "k1.dst = $1", "k2.dst = k1.src"),
                ];
                let mut q = String::new();
                for (end, cond, join) in two {
                    if !q.is_empty() {
                        q.push_str(" UNION ALL ");
                    }
                    let _ = write!(
                        q,
                        "SELECT {end} FROM person_knows_person k1 \
                         JOIN person_knows_person k2 ON {join} \
                         WHERE {cond} AND {end} <> $1"
                    );
                }
                let paths = self.run(&q, &[Value::Int(*person as i64)])?;
                let friend_ids: std::collections::HashSet<&Value> =
                    friends.iter().map(|r| &r[0]).collect();
                let mut counts: std::collections::HashMap<Value, i64> =
                    std::collections::HashMap::new();
                for row in &paths {
                    if !friend_ids.contains(&row[0]) {
                        *counts.entry(row[0].clone()).or_insert(0) += 1;
                    }
                }
                let rows: OpResult =
                    counts.into_iter().map(|(c, n)| vec![c, Value::Int(n)]).collect();
                Ok(snb_core::top_k_by(rows, *limit, crate::complex::cmp_mutual))
            }
        }
    }

    fn execute_update(&self, op: &UpdateOp) -> Result<()> {
        // Invalidate the CSR up front so a partially applied op can
        // never be hidden behind a snapshot that still looks fresh.
        self.snaps.note_writes(1);
        if let Some(v) = &op.new_vertex {
            let mut cols = String::from("id");
            let mut placeholders = String::from("$1");
            let mut params = vec![Value::Int(v.id as i64)];
            for (k, val) in &v.props {
                if !vertex_props(v.label).contains(k) {
                    continue;
                }
                let _ = write!(cols, ", {k}");
                let _ = write!(placeholders, ", ${}", params.len() + 1);
                params.push(val.clone());
            }
            self.db.sql(
                &format!("INSERT INTO {} ({cols}) VALUES ({placeholders})", v.label),
                &params,
            )?;
        }
        for e in &op.new_edges {
            let def = edge_def(e.src.label(), e.label, e.dst.label())?;
            let mut cols = String::from("src, dst");
            let mut placeholders = String::from("$1, $2");
            let mut params =
                vec![Value::Int(e.src.local() as i64), Value::Int(e.dst.local() as i64)];
            for (k, val) in &e.props {
                let _ = write!(cols, ", {k}");
                let _ = write!(placeholders, ", ${}", params.len() + 1);
                params.push(val.clone());
            }
            self.db.sql(
                &format!("INSERT INTO {} ({cols}) VALUES ({placeholders})", def.table_name()),
                &params,
            )?;
        }
        Ok(())
    }

    fn execute_update_batch(&self, ops: &[UpdateOp]) -> Result<usize> {
        self.snaps.note_writes(ops.len() as u64);
        // The multi-row INSERT path: stage full-arity rows per target
        // table, then flush each table under a single write-lock
        // acquisition instead of one statement per element.
        let mut staged: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        let mut slot: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut defs: std::collections::HashMap<String, snb_relational::TableDef> =
            std::collections::HashMap::new();
        let mut stage = |staged: &mut Vec<(String, Vec<Vec<Value>>)>, table: String, row| {
            let ix = *slot.entry(table.clone()).or_insert_with(|| {
                staged.push((table, Vec::new()));
                staged.len() - 1
            });
            staged[ix].1.push(row);
        };
        for op in ops {
            if let Some(v) = &op.new_vertex {
                let table = v.label.as_str();
                if !defs.contains_key(table) {
                    defs.insert(table.to_string(), self.db.table_def(table)?);
                }
                let def = &defs[table];
                let mut row = vec![Value::Null; def.arity()];
                row[0] = Value::Int(v.id as i64);
                for (k, val) in &v.props {
                    if let Ok(c) = def.col(k.as_str()) {
                        row[c] = val.clone();
                    }
                }
                stage(&mut staged, table.to_string(), row);
            }
            for e in &op.new_edges {
                let table = edge_def(e.src.label(), e.label, e.dst.label())?.table_name();
                if !defs.contains_key(&table) {
                    defs.insert(table.clone(), self.db.table_def(&table)?);
                }
                let def = &defs[&table];
                let mut row = vec![Value::Null; def.arity()];
                row[0] = Value::Int(e.src.local() as i64);
                row[1] = Value::Int(e.dst.local() as i64);
                for (k, val) in &e.props {
                    if let Ok(c) = def.col(k.as_str()) {
                        row[c] = val.clone();
                    }
                }
                stage(&mut staged, table, row);
            }
        }
        for (table, rows) in staged {
            self.db.insert_rows(&table, rows)?;
        }
        Ok(ops.len())
    }

    fn storage_bytes(&self) -> usize {
        self.db.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::VertexLabel;

    #[test]
    fn two_hop_union_has_six_branches() {
        let q = two_hop_union("p.id", "");
        assert_eq!(q.matches("SELECT").count(), 6);
        assert_eq!(q.matches("UNION").count(), 5);
    }

    #[test]
    fn smoke_load_and_read_both_layouts() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        for adapter in [SqlAdapter::row_store(), SqlAdapter::column_store()] {
            adapter.load(&data.snapshot).unwrap();
            let person = data
                .snapshot
                .vertices_of(VertexLabel::Person)
                .next()
                .unwrap();
            let rows = adapter.execute_read(&ReadOp::PointLookup { person: person.id }).unwrap();
            assert_eq!(rows.len(), 1, "{}", adapter.name());
            let hop = adapter.execute_read(&ReadOp::OneHop { person: person.id }).unwrap();
            let two = adapter.execute_read(&ReadOp::TwoHop { person: person.id }).unwrap();
            assert!(two.len() >= hop.len());
        }
    }
}
