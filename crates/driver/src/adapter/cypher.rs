//! Native store driven through its declarative Cypher-like language
//! (the paper's "Neo4j (Cypher)" column).

use snb_cache::ResultCache;
use snb_core::{GraphBackend, Result, Value};
use snb_datagen::{Dataset, UpdateOp};
use snb_graph_native::{NativeGraphStore, Params};
use std::fmt::Write as _;

use crate::adapter::{normalize_rows, update_writes, OpResult, SutAdapter};
use crate::ops::ReadOp;

/// Entry capacity of the adapter-level result caches (Cypher and SQL):
/// point lookups and one-hop rings keyed on query text + params +
/// `write_seq`, riding beside the store's plan cache. `0` disables.
pub const ADAPTER_RESULT_CACHE_CAPACITY: usize = 4096;

/// Adapter: one embedded native store, queried with Cypher text.
pub struct CypherAdapter {
    store: std::sync::Arc<NativeGraphStore>,
    /// Epoch-keyed result cache for the hot skewed reads. The plan
    /// cache (PR 8) already removes parse/plan cost for repeated query
    /// *text*; this removes execution cost for repeated query + params
    /// at an unchanged epoch.
    cache: Option<ResultCache<OpResult>>,
}

impl CypherAdapter {
    /// Fresh empty store with the default result cache.
    pub fn new() -> Self {
        Self::with_result_cache(ADAPTER_RESULT_CACHE_CAPACITY)
    }

    /// Fresh empty store with an explicit result-cache capacity
    /// (`0` = bypass everything — the uncached comparison arm).
    pub fn with_result_cache(capacity: usize) -> Self {
        CypherAdapter {
            store: std::sync::Arc::new(NativeGraphStore::new()),
            cache: (capacity > 0).then(|| ResultCache::new("cypher", capacity)),
        }
    }

    /// Access the store (for tests/benches).
    pub fn store(&self) -> &NativeGraphStore {
        &self.store
    }

    /// The adapter result cache, when enabled (stats hook).
    pub fn result_cache(&self) -> Option<&ResultCache<OpResult>> {
        self.cache.as_ref()
    }

    fn run(&self, query: &str, params: Params) -> Result<OpResult> {
        Ok(normalize_rows(self.store.cypher(query, &params)?.rows))
    }

    /// Cacheable read path for the point-shaped ops: key = query text +
    /// the person parameter, epoch = the store's write sequence. The
    /// result is only stored if no write landed during execution, so an
    /// entry computed astride an epoch flip can never be keyed wrong.
    fn run_cached(&self, query: &str, params: Params, person: u64) -> Result<OpResult> {
        let cache = match &self.cache {
            Some(c) => c,
            None => return self.run(query, params),
        };
        let epoch = self.store.write_seq();
        let mut key = Vec::with_capacity(query.len() + 9);
        key.extend_from_slice(query.as_bytes());
        key.push(0);
        key.extend_from_slice(&person.to_le_bytes());
        if let Some(rows) = cache.get1(&key, epoch) {
            return Ok(rows);
        }
        let rows = self.run(query, params)?;
        if self.store.write_seq() == epoch {
            cache.insert1(&key, epoch, rows.clone());
        }
        Ok(rows)
    }
}

impl Default for CypherAdapter {
    fn default() -> Self {
        Self::new()
    }
}

fn p(pairs: &[(&str, Value)]) -> Params {
    pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
}

impl SutAdapter for CypherAdapter {
    fn name(&self) -> &'static str {
        "Native (Cypher)"
    }

    fn load(&self, snapshot: &Dataset) -> Result<()> {
        // Vendor bulk path: direct record inserts, like neo4j-import.
        for v in &snapshot.vertices {
            self.store.add_vertex(v.label, v.id, &v.props)?;
        }
        for e in &snapshot.edges {
            self.store.add_edge(e.label, e.src, e.dst, &e.props)?;
        }
        Ok(())
    }

    fn execute_read(&self, op: &ReadOp) -> Result<OpResult> {
        match op {
            ReadOp::PointLookup { person } => self.run_cached(
                "MATCH (p:person {id:$id}) RETURN p.firstName, p.lastName, p.gender, \
                 p.birthday, p.creationDate, p.locationIP, p.browserUsed",
                p(&[("id", Value::Int(*person as i64))]),
                *person,
            ),
            ReadOp::OneHop { person } => self.run_cached(
                "MATCH (p:person {id:$id})-[:knows]-(f) RETURN DISTINCT f.id, f.firstName",
                p(&[("id", Value::Int(*person as i64))]),
                *person,
            ),
            ReadOp::TwoHop { person } => self.run(
                "MATCH (p:person {id:$id})-[:knows*1..2]-(f) WHERE f.id <> $id \
                 RETURN DISTINCT f.id, f.firstName",
                p(&[("id", Value::Int(*person as i64))]),
            ),
            ReadOp::ShortestPath { a, b } => self.run(
                "MATCH sp = shortestPath((a:person {id:$a})-[:knows*]-(b:person {id:$b})) \
                 RETURN length(sp)",
                p(&[("a", Value::Int(*a as i64)), ("b", Value::Int(*b as i64))]),
            ),
            ReadOp::Is1Profile { person } => self.run(
                "MATCH (p:person {id:$id})-[:is_located_in]->(c) \
                 RETURN p.firstName, p.lastName, p.gender, p.birthday, p.creationDate, \
                 p.locationIP, p.browserUsed, c.id",
                p(&[("id", Value::Int(*person as i64))]),
            ),
            ReadOp::Is2RecentMessages { person, limit } => self.run(
                &format!(
                    "MATCH (m)-[:has_creator]->(p:person {{id:$id}}) \
                     RETURN m.content, m.creationDate ORDER BY m.creationDate DESC LIMIT {limit}"
                ),
                p(&[("id", Value::Int(*person as i64))]),
            ),
            ReadOp::Is3Friends { person } => self.run(
                "MATCH (p:person {id:$id})-[k:knows]-(f) \
                 RETURN f.id, k.creationDate ORDER BY k.creationDate DESC",
                p(&[("id", Value::Int(*person as i64))]),
            ),
            ReadOp::Is4MessageContent { message } => self.run(
                &format!(
                    "MATCH (m:{} {{id:$id}}) RETURN m.creationDate, m.content",
                    message.label()
                ),
                p(&[("id", Value::Int(message.local() as i64))]),
            ),
            ReadOp::Is5MessageCreator { message } => self.run(
                &format!(
                    "MATCH (m:{} {{id:$id}})-[:has_creator]->(a) \
                     RETURN a.id, a.firstName, a.lastName",
                    message.label()
                ),
                p(&[("id", Value::Int(message.local() as i64))]),
            ),
            ReadOp::Is6MessageForum { post } => self.run(
                "MATCH (f:forum)-[:container_of]->(m:post {id:$id}), (f)-[:has_moderator]->(mod) \
                 RETURN f.id, f.title, mod.id",
                p(&[("id", Value::Int(*post as i64))]),
            ),
            ReadOp::Is7MessageReplies { message } => self.run(
                &format!(
                    "MATCH (c:comment)-[:reply_of]->(m:{} {{id:$id}}), (c)-[:has_creator]->(a) \
                     RETURN c.id, c.creationDate, a.id ORDER BY c.creationDate DESC",
                    message.label()
                ),
                p(&[("id", Value::Int(message.local() as i64))]),
            ),
            ReadOp::Complex2Hop { person, first_name, limit } => self.run(
                &format!(
                    "MATCH (p:person {{id:$id}})-[:knows*1..2]-(f:person) \
                     WHERE f.id <> $id AND f.firstName = $name \
                     RETURN f.id, f.lastName, f.birthday ORDER BY f.lastName, f.id LIMIT {limit}"
                ),
                p(&[
                    ("id", Value::Int(*person as i64)),
                    ("name", Value::str(first_name)),
                ]),
            ),
            ReadOp::RecentFriendMessages { person, limit } => self.run(
                &format!(
                    "MATCH (p:person {{id:$id}})-[:knows]-(f)<-[:has_creator]-(m) \
                     RETURN m.content, m.creationDate ORDER BY m.creationDate DESC LIMIT {limit}"
                ),
                p(&[("id", Value::Int(*person as i64))]),
            ),
            ReadOp::IcFoafPosts { person, min_date, limit } => self.run(
                &format!(
                    "MATCH (p:person {{id:$id}})-[:knows*1..2]-(f)<-[:has_creator]-(m:post) \
                     WHERE f.id <> $id AND m.creationDate >= $d \
                     RETURN DISTINCT m.id, f.id, m.creationDate \
                     ORDER BY m.creationDate DESC, m.id LIMIT {limit}"
                ),
                p(&[
                    ("id", Value::Int(*person as i64)),
                    ("d", Value::Int(*min_date)),
                ]),
            ),
            ReadOp::IcMutualFriends { person, limit } => {
                // The dialect has implicit-group aggregation but no
                // pattern predicates in WHERE, so the non-friend
                // exclusion is client-side: one aggregated two-hop
                // query (count of connecting friends per candidate) and
                // one friends query, joined here.
                let paths = self.run(
                    "MATCH (p:person {id:$id})-[:knows]-(f)-[:knows]-(c) \
                     WHERE c.id <> $id RETURN c.id, count(*)",
                    p(&[("id", Value::Int(*person as i64))]),
                )?;
                let friends = self.run(
                    "MATCH (p:person {id:$id})-[:knows]-(f) RETURN DISTINCT f.id",
                    p(&[("id", Value::Int(*person as i64))]),
                )?;
                let friend_ids: std::collections::HashSet<&Value> =
                    friends.iter().map(|r| &r[0]).collect();
                let rows: OpResult = paths
                    .into_iter()
                    .filter(|r| !friend_ids.contains(&r[0]))
                    .collect();
                Ok(snb_core::top_k_by(rows, *limit, crate::complex::cmp_mutual))
            }
        }
    }

    fn execute_update(&self, op: &UpdateOp) -> Result<()> {
        if let Some(v) = &op.new_vertex {
            let mut props = String::new();
            let mut params = Params::new();
            let _ = write!(props, "id:$id");
            params.insert("id".into(), Value::Int(v.id as i64));
            for (i, (k, val)) in v.props.iter().enumerate() {
                let name = format!("p{i}");
                let _ = write!(props, ", {k}:${name}");
                params.insert(name, val.clone());
            }
            self.store.cypher(&format!("CREATE (v:{} {{{props}}})", v.label), &params)?;
        }
        for e in &op.new_edges {
            let mut props = String::new();
            let mut params = Params::new();
            params.insert("a".into(), Value::Int(e.src.local() as i64));
            params.insert("b".into(), Value::Int(e.dst.local() as i64));
            for (i, (k, val)) in e.props.iter().enumerate() {
                let name = format!("p{i}");
                if !props.is_empty() {
                    props.push_str(", ");
                }
                let _ = write!(props, "{k}:${name}");
                params.insert(name, val.clone());
            }
            let props = if props.is_empty() { String::new() } else { format!(" {{{props}}}") };
            self.store.cypher(
                &format!(
                    "MATCH (a:{} {{id:$a}}), (b:{} {{id:$b}}) CREATE (a)-[:{}{props}]->(b)",
                    e.src.label(),
                    e.dst.label(),
                    e.label
                ),
                &params,
            )?;
        }
        Ok(())
    }

    fn execute_update_batch(&self, ops: &[snb_datagen::UpdateOp]) -> Result<usize> {
        // Neo4j's batched-write path: skip per-statement Cypher parsing
        // and apply the whole batch through the store's bulk insert,
        // which takes the write lock once.
        let mut writes = Vec::new();
        update_writes(ops, &mut writes);
        self.store.apply_batch(&writes)?;
        Ok(ops.len())
    }

    fn storage_bytes(&self) -> usize {
        self.store.storage_bytes()
    }

    fn graph_backend(&self) -> Option<std::sync::Arc<dyn GraphBackend>> {
        Some(self.store.clone())
    }

    fn supports_concurrent_load(&self) -> bool {
        // The paper's Neo4j Gremlin loader is single-threaded.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::{PropKey, VertexLabel};

    #[test]
    fn smoke_point_lookup_after_load() {
        let a = CypherAdapter::new();
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        a.load(&data.snapshot).unwrap();
        let person = data
            .snapshot
            .vertices_of(VertexLabel::Person)
            .next()
            .expect("tiny data has persons");
        let rows = a.execute_read(&ReadOp::PointLookup { person: person.id }).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 7);
        assert_eq!(
            Some(&rows[0][0]),
            person.prop(PropKey::FirstName),
            "firstName survives load+query"
        );
        assert!(a.storage_bytes() > 0);
    }
}
