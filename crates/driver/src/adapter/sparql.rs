//! Triple store driven through SPARQL text (the paper's "Virtuoso
//! (SPARQL)" column). Updates are rendered as `INSERT DATA` blocks,
//! including the reification triples for property-carrying edges —
//! the RDF mapping's write amplification happens in full.

use snb_core::{FastMap, Result, SnapshotCache, Value, Vid};
use snb_datagen::{Dataset, UpdateOp};
use snb_rdf::TripleStore;
use std::fmt::Write as _;

use crate::adapter::{
    csr_shortest_path, csr_two_hop, normalize_rows, person_knows_csr, OpResult, SutAdapter,
};
use crate::ops::ReadOp;

/// Adapter: one triple store, queried with SPARQL text.
pub struct SparqlAdapter {
    store: TripleStore,
    /// Epoch-pinned Person/Knows CSR for the multi-hop reads: three
    /// pattern scans replace the `{1,2}` property-path / TRANSITIVE
    /// evaluation once, then traversals are range scans until a write
    /// invalidates the epoch.
    snaps: SnapshotCache,
}

impl SparqlAdapter {
    /// Fresh store with Virtuoso-style extensive indexing (all six
    /// permutations — "one big table with multiple indexes"), which is
    /// what makes its write path index-maintenance-bound in Figure 3.
    pub fn new() -> Self {
        SparqlAdapter {
            store: TripleStore::with_indexes(snb_rdf::IndexConfig::Six),
            snaps: SnapshotCache::new(),
        }
    }

    /// Access the store (for tests/benches).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    fn run(&self, query: &str) -> Result<OpResult> {
        Ok(normalize_rows(self.store.sparql(query)?.rows))
    }

    /// Pin a fresh Person/Knows CSR, rebuilding from pattern scans when
    /// the cache is invalid and the hysteresis allows it. Only direct
    /// `snb:knows` triples feed the adjacency — reified statement nodes
    /// use `snb:src`/`snb:dst` and never match.
    fn pin_knows(&self) -> Option<std::sync::Arc<snb_core::CsrSnapshot>> {
        self.snaps.pin_with(|epoch| {
            let ids = self.store.sparql("SELECT ?id WHERE { ?p rdf:type 'person' . ?p snb:id ?id }")?;
            let names = self.store.sparql(
                "SELECT ?id ?fn WHERE { ?p rdf:type 'person' . ?p snb:id ?id . \
                 ?p snb:firstName ?fn }",
            )?;
            let mut name_of: FastMap<u64, Value> = FastMap::default();
            for mut r in names.rows {
                let fname = r.swap_remove(1);
                if let Some(id) = r[0].as_int() {
                    name_of.insert(id as u64, fname);
                }
            }
            let persons: Vec<(u64, Value)> = ids
                .rows
                .iter()
                .filter_map(|r| r[0].as_int())
                .map(|id| {
                    let id = id as u64;
                    (id, name_of.get(&id).cloned().unwrap_or(Value::Null))
                })
                .collect();
            let knows: Vec<(u64, u64)> = self
                .store
                .sparql("SELECT ?a ?b WHERE { ?s snb:knows ?o . ?s snb:id ?a . ?o snb:id ?b }")?
                .rows
                .into_iter()
                .filter_map(|r| Some((r[0].as_int()? as u64, r[1].as_int()? as u64)))
                .collect();
            person_knows_csr(epoch, &persons, &knows)
        })
    }
}

impl Default for SparqlAdapter {
    fn default() -> Self {
        Self::new()
    }
}

/// Render an entity IRI (`person:933`).
fn iri(v: Vid) -> String {
    format!("{}:{}", v.label(), v.local())
}

/// Render a literal for query text. Strings are single-quoted with
/// embedded quotes stripped (the dictionary-generated data contains
/// none; real mappings escape).
fn lit(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "")),
        Value::Date(d) => d.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => format!("'{b}'"),
        other => format!("'{other}'"),
    }
}

impl SutAdapter for SparqlAdapter {
    fn name(&self) -> &'static str {
        "Virtuoso (SPARQL)"
    }

    fn load(&self, snapshot: &Dataset) -> Result<()> {
        // Bracket the bulk load with invalidations: a CSR pinned before
        // or during the load must never be served afterwards.
        self.snaps.note_writes(1);
        // Bulk path: direct triple ingestion, like Virtuoso's RDF loader.
        for v in &snapshot.vertices {
            self.store.insert_vertex(v.label, v.id, &v.props);
        }
        for e in &snapshot.edges {
            self.store.insert_edge(e.label, e.src, e.dst, &e.props);
        }
        self.snaps.note_writes(1);
        Ok(())
    }

    fn execute_read(&self, op: &ReadOp) -> Result<OpResult> {
        match op {
            ReadOp::PointLookup { person } => {
                let p = format!("person:{person}");
                self.run(&format!(
                    "SELECT ?fn ?ln ?g ?b ?cd ?ip ?br WHERE {{ \
                     {p} snb:firstName ?fn . {p} snb:lastName ?ln . {p} snb:gender ?g . \
                     {p} snb:birthday ?b . {p} snb:creationDate ?cd . \
                     {p} snb:locationIP ?ip . {p} snb:browserUsed ?br }}"
                ))
            }
            ReadOp::OneHop { person } => self.run(&format!(
                "SELECT DISTINCT ?id ?fn WHERE {{ person:{person} (snb:knows|^snb:knows) ?f . \
                 ?f snb:id ?id . ?f snb:firstName ?fn }}"
            )),
            ReadOp::TwoHop { person } => {
                if let Some(s) = self.pin_knows() {
                    // The property-path query joins on snb:firstName,
                    // so persons lacking it drop out: require it here.
                    return Ok(csr_two_hop(&s, *person, true));
                }
                self.run(&format!(
                    "SELECT DISTINCT ?id ?fn WHERE {{ \
                     person:{person} (snb:knows|^snb:knows){{1,2}} ?f . \
                     ?f snb:id ?id . ?f snb:firstName ?fn . FILTER(?id != {person}) }}"
                ))
            }
            ReadOp::ShortestPath { a, b } => {
                if let Some(s) = self.pin_knows() {
                    return Ok(csr_shortest_path(&s, *a, *b, 12));
                }
                self.run(&format!("SELECT TRANSITIVE(person:{a}, person:{b}, snb:knows, 12)"))
            }
            ReadOp::Is1Profile { person } => {
                let p = format!("person:{person}");
                self.run(&format!(
                    "SELECT ?fn ?ln ?g ?b ?cd ?ip ?br ?city WHERE {{ \
                     {p} snb:firstName ?fn . {p} snb:lastName ?ln . {p} snb:gender ?g . \
                     {p} snb:birthday ?b . {p} snb:creationDate ?cd . \
                     {p} snb:locationIP ?ip . {p} snb:browserUsed ?br . \
                     {p} snb:is_located_in ?c . ?c snb:id ?city }}"
                ))
            }
            ReadOp::Is2RecentMessages { person, limit } => self.run(&format!(
                "SELECT ?content ?cd WHERE {{ ?m snb:has_creator person:{person} . \
                 ?m snb:content ?content . ?m snb:creationDate ?cd }} \
                 ORDER BY DESC(?cd) LIMIT {limit}"
            )),
            ReadOp::Is3Friends { person } => self.run(&format!(
                "SELECT ?id ?d WHERE {{ ?k rdf:type 'knows' . ?k snb:src person:{person} . \
                 ?k snb:dst ?f . ?k snb:creationDate ?d . ?f snb:id ?id }} ORDER BY DESC(?d)"
            )),
            ReadOp::Is4MessageContent { message } => {
                let m = iri(*message);
                self.run(&format!(
                    "SELECT ?cd ?content WHERE {{ {m} snb:creationDate ?cd . {m} snb:content ?content }}"
                ))
            }
            ReadOp::Is5MessageCreator { message } => {
                let m = iri(*message);
                self.run(&format!(
                    "SELECT ?id ?fn ?ln WHERE {{ {m} snb:has_creator ?p . ?p snb:id ?id . \
                     ?p snb:firstName ?fn . ?p snb:lastName ?ln }}"
                ))
            }
            ReadOp::Is6MessageForum { post } => self.run(&format!(
                "SELECT ?fid ?title ?mid WHERE {{ ?f snb:container_of post:{post} . \
                 ?f snb:id ?fid . ?f snb:title ?title . \
                 ?f snb:has_moderator ?mod . ?mod snb:id ?mid }}"
            )),
            ReadOp::Is7MessageReplies { message } => {
                let m = iri(*message);
                self.run(&format!(
                    "SELECT ?cid ?cd ?aid WHERE {{ ?c snb:reply_of {m} . ?c snb:id ?cid . \
                     ?c snb:creationDate ?cd . ?c snb:has_creator ?a . ?a snb:id ?aid }} \
                     ORDER BY DESC(?cd)"
                ))
            }
            ReadOp::Complex2Hop { person, first_name, limit } => self.run(&format!(
                "SELECT DISTINCT ?id ?ln ?b WHERE {{ \
                 person:{person} (snb:knows|^snb:knows){{1,2}} ?f . \
                 ?f snb:firstName '{first_name}' . ?f snb:id ?id . ?f snb:lastName ?ln . \
                 ?f snb:birthday ?b . FILTER(?id != {person}) }} ORDER BY ?ln ?id LIMIT {limit}"
            )),
            ReadOp::RecentFriendMessages { person, limit } => self.run(&format!(
                "SELECT ?content ?cd WHERE {{ \
                 person:{person} (snb:knows|^snb:knows) ?f . ?m snb:has_creator ?f . \
                 ?m snb:content ?content . ?m snb:creationDate ?cd }} \
                 ORDER BY DESC(?cd) LIMIT {limit}"
            )),
            ReadOp::IcFoafPosts { person, min_date, limit } => {
                // Ring from the pinned Knows CSR when fresh, else the
                // `{1,2}` property path; then one per-member pattern
                // query for that member's dated posts, assembled
                // client-side (the RDF mapping has no multi-source join
                // that keeps the creator id in the row).
                let ring: Vec<u64> = if let Some(s) = self.pin_knows() {
                    crate::complex::foaf_ring(&s, *person)
                        .into_iter()
                        .map(|r| s.vid_of(r).local())
                        .collect()
                } else {
                    self.run(&format!(
                        "SELECT DISTINCT ?id WHERE {{ \
                         person:{person} (snb:knows|^snb:knows){{1,2}} ?f . \
                         ?f snb:id ?id . FILTER(?id != {person}) }}"
                    ))?
                    .into_iter()
                    .filter_map(|r| r[0].as_int().map(|i| i as u64))
                    .collect()
                };
                let mut rows: OpResult = Vec::new();
                for member in ring {
                    let posts = self.run(&format!(
                        "SELECT ?id ?cd WHERE {{ ?m snb:has_creator person:{member} . \
                         ?m rdf:type 'post' . ?m snb:id ?id . ?m snb:creationDate ?cd . \
                         FILTER(?cd >= {min_date}) }}"
                    ))?;
                    for mut r in posts {
                        let cd = r.pop().unwrap_or(Value::Null);
                        let id = r.pop().unwrap_or(Value::Null);
                        rows.push(vec![id, Value::Int(member as i64), cd]);
                    }
                }
                Ok(snb_core::top_k_by(rows, *limit, crate::complex::cmp_foaf))
            }
            ReadOp::IcMutualFriends { person, limit } => {
                if let Some(s) = self.pin_knows() {
                    return Ok(crate::complex::mutual_friends(&s, *person, *limit));
                }
                let one_hop = |id: u64| -> Result<Vec<u64>> {
                    Ok(self
                        .run(&format!(
                            "SELECT DISTINCT ?id WHERE {{ \
                             person:{id} (snb:knows|^snb:knows) ?f . ?f snb:id ?id }}"
                        ))?
                        .into_iter()
                        .filter_map(|r| r[0].as_int().map(|i| i as u64))
                        .collect())
                };
                let friends = one_hop(*person)?;
                let friend_set: std::collections::HashSet<u64> =
                    friends.iter().copied().collect();
                let mut counts: std::collections::HashMap<u64, i64> =
                    std::collections::HashMap::new();
                for &f in &friends {
                    for c in one_hop(f)? {
                        if c != *person && !friend_set.contains(&c) {
                            *counts.entry(c).or_insert(0) += 1;
                        }
                    }
                }
                let rows: OpResult = counts
                    .into_iter()
                    .map(|(c, n)| vec![Value::Int(c as i64), Value::Int(n)])
                    .collect();
                Ok(snb_core::top_k_by(rows, *limit, crate::complex::cmp_mutual))
            }
        }
    }

    fn execute_update(&self, op: &UpdateOp) -> Result<()> {
        // Invalidate the CSR up front so a partially applied op can
        // never be hidden behind a snapshot that still looks fresh.
        self.snaps.note_writes(1);
        // Render the whole update as one INSERT DATA block — the
        // application-level RDF mapping generates every triple,
        // including reification for edges with properties.
        let mut block = String::new();
        let mut blank = 0usize;
        if let Some(v) = &op.new_vertex {
            let e = iri(v.vid());
            let _ = write!(block, "{e} rdf:type '{}' . {e} snb:id {} . ", v.label, v.id);
            for (k, val) in &v.props {
                match val {
                    Value::List(items) => {
                        for item in items {
                            let _ = write!(block, "{e} snb:{k} {} . ", lit(item));
                        }
                    }
                    val => {
                        let _ = write!(block, "{e} snb:{k} {} . ", lit(val));
                    }
                }
            }
        }
        for edge in &op.new_edges {
            let s = iri(edge.src);
            let d = iri(edge.dst);
            let _ = write!(block, "{s} snb:{} {d} . ", edge.label);
            if !edge.props.is_empty() {
                let reify = |from: &str, to: &str, blank: usize| {
                    let mut t = format!(
                        "_:b{blank} rdf:type '{}' . _:b{blank} snb:src {from} . _:b{blank} snb:dst {to} . ",
                        edge.label
                    );
                    for (k, val) in &edge.props {
                        let _ = write!(t, "_:b{blank} snb:{k} {} . ", lit(val));
                    }
                    t
                };
                block.push_str(&reify(&s, &d, blank));
                blank += 1;
                if edge.label == snb_core::EdgeLabel::Knows {
                    block.push_str(&reify(&d, &s, blank));
                    blank += 1;
                }
            }
        }
        if block.is_empty() {
            return Ok(());
        }
        self.store.sparql(&format!("INSERT DATA {{ {block} }}"))?;
        Ok(())
    }

    fn execute_update_batch(&self, ops: &[UpdateOp]) -> Result<usize> {
        self.snaps.note_writes(ops.len() as u64);
        // Skip per-op INSERT DATA rendering and parsing: expand every
        // operation into its triples (reification included — the same
        // triples `execute_update` generates) and insert them all under
        // one index-lock acquisition.
        let mut triples = Vec::new();
        for op in ops {
            if let Some(v) = &op.new_vertex {
                TripleStore::vertex_triples(v.label, v.id, &v.props, &mut triples);
            }
            for e in &op.new_edges {
                self.store.edge_triples(e.label, e.src, e.dst, &e.props, &mut triples);
            }
        }
        self.store.insert_batch(&triples);
        Ok(ops.len())
    }

    fn storage_bytes(&self) -> usize {
        self.store.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::VertexLabel;

    #[test]
    fn smoke_load_and_read() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let a = SparqlAdapter::new();
        a.load(&data.snapshot).unwrap();
        let person = data.snapshot.vertices_of(VertexLabel::Person).next().unwrap();
        let rows = a.execute_read(&ReadOp::PointLookup { person: person.id }).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 7);
        let profile = a.execute_read(&ReadOp::Is1Profile { person: person.id }).unwrap();
        assert_eq!(profile[0].len(), 8);
        assert!(a.storage_bytes() > 0);
    }

    #[test]
    fn update_inserts_triples_and_reifies() {
        let a = SparqlAdapter::new();
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        a.load(&data.snapshot).unwrap();
        let update = data
            .updates
            .iter()
            .find(|u| u.kind == snb_datagen::UpdateKind::AddFriendship)
            .expect("stream has friendships");
        let before = a.store().triple_count();
        a.execute_update(update).unwrap();
        // 1 direct + 2 reified × (type+src+dst+creationDate).
        assert_eq!(a.store().triple_count() - before, 1 + 2 * 4);
    }
}
