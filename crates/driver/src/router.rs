//! Sharded scale-out: N independent engine shards behind the reactor,
//! fronted by a driver-side scatter-gather query router.
//!
//! Each shard is a full engine stack — its own [`NativeGraphStore`]
//! (or any `GraphBackend`), worker pool, CSR compactor, and reactor
//! listener — so shards share nothing and scale with cores. The router
//! partitions the vertex space with the same FNV-1a hash the
//! message-queue partitioner uses ([`ShardMap`]), which is what makes
//! ingest *shard-local*: with the topic's partition count a multiple of
//! the shard count, every partition maps to exactly one shard
//! (`ShardMap::aligned_partitions`), and an applier never crosses a
//! shard boundary for the vertex it owns.
//!
//! Placement rules:
//!
//! * A vertex lives on `ShardMap::shard_of(vid)` — its **owner**.
//! * An edge is stored on **both** endpoint owners' shards, so every
//!   vertex's full adjacency (out and in) is local to its owner and a
//!   one-hop expansion is always a single-shard operation.
//! * The non-owned endpoint of a cross-shard edge is materialized as a
//!   **ghost**: a bare vertex (no properties) that exists only to
//!   anchor adjacency. A ghost only ever exists on a shard that is
//!   *not* the vertex's owner, so the ownership filter cleanly
//!   separates real vertices from ghosts when enumerating merged state.
//!
//! Reads: point lookups route to the owner and run the unmodified
//! `read_via` path. Multi-hop reads decompose into frontier *waves*
//! ([`FrontierRequest`]): the router groups the current frontier by
//! owner, fans one Frontier frame out per shard (scatter), merges and
//! de-duplicates the boundary vertices that come back (gather), and
//! repeats. Per-shard responses are merged in shard order, so row
//! *order* within a ring may differ from the single-store walk order;
//! the row *set* is identical.
//!
//! Caveat (documented in DESIGN.md §5f): because ghosts are created on
//! demand, a cross-shard `addE` whose endpoint was never created
//! materializes a ghost instead of failing `NotFound`. Under the
//! dependency-ordered update stream the ingest pipeline guarantees
//! (addV confirmed before dependent addE), the distinction is
//! unobservable.
//!
//! [`NativeGraphStore`]: snb_graph_native::NativeGraphStore
//! [`FrontierRequest`]: snb_gremlin::FrontierRequest

use parking_lot::Mutex;
use snb_cache::ResultCache;
use snb_core::ids::{EDGE_LABELS, VERTEX_LABELS};
use snb_core::{
    Direction, EdgeLabel, FastSet, GraphBackend, PropKey, Result, ShardMap, SnbError, Value,
    VertexLabel, Vid,
};
use snb_datagen::{Dataset, UpdateOp};
use snb_gremlin::{
    encode_frontier, wire, FrontierRequest, GremlinServer, ServerConfig, Traversal,
};
use snb_net::{ClientConfig, NetPool, NetServer, NetServerConfig, PendingReply};
use std::net::SocketAddr;
use std::sync::Arc;

use crate::adapter::gremlin::read_via;
use crate::adapter::{normalize, OpResult, SutAdapter};
use crate::ops::ReadOp;

/// One shard: a complete engine stack behind its own reactor listener.
struct Shard {
    backend: Arc<dyn GraphBackend>,
    server: NetServer,
    pool: NetPool,
}

/// Entry capacity of the router's hot-frontier cache.
pub const FRONTIER_CACHE_CAPACITY: usize = 2048;

/// Largest frontier (in vertices) worth caching: beyond this the key
/// material and value both get big and the repeat probability small, so
/// the wave bypasses the cache instead.
const FRONTIER_KEY_CAP: usize = 4096;

/// Reusable scatter buffers for one in-flight wave. Every hop of every
/// multi-hop read used to allocate a fresh `Vec` per shard (plus the
/// pending-reply vector); a small pool of scratch sets keeps those
/// allocations alive across waves and across queries.
#[derive(Default)]
struct WaveScratch {
    /// Frontier slice per shard (expand + props waves).
    per_shard: Vec<Vec<Vid>>,
    /// Input-order index per shard (props waves only).
    idx: Vec<Vec<usize>>,
    /// In-flight replies, paired with the owning shard's slot.
    pending: Vec<PendingReply>,
}

impl WaveScratch {
    /// Size the per-shard buffers, keeping their capacity.
    fn reset(&mut self, shards: usize) {
        self.per_shard.resize_with(shards, Vec::new);
        self.idx.resize_with(shards, Vec::new);
        for v in &mut self.per_shard {
            v.clear();
        }
        for v in &mut self.idx {
            v.clear();
        }
        self.pending.clear();
    }
}

/// Bound on pooled scratch sets (one per concurrently-routing thread is
/// plenty; extras are simply dropped).
const SCRATCH_POOL_CAP: usize = 8;

/// The scatter-gather router over N engine shards.
pub struct ShardRouter {
    shards: Vec<Shard>,
    map: ShardMap,
    /// Traversals per pipelined wave per shard — same bounded-queue
    /// derivation as the remote adapter (see
    /// [`RemoteGremlinAdapter::over`](crate::adapter::remote::RemoteGremlinAdapter)).
    batch_chunk: usize,
    name: &'static str,
    /// Hot-frontier cache: merged expand-wave results keyed on
    /// (direction, label, frontier) at the *per-shard epoch vector* —
    /// any shard's write stops every affected entry from matching, so
    /// cross-shard round trips for hub expansions are skipped only when
    /// provably current.
    frontier_cache: Option<ResultCache<Vec<Vid>>>,
    scratch: Mutex<Vec<WaveScratch>>,
}

impl ShardRouter {
    /// `shards` native stores, each behind its own server + pool.
    pub fn native(shards: usize) -> Result<Self> {
        Self::native_with_cache(shards, FRONTIER_CACHE_CAPACITY)
    }

    /// As [`ShardRouter::native`] with an explicit hot-frontier cache
    /// capacity (`0` disables — the uncached comparison arm).
    pub fn native_with_cache(shards: usize, cache_capacity: usize) -> Result<Self> {
        let backends: Vec<Arc<dyn GraphBackend>> = (0..shards.max(1))
            .map(|_| Arc::new(snb_graph_native::NativeGraphStore::new()) as Arc<dyn GraphBackend>)
            .collect();
        Self::over_with_cache(backends, "Sharded (Gremlin/TCP)", cache_capacity)
    }

    /// Host each backend behind a loopback server and connect a pool.
    pub fn over(backends: Vec<Arc<dyn GraphBackend>>, name: &'static str) -> Result<Self> {
        Self::over_with_cache(backends, name, FRONTIER_CACHE_CAPACITY)
    }

    /// As [`ShardRouter::over`] with an explicit hot-frontier cache
    /// capacity. The cache only engages when *every* shard backend
    /// exposes a [`GraphBackend::cache_epoch`]; a single epoch-less
    /// shard makes every wave bypass.
    pub fn over_with_cache(
        backends: Vec<Arc<dyn GraphBackend>>,
        name: &'static str,
        cache_capacity: usize,
    ) -> Result<Self> {
        assert!(!backends.is_empty(), "at least one shard");
        let server_cfg = ServerConfig::default();
        let batch_chunk = (server_cfg.queue_capacity / 4).max(1);
        let epochs_available = backends.iter().all(|b| b.cache_epoch().is_some());
        let mut shards = Vec::with_capacity(backends.len());
        for backend in backends {
            let gremlin = GremlinServer::start(Arc::clone(&backend), server_cfg.clone());
            let server = NetServer::start(gremlin, NetServerConfig::default())?;
            let pool = NetPool::connect(server.local_addr(), ClientConfig::default())?;
            shards.push(Shard { backend, server, pool });
        }
        let map = ShardMap::new(shards.len());
        let frontier_cache = (cache_capacity > 0 && epochs_available)
            .then(|| ResultCache::new("frontier", cache_capacity));
        Ok(ShardRouter {
            shards,
            map,
            batch_chunk,
            name,
            frontier_cache,
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// The hot-frontier cache, when enabled (stats hook).
    pub fn frontier_cache(&self) -> Option<&ResultCache<Vec<Vid>>> {
        self.frontier_cache.as_ref()
    }

    fn take_scratch(&self) -> WaveScratch {
        let mut scratch = self.scratch.lock().pop().unwrap_or_default();
        scratch.reset(self.shards.len());
        scratch
    }

    fn put_scratch(&self, scratch: WaveScratch) {
        let mut pool = self.scratch.lock();
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    }

    /// The per-shard epoch vector, or `None` when any shard lacks one.
    fn shard_epochs(&self) -> Option<Vec<u64>> {
        self.shards.iter().map(|s| s.backend.cache_epoch()).collect()
    }

    /// Cache key material for an expand wave: direction, label, and the
    /// frontier in caller order (the merged result is order-sensitive).
    fn frontier_key(frontier: &[Vid], dir: Direction, label: Option<EdgeLabel>) -> Vec<u8> {
        let mut key = Vec::with_capacity(2 + frontier.len() * 8);
        key.push(dir as u8);
        key.push(label.map(|l| l as u8 + 1).unwrap_or(0));
        for v in frontier {
            key.extend_from_slice(&v.raw().to_le_bytes());
        }
        key
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The vertex→shard placement function (shared with ingest).
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Each shard's loopback address, in shard order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(|s| s.server.local_addr()).collect()
    }

    /// Each shard's backend, in shard order — the hook the sharded
    /// analytics merge layer ([`crate::analytics`]) uses to pin one
    /// snapshot per shard.
    pub(crate) fn shard_backends(&self) -> Vec<&Arc<dyn GraphBackend>> {
        self.shards.iter().map(|s| &s.backend).collect()
    }

    fn owner(&self, v: Vid) -> usize {
        self.map.shard_of(v)
    }

    /// The owner shard's connection pool for `v` — the routed
    /// single-shard fast path (benchmark harness hook).
    pub fn pool_for(&self, v: Vid) -> &NetPool {
        &self.shards[self.owner(v)].pool
    }

    /// The shards an edge is stored on: owner of `src`, plus owner of
    /// `dst` when different.
    fn edge_targets(&self, src: Vid, dst: Vid) -> [Option<usize>; 2] {
        let a = self.owner(src);
        let b = self.owner(dst);
        [Some(a), (b != a).then_some(b)]
    }

    /// One expansion wave: group the frontier by owner, fan a Frontier
    /// frame out per shard, gather the concatenated neighbours. Merge
    /// order is shard order (see module docs); duplicates are preserved
    /// for the caller to de-duplicate.
    fn expand_wave(
        &self,
        frontier: &[Vid],
        dir: Direction,
        label: Option<EdgeLabel>,
    ) -> Result<Vec<Vid>> {
        // Hot-frontier cache probe: a hub's ring — and, on repeat
        // two-hops, the hub's ring *as the next frontier* — answers
        // without any cross-shard round trip. Keyed at the per-shard
        // epoch vector, so the entry stops matching the moment any
        // shard takes a write.
        let probe = match &self.frontier_cache {
            Some(cache) => {
                if frontier.len() > FRONTIER_KEY_CAP {
                    cache.note_bypass();
                    None
                } else {
                    match self.shard_epochs() {
                        Some(epochs) => {
                            let key = Self::frontier_key(frontier, dir, label);
                            if let Some(hit) = cache.get(&key, &epochs) {
                                return Ok(hit);
                            }
                            Some((key, epochs))
                        }
                        None => {
                            cache.note_bypass();
                            None
                        }
                    }
                }
            }
            None => None,
        };
        let mut scratch = self.take_scratch();
        let result = self.expand_wave_scatter(frontier, dir, label, &mut scratch);
        self.put_scratch(scratch);
        let out = result?;
        if let (Some(cache), Some((key, epochs))) = (&self.frontier_cache, probe) {
            // Store only when no shard took a write while the wave was
            // in flight: epochs are monotone, so an unchanged re-read
            // proves the merged result belongs to this epoch vector.
            if self.shard_epochs().as_deref() == Some(&epochs[..]) {
                cache.insert(&key, &epochs, out.clone());
            }
        }
        Ok(out)
    }

    /// The scatter-gather body of [`ShardRouter::expand_wave`], using
    /// pooled buffers instead of per-wave allocations.
    fn expand_wave_scatter(
        &self,
        frontier: &[Vid],
        dir: Direction,
        label: Option<EdgeLabel>,
        scratch: &mut WaveScratch,
    ) -> Result<Vec<Vid>> {
        for &v in frontier {
            scratch.per_shard[self.owner(v)].push(v);
        }
        for s in 0..self.shards.len() {
            if scratch.per_shard[s].is_empty() {
                continue;
            }
            // Lend the pooled buffer to the request for encoding, then
            // take it back so its capacity survives into the next wave.
            let vids = std::mem::take(&mut scratch.per_shard[s]);
            let req = FrontierRequest::Expand { dir, label, vids };
            let payload = encode_frontier(&req);
            if let FrontierRequest::Expand { vids, .. } = req {
                scratch.per_shard[s] = vids;
            }
            scratch.pending.push(self.shards[s].pool.start_frontier(&payload)?);
        }
        let mut out = Vec::new();
        for reply in scratch.pending.drain(..) {
            for v in wire::decode_values(&reply.wait()?)? {
                match v {
                    Value::Vertex(vid) => out.push(vid),
                    other => {
                        return Err(SnbError::Codec(format!(
                            "frontier expansion returned non-vertex {other}"
                        )))
                    }
                }
            }
        }
        Ok(out)
    }

    /// One property wave: fetch `keys` of every vertex from its owner,
    /// returning rows aligned with the input order.
    fn props_wave(&self, vids: &[Vid], keys: &[PropKey]) -> Result<Vec<Vec<Value>>> {
        let mut scratch = self.take_scratch();
        let result = self.props_wave_scatter(vids, keys, &mut scratch);
        self.put_scratch(scratch);
        result
    }

    /// The scatter-gather body of [`ShardRouter::props_wave`], using
    /// pooled buffers instead of per-wave allocations. Replies are
    /// gathered in shard order (the order they were started), so the
    /// index slices in `scratch.idx` line up with `scratch.pending`.
    fn props_wave_scatter(
        &self,
        vids: &[Vid],
        keys: &[PropKey],
        scratch: &mut WaveScratch,
    ) -> Result<Vec<Vec<Value>>> {
        for (i, &v) in vids.iter().enumerate() {
            let s = self.owner(v);
            scratch.idx[s].push(i);
            scratch.per_shard[s].push(v);
        }
        let mut started: Vec<usize> = Vec::with_capacity(self.shards.len());
        for s in 0..self.shards.len() {
            if scratch.per_shard[s].is_empty() {
                continue;
            }
            let svids = std::mem::take(&mut scratch.per_shard[s]);
            let req = FrontierRequest::Props { keys: keys.to_vec(), vids: svids };
            let payload = encode_frontier(&req);
            if let FrontierRequest::Props { vids, .. } = req {
                scratch.per_shard[s] = vids;
            }
            scratch.pending.push(self.shards[s].pool.start_frontier(&payload)?);
            started.push(s);
        }
        let mut rows: Vec<Vec<Value>> = vec![Vec::new(); vids.len()];
        for (s, reply) in started.into_iter().zip(scratch.pending.drain(..)) {
            let idx = &scratch.idx[s];
            let vals = wire::decode_values(&reply.wait()?)?;
            if vals.len() != idx.len() {
                return Err(SnbError::Codec(format!(
                    "props wave returned {} rows for {} vertices",
                    vals.len(),
                    idx.len()
                )));
            }
            for (&i, v) in idx.iter().zip(vals) {
                rows[i] = match v {
                    Value::List(row) => row,
                    other => {
                        return Err(SnbError::Codec(format!(
                            "props wave returned non-list {other}"
                        )))
                    }
                };
            }
        }
        Ok(rows)
    }

    /// `[id, firstName]` rows for a merged ring, in ring order.
    fn rows_for(&self, ring: &[Vid]) -> Result<OpResult> {
        let props = self.props_wave(ring, &[PropKey::Id, PropKey::FirstName])?;
        Ok(props
            .into_iter()
            .map(|row| row.iter().map(normalize).collect())
            .collect())
    }

    fn one_hop(&self, person: u64) -> Result<OpResult> {
        let start = Vid::new(VertexLabel::Person, person);
        let mut seen: FastSet<Vid> = FastSet::default();
        seen.insert(start);
        let ring: Vec<Vid> = self
            .expand_wave(&[start], Direction::Both, Some(EdgeLabel::Knows))?
            .into_iter()
            .filter(|&v| seen.insert(v))
            .collect();
        self.rows_for(&ring)
    }

    fn two_hop(&self, person: u64) -> Result<OpResult> {
        let start = Vid::new(VertexLabel::Person, person);
        let mut seen: FastSet<Vid> = FastSet::default();
        seen.insert(start);
        let mut ring1 = Vec::new();
        for v in self.expand_wave(&[start], Direction::Both, Some(EdgeLabel::Knows))? {
            if seen.insert(v) {
                ring1.push(v);
            }
        }
        // The second wave is where scatter-gather pays off: ring-1
        // vertices are spread across shards, and each shard expands its
        // whole slice in ONE round trip.
        let mut all = ring1.clone();
        for v in self.expand_wave(&ring1, Direction::Both, Some(EdgeLabel::Knows))? {
            if seen.insert(v) {
                all.push(v);
            }
        }
        self.rows_for(&all)
    }

    fn shortest_path(&self, a: u64, b: u64) -> Result<OpResult> {
        if a == b {
            return Ok(vec![vec![Value::Int(0)]]);
        }
        let start = Vid::new(VertexLabel::Person, a);
        let goal = Vid::new(VertexLabel::Person, b);
        let mut seen: FastSet<Vid> = FastSet::default();
        seen.insert(start);
        let mut level = vec![start];
        // Same depth cap as `repeat_both_until(.., 10)`.
        for depth in 1..=10i64 {
            let mut next = Vec::new();
            for v in self.expand_wave(&level, Direction::Both, Some(EdgeLabel::Knows))? {
                if v == goal {
                    return Ok(vec![vec![Value::Int(depth)]]);
                }
                if seen.insert(v) {
                    next.push(v);
                }
            }
            if next.is_empty() {
                break;
            }
            level = next;
        }
        Ok(Vec::new())
    }

    /// Create the ghost for a non-owned edge endpoint if the shard has
    /// never seen it. `Conflict` means a concurrent writer won the race
    /// — the ghost exists, which is all that matters.
    fn ensure_ghost(&self, shard: usize, v: Vid) -> Result<()> {
        if self.shards[shard].backend.vertex_exists(v) {
            return Ok(());
        }
        match self.shards[shard]
            .pool
            .submit(&Traversal::g().add_v(v.label(), v.local(), Vec::new()))
        {
            Ok(_) | Err(SnbError::Conflict(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Pipeline one shard's wave in bounded chunks, gathering every
    /// reply per chunk before deciding (the replies stream back out of
    /// order). Ghost-flagged entries tolerate `Conflict`.
    fn run_wave(&self, shard: usize, wave: &[(Traversal, bool)]) -> Result<()> {
        for chunk in wave.chunks(self.batch_chunk) {
            let traversals: Vec<Traversal> = chunk.iter().map(|(t, _)| t.clone()).collect();
            let mut first_err = None;
            let replies = self.shards[shard].pool.submit_batch(&traversals)?;
            for (result, (_, ghost)) in replies.into_iter().zip(chunk) {
                match result {
                    Ok(_) => {}
                    Err(SnbError::Conflict(_)) if *ghost => {}
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Merged view of the partitioned graph: every *owned* vertex with
    /// its sorted properties, over all shards, sorted by vid. Ghosts
    /// are excluded by the ownership filter. Test/verification helper —
    /// not a serving path.
    pub fn merged_vertices(&self) -> Vec<(Vid, Vec<(PropKey, Value)>)> {
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for &label in &VERTEX_LABELS {
                for v in shard.backend.vertices_by_label(label).unwrap_or_default() {
                    if self.map.shard_of(v) != s {
                        continue; // ghost
                    }
                    let mut props = shard.backend.vertex_props(v).unwrap_or_default();
                    props.sort_by_key(|(k, _)| *k as u8);
                    out.push((v, props));
                }
            }
        }
        out.sort_by_key(|(v, _)| v.raw());
        out
    }

    /// Merged directed edge multiset: each edge enumerated exactly once
    /// from its source owner's copy (`src` owned ⇒ this shard holds the
    /// authoritative out-adjacency). Sorted for comparison.
    pub fn merged_edges(&self) -> Vec<(EdgeLabel, Vid, Vid)> {
        let mut out = Vec::new();
        let mut neigh: Vec<Vid> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for &vl in &VERTEX_LABELS {
                for v in shard.backend.vertices_by_label(vl).unwrap_or_default() {
                    if self.map.shard_of(v) != s {
                        continue; // ghost: its out-adjacency is counted on its owner
                    }
                    for &el in &EDGE_LABELS {
                        neigh.clear();
                        if shard
                            .backend
                            .neighbors(v, Direction::Out, Some(el), &mut neigh)
                            .is_ok()
                        {
                            for &d in &neigh {
                                out.push((el, v, d));
                            }
                        }
                    }
                }
            }
        }
        out.sort_by_key(|&(l, s, d)| (l as u8, s.raw(), d.raw()));
        out
    }
}

/// Enumerate an unsharded backend the same way [`ShardRouter::merged_vertices`]
/// enumerates the shards — the single-store oracle side of the
/// shard-equivalence comparison.
pub fn graph_vertices(backend: &dyn GraphBackend) -> Vec<(Vid, Vec<(PropKey, Value)>)> {
    let mut out = Vec::new();
    for &label in &VERTEX_LABELS {
        for v in backend.vertices_by_label(label).unwrap_or_default() {
            let mut props = backend.vertex_props(v).unwrap_or_default();
            props.sort_by_key(|(k, _)| *k as u8);
            out.push((v, props));
        }
    }
    out.sort_by_key(|(v, _)| v.raw());
    out
}

/// Single-store counterpart of [`ShardRouter::merged_edges`].
pub fn graph_edges(backend: &dyn GraphBackend) -> Vec<(EdgeLabel, Vid, Vid)> {
    let mut out = Vec::new();
    let mut neigh: Vec<Vid> = Vec::new();
    for &vl in &VERTEX_LABELS {
        for v in backend.vertices_by_label(vl).unwrap_or_default() {
            for &el in &EDGE_LABELS {
                neigh.clear();
                if backend.neighbors(v, Direction::Out, Some(el), &mut neigh).is_ok() {
                    for &d in &neigh {
                        out.push((el, v, d));
                    }
                }
            }
        }
    }
    out.sort_by_key(|&(l, s, d)| (l as u8, s.raw(), d.raw()));
    out
}

impl SutAdapter for ShardRouter {
    fn name(&self) -> &'static str {
        self.name
    }

    fn load(&self, snapshot: &Dataset) -> Result<()> {
        // Structure-API bulk load, like the other adapters — loading is
        // not the measured network path. Vertices to their owners, then
        // edges to both endpoint owners with ghosts where needed.
        for v in &snapshot.vertices {
            let vid = Vid::new(v.label, v.id);
            self.shards[self.owner(vid)]
                .backend
                .add_vertex(v.label, v.id, &v.props)?;
        }
        for e in &snapshot.edges {
            for s in self.edge_targets(e.src, e.dst).into_iter().flatten() {
                for &ep in &[e.src, e.dst] {
                    if self.owner(ep) != s && !self.shards[s].backend.vertex_exists(ep) {
                        match self.shards[s].backend.add_vertex(ep.label(), ep.local(), &[]) {
                            Ok(_) | Err(SnbError::Conflict(_)) => {}
                            Err(err) => return Err(err),
                        }
                    }
                }
                self.shards[s].backend.add_edge(e.label, e.src, e.dst, &e.props)?;
            }
        }
        Ok(())
    }

    fn execute_read(&self, op: &ReadOp) -> Result<OpResult> {
        match op {
            ReadOp::PointLookup { person } => {
                // Single-shard: the owner answers over the unmodified
                // traversal path, identical to the unsharded adapter.
                let owner = self.owner(Vid::new(VertexLabel::Person, *person));
                read_via(&self.shards[owner].pool, op)
            }
            ReadOp::OneHop { person } => self.one_hop(*person),
            ReadOp::TwoHop { person } => self.two_hop(*person),
            ReadOp::ShortestPath { a, b } => self.shortest_path(*a, *b),
            other => Err(SnbError::Plan(format!(
                "sharded router does not route {other:?}"
            ))),
        }
    }

    fn execute_update(&self, op: &UpdateOp) -> Result<()> {
        if let Some(v) = &op.new_vertex {
            let vid = Vid::new(v.label, v.id);
            self.shards[self.owner(vid)]
                .pool
                .submit(&Traversal::g().add_v(v.label, v.id, v.props.clone()))?;
        }
        for e in &op.new_edges {
            for s in self.edge_targets(e.src, e.dst).into_iter().flatten() {
                for &ep in &[e.src, e.dst] {
                    if self.owner(ep) != s {
                        self.ensure_ghost(s, ep)?;
                    }
                }
                self.shards[s]
                    .pool
                    .submit(&Traversal::g().add_e(e.label, e.src, e.dst, e.props.clone()))?;
            }
        }
        Ok(())
    }

    fn execute_update_batch(&self, ops: &[UpdateOp]) -> Result<usize> {
        // Same dependency-wave discipline as the remote adapter, but
        // partitioned: wave 1 is every vertex the batch needs — real
        // creations on their owners plus batch-deduped ghosts — and it
        // is confirmed on EVERY shard before the first edge goes out,
        // because a cross-shard edge needs its ghost in place remotely,
        // not just locally.
        let n = self.shards.len();
        let mut vertex_waves: Vec<Vec<(Traversal, bool)>> = vec![Vec::new(); n];
        let mut edge_waves: Vec<Vec<(Traversal, bool)>> = vec![Vec::new(); n];
        let mut ghost_planned: FastSet<(usize, u64)> = FastSet::default();
        for op in ops {
            if let Some(v) = &op.new_vertex {
                let vid = Vid::new(v.label, v.id);
                vertex_waves[self.owner(vid)]
                    .push((Traversal::g().add_v(v.label, v.id, v.props.clone()), false));
            }
            for e in &op.new_edges {
                for s in self.edge_targets(e.src, e.dst).into_iter().flatten() {
                    for &ep in &[e.src, e.dst] {
                        if self.owner(ep) != s
                            && ghost_planned.insert((s, ep.raw()))
                            && !self.shards[s].backend.vertex_exists(ep)
                        {
                            vertex_waves[s].push((
                                Traversal::g().add_v(ep.label(), ep.local(), Vec::new()),
                                true,
                            ));
                        }
                    }
                    edge_waves[s].push((
                        Traversal::g().add_e(e.label, e.src, e.dst, e.props.clone()),
                        false,
                    ));
                }
            }
        }
        for (s, wave) in vertex_waves.iter().enumerate() {
            self.run_wave(s, wave)?;
        }
        for (s, wave) in edge_waves.iter().enumerate() {
            self.run_wave(s, wave)?;
        }
        Ok(ops.len())
    }

    fn storage_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.backend.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::gremlin::GremlinAdapter;

    fn sorted(mut rows: OpResult) -> OpResult {
        rows.sort();
        rows
    }

    #[test]
    fn sharded_reads_match_the_single_store_adapter() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let oracle = GremlinAdapter::native();
        oracle.load(&data.snapshot).unwrap();
        for shards in [1, 2, 3] {
            let router = ShardRouter::native(shards).unwrap();
            router.load(&data.snapshot).unwrap();
            let mut persons = data.snapshot.vertices_of(snb_core::VertexLabel::Person);
            let a = persons.next().unwrap().id;
            let b = persons.next().unwrap().id;
            let point = ReadOp::PointLookup { person: a };
            assert_eq!(
                oracle.execute_read(&point).unwrap(),
                router.execute_read(&point).unwrap(),
                "{shards}-shard point lookup"
            );
            for op in [ReadOp::OneHop { person: a }, ReadOp::TwoHop { person: a }] {
                // Row order is merge-order-dependent (see module docs);
                // the row set must be identical.
                assert_eq!(
                    sorted(oracle.execute_read(&op).unwrap()),
                    sorted(router.execute_read(&op).unwrap()),
                    "{shards}-shard {op:?}"
                );
            }
            let sp = ReadOp::ShortestPath { a, b };
            assert_eq!(
                oracle.execute_read(&sp).unwrap(),
                router.execute_read(&sp).unwrap(),
                "{shards}-shard shortest path"
            );
            assert_eq!(
                oracle.execute_read(&ReadOp::ShortestPath { a, b: a }).unwrap(),
                router.execute_read(&ReadOp::ShortestPath { a, b: a }).unwrap(),
            );
        }
    }

    #[test]
    fn per_op_updates_merge_to_the_single_store_state() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let oracle = GremlinAdapter::native();
        oracle.load(&data.snapshot).unwrap();
        let router = ShardRouter::native(3).unwrap();
        router.load(&data.snapshot).unwrap();
        for op in data.updates.iter().take(60) {
            oracle.execute_update(op).unwrap();
            router.execute_update(op).unwrap();
        }
        let backend = oracle.graph_backend().unwrap();
        assert_eq!(graph_vertices(&*backend), router.merged_vertices());
        assert_eq!(graph_edges(&*backend), router.merged_edges());
    }

    #[test]
    fn batched_updates_merge_to_the_single_store_state() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let oracle = GremlinAdapter::native();
        oracle.load(&data.snapshot).unwrap();
        let router = ShardRouter::native(2).unwrap();
        router.load(&data.snapshot).unwrap();
        let ops: Vec<_> = data.updates.iter().take(120).cloned().collect();
        for op in &ops {
            oracle.execute_update(op).unwrap();
        }
        assert_eq!(router.execute_update_batch(&ops).unwrap(), ops.len());
        let backend = oracle.graph_backend().unwrap();
        assert_eq!(graph_vertices(&*backend), router.merged_vertices());
        assert_eq!(graph_edges(&*backend), router.merged_edges());
    }

    #[test]
    fn batched_cross_shard_edges_to_same_batch_vertices_apply() {
        // The sharded analogue of the remote adapter's dependency-wave
        // test: every op's edge targets the previous op's vertex, and
        // with >1 shard roughly half those edges cross a shard boundary
        // — the wave barrier must still make every one land.
        use snb_datagen::{EdgeRec, UpdateKind, VertexRec};
        let router = ShardRouter::native(2).unwrap();
        let n = 150u64;
        let ops: Vec<UpdateOp> = (0..n)
            .map(|i| UpdateOp {
                kind: UpdateKind::AddPerson,
                ts_ms: i as i64,
                dependency_ms: 0,
                new_vertex: Some(VertexRec {
                    label: VertexLabel::Person,
                    id: 1000 + i,
                    props: vec![],
                    creation_ms: i as i64,
                }),
                new_edges: if i == 0 {
                    vec![]
                } else {
                    vec![EdgeRec {
                        label: EdgeLabel::Knows,
                        src: Vid::new(VertexLabel::Person, 1000 + i),
                        dst: Vid::new(VertexLabel::Person, 1000 + i - 1),
                        props: vec![],
                        creation_ms: i as i64,
                    }]
                },
            })
            .collect();
        assert_eq!(router.execute_update_batch(&ops).unwrap(), ops.len());
        assert_eq!(router.merged_vertices().len(), n as usize);
        assert_eq!(router.merged_edges().len(), n as usize - 1);
    }

    #[test]
    fn hot_frontier_cache_hits_and_invalidates_on_any_shard_write() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let oracle = GremlinAdapter::native();
        oracle.load(&data.snapshot).unwrap();
        let router = ShardRouter::native(2).unwrap();
        router.load(&data.snapshot).unwrap();
        let cache = router.frontier_cache().expect("native shards have epochs");
        let person = data
            .snapshot
            .vertices_of(snb_core::VertexLabel::Person)
            .next()
            .unwrap()
            .id;
        let op = ReadOp::TwoHop { person };
        let first = sorted(router.execute_read(&op).unwrap());
        let cold_hits = cache.stats().hits;
        let second = sorted(router.execute_read(&op).unwrap());
        assert_eq!(first, second);
        assert!(cache.stats().hits > cold_hits, "repeat two-hop hits the frontier cache");
        // A write through the router (any shard) advances that shard's
        // epoch; the next read must recompute against fresh state and
        // still match the oracle.
        let update = data.updates.first().expect("tiny data has updates");
        oracle.execute_update(update).unwrap();
        router.execute_update(update).unwrap();
        assert_eq!(
            sorted(oracle.execute_read(&op).unwrap()),
            sorted(router.execute_read(&op).unwrap()),
            "post-write read is fresh"
        );
        assert_eq!(cache.stats().stale_served, 0);
    }

    #[test]
    fn disabled_frontier_cache_still_serves_reads() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let router = ShardRouter::native_with_cache(2, 0).unwrap();
        router.load(&data.snapshot).unwrap();
        assert!(router.frontier_cache().is_none());
        let person = data
            .snapshot
            .vertices_of(snb_core::VertexLabel::Person)
            .next()
            .unwrap()
            .id;
        let rows = router.execute_read(&ReadOp::TwoHop { person }).unwrap();
        let again = router.execute_read(&ReadOp::TwoHop { person }).unwrap();
        assert_eq!(sorted(rows), sorted(again));
    }

    #[test]
    fn unrouted_operations_fail_with_a_plan_error() {
        let router = ShardRouter::native(1).unwrap();
        let err = router
            .execute_read(&ReadOp::Is1Profile { person: 1 })
            .unwrap_err();
        assert!(matches!(err, SnbError::Plan(_)), "{err}");
    }
}
