//! The real-time interactive workload behind Figure 3.
//!
//! Architecture (the paper's Figure 1): the update stream is produced
//! into a partitioned Kafka-like topic, keyed by
//! [`UpdateOp::partition_key`]; a pool of appliers (a consumer group,
//! one partition each) continuously consumes the topic and applies
//! batched updates to the system under test, honouring the dependency
//! tracker through the per-partition frontier protocol (see
//! [`crate::ingest`]); N concurrent closed-loop readers execute the
//! reduced read mix (short reads + a 2-hop complex read). Read and
//! write completions are bucketed per second to draw the figure.

use bytes::Bytes;
use parking_lot::Mutex;
use snb_core::metrics::{LatencyStats, ThroughputSeries};
use snb_core::SnbError;
use std::collections::HashMap;
use snb_datagen::GeneratedData;
use snb_mq::{Broker, Consumer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::adapter::SutAdapter;
use crate::ingest::{applier_loop, Applier};
use crate::ops::ParamGen;
use crate::scheduler::{DependencyTracker, IngestFrontiers};

/// Knobs for the interactive run.
#[derive(Debug, Clone)]
pub struct InteractiveConfig {
    /// Concurrent closed-loop reader threads (the paper uses 32).
    pub readers: usize,
    /// Wall-clock duration of the measured window.
    pub duration: Duration,
    /// Parameter seed (same seed → same read mix for every system).
    pub seed: u64,
    /// Parallel update appliers (= update-topic partitions).
    pub appliers: usize,
    /// Operations applied per engine batch.
    pub batch_size: usize,
    /// Pause each reader takes between operations (`Duration::ZERO` =
    /// fully closed-loop). Lets a run model think-time clients instead
    /// of readers that saturate every core.
    pub read_pacing: Duration,
}

impl Default for InteractiveConfig {
    fn default() -> Self {
        InteractiveConfig {
            readers: 32,
            duration: Duration::from_secs(10),
            seed: 0x1db0,
            appliers: 2,
            batch_size: 128,
            read_pacing: Duration::ZERO,
        }
    }
}

/// Outcome of one interactive run.
#[derive(Debug, Clone)]
pub struct InteractiveReport {
    pub system: String,
    /// Completed read operations per second of the run.
    pub reads_per_sec: Vec<u64>,
    /// Applied update operations per second of the run.
    pub writes_per_sec: Vec<u64>,
    pub total_reads: u64,
    pub total_writes: u64,
    /// Reads rejected or timed out (Gremlin Server overload).
    pub read_errors: u64,
    pub write_errors: u64,
    /// Per-operation read latency (name → (mean ms, p99 ms, samples)).
    pub read_latency: Vec<(String, f64, f64, usize)>,
}

impl InteractiveReport {
    /// Mean read throughput over the window.
    pub fn mean_reads_per_sec(&self) -> f64 {
        mean(&self.reads_per_sec)
    }

    /// Mean write throughput over the window.
    pub fn mean_writes_per_sec(&self) -> f64 {
        mean(&self.writes_per_sec)
    }
}

fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }
}

/// Run the interactive workload against one adapter. The adapter must
/// already be loaded with the snapshot of `data`.
pub fn run_interactive(
    adapter: &dyn SutAdapter,
    data: &GeneratedData,
    config: &InteractiveConfig,
) -> InteractiveReport {
    let appliers = config.appliers.max(1);
    let broker = Broker::new();
    let topic = broker
        .create_topic("updates", appliers as u32)
        .expect("fresh broker");
    let producer = broker.producer("updates").expect("topic exists");

    let stop = Arc::new(AtomicBool::new(false));
    let tracker = Arc::new(DependencyTracker::new(data.cut_ms));
    let frontiers = Arc::new(IngestFrontiers::new(appliers, data.cut_ms));
    let read_tput = Arc::new(ThroughputSeries::new());
    let write_tput = Arc::new(ThroughputSeries::new());
    let read_errors = Arc::new(AtomicU64::new(0));
    let write_errors = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<HashMap<&'static str, LatencyStats>>> =
        Arc::new(Mutex::new(HashMap::new()));

    std::thread::scope(|scope| {
        // Producer: streams the update operations into the topic, keyed
        // so every write touching one entity lands in one partition.
        {
            let stop = Arc::clone(&stop);
            let frontiers = Arc::clone(&frontiers);
            let updates = &data.updates;
            scope.spawn(move || {
                for op in updates {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let key = Bytes::from(op.partition_key().to_le_bytes().to_vec());
                    producer.send(op.ts_ms, Some(key), Bytes::from(op.encode_binary()));
                    frontiers.producer_advance(op.ts_ms);
                }
                // Whether the stream ended or the run stopped, nothing
                // more will be sent: let idle partitions drain.
                frontiers.producer_finished();
            });
        }

        // Appliers: a consumer group, one partition each, applying
        // dependency-ready updates in batches until the run stops.
        for mut consumer in Consumer::group(&topic, appliers) {
            let tracker = Arc::clone(&tracker);
            let frontiers = Arc::clone(&frontiers);
            let write_tput = Arc::clone(&write_tput);
            let write_errors = Arc::clone(&write_errors);
            let stop = Arc::clone(&stop);
            let batch_size = config.batch_size.max(1);
            scope.spawn(move || {
                let ctx = Applier {
                    adapter,
                    tracker: &tracker,
                    frontiers: &frontiers,
                    applied: &write_tput,
                    errors: &write_errors,
                    stop: &stop,
                    drain: false,
                    batch_size,
                    dependency_timeout: Duration::from_secs(2),
                    pace_ops_per_sec: None,
                };
                applier_loop(&ctx, &mut consumer);
            });
        }

        // Readers: closed-loop clients running the reduced mix.
        for r in 0..config.readers {
            let stop = Arc::clone(&stop);
            let read_tput = Arc::clone(&read_tput);
            let read_errors = Arc::clone(&read_errors);
            let mut params = ParamGen::new(data, config.seed.wrapping_add(r as u64));
            let latencies = Arc::clone(&latencies);
            let pacing = config.read_pacing;
            scope.spawn(move || {
                let mut local: HashMap<&'static str, LatencyStats> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    if !pacing.is_zero() {
                        std::thread::sleep(pacing);
                    }
                    let op = params.interactive_read();
                    let t0 = std::time::Instant::now();
                    match adapter.execute_read(&op) {
                        Ok(_) => {
                            local.entry(op.name()).or_default().record(t0.elapsed());
                            read_tput.record();
                        }
                        Err(SnbError::Overloaded(_)) => {
                            read_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            read_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let mut shared = latencies.lock();
                for (name, stats) in local {
                    shared.entry(name).or_default().merge(&stats);
                }
            });
        }

        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
    });

    let secs = config.duration.as_secs() as usize;
    let clamp = |mut xs: Vec<u64>| {
        xs.truncate(secs.max(1));
        xs
    };
    let mut read_latency: Vec<(String, f64, f64, usize)> = latencies
        .lock()
        .iter()
        .map(|(name, s)| (name.to_string(), s.mean_ms(), s.percentile_ms(99.0), s.len()))
        .collect();
    read_latency.sort_by(|a, b| a.0.cmp(&b.0));
    InteractiveReport {
        system: adapter.name().to_string(),
        total_reads: read_tput.total(),
        total_writes: write_tput.total(),
        reads_per_sec: clamp(read_tput.per_second()),
        writes_per_sec: clamp(write_tput.per_second()),
        read_errors: read_errors.load(Ordering::Relaxed),
        write_errors: write_errors.load(Ordering::Relaxed),
        read_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::sql::SqlAdapter;

    #[test]
    fn interactive_run_produces_reads_and_writes() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let adapter = SqlAdapter::row_store();
        adapter.load(&data.snapshot).unwrap();
        let report = run_interactive(
            &adapter,
            &data,
            &InteractiveConfig {
                readers: 4,
                duration: Duration::from_millis(600),
                seed: 1,
                ..InteractiveConfig::default()
            },
        );
        assert!(report.total_reads > 0, "readers made progress");
        assert!(report.total_writes > 0, "writer made progress");
        assert_eq!(report.write_errors, 0, "in-order stream has no dependency failures");
        assert!(report.mean_reads_per_sec() > 0.0);
        assert!(!report.read_latency.is_empty(), "per-op latency recorded");
        let total: usize = report.read_latency.iter().map(|(_, _, _, n)| n).sum();
        assert_eq!(total as u64, report.total_reads);
    }
}
