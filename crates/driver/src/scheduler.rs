//! LDBC-style dependency tracking for the update stream.
//!
//! Every update carries a *dependency timestamp*: the creation time of
//! the newest entity it references. The executor must not run an update
//! until every operation at or before its dependency timestamp has been
//! applied. The tracker maintains the applied watermark and lets the
//! writer block until an operation becomes safe.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Tracks the applied-operation watermark.
pub struct DependencyTracker {
    watermark: AtomicI64,
    notify: (Mutex<()>, Condvar),
}

impl DependencyTracker {
    /// Tracker whose initial watermark covers the loaded snapshot: any
    /// dependency at or before `snapshot_cut_ms` is immediately safe.
    pub fn new(snapshot_cut_ms: i64) -> Self {
        DependencyTracker {
            watermark: AtomicI64::new(snapshot_cut_ms),
            notify: (Mutex::new(()), Condvar::new()),
        }
    }

    /// The current watermark.
    pub fn watermark(&self) -> i64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// True when an operation with this dependency timestamp may run.
    pub fn ready(&self, dependency_ms: i64) -> bool {
        dependency_ms <= self.watermark()
    }

    /// Record that the operation scheduled at `ts_ms` has been applied,
    /// advancing the watermark monotonically.
    pub fn mark_applied(&self, ts_ms: i64) {
        self.watermark.fetch_max(ts_ms, Ordering::AcqRel);
        // Notify while holding the mutex: a waiter that observed a stale
        // watermark but has not parked yet would otherwise miss this
        // wake entirely and sleep out its whole timeout slice — with
        // parallel appliers handing dependencies to each other, those
        // lost wakeups serialize the pool at ~50 handoffs/s.
        let _guard = self.notify.0.lock();
        self.notify.1.notify_all();
    }

    /// Block until `ready(dependency_ms)` or the timeout elapses;
    /// returns whether the dependency became safe.
    pub fn wait_until_ready(&self, dependency_ms: i64, timeout: Duration) -> bool {
        if self.ready(dependency_ms) {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut guard = self.notify.0.lock();
        while !self.ready(dependency_ms) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.notify.1.wait_for(&mut guard, deadline - now);
        }
        true
    }
}

/// Per-partition applied frontiers for parallel ingestion.
///
/// The [`DependencyTracker`] watermark means "every operation at or
/// before this timestamp has been applied". With a single sequential
/// writer, `mark_applied(op.ts_ms)` maintains that invariant directly.
/// With N appliers each owning a partition of the (per-partition
/// time-ordered) stream, an individual applier's latest timestamp says
/// nothing about the others — so appliers instead publish per-partition
/// frontiers here and feed `mark_applied` from [`min_applied`], the low
/// watermark across partitions, which is a true completion time again.
///
/// Protocol (all methods are lock-free):
/// * the producer calls [`producer_advance`] after each send and
///   [`producer_finished`] at end of stream;
/// * an applier calls [`publish`] for its partition after applying a
///   batch (with the batch's last timestamp), before blocking on a
///   dependency (with `pending.ts_ms - 1` — everything earlier in the
///   partition is applied), and on an empty poll (with the producer
///   frontier read *before* the poll, minus one — any later record in
///   the partition must carry a timestamp at or past that frontier).
///
/// [`producer_advance`]: IngestFrontiers::producer_advance
/// [`producer_finished`]: IngestFrontiers::producer_finished
/// [`publish`]: IngestFrontiers::publish
/// [`min_applied`]: IngestFrontiers::min_applied
pub struct IngestFrontiers {
    /// Highest timestamp the producer has enqueued; `i64::MAX` once the
    /// stream is complete.
    produced: AtomicI64,
    applied: Vec<AtomicI64>,
}

impl IngestFrontiers {
    /// Frontiers for `partitions` partitions, all starting at `floor`
    /// (the snapshot cut: everything at or before it is loaded).
    pub fn new(partitions: usize, floor: i64) -> Self {
        IngestFrontiers {
            produced: AtomicI64::new(floor),
            applied: (0..partitions.max(1)).map(|_| AtomicI64::new(floor)).collect(),
        }
    }

    /// Record that the producer has enqueued an operation at `ts_ms`.
    pub fn producer_advance(&self, ts_ms: i64) {
        self.produced.fetch_max(ts_ms, Ordering::AcqRel);
    }

    /// The stream is fully enqueued; idle partitions may drain to the end.
    pub fn producer_finished(&self) {
        self.produced.store(i64::MAX, Ordering::Release);
    }

    /// The producer frontier.
    pub fn produced(&self) -> i64 {
        self.produced.load(Ordering::Acquire)
    }

    /// Advance one partition's applied frontier (monotone).
    pub fn publish(&self, partition: usize, ts_ms: i64) {
        self.applied[partition].fetch_max(ts_ms, Ordering::AcqRel);
    }

    /// The low watermark: every operation at or before this timestamp
    /// has been applied, whichever partition it landed in.
    pub fn min_applied(&self) -> i64 {
        self.applied
            .iter()
            .map(|f| f.load(Ordering::Acquire))
            .min()
            .expect("at least one partition")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_dependencies_are_immediately_ready() {
        let t = DependencyTracker::new(100);
        assert!(t.ready(50));
        assert!(t.ready(100));
        assert!(!t.ready(101));
    }

    #[test]
    fn watermark_is_monotone() {
        let t = DependencyTracker::new(0);
        t.mark_applied(10);
        t.mark_applied(5);
        assert_eq!(t.watermark(), 10);
        t.mark_applied(20);
        assert_eq!(t.watermark(), 20);
    }

    #[test]
    fn wait_until_ready_times_out() {
        let t = DependencyTracker::new(0);
        assert!(!t.wait_until_ready(99, Duration::from_millis(20)));
    }

    #[test]
    fn wait_until_ready_wakes_on_progress() {
        let t = Arc::new(DependencyTracker::new(0));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.wait_until_ready(50, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        t.mark_applied(60);
        assert!(h.join().unwrap());
    }

    #[test]
    fn min_applied_is_the_low_watermark_across_partitions() {
        let f = IngestFrontiers::new(3, 100);
        assert_eq!(f.min_applied(), 100);
        f.publish(0, 250);
        f.publish(2, 400);
        assert_eq!(f.min_applied(), 100, "partition 1 still at the floor");
        f.publish(1, 300);
        assert_eq!(f.min_applied(), 250);
        f.publish(0, 200);
        assert_eq!(f.min_applied(), 250, "frontiers are monotone");
    }

    #[test]
    fn producer_frontier_advances_and_finishes() {
        let f = IngestFrontiers::new(2, 0);
        assert_eq!(f.produced(), 0);
        f.producer_advance(500);
        f.producer_advance(200);
        assert_eq!(f.produced(), 500, "monotone");
        f.producer_finished();
        assert_eq!(f.produced(), i64::MAX);
    }

    #[test]
    fn frontier_fed_watermark_never_overtakes_a_lagging_partition() {
        // The soundness property the whole protocol exists for: feeding
        // mark_applied from min_applied keeps the tracker's watermark a
        // true completion time even when one partition races ahead.
        let f = IngestFrontiers::new(2, 0);
        let t = DependencyTracker::new(0);
        f.publish(0, 1_000);
        t.mark_applied(f.min_applied());
        assert!(!t.ready(500), "partition 1 has not confirmed 500 yet");
        f.publish(1, 600);
        t.mark_applied(f.min_applied());
        assert!(t.ready(500));
        assert!(!t.ready(700));
    }
}
