//! LDBC-style dependency tracking for the update stream.
//!
//! Every update carries a *dependency timestamp*: the creation time of
//! the newest entity it references. The executor must not run an update
//! until every operation at or before its dependency timestamp has been
//! applied. The tracker maintains the applied watermark and lets the
//! writer block until an operation becomes safe.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Tracks the applied-operation watermark.
pub struct DependencyTracker {
    watermark: AtomicI64,
    notify: (Mutex<()>, Condvar),
}

impl DependencyTracker {
    /// Tracker whose initial watermark covers the loaded snapshot: any
    /// dependency at or before `snapshot_cut_ms` is immediately safe.
    pub fn new(snapshot_cut_ms: i64) -> Self {
        DependencyTracker {
            watermark: AtomicI64::new(snapshot_cut_ms),
            notify: (Mutex::new(()), Condvar::new()),
        }
    }

    /// The current watermark.
    pub fn watermark(&self) -> i64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// True when an operation with this dependency timestamp may run.
    pub fn ready(&self, dependency_ms: i64) -> bool {
        dependency_ms <= self.watermark()
    }

    /// Record that the operation scheduled at `ts_ms` has been applied,
    /// advancing the watermark monotonically.
    pub fn mark_applied(&self, ts_ms: i64) {
        self.watermark.fetch_max(ts_ms, Ordering::AcqRel);
        self.notify.1.notify_all();
    }

    /// Block until `ready(dependency_ms)` or the timeout elapses;
    /// returns whether the dependency became safe.
    pub fn wait_until_ready(&self, dependency_ms: i64, timeout: Duration) -> bool {
        if self.ready(dependency_ms) {
            return true;
        }
        let deadline = Instant::now() + timeout;
        let mut guard = self.notify.0.lock();
        while !self.ready(dependency_ms) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.notify.1.wait_for(&mut guard, deadline - now);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_dependencies_are_immediately_ready() {
        let t = DependencyTracker::new(100);
        assert!(t.ready(50));
        assert!(t.ready(100));
        assert!(!t.ready(101));
    }

    #[test]
    fn watermark_is_monotone() {
        let t = DependencyTracker::new(0);
        t.mark_applied(10);
        t.mark_applied(5);
        assert_eq!(t.watermark(), 10);
        t.mark_applied(20);
        assert_eq!(t.watermark(), 20);
    }

    #[test]
    fn wait_until_ready_times_out() {
        let t = DependencyTracker::new(0);
        assert!(!t.wait_until_ready(99, Duration::from_millis(20)));
    }

    #[test]
    fn wait_until_ready_wakes_on_progress() {
        let t = Arc::new(DependencyTracker::new(0));
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.wait_until_ready(50, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        t.mark_applied(60);
        assert!(h.join().unwrap());
    }
}
