//! Bulk-loading experiments: Table 4 (single loader through the
//! TinkerPop structure API) and Appendix A's concurrent-loader scaling.

use snb_core::{GraphBackend, Result};
use snb_datagen::Dataset;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub loaders: usize,
    pub vertices: usize,
    pub edges: usize,
    pub total_secs: f64,
    pub vertices_per_sec: f64,
    pub edges_per_sec: f64,
}

/// Load a snapshot through the structure API with `loaders` concurrent
/// threads (vertices first, then edges, as the LDBC Gremlin loading
/// utilities do). Insert failures other than benign duplicate races are
/// returned.
pub fn load_concurrent(
    backend: &dyn GraphBackend,
    snapshot: &Dataset,
    loaders: usize,
) -> Result<LoadReport> {
    assert!(loaders > 0, "need at least one loader");
    let started = Instant::now();
    let vstart = Instant::now();
    run_chunked(loaders, snapshot.vertices.len(), |i| {
        let v = &snapshot.vertices[i];
        backend.add_vertex(v.label, v.id, &v.props).map(|_| ())
    })?;
    let v_secs = vstart.elapsed().as_secs_f64();
    let estart = Instant::now();
    run_chunked(loaders, snapshot.edges.len(), |i| {
        let e = &snapshot.edges[i];
        backend.add_edge(e.label, e.src, e.dst, &e.props)
    })?;
    let e_secs = estart.elapsed().as_secs_f64();
    Ok(LoadReport {
        loaders,
        vertices: snapshot.vertices.len(),
        edges: snapshot.edges.len(),
        total_secs: started.elapsed().as_secs_f64(),
        vertices_per_sec: snapshot.vertices.len() as f64 / v_secs.max(1e-9),
        edges_per_sec: snapshot.edges.len() as f64 / e_secs.max(1e-9),
    })
}

/// Run `f(0..n)` across `loaders` threads pulling indexes from a shared
/// counter (work stealing keeps loaders busy even with skewed items).
fn run_chunked(
    loaders: usize,
    n: usize,
    f: impl Fn(usize) -> Result<()> + Sync,
) -> Result<()> {
    let next = AtomicUsize::new(0);
    let failure = parking_lot::Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..loaders {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || failure.lock().is_some() {
                    return;
                }
                if let Err(e) = f(i) {
                    *failure.lock() = Some(e);
                    return;
                }
            });
        }
    });
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::{generate, GeneratorConfig};
    use snb_kvgraph::{KvGraph, PartitionedKv};

    #[test]
    fn single_and_multi_loader_load_everything() {
        let data = generate(&GeneratorConfig::tiny());
        for loaders in [1, 4] {
            let g = KvGraph::new(PartitionedKv::new());
            let report = load_concurrent(&g, &data.snapshot, loaders).unwrap();
            assert_eq!(report.vertices, data.snapshot.vertices.len());
            assert_eq!(report.edges, data.snapshot.edges.len());
            assert_eq!(g.vertex_count(), report.vertices);
            assert_eq!(g.edge_count(), report.edges);
            assert!(report.vertices_per_sec > 0.0);
            assert!(report.edges_per_sec > 0.0);
        }
    }

    #[test]
    fn failures_propagate() {
        let data = generate(&GeneratorConfig::tiny());
        let g = KvGraph::new(PartitionedKv::new());
        load_concurrent(&g, &data.snapshot, 2).unwrap();
        // Loading the same snapshot again must fail on duplicates.
        assert!(load_concurrent(&g, &data.snapshot, 2).is_err());
    }
}
