//! The read-only latency experiment behind Tables 2 and 3.
//!
//! Each query class is executed repeatedly against the static snapshot
//! with no concurrent activity, and the mean latency is reported — the
//! paper's protocol (100 executions per class). A per-class time budget
//! replaces the paper's "unable to complete in a reasonable amount of
//! time" dashes.

use snb_core::metrics::LatencyStats;
use std::time::{Duration, Instant};

use crate::adapter::SutAdapter;
use crate::ops::ParamGen;

/// The four query classes of Tables 2/3, in row order.
pub const MICRO_KINDS: [&str; 4] = ["point_lookup", "1-hop", "2-hop", "shortest_path"];

/// Result for one (system, query class) cell.
#[derive(Debug, Clone)]
pub struct MicroCell {
    pub kind: &'static str,
    /// Mean latency; `None` = unable to complete a meaningful number of
    /// executions within the budget (the paper's "-").
    pub mean_ms: Option<f64>,
    pub samples: usize,
    /// Executions aborted by the engine (traverser-budget overloads).
    pub failures: usize,
}

/// Minimum completed executions for a cell to report a mean.
const MIN_SAMPLES: usize = 5;

/// Run the micro suite against one adapter. `seed` fixes the parameter
/// stream so every system answers the same queries.
///
/// Semantics of the paper's "-": a cell reports a mean over however
/// many executions fit in the time budget, and is marked incomplete
/// only when fewer than [`MIN_SAMPLES`] succeeded or when most
/// executions aborted (resource-exhausted traversals).
pub fn run_micro(
    adapter: &dyn SutAdapter,
    params: &mut ParamGen,
    samples: usize,
    budget_per_kind: Duration,
) -> Vec<MicroCell> {
    let mut cells = Vec::with_capacity(MICRO_KINDS.len());
    for kind in MICRO_KINDS {
        let mut stats = LatencyStats::new();
        let mut failures = 0usize;
        let started = Instant::now();
        for _ in 0..samples {
            if started.elapsed() > budget_per_kind {
                break;
            }
            let op = params.micro_op(kind);
            let t0 = Instant::now();
            let result = adapter.execute_read(&op);
            let elapsed = t0.elapsed();
            match result {
                Ok(_) => stats.record(elapsed),
                Err(snb_core::SnbError::Overloaded(_)) => failures += 1,
                Err(e) => panic!("{}: {kind} failed: {e}", adapter.name()),
            }
        }
        let enough = stats.len() >= MIN_SAMPLES.min(samples);
        let mostly_failing = failures > stats.len();
        cells.push(MicroCell {
            kind,
            mean_ms: if enough && !mostly_failing { Some(stats.mean_ms()) } else { None },
            samples: stats.len(),
            failures,
        });
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::sql::SqlAdapter;

    #[test]
    fn micro_suite_runs_on_a_small_dataset() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let adapter = SqlAdapter::row_store();
        adapter.load(&data.snapshot).unwrap();
        let mut params = ParamGen::new(&data, 42);
        let cells = run_micro(&adapter, &mut params, 5, Duration::from_secs(30));
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert!(cell.mean_ms.is_some(), "{} incomplete", cell.kind);
            assert_eq!(cell.samples, 5);
        }
    }

    #[test]
    fn budget_marks_incomplete() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let adapter = SqlAdapter::row_store();
        adapter.load(&data.snapshot).unwrap();
        let mut params = ParamGen::new(&data, 42);
        let cells = run_micro(&adapter, &mut params, 1000, Duration::from_nanos(1));
        assert!(cells.iter().all(|c| c.mean_ms.is_none()));
    }
}
