//! Read operations and parameter generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snb_core::{PropKey, VertexLabel, Vid};
use snb_datagen::GeneratedData;

/// Read-only operations: the micro query classes of Tables 2/3, the
/// LDBC short reads, and the reduced complex read of §4.3.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadOp {
    /// Table 2/3 "Point lookup": one person's profile properties.
    PointLookup { person: u64 },
    /// Table 2/3 "1-hop": distinct friend ids of a person.
    OneHop { person: u64 },
    /// Table 2/3 "2-hop": distinct persons within 1..2 knows-hops,
    /// excluding the start person.
    TwoHop { person: u64 },
    /// Table 2/3 "Shortest path": unweighted knows-distance between two
    /// persons.
    ShortestPath { a: u64, b: u64 },
    /// IS1: person profile (properties + city id).
    Is1Profile { person: u64 },
    /// IS2: a person's most recent messages.
    Is2RecentMessages { person: u64, limit: usize },
    /// IS3: friends with the friendship creation date.
    Is3Friends { person: u64 },
    /// IS4: message content + creation date.
    Is4MessageContent { message: Vid },
    /// IS5: message creator.
    Is5MessageCreator { message: Vid },
    /// IS6: the forum containing a post, with its moderator.
    Is6MessageForum { post: u64 },
    /// IS7: direct replies to a message with their authors.
    Is7MessageReplies { message: Vid },
    /// §4.3's complex read: persons within two hops with a given first
    /// name (a restriction of LDBC IC1).
    Complex2Hop { person: u64, first_name: String, limit: usize },
    /// LDBC IC2-style complex read: the most recent messages created by
    /// the person's friends. Part of the *full* complex mix the paper
    /// had to drop for the Gremlin systems (§4.4).
    RecentFriendMessages { person: u64, limit: usize },
    /// IC5/IC9-style complex read: posts created by the person's
    /// friends-of-friends (exactly the 1..2-hop ring, start excluded)
    /// at or after `min_date`, newest first.
    IcFoafPosts { person: u64, min_date: i64, limit: usize },
    /// IC-recommendation-style complex read: non-friend candidates two
    /// hops out, ranked by the number of mutual friends.
    IcMutualFriends { person: u64, limit: usize },
}

impl ReadOp {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReadOp::PointLookup { .. } => "point_lookup",
            ReadOp::OneHop { .. } => "1-hop",
            ReadOp::TwoHop { .. } => "2-hop",
            ReadOp::ShortestPath { .. } => "shortest_path",
            ReadOp::Is1Profile { .. } => "IS1",
            ReadOp::Is2RecentMessages { .. } => "IS2",
            ReadOp::Is3Friends { .. } => "IS3",
            ReadOp::Is4MessageContent { .. } => "IS4",
            ReadOp::Is5MessageCreator { .. } => "IS5",
            ReadOp::Is6MessageForum { .. } => "IS6",
            ReadOp::Is7MessageReplies { .. } => "IS7",
            ReadOp::Complex2Hop { .. } => "complex_2hop",
            ReadOp::RecentFriendMessages { .. } => "complex_friend_messages",
            ReadOp::IcFoafPosts { .. } => "complex_foaf_posts",
            ReadOp::IcMutualFriends { .. } => "complex_mutual_friends",
        }
    }
}

/// Deterministic parameter generator: draws entity ids and values from
/// the generated snapshot (the LDBC driver's parameter curation stage).
pub struct ParamGen {
    rng: StdRng,
    persons: Vec<u64>,
    posts: Vec<u64>,
    comments: Vec<u64>,
    first_names: Vec<String>,
    cut_ms: i64,
}

impl ParamGen {
    /// Build from a generated dataset.
    pub fn new(data: &GeneratedData, seed: u64) -> Self {
        let persons: Vec<u64> = data
            .snapshot
            .vertices_of(VertexLabel::Person)
            .map(|v| v.id)
            .collect();
        let posts: Vec<u64> = data.snapshot.vertices_of(VertexLabel::Post).map(|v| v.id).collect();
        let comments: Vec<u64> =
            data.snapshot.vertices_of(VertexLabel::Comment).map(|v| v.id).collect();
        let mut first_names: Vec<String> = data
            .snapshot
            .vertices_of(VertexLabel::Person)
            .filter_map(|v| v.prop(PropKey::FirstName))
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        first_names.sort();
        first_names.dedup();
        assert!(!persons.is_empty(), "snapshot contains persons");
        ParamGen {
            rng: StdRng::seed_from_u64(seed),
            persons,
            posts,
            comments,
            first_names,
            cut_ms: data.cut_ms,
        }
    }

    /// A random person id from the snapshot.
    pub fn person(&mut self) -> u64 {
        self.persons[self.rng.gen_range(0..self.persons.len())]
    }

    /// Two distinct person ids.
    pub fn person_pair(&mut self) -> (u64, u64) {
        let a = self.person();
        loop {
            let b = self.person();
            if a != b || self.persons.len() == 1 {
                return (a, b);
            }
        }
    }

    /// A random message vid (post or comment).
    pub fn message(&mut self) -> Vid {
        if !self.comments.is_empty() && self.rng.gen_bool(0.5) {
            Vid::new(VertexLabel::Comment, self.comments[self.rng.gen_range(0..self.comments.len())])
        } else {
            Vid::new(VertexLabel::Post, self.posts[self.rng.gen_range(0..self.posts.len())])
        }
    }

    /// A random post id.
    pub fn post(&mut self) -> u64 {
        self.posts[self.rng.gen_range(0..self.posts.len())]
    }

    /// A first name present in the data.
    pub fn first_name(&mut self) -> String {
        self.first_names[self.rng.gen_range(0..self.first_names.len())].clone()
    }

    /// A message-date lower bound: 1–12 simulated months before the
    /// snapshot cut, so the FoF-posts read selects a recent slice
    /// rather than the whole timeline.
    pub fn min_date(&mut self) -> i64 {
        const DAY_MS: i64 = 24 * 3600 * 1000;
        self.cut_ms - self.rng.gen_range(30..365i64) * DAY_MS
    }

    /// One operation of the micro suite.
    pub fn micro_op(&mut self, kind: &str) -> ReadOp {
        match kind {
            "point_lookup" => ReadOp::PointLookup { person: self.person() },
            "1-hop" => ReadOp::OneHop { person: self.person() },
            "2-hop" => ReadOp::TwoHop { person: self.person() },
            "shortest_path" => {
                let (a, b) = self.person_pair();
                ReadOp::ShortestPath { a, b }
            }
            other => panic!("unknown micro op `{other}`"),
        }
    }

    /// One operation of the *full* LDBC-style mix (short reads plus the
    /// complex reads) — the mix the paper had to abandon because the
    /// Gremlin systems could not sustain it (§4.4).
    pub fn full_mix_read(&mut self) -> ReadOp {
        match self.rng.gen_range(0..6u32) {
            0 => ReadOp::Complex2Hop {
                person: self.person(),
                first_name: self.first_name(),
                limit: 20,
            },
            1 => ReadOp::RecentFriendMessages { person: self.person(), limit: 20 },
            2 => ReadOp::ShortestPath {
                a: self.person(),
                b: self.person(),
            },
            3 => ReadOp::IcFoafPosts {
                person: self.person(),
                min_date: self.min_date(),
                limit: 20,
            },
            4 => ReadOp::IcMutualFriends { person: self.person(), limit: 10 },
            _ => self.interactive_read(),
        }
    }

    /// One operation of §4.3's reduced interactive read mix: mostly
    /// short reads with an occasional 2-hop complex read.
    pub fn interactive_read(&mut self) -> ReadOp {
        match self.rng.gen_range(0..10u32) {
            0 => ReadOp::Complex2Hop {
                person: self.person(),
                first_name: self.first_name(),
                limit: 20,
            },
            1 => ReadOp::Is1Profile { person: self.person() },
            2 => ReadOp::Is2RecentMessages { person: self.person(), limit: 10 },
            3 => ReadOp::Is3Friends { person: self.person() },
            4 => ReadOp::Is4MessageContent { message: self.message() },
            5 => ReadOp::Is5MessageCreator { message: self.message() },
            6 => ReadOp::Is6MessageForum { post: self.post() },
            7 => ReadOp::Is7MessageReplies { message: self.message() },
            8 => ReadOp::PointLookup { person: self.person() },
            _ => ReadOp::OneHop { person: self.person() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_datagen::{generate, GeneratorConfig};

    fn data() -> GeneratedData {
        generate(&GeneratorConfig::tiny())
    }

    #[test]
    fn param_gen_is_deterministic() {
        let d = data();
        let mut a = ParamGen::new(&d, 7);
        let mut b = ParamGen::new(&d, 7);
        for _ in 0..20 {
            assert_eq!(a.person(), b.person());
            assert_eq!(a.interactive_read(), b.interactive_read());
        }
    }

    #[test]
    fn person_pair_is_distinct() {
        let d = data();
        let mut g = ParamGen::new(&d, 1);
        for _ in 0..50 {
            let (a, b) = g.person_pair();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn micro_ops_cover_all_kinds() {
        let d = data();
        let mut g = ParamGen::new(&d, 1);
        assert!(matches!(g.micro_op("point_lookup"), ReadOp::PointLookup { .. }));
        assert!(matches!(g.micro_op("1-hop"), ReadOp::OneHop { .. }));
        assert!(matches!(g.micro_op("2-hop"), ReadOp::TwoHop { .. }));
        assert!(matches!(g.micro_op("shortest_path"), ReadOp::ShortestPath { .. }));
    }

    #[test]
    fn interactive_mix_hits_complex_and_short_reads() {
        let d = data();
        let mut g = ParamGen::new(&d, 3);
        let mut names = std::collections::HashSet::new();
        for _ in 0..300 {
            names.insert(g.interactive_read().name());
        }
        assert!(names.contains("complex_2hop"));
        assert!(names.contains("IS3"));
        assert!(names.contains("point_lookup"));
        assert!(names.len() >= 8);
    }
}
