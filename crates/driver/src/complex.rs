//! Snapshot-served operators for the IC-style complex reads, plus
//! naive reference oracles used by the equivalence tests.
//!
//! Both operators run against an immutable [`CsrSnapshot`] — either the
//! native store's folded full-graph CSR or the Person/Knows CSR the
//! SQL/SPARQL adapters pin — and produce their top-k through
//! [`top_k_by`]'s bounded heap rather than a full sort. The row orders
//! are unique total orders ((date DESC, post id ASC) and
//! (count DESC, id ASC)), so every engine that implements the same
//! contract is exactly comparable row for row.

use snb_core::{
    top_k_by, CsrSnapshot, Direction, EdgeLabel, FastMap, FastSet, Value, VertexLabel, Vid,
};
use snb_datagen::Dataset;
use std::cmp::Ordering;

use crate::adapter::OpResult;

/// Order for [`foaf_posts`] rows `[post_id, creator_id, creationDate]`:
/// newest first, post id as the unique tiebreak.
pub(crate) fn cmp_foaf(a: &Vec<Value>, b: &Vec<Value>) -> Ordering {
    b[2].cmp(&a[2]).then_with(|| a[0].cmp(&b[0]))
}

/// Order for [`mutual_friends`] rows `[candidate_id, mutual_count]`:
/// most mutual friends first, candidate id as the unique tiebreak.
pub(crate) fn cmp_mutual(a: &Vec<Value>, b: &Vec<Value>) -> Ordering {
    b[1].cmp(&a[1]).then_with(|| a[0].cmp(&b[0]))
}

/// Distinct rows exactly 1..2 undirected Knows hops from `person`,
/// start excluded — the friends-of-friends ring.
pub(crate) fn foaf_ring(s: &CsrSnapshot, person: u64) -> Vec<u32> {
    let start = match s.row_of(Vid::new(VertexLabel::Person, person)) {
        Some(r) => r,
        None => return Vec::new(),
    };
    let mut seen: FastSet<u32> = FastSet::default();
    seen.insert(start);
    let mut ring = Vec::new();
    let mut level = vec![start];
    let mut buf: Vec<u32> = Vec::new();
    for _ in 0..2 {
        let mut next = Vec::new();
        for &r in &level {
            buf.clear();
            s.neighbors_into(r, Direction::Both, Some(EdgeLabel::Knows), &mut buf);
            for &n in &buf {
                if seen.insert(n) {
                    next.push(n);
                    ring.push(n);
                }
            }
        }
        level = next;
    }
    ring
}

/// IC5/IC9-style complex read over a full-graph CSR: posts created by
/// the person's 1..2-hop ring at or after `min_date`, as
/// `[post_id, creator_id, creationDate]` rows ordered
/// (creationDate DESC, post_id ASC), top `limit` via a bounded heap.
pub fn foaf_posts(s: &CsrSnapshot, person: u64, min_date: i64, limit: usize) -> OpResult {
    let mut rows: OpResult = Vec::new();
    for r in foaf_ring(s, person) {
        let creator = s.vid_of(r).local() as i64;
        for &m in s.range(r, Direction::In, EdgeLabel::HasCreator) {
            let vid = s.vid_of(m);
            if vid.label() != VertexLabel::Post {
                continue;
            }
            match s.creation_date_ms(m) {
                Some(d) if d >= min_date => rows.push(vec![
                    Value::Int(vid.local() as i64),
                    Value::Int(creator),
                    Value::Int(d),
                ]),
                _ => {}
            }
        }
    }
    top_k_by(rows, limit, cmp_foaf)
}

/// IC-recommendation-style complex read over any CSR with Knows edges:
/// non-friend candidates exactly two hops out, ranked by how many
/// mutual friends they share with `person`, as
/// `[candidate_id, mutual_count]` rows ordered (count DESC, id ASC),
/// top `limit` via a bounded heap.
pub fn mutual_friends(s: &CsrSnapshot, person: u64, limit: usize) -> OpResult {
    let start = match s.row_of(Vid::new(VertexLabel::Person, person)) {
        Some(r) => r,
        None => return Vec::new(),
    };
    let mut buf: Vec<u32> = Vec::new();
    s.neighbors_into(start, Direction::Both, Some(EdgeLabel::Knows), &mut buf);
    let mut friends: FastSet<u32> = FastSet::default();
    friends.insert(start);
    let ring: Vec<u32> = buf.iter().copied().filter(|&f| friends.insert(f)).collect();
    let mut counts: FastMap<u32, i64> = FastMap::default();
    let mut seen_of: FastSet<u32> = FastSet::default();
    for &f in &ring {
        buf.clear();
        s.neighbors_into(f, Direction::Both, Some(EdgeLabel::Knows), &mut buf);
        // Dedup per friend so a doubly-recorded edge cannot inflate the
        // mutual count.
        seen_of.clear();
        for &c in &buf {
            if !friends.contains(&c) && seen_of.insert(c) {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
    }
    let rows: OpResult = counts
        .into_iter()
        .map(|(c, n)| vec![Value::Int(s.vid_of(c).local() as i64), Value::Int(n)])
        .collect();
    top_k_by(rows, limit, cmp_mutual)
}

/// IC2-style complex read over a full-graph CSR: the most recent
/// messages (posts *and* comments) created by the person's direct
/// friends, as `[message_id, creationDate]` rows ordered
/// (creationDate DESC, message_id ASC), top `limit` via the bounded
/// heap. The declarative adapters serve the same read through their
/// own `RecentFriendMessages` queries; the cross-engine gate compares
/// date multisets (per-label message ids overlap numerically, so the
/// id column is engine-local).
pub fn recent_messages(s: &CsrSnapshot, person: u64, limit: usize) -> OpResult {
    let start = match s.row_of(Vid::new(VertexLabel::Person, person)) {
        Some(r) => r,
        None => return Vec::new(),
    };
    let mut friends: Vec<u32> = Vec::new();
    s.neighbors_into(start, Direction::Both, Some(EdgeLabel::Knows), &mut friends);
    friends.sort_unstable();
    friends.dedup();
    let mut rows: OpResult = Vec::new();
    for &f in &friends {
        for &m in s.range(f, Direction::In, EdgeLabel::HasCreator) {
            if let Some(d) = s.creation_date_ms(m) {
                rows.push(vec![Value::Int(s.vid_of(m).local() as i64), Value::Int(d)]);
            }
        }
    }
    top_k_by(rows, limit, cmp_recent)
}

/// Order for [`recent_messages`] rows `[message_id, creationDate]`:
/// newest first, message id as the (engine-local) tiebreak.
pub(crate) fn cmp_recent(a: &Vec<Value>, b: &Vec<Value>) -> Ordering {
    b[1].cmp(&a[1]).then_with(|| a[0].cmp(&b[0]))
}

/// Brute-force oracle for [`foaf_posts`] computed straight off the
/// generated dataset: full scans, full sort, then truncate. Slow and
/// obviously correct — the equivalence gate every engine is checked
/// against.
pub fn naive_foaf_posts(data: &Dataset, person: u64, min_date: i64, limit: usize) -> OpResult {
    let adj = knows_adjacency(data);
    let ring = naive_ring(&adj, person);
    let mut creator_of: FastMap<u64, u64> = FastMap::default();
    for e in &data.edges {
        if e.label == EdgeLabel::HasCreator && e.src.label() == VertexLabel::Post {
            creator_of.insert(e.src.local(), e.dst.local());
        }
    }
    let mut rows: OpResult = Vec::new();
    for v in data.vertices_of(VertexLabel::Post) {
        let creator = match creator_of.get(&v.id) {
            Some(c) => *c,
            None => continue,
        };
        if ring.contains(&creator) && v.creation_ms >= min_date {
            rows.push(vec![
                Value::Int(v.id as i64),
                Value::Int(creator as i64),
                Value::Int(v.creation_ms),
            ]);
        }
    }
    rows.sort_by(cmp_foaf);
    rows.truncate(limit);
    rows
}

/// Brute-force oracle for [`mutual_friends`]: full scans, full sort,
/// then truncate.
pub fn naive_mutual_friends(data: &Dataset, person: u64, limit: usize) -> OpResult {
    let adj = knows_adjacency(data);
    let friends = adj.get(&person).cloned().unwrap_or_default();
    let mut counts: FastMap<u64, i64> = FastMap::default();
    for &f in &friends {
        for &c in adj.get(&f).into_iter().flatten() {
            if c != person && !friends.contains(&c) {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
    }
    let mut rows: OpResult = counts
        .into_iter()
        .map(|(c, n)| vec![Value::Int(c as i64), Value::Int(n)])
        .collect();
    rows.sort_by(cmp_mutual);
    rows.truncate(limit);
    rows
}

/// Undirected Knows adjacency sets from the dataset's edge list.
fn knows_adjacency(data: &Dataset) -> FastMap<u64, FastSet<u64>> {
    let mut adj: FastMap<u64, FastSet<u64>> = FastMap::default();
    for e in &data.edges {
        if e.label == EdgeLabel::Knows {
            adj.entry(e.src.local()).or_default().insert(e.dst.local());
            adj.entry(e.dst.local()).or_default().insert(e.src.local());
        }
    }
    adj
}

/// The 1..2-hop ring by BFS over the adjacency sets.
fn naive_ring(adj: &FastMap<u64, FastSet<u64>>, person: u64) -> FastSet<u64> {
    let mut ring: FastSet<u64> = FastSet::default();
    for &f in adj.get(&person).into_iter().flatten() {
        if f != person && ring.insert(f) {}
    }
    let one: Vec<u64> = ring.iter().copied().collect();
    for f in one {
        for &c in adj.get(&f).into_iter().flatten() {
            if c != person {
                ring.insert(c);
            }
        }
    }
    ring
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::SutAdapter;
    use snb_datagen::{generate, GeneratorConfig};

    /// The CSR operators agree with the brute-force oracles on the
    /// native store's folded full-graph snapshot.
    #[test]
    fn csr_operators_match_naive_oracles() {
        let data = generate(&GeneratorConfig { persons: 60, seed: 11, ..Default::default() });
        let adapter = crate::adapter::cypher::CypherAdapter::new();
        adapter.load(&data.snapshot).unwrap();
        adapter.store().compact_now();
        let snap = snb_core::GraphBackend::pin_snapshot(adapter.store()).expect("fresh CSR");
        let min_date = data.cut_ms - 200 * 24 * 3600 * 1000;
        for person in [0u64, 3, 7] {
            assert_eq!(
                foaf_posts(&snap, person, min_date, 20),
                naive_foaf_posts(&data.snapshot, person, min_date, 20),
                "foaf_posts person {person}"
            );
            assert_eq!(
                mutual_friends(&snap, person, 10),
                naive_mutual_friends(&data.snapshot, person, 10),
                "mutual_friends person {person}"
            );
        }
    }

    /// The bounded heap returns exactly the prefix of the full ordering.
    #[test]
    fn top_k_is_a_prefix_of_the_full_ordering() {
        let data = generate(&GeneratorConfig { persons: 60, seed: 13, ..Default::default() });
        let full = naive_foaf_posts(&data.snapshot, 1, 0, usize::MAX);
        let adapter = crate::adapter::cypher::CypherAdapter::new();
        adapter.load(&data.snapshot).unwrap();
        adapter.store().compact_now();
        let snap = snb_core::GraphBackend::pin_snapshot(adapter.store()).expect("fresh CSR");
        for k in [0, 1, 5, full.len(), full.len() + 10] {
            assert_eq!(foaf_posts(&snap, 1, 0, k), full[..k.min(full.len())].to_vec());
        }
    }
}
