//! The Sqlg analogue: TinkerPop's structure API implemented by
//! translating every call into SQL text against the relational engine.
//!
//! This is the architecture the paper singles out: "translating graph
//! queries into multiple small requests eliminates optimization
//! opportunities". A Gremlin `both('knows')` from one vertex becomes two
//! SQL statements here; a 2-hop neighbourhood becomes hundreds.

use snb_core::ids::VERTEX_LABELS;
use snb_core::schema::{edge_def, vertex_props, EDGE_DEFS};
use snb_core::{
    Direction, EdgeLabel, GraphBackend, GraphWrite, PropKey, Result, SnbError, Value, VertexLabel,
    Vid,
};
use snb_relational::Database;
use std::fmt::Write as _;

/// A `GraphBackend` over a relational [`Database`] (row layout, like
/// Sqlg over Postgres).
pub struct SqlgBackend {
    db: Database,
    /// Freshness-checked CSR snapshot cache; a fresh snapshot lets the
    /// Gremlin executor skip the SQL-per-call translation on multi-hop
    /// reads while writes still invalidate it immediately.
    snaps: snb_core::SnapshotCache,
}

impl SqlgBackend {
    /// Wrap a fresh SNB-schema row store.
    pub fn new(db: Database) -> Self {
        SqlgBackend { db, snaps: snb_core::SnapshotCache::new() }
    }

    /// Access the underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    fn scalar_count(&self, query: &str, params: &[Value]) -> Result<i64> {
        Ok(self.db.sql(query, params)?.scalar().and_then(Value::as_int).unwrap_or(0))
    }
}

impl GraphBackend for SqlgBackend {
    fn name(&self) -> &'static str {
        "sqlg"
    }

    fn add_vertex(&self, label: VertexLabel, local_id: u64, props: &[(PropKey, Value)]) -> Result<Vid> {
        let mut cols = String::from("id");
        let mut placeholders = String::from("$1");
        let mut params: Vec<Value> = vec![Value::Int(local_id as i64)];
        for (k, v) in props {
            let _ = write!(cols, ", {k}");
            let _ = write!(placeholders, ", ${}", params.len() + 1);
            params.push(v.clone());
        }
        self.db.sql(
            &format!("INSERT INTO {label} ({cols}) VALUES ({placeholders})"),
            &params,
        )?;
        self.snaps.note_writes(1);
        Ok(Vid::new(label, local_id))
    }

    fn add_edge(&self, label: EdgeLabel, src: Vid, dst: Vid, props: &[(PropKey, Value)]) -> Result<()> {
        let def = edge_def(src.label(), label, dst.label())?;
        // Endpoint existence checks: two extra point queries, exactly
        // the read-before-write a graph layer over SQL performs.
        if !self.vertex_exists(src) {
            return Err(SnbError::NotFound(format!("vertex {src}")));
        }
        if !self.vertex_exists(dst) {
            return Err(SnbError::NotFound(format!("vertex {dst}")));
        }
        let mut cols = String::from("src, dst");
        let mut placeholders = String::from("$1, $2");
        let mut params: Vec<Value> =
            vec![Value::Int(src.local() as i64), Value::Int(dst.local() as i64)];
        for (k, v) in props {
            let _ = write!(cols, ", {k}");
            let _ = write!(placeholders, ", ${}", params.len() + 1);
            params.push(v.clone());
        }
        self.db.sql(
            &format!("INSERT INTO {} ({cols}) VALUES ({placeholders})", def.table_name()),
            &params,
        )?;
        self.snaps.note_writes(1);
        Ok(())
    }

    /// Sqlg's `BatchManager`: validate every element up front (endpoint
    /// existence may be satisfied by vertices earlier in the batch),
    /// stage full-arity rows per table, then flush each table through
    /// the bulk insert path — one table lock per table instead of one
    /// SQL statement (and two existence point-queries) per element. On
    /// a failed element the staged prefix is flushed, matching the
    /// default's stop-at-first-error contract.
    fn apply_batch(&self, ops: &[GraphWrite]) -> Result<usize> {
        let mut staged: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        let mut slot: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut defs: std::collections::HashMap<String, snb_relational::TableDef> =
            std::collections::HashMap::new();
        let mut in_batch: std::collections::HashSet<Vid> = std::collections::HashSet::new();
        let mut applied = 0usize;
        let mut failure = None;
        'ops: for op in ops {
            let (table, row) = match op {
                GraphWrite::AddVertex { label, local_id, props } => {
                    let vid = Vid::new(*label, *local_id);
                    if in_batch.contains(&vid) || self.vertex_exists(vid) {
                        failure = Some(SnbError::Conflict(format!(
                            "duplicate key {local_id} in `{label}`"
                        )));
                        break;
                    }
                    let table = label.as_str().to_string();
                    if !defs.contains_key(&table) {
                        match self.db.table_def(&table) {
                            Ok(d) => {
                                defs.insert(table.clone(), d);
                            }
                            Err(e) => {
                                failure = Some(e);
                                break;
                            }
                        }
                    }
                    let def = &defs[&table];
                    let mut row = vec![Value::Null; def.arity()];
                    row[0] = Value::Int(*local_id as i64);
                    for (k, v) in props {
                        match def.col(k.as_str()) {
                            Ok(c) => row[c] = v.clone(),
                            Err(e) => {
                                failure = Some(e);
                                break 'ops;
                            }
                        }
                    }
                    in_batch.insert(vid);
                    (table, row)
                }
                GraphWrite::AddEdge { label, src, dst, props } => {
                    let def = match edge_def(src.label(), *label, dst.label()) {
                        Ok(d) => d,
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    };
                    for end in [src, dst] {
                        if !in_batch.contains(end) && !self.vertex_exists(*end) {
                            failure = Some(SnbError::NotFound(format!("vertex {end}")));
                            break 'ops;
                        }
                    }
                    let table = def.table_name();
                    if !defs.contains_key(&table) {
                        match self.db.table_def(&table) {
                            Ok(d) => {
                                defs.insert(table.clone(), d);
                            }
                            Err(e) => {
                                failure = Some(e);
                                break;
                            }
                        }
                    }
                    let tdef = &defs[&table];
                    let mut row = vec![Value::Null; tdef.arity()];
                    row[0] = Value::Int(src.local() as i64);
                    row[1] = Value::Int(dst.local() as i64);
                    for (k, v) in props {
                        match tdef.col(k.as_str()) {
                            Ok(c) => row[c] = v.clone(),
                            Err(e) => {
                                failure = Some(e);
                                break 'ops;
                            }
                        }
                    }
                    (table, row)
                }
            };
            let ix = *slot.entry(table.clone()).or_insert_with(|| {
                staged.push((table, Vec::new()));
                staged.len() - 1
            });
            staged[ix].1.push(row);
            applied += 1;
        }
        for (table, rows) in staged {
            self.db.insert_rows(&table, rows)?;
        }
        self.snaps.note_writes(applied as u64);
        match failure {
            Some(e) => Err(e),
            None => Ok(applied),
        }
    }

    fn vertex_exists(&self, v: Vid) -> bool {
        self.scalar_count(
            &format!("SELECT COUNT(*) FROM {} WHERE id = $1", v.label()),
            &[Value::Int(v.local() as i64)],
        )
        .map(|n| n > 0)
        .unwrap_or(false)
    }

    fn vertex_prop(&self, v: Vid, key: PropKey) -> Result<Option<Value>> {
        if !self.vertex_exists(v) {
            return Err(SnbError::NotFound(format!("vertex {v}")));
        }
        if key == PropKey::Id {
            return Ok(Some(Value::Int(v.local() as i64)));
        }
        if !vertex_props(v.label()).contains(&key) {
            return Ok(None);
        }
        let r = self.db.sql(
            &format!("SELECT {key} FROM {} WHERE id = $1", v.label()),
            &[Value::Int(v.local() as i64)],
        )?;
        Ok(r.scalar().filter(|v| !v.is_null()).cloned())
    }

    fn vertex_props(&self, v: Vid) -> Result<Vec<(PropKey, Value)>> {
        let r = self.db.sql(
            &format!("SELECT * FROM {} WHERE id = $1", v.label()),
            &[Value::Int(v.local() as i64)],
        )?;
        let row = r
            .rows
            .first()
            .ok_or_else(|| SnbError::NotFound(format!("vertex {v}")))?;
        let mut out = Vec::with_capacity(row.len());
        for (col, val) in r.columns.iter().zip(row) {
            if val.is_null() {
                continue;
            }
            out.push((PropKey::parse(col)?, val.clone()));
        }
        Ok(out)
    }

    fn set_vertex_prop(&self, v: Vid, key: PropKey, value: Value) -> Result<()> {
        if !self.vertex_exists(v) {
            return Err(SnbError::NotFound(format!("vertex {v}")));
        }
        self.db.sql(
            &format!("UPDATE {} SET {key} = $2 WHERE id = $1", v.label()),
            &[Value::Int(v.local() as i64), value],
        )?;
        self.snaps.note_writes(1);
        Ok(())
    }

    fn neighbors(&self, v: Vid, dir: Direction, label: Option<EdgeLabel>, out: &mut Vec<Vid>) -> Result<()> {
        if !self.vertex_exists(v) {
            return Err(SnbError::NotFound(format!("vertex {v}")));
        }
        let id = Value::Int(v.local() as i64);
        // One SQL statement per matching edge table per direction — the
        // many-small-requests translation.
        for def in EDGE_DEFS {
            if let Some(l) = label {
                if def.label != l {
                    continue;
                }
            }
            let fwd = matches!(dir, Direction::Out | Direction::Both) && def.src == v.label();
            let bwd = matches!(dir, Direction::In | Direction::Both) && def.dst == v.label();
            if fwd {
                let r = self.db.sql(
                    &format!("SELECT dst FROM {} WHERE src = $1", def.table_name()),
                    std::slice::from_ref(&id),
                )?;
                for row in &r.rows {
                    out.push(Vid::new(def.dst, row[0].as_int().unwrap_or(0) as u64));
                }
            }
            if bwd {
                let r = self.db.sql(
                    &format!("SELECT src FROM {} WHERE dst = $1", def.table_name()),
                    std::slice::from_ref(&id),
                )?;
                for row in &r.rows {
                    out.push(Vid::new(def.src, row[0].as_int().unwrap_or(0) as u64));
                }
            }
        }
        Ok(())
    }

    fn edge_prop(&self, src: Vid, label: EdgeLabel, dst: Vid, key: PropKey) -> Result<Option<Value>> {
        let def = edge_def(src.label(), label, dst.label())?;
        if !def.props.contains(&key) {
            return Err(SnbError::NotFound(format!("edge {src}-[:{label}]->{dst}")));
        }
        let r = self.db.sql(
            &format!("SELECT {key} FROM {} WHERE src = $1 AND dst = $2", def.table_name()),
            &[Value::Int(src.local() as i64), Value::Int(dst.local() as i64)],
        )?;
        match r.scalar() {
            Some(v) if !v.is_null() => Ok(Some(v.clone())),
            Some(_) => Ok(None),
            None => Err(SnbError::NotFound(format!("edge {src}-[:{label}]->{dst}"))),
        }
    }

    fn edge_exists(&self, src: Vid, label: EdgeLabel, dst: Vid) -> Result<bool> {
        let def = match edge_def(src.label(), label, dst.label()) {
            Ok(d) => d,
            Err(_) => return Ok(false),
        };
        Ok(self.scalar_count(
            &format!("SELECT COUNT(*) FROM {} WHERE src = $1 AND dst = $2", def.table_name()),
            &[Value::Int(src.local() as i64), Value::Int(dst.local() as i64)],
        )? > 0)
    }

    fn vertices_by_label(&self, label: VertexLabel) -> Result<Vec<Vid>> {
        let r = self.db.sql(&format!("SELECT id FROM {label}"), &[])?;
        Ok(r.rows
            .iter()
            .map(|row| Vid::new(label, row[0].as_int().unwrap_or(0) as u64))
            .collect())
    }

    fn vertex_count(&self) -> usize {
        VERTEX_LABELS
            .iter()
            .map(|l| self.db.row_count(l.as_str()).unwrap_or(0))
            .sum()
    }

    fn edge_count(&self) -> usize {
        EDGE_DEFS
            .iter()
            .map(|d| self.db.row_count(&d.table_name()).unwrap_or(0))
            .sum()
    }

    fn storage_bytes(&self) -> usize {
        self.db.storage_bytes()
    }

    fn pin_snapshot(&self) -> Option<std::sync::Arc<snb_core::CsrSnapshot>> {
        self.snaps.pin(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_relational::Layout;

    fn backend() -> SqlgBackend {
        SqlgBackend::new(Database::new_snb(Layout::Row))
    }

    fn p(id: u64) -> Vid {
        Vid::new(VertexLabel::Person, id)
    }

    #[test]
    fn vertex_roundtrip_through_sql() {
        let g = backend();
        g.add_vertex(VertexLabel::Person, 1, &[(PropKey::FirstName, Value::str("Ada"))]).unwrap();
        assert!(g.vertex_exists(p(1)));
        assert!(!g.vertex_exists(p(2)));
        assert_eq!(g.vertex_prop(p(1), PropKey::FirstName).unwrap(), Some(Value::str("Ada")));
        assert_eq!(g.vertex_prop(p(1), PropKey::Gender).unwrap(), None);
        assert_eq!(g.vertex_prop(p(1), PropKey::Id).unwrap(), Some(Value::Int(1)));
        let props = g.vertex_props(p(1)).unwrap();
        assert!(props.contains(&(PropKey::FirstName, Value::str("Ada"))));
        g.set_vertex_prop(p(1), PropKey::FirstName, Value::str("Grace")).unwrap();
        assert_eq!(g.vertex_prop(p(1), PropKey::FirstName).unwrap(), Some(Value::str("Grace")));
    }

    #[test]
    fn adjacency_through_sql() {
        let g = backend();
        for id in 1..=3 {
            g.add_vertex(VertexLabel::Person, id, &[]).unwrap();
        }
        g.add_edge(EdgeLabel::Knows, p(1), p(2), &[(PropKey::CreationDate, Value::Date(7))]).unwrap();
        g.add_edge(EdgeLabel::Knows, p(3), p(1), &[]).unwrap();
        let mut out = Vec::new();
        g.neighbors(p(1), Direction::Out, Some(EdgeLabel::Knows), &mut out).unwrap();
        assert_eq!(out, vec![p(2)]);
        out.clear();
        g.neighbors(p(1), Direction::Both, Some(EdgeLabel::Knows), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(g.edge_exists(p(1), EdgeLabel::Knows, p(2)).unwrap());
        assert!(!g.edge_exists(p(2), EdgeLabel::Knows, p(1)).unwrap());
        assert_eq!(
            g.edge_prop(p(1), EdgeLabel::Knows, p(2), PropKey::CreationDate).unwrap(),
            Some(Value::Date(7))
        );
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn duplicate_and_missing_are_errors() {
        let g = backend();
        g.add_vertex(VertexLabel::Person, 1, &[]).unwrap();
        assert!(g.add_vertex(VertexLabel::Person, 1, &[]).is_err());
        assert!(matches!(
            g.add_edge(EdgeLabel::Knows, p(1), p(9), &[]),
            Err(SnbError::NotFound(_))
        ));
        assert!(g.vertex_prop(p(9), PropKey::FirstName).is_err());
    }

    #[test]
    fn apply_batch_matches_one_by_one_and_flushes_prefix_on_error() {
        let writes = vec![
            GraphWrite::AddVertex {
                label: VertexLabel::Person,
                local_id: 1,
                props: vec![(PropKey::FirstName, Value::str("Ada"))],
            },
            GraphWrite::AddVertex { label: VertexLabel::Person, local_id: 2, props: vec![] },
            GraphWrite::AddEdge {
                label: EdgeLabel::Knows,
                src: p(1),
                dst: p(2),
                props: vec![(PropKey::CreationDate, Value::Date(7))],
            },
        ];
        let one = backend();
        for w in &writes {
            match w {
                GraphWrite::AddVertex { label, local_id, props } => {
                    one.add_vertex(*label, *local_id, props).unwrap();
                }
                GraphWrite::AddEdge { label, src, dst, props } => {
                    one.add_edge(*label, *src, *dst, props).unwrap();
                }
            }
        }
        let batched = backend();
        // Edge endpoints created earlier in the same batch are visible.
        assert_eq!(batched.apply_batch(&writes).unwrap(), 3);
        assert_eq!(batched.vertex_count(), one.vertex_count());
        assert_eq!(batched.edge_count(), one.edge_count());
        assert_eq!(
            batched.vertex_prop(p(1), PropKey::FirstName).unwrap(),
            one.vertex_prop(p(1), PropKey::FirstName).unwrap()
        );
        assert_eq!(
            batched.edge_prop(p(1), EdgeLabel::Knows, p(2), PropKey::CreationDate).unwrap(),
            Some(Value::Date(7))
        );
        // A failed element stops the batch but the prefix is flushed.
        let bad = vec![
            GraphWrite::AddVertex { label: VertexLabel::Person, local_id: 3, props: vec![] },
            GraphWrite::AddEdge { label: EdgeLabel::Knows, src: p(3), dst: p(9), props: vec![] },
            GraphWrite::AddVertex { label: VertexLabel::Person, local_id: 4, props: vec![] },
        ];
        assert!(matches!(batched.apply_batch(&bad), Err(SnbError::NotFound(_))));
        assert!(batched.vertex_exists(p(3)), "prefix before the failure is applied");
        assert!(!batched.vertex_exists(p(4)), "suffix after the failure is not");
        // Duplicates are rejected whether in-store or in-batch.
        assert!(matches!(
            batched.apply_batch(&[GraphWrite::AddVertex {
                label: VertexLabel::Person,
                local_id: 1,
                props: vec![],
            }]),
            Err(SnbError::Conflict(_))
        ));
    }

    #[test]
    fn gremlin_runs_over_sqlg() {
        use snb_gremlin::Traversal;
        let g = backend();
        for id in 1..=3 {
            g.add_vertex(VertexLabel::Person, id, &[(PropKey::FirstName, Value::str("x"))]).unwrap();
        }
        g.add_edge(EdgeLabel::Knows, p(1), p(2), &[]).unwrap();
        g.add_edge(EdgeLabel::Knows, p(2), p(3), &[]).unwrap();
        let r = snb_gremlin::exec::execute(
            &g,
            &Traversal::v(p(1)).both(EdgeLabel::Knows).both(EdgeLabel::Knows).dedup().count(),
        )
        .unwrap();
        assert_eq!(r, vec![Value::Int(2)], "reaches {{1, 3}}");
    }
}
