//! Sharded analytics: run the `snb-analytics` kernels per shard over
//! each shard's *owned* vertices and merge the partial results into the
//! single-store answer (DESIGN.md §5g).
//!
//! The placement invariants the router maintains (see
//! [`crate::router`]) are what make exact merges possible:
//!
//! * every vertex's **full** adjacency — out and in — is local to its
//!   owner shard (edges are stored on both endpoint owners), and
//! * the non-owned endpoint of a cross-shard edge exists on the other
//!   shard as a **ghost** row carrying the true global [`Vid`].
//!
//! So each merge reads every piece of graph state from exactly one
//! shard — the owner's copy — and uses ghost rows only as connective
//! tissue:
//!
//! * **PageRank** is push-based: each shard walks its owned rows'
//!   out-adjacency (the authoritative copy) and pushes `rank/outdeg`
//!   mass at global rank slots; mass addressed at a ghost lands in the
//!   owner's slot because ghosts carry the owner's Vid. Every edge is
//!   pushed exactly once, so the merged iteration is the single-store
//!   power iteration up to float summation order.
//! * **WCC** runs the min-label-propagation kernel per shard, then
//!   folds the local components into a global union-find keyed by raw
//!   Vid — a ghost unions its local component with the owner's, which
//!   is exactly the cross-shard label exchange. Component ids are the
//!   smallest member Vid raw, matching
//!   [`wcc_assignment`](snb_analytics::wcc_assignment).
//! * **Triangle counting** exchanges each owned vertex's sorted,
//!   deduplicated undirected adjacency into one global table, then
//!   counts closing wedges per owned vertex by sorted intersection —
//!   the kernel's algorithm over the merged adjacency.
//!
//! Each call builds a fresh per-shard [`CsrSnapshot`] via
//! [`snapshot_from_backend`] (epoch 0, "unversioned") rather than
//! pinning each shard's latest *published* fold: published epochs
//! advance independently per shard, and a mixed-epoch pin would hand
//! the merge a view where a cross-shard edge exists on one endpoint's
//! shard but not yet the other's. The scan is consistent as of the
//! call on every shard at once. This is the verification/merge layer,
//! not the serving path — single-node serving pins published snapshots
//! through the [`JobManager`](snb_analytics::JobManager).

use snb_analytics::{kernels, KernelCtl, PageRankConfig};
use snb_core::ids::EDGE_LABELS;
use snb_core::snapshot::{snapshot_from_backend, CsrSnapshot};
use snb_core::{Direction, EdgeLabel, FastMap, Result, SnbError, Vid};
use std::sync::atomic::AtomicBool;

use crate::router::ShardRouter;

/// Merged PageRank over a sharded deployment.
#[derive(Debug, Clone)]
pub struct MergedPageRank {
    /// `(vid, rank)` over every owned vertex, sorted by descending
    /// rank (vid-raw tiebreak) — the same order the job manager's
    /// top-k fetch uses.
    pub ranks: Vec<(Vid, f64)>,
    /// Power iterations run.
    pub iterations: u32,
    /// Final L1 delta.
    pub delta: f64,
}

/// One fresh snapshot per shard, consistent as of this call.
fn shard_snapshots(router: &ShardRouter) -> Result<Vec<CsrSnapshot>> {
    router
        .shard_backends()
        .into_iter()
        .map(|b| snapshot_from_backend(b.as_ref(), 0))
        .collect()
}

/// Push-based merged PageRank (see module docs): per-shard owned-row
/// sweeps into global rank slots, dangling mass redistributed, same
/// damping/epsilon/max-iteration semantics as the single-store kernel.
pub fn sharded_pagerank(
    router: &ShardRouter,
    label: Option<EdgeLabel>,
    cfg: &PageRankConfig,
) -> Result<MergedPageRank> {
    let map = router.shard_map();
    let snaps = shard_snapshots(router)?;
    // Global rank slots: one per owned vertex, across all shards.
    let mut index: FastMap<u64, u32> = FastMap::default();
    let mut vids: Vec<Vid> = Vec::new();
    for (s, snap) in snaps.iter().enumerate() {
        for row in 0..snap.n_rows() as u32 {
            let v = snap.vid_of(row);
            if map.shard_of(v) == s {
                index.insert(v.raw(), vids.len() as u32);
                vids.push(v);
            }
        }
    }
    let n = vids.len();
    if n == 0 {
        return Ok(MergedPageRank { ranks: Vec::new(), iterations: 0, delta: 0.0 });
    }
    // Per shard: every owned row's global slot and the global slots of
    // its out-neighbours (the authoritative out-adjacency). A neighbour
    // missing from the index means its owner shard never saw it — the
    // placement invariant is broken, so fail loudly.
    let mut plans: Vec<Vec<(u32, Vec<u32>)>> = Vec::with_capacity(snaps.len());
    for (s, snap) in snaps.iter().enumerate() {
        let mut rows = Vec::new();
        for row in 0..snap.n_rows() as u32 {
            let v = snap.vid_of(row);
            if map.shard_of(v) != s {
                continue; // ghost: its out-adjacency is pushed by its owner
            }
            let u = index[&v.raw()];
            let mut targets = Vec::new();
            let labels: &[EdgeLabel] = match &label {
                Some(l) => std::slice::from_ref(l),
                None => &EDGE_LABELS,
            };
            for &l in labels {
                for &w in snap.range(row, Direction::Out, l) {
                    let wv = snap.vid_of(w);
                    let t = index.get(&wv.raw()).ok_or_else(|| {
                        SnbError::Backend(format!("vertex {wv} has no owner-shard copy"))
                    })?;
                    targets.push(*t);
                }
            }
            rows.push((u, targets));
        }
        plans.push(rows);
    }
    let d = cfg.damping;
    let mut rank = vec![1.0 / n as f64; n];
    let mut acc = vec![0.0f64; n];
    let mut iterations = 0u32;
    let mut delta = f64::INFINITY;
    while iterations < cfg.max_iters.max(1) {
        acc.iter_mut().for_each(|a| *a = 0.0);
        let mut dangling = 0.0f64;
        for rows in &plans {
            for (u, targets) in rows {
                let r = rank[*u as usize];
                if targets.is_empty() {
                    dangling += r;
                } else {
                    let m = r / targets.len() as f64;
                    for &t in targets {
                        acc[t as usize] += m;
                    }
                }
            }
        }
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        let mut dlt = 0.0;
        for (slot, a) in rank.iter_mut().zip(&acc) {
            let next = base + d * a;
            dlt += (next - *slot).abs();
            *slot = next;
        }
        iterations += 1;
        delta = dlt;
        if delta <= cfg.epsilon {
            break;
        }
    }
    let mut ranks: Vec<(Vid, f64)> =
        vids.into_iter().zip(rank).collect();
    ranks.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
    Ok(MergedPageRank { ranks, iterations, delta })
}

/// Union-find over raw Vids where the root of every set is its
/// smallest member — so `find(v)` *is* the merged component id.
struct MinUnionFind {
    parent: FastMap<u64, u64>,
}

impl MinUnionFind {
    fn new() -> MinUnionFind {
        MinUnionFind { parent: FastMap::default() }
    }

    fn find(&mut self, x: u64) -> u64 {
        let mut root = x;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression.
        let mut cur = x;
        while cur != root {
            let next = *self.parent.get(&cur).unwrap_or(&root);
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.insert(hi, lo);
        }
    }
}

/// Merged WCC: local label-propagation kernels + global union-find via
/// ghosts. Returns `(component count, assignment)` with the exact
/// shape, ids, and ordering of the single-store
/// [`wcc_assignment`](snb_analytics::wcc_assignment).
pub fn sharded_wcc(
    router: &ShardRouter,
    label: Option<EdgeLabel>,
) -> Result<(u64, Vec<(Vid, u64)>)> {
    let map = router.shard_map();
    let snaps = shard_snapshots(router)?;
    let cancel = AtomicBool::new(false);
    let ctl = KernelCtl::noop(&cancel);
    let mut uf = MinUnionFind::new();
    for snap in &snaps {
        let labels = kernels::wcc(snap, label, 2, &ctl)
            .ok_or_else(|| SnbError::Backend("uncancellable WCC kernel cancelled".into()))?;
        // Every row (owned or ghost) unions with its local component's
        // representative; a ghost thereby stitches its shard-local
        // component to the one its owner shard computes.
        for (row, &l) in labels.iter().enumerate() {
            uf.union(snap.vid_of(row as u32).raw(), snap.vid_of(l).raw());
        }
    }
    let mut sizes: FastMap<u64, u64> = FastMap::default();
    let mut rows: Vec<(Vid, u64)> = Vec::new();
    for (s, snap) in snaps.iter().enumerate() {
        for row in 0..snap.n_rows() as u32 {
            let v = snap.vid_of(row);
            if map.shard_of(v) != s {
                continue; // ghost: counted on its owner
            }
            let comp = uf.find(v.raw());
            *sizes.entry(comp).or_insert(0) += 1;
            rows.push((v, comp));
        }
    }
    rows.sort_by(|a, b| {
        sizes[&b.1]
            .cmp(&sizes[&a.1])
            .then(a.1.cmp(&b.1))
            .then(a.0.raw().cmp(&b.0.raw()))
    });
    Ok((sizes.len() as u64, rows))
}

/// |a ∩ b| for two sorted, deduplicated slices (linear merge).
fn sorted_intersection_count(a: &[u64], b: &[u64]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Merged per-vertex triangle counts: each owner shard contributes its
/// owned vertices' sorted undirected adjacency (exchange), then wedges
/// are closed by sorted intersection over the merged table. Returns
/// `(global triangle count, per-vertex counts)` sorted by descending
/// count (vid-raw tiebreak).
pub fn sharded_triangles(
    router: &ShardRouter,
    label: Option<EdgeLabel>,
) -> Result<(u64, Vec<(Vid, u64)>)> {
    let map = router.shard_map();
    let snaps = shard_snapshots(router)?;
    // Exchange: owned adjacency as sorted raw-Vid lists.
    let mut adj: FastMap<u64, Vec<u64>> = FastMap::default();
    let mut owned: Vec<Vid> = Vec::new();
    let mut buf: Vec<u32> = Vec::new();
    for (s, snap) in snaps.iter().enumerate() {
        for row in 0..snap.n_rows() as u32 {
            let v = snap.vid_of(row);
            if map.shard_of(v) != s {
                continue;
            }
            buf.clear();
            snap.neighbors_into(row, Direction::Both, label, &mut buf);
            let mut list: Vec<u64> =
                buf.iter().map(|&w| snap.vid_of(w).raw()).collect();
            list.sort_unstable();
            list.dedup();
            list.retain(|&w| w != v.raw());
            adj.insert(v.raw(), list);
            owned.push(v);
        }
    }
    let empty: Vec<u64> = Vec::new();
    let mut tri: Vec<(Vid, u64)> = Vec::with_capacity(owned.len());
    let mut total3 = 0u64;
    for &v in &owned {
        let a = &adj[&v.raw()];
        let mut count = 0u64;
        for (vi, &w) in a.iter().enumerate() {
            let wa = adj.get(&w).unwrap_or(&empty);
            count += sorted_intersection_count(&a[vi + 1..], wa);
        }
        total3 += count;
        tri.push((v, count));
    }
    tri.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.raw().cmp(&b.0.raw())));
    // Each triangle is counted once at each of its three corners.
    Ok((total3 / 3, tri))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::SutAdapter as _;
    use snb_analytics::wcc_assignment;
    use snb_core::GraphBackend;
    use snb_datagen::Dataset;
    use snb_graph_native::NativeGraphStore;

    fn dataset() -> Dataset {
        snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny()).snapshot
    }

    /// The single-store oracle: the same dataset in one
    /// `NativeGraphStore`, snapshotted the same way the merge layer
    /// snapshots each shard.
    fn single_snapshot(data: &Dataset) -> CsrSnapshot {
        let s = NativeGraphStore::new();
        for v in &data.vertices {
            s.add_vertex(v.label, v.id, &v.props).unwrap();
        }
        for e in &data.edges {
            s.add_edge(e.label, e.src, e.dst, &e.props).unwrap();
        }
        snapshot_from_backend(&s as &dyn GraphBackend, 0).unwrap()
    }

    fn loaded_router(data: &Dataset, shards: usize) -> ShardRouter {
        let router = ShardRouter::native(shards).unwrap();
        router.load(data).unwrap();
        router
    }

    #[test]
    fn sharded_pagerank_matches_the_single_store_kernel() {
        let data = dataset();
        let snap = single_snapshot(&data);
        // Epsilon far below reach in 40 iterations: both sides run
        // exactly max_iters, so only float summation order differs.
        let cfg = PageRankConfig { damping: 0.85, epsilon: 1e-15, max_iters: 40 };
        let cancel = AtomicBool::new(false);
        let ctl = KernelCtl::noop(&cancel);
        for label in [Some(EdgeLabel::Knows), None] {
            let oracle = kernels::pagerank(&snap, label, &cfg, 2, &ctl).unwrap();
            let by_vid: FastMap<u64, f64> = (0..snap.n_rows() as u32)
                .map(|r| (snap.vid_of(r).raw(), oracle.ranks[r as usize]))
                .collect();
            for shards in [2, 3] {
                let router = loaded_router(&data, shards);
                let merged = sharded_pagerank(&router, label, &cfg).unwrap();
                assert_eq!(merged.iterations, oracle.iterations, "{shards} shards {label:?}");
                assert_eq!(merged.ranks.len(), by_vid.len(), "{shards} shards {label:?}");
                let sum: f64 = merged.ranks.iter().map(|(_, r)| r).sum();
                assert!((sum - 1.0).abs() < 1e-9, "rank mass {sum}");
                for &(v, r) in &merged.ranks {
                    let want = by_vid[&v.raw()];
                    assert!(
                        (r - want).abs() < 1e-10,
                        "{shards} shards {label:?}: {v} merged {r} vs single {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_wcc_matches_the_single_store_assignment() {
        let data = dataset();
        let snap = single_snapshot(&data);
        let cancel = AtomicBool::new(false);
        let ctl = KernelCtl::noop(&cancel);
        for label in [Some(EdgeLabel::Knows), None] {
            let labels = kernels::wcc(&snap, label, 2, &ctl).unwrap();
            let oracle = wcc_assignment(&snap, &labels);
            for shards in [2, 3] {
                let router = loaded_router(&data, shards);
                let merged = sharded_wcc(&router, label).unwrap();
                // Exact: same component count, same ids (smallest
                // member Vid raw), same size-descending order.
                assert_eq!(merged, oracle, "{shards} shards {label:?}");
            }
        }
    }

    #[test]
    fn sharded_triangles_match_the_single_store_kernel() {
        let data = dataset();
        let snap = single_snapshot(&data);
        let cancel = AtomicBool::new(false);
        let ctl = KernelCtl::noop(&cancel);
        for label in [Some(EdgeLabel::Knows), None] {
            let counts = kernels::triangles(&snap, label, 2, &ctl).unwrap();
            let total: u64 = counts.iter().sum::<u64>() / 3;
            let by_vid: FastMap<u64, u64> = (0..snap.n_rows() as u32)
                .map(|r| (snap.vid_of(r).raw(), counts[r as usize]))
                .collect();
            let router = loaded_router(&data, 2);
            let (merged_total, merged) = sharded_triangles(&router, label).unwrap();
            assert_eq!(merged_total, total, "{label:?}");
            assert_eq!(merged.len(), by_vid.len(), "{label:?}");
            for &(v, c) in &merged {
                assert_eq!(c, by_vid[&v.raw()], "{label:?}: {v}");
            }
        }
    }

    #[test]
    fn empty_router_yields_empty_results() {
        let router = ShardRouter::native(2).unwrap();
        let pr = sharded_pagerank(&router, None, &PageRankConfig::default()).unwrap();
        assert!(pr.ranks.is_empty());
        assert_eq!(pr.iterations, 0);
        let (n, rows) = sharded_wcc(&router, None).unwrap();
        assert_eq!((n, rows.len()), (0, 0));
        let (t, rows) = sharded_triangles(&router, None).unwrap();
        assert_eq!((t, rows.len()), (0, 0));
    }
}
