//! The LDBC SNB interactive workload driver and benchmarking
//! architecture (the paper's Figure 1).
//!
//! Pieces, mapped to the paper:
//!
//! * [`ops`] — the operation set: the four read-only micro query classes
//!   of Tables 2/3, the LDBC short reads (IS1–IS7), the 2-hop complex
//!   read used in §4.3's reduced mix, plus parameter generation.
//! * [`adapter`] — the `SutAdapter` trait and one adapter per system
//!   configuration in the study: Neo4j-like native store via Cypher and
//!   via Gremlin, Titan-like KV graph over both backends via Gremlin,
//!   Sqlg (Gremlin over the relational row store), Postgres-like SQL,
//!   Virtuoso-like SQL (column store + TRANSITIVE), and Virtuoso-like
//!   SPARQL (triple store).
//! * [`sqlg`] — the Sqlg analogue: a `GraphBackend` whose every call is
//!   translated into SQL text against the relational engine.
//! * [`scheduler`] — LDBC dependency tracking: an update may only run
//!   once everything at or before its dependency timestamp is applied.
//! * [`micro`] — the latency runner behind Tables 2 and 3.
//! * [`ingest`] — parallel, dependency-aware application of the update
//!   stream: a partitioned topic, a consumer-group applier pool, and
//!   batched engine writes.
//! * [`interactive`] — the Kafka-fed real-time workload behind Figure 3:
//!   an applier pool consuming the partitioned update topic, N
//!   concurrent closed-loop readers.
//! * [`loading`] — the bulk-load runner behind Table 4 and the
//!   concurrent-loader scaling experiment of Appendix A.
//! * [`router`] — sharded scale-out: N independent engine shards
//!   behind a scatter-gather query router (FNV vertex placement,
//!   frontier-batch waves for cross-shard multi-hop reads,
//!   shard-local ingest via the aligned partitioned topic).

pub mod adapter;
pub mod analytics;
pub mod complex;
pub mod ingest;
pub mod interactive;
pub mod loading;
pub mod micro;
pub mod ops;
pub mod router;
pub mod scheduler;
pub mod sqlg;

pub use adapter::{build_all_adapters, OpResult, SutAdapter, SutKind};
pub use complex::{
    foaf_posts, mutual_friends, naive_foaf_posts, naive_mutual_friends, recent_messages,
};
pub use analytics::{sharded_pagerank, sharded_triangles, sharded_wcc, MergedPageRank};
pub use ingest::{run_ingest, run_ingest_iter, shard_aligned_appliers, IngestConfig, IngestReport};
pub use ops::{ParamGen, ReadOp};
pub use router::ShardRouter;
