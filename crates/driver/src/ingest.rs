//! Parallel, dependency-aware application of the update stream.
//!
//! The update topic is partitioned by [`UpdateOp::partition_key`]; N
//! appliers form a consumer group, each owning exactly one partition.
//! Each applier accumulates dependency-ready operations and applies
//! them through [`SutAdapter::execute_update_batch`] — one lock/WAL
//! round trip per batch instead of per op — committing its offsets
//! after every applied batch (group commit).
//!
//! # Why one partition per applier, and how the watermark stays sound
//!
//! The producer emits the stream in timestamp order and keyed routing
//! is sticky, so each partition is itself timestamp-ordered. An applier
//! consuming one partition in order therefore never reorders writes
//! that touch the same entity (they share a key, hence a partition).
//!
//! The [`DependencyTracker`] watermark must mean "every operation at or
//! before this time is applied" — with parallel appliers no single
//! applier knows that, so the watermark is fed from
//! [`IngestFrontiers::min_applied`], the minimum over per-partition
//! applied frontiers. Deadlock-freedom: before blocking on a
//! dependency, an applier publishes `pending.ts_ms - 1` for its
//! partition (everything earlier in it is applied), and an applier with
//! an empty partition publishes the producer frontier read before its
//! poll. Take the globally oldest unapplied operation, at time T: its
//! effective dependency is at most `T - 1`, every other partition's
//! frontier reaches at least `T - 1` by the rules above, so it always
//! becomes ready. An operation never waits on its own timestamp
//! (`dep.min(ts - 1)`): same-partition dependencies are satisfied by
//! in-order application, and waiting for `watermark >= ts` would wait
//! on the operation itself.

use bytes::Bytes;
use snb_core::metrics::ThroughputSeries;
use snb_core::SnbError;
use snb_datagen::UpdateOp;
use snb_mq::{Broker, Consumer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::adapter::SutAdapter;
use crate::scheduler::{DependencyTracker, IngestFrontiers};

/// Knobs for a parallel ingestion run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Parallel appliers (= update-topic partitions).
    pub appliers: usize,
    /// Operations applied per engine batch; also the poll size.
    pub batch_size: usize,
    /// How long an applier waits for a dependency before skipping the
    /// operation (counted as an error).
    pub dependency_timeout: Duration,
    /// Sustained target rate in updates/s across the pool, `None` to
    /// drain at full speed. A real deployment provisions ingestion at
    /// the stream's arrival rate; pacing models that, so a mixed
    /// read+write run measures reads under *sustained* ingestion
    /// instead of under a worst-case bulk drain.
    pub target_ops_per_sec: Option<f64>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            appliers: 4,
            batch_size: 256,
            dependency_timeout: Duration::from_secs(2),
            target_ops_per_sec: None,
        }
    }
}

/// Outcome of draining one update stream.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Operations applied.
    pub applied: u64,
    /// Decode failures, dependency timeouts, and failed writes.
    pub errors: u64,
    /// Wall-clock time from first send to last applier exit.
    pub elapsed: Duration,
}

impl IngestReport {
    /// Applied operations per second over the drain.
    pub fn updates_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.applied as f64 / secs
        } else {
            0.0
        }
    }
}

/// Smallest applier count ≥ `requested` that is a multiple of `shards`
/// — the partition count that makes ingest *shard-local* behind a
/// [`ShardRouter`](crate::router::ShardRouter). The topic keys records
/// by [`UpdateOp::partition_key`] (the primary entity's raw vid), and
/// the shard map hashes exactly the same bytes, so with `P % N == 0`
/// the FNV routing composes: `(fnv % P) % N == fnv % N` — every
/// partition's primary entities belong to exactly one shard (see
/// [`snb_core::ShardMap::aligned_partitions`]).
pub fn shard_aligned_appliers(requested: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    let requested = requested.max(1);
    requested.div_ceil(shards) * shards
}

/// Everything one applier thread shares with the rest of the pool.
pub(crate) struct Applier<'a> {
    pub adapter: &'a dyn SutAdapter,
    pub tracker: &'a DependencyTracker,
    pub frontiers: &'a IngestFrontiers,
    pub applied: &'a ThroughputSeries,
    pub errors: &'a AtomicU64,
    pub stop: &'a AtomicBool,
    /// Exit when the producer is finished and the partition is drained
    /// (bulk mode); otherwise run until `stop` (interactive mode).
    pub drain: bool,
    pub batch_size: usize,
    pub dependency_timeout: Duration,
    /// Per-applier pacing target in ops/s (`None` = full speed).
    pub pace_ops_per_sec: Option<f64>,
}

impl Applier<'_> {
    /// Apply the accumulated batch, advance this partition's frontier to
    /// its last timestamp, and feed the watermark.
    fn flush(&self, batch: &mut Vec<UpdateOp>, partition: usize) {
        let Some(last) = batch.last() else { return };
        let last_ts = last.ts_ms;
        match self.adapter.execute_update_batch(batch) {
            Ok(_) => self.applied.record_n(batch.len() as u64),
            Err(_) => {
                // The batch stopped at its first failure with the
                // prefix applied; replay per-op. `Conflict` means the
                // prefix already holds that write — count it applied.
                for op in batch.iter() {
                    match self.adapter.execute_update(op) {
                        Ok(()) | Err(SnbError::Conflict(_)) => self.applied.record(),
                        Err(_) => {
                            self.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        batch.clear();
        self.frontiers.publish(partition, last_ts);
        self.tracker.mark_applied(self.frontiers.min_applied());
    }
}

/// One applier: consume the partition in order, batch ready operations,
/// flush before blocking on a dependency, group-commit offsets after
/// each applied batch.
pub(crate) fn applier_loop(ctx: &Applier<'_>, consumer: &mut Consumer) {
    let Some(&partition) = consumer.assignment().first() else {
        // More appliers than partitions: nothing will ever arrive.
        return;
    };
    let partition = partition as usize;
    let mut records = Vec::new();
    let mut batch: Vec<UpdateOp> = Vec::new();
    // Token-bucket pacing state: how many ops this applier has pushed,
    // against when it started.
    let pace_start = Instant::now();
    let mut pace_pushed = 0u64;
    loop {
        if ctx.stop.load(Ordering::Relaxed) {
            return;
        }
        // Read the producer frontier BEFORE polling: if the poll comes
        // back empty, every record that could land here later carries a
        // timestamp at or past this frontier.
        let produced_before = ctx.frontiers.produced();
        records.clear();
        if consumer.poll_into(ctx.batch_size, &mut records) == 0 {
            let idle = if produced_before == i64::MAX {
                i64::MAX
            } else {
                produced_before - 1
            };
            ctx.frontiers.publish(partition, idle);
            ctx.tracker.mark_applied(ctx.frontiers.min_applied());
            if ctx.drain && produced_before == i64::MAX {
                consumer.commit();
                return;
            }
            consumer.poll_wait_into(ctx.batch_size, Duration::from_millis(5), &mut records);
            if records.is_empty() {
                continue;
            }
        }
        for (_, record) in &records {
            if ctx.stop.load(Ordering::Relaxed) {
                return;
            }
            let op: UpdateOp = match UpdateOp::decode_binary(&record.value) {
                Ok(op) => op,
                Err(_) => {
                    ctx.errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            // Never wait on our own timestamp (see module docs).
            let dep = op.dependency_ms.min(op.ts_ms - 1);
            if !ctx.tracker.ready(dep) {
                // Flush first — the accumulated batch may BE what some
                // other partition is waiting on — and pre-publish our
                // frontier so no one waits on us while we block.
                ctx.flush(&mut batch, partition);
                consumer.commit();
                ctx.frontiers.publish(partition, op.ts_ms - 1);
                ctx.tracker.mark_applied(ctx.frontiers.min_applied());
                // Wait in slices: a peer applier that exits at `stop`
                // leaves its frontier behind, and blocking through the
                // full timeout would miscount shutdown as a violation.
                let deadline = Instant::now() + ctx.dependency_timeout;
                let ready = loop {
                    if ctx.tracker.wait_until_ready(dep, Duration::from_millis(20)) {
                        break true;
                    }
                    if ctx.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    if Instant::now() >= deadline {
                        break false;
                    }
                };
                if !ready {
                    // Timed out: skip the op and move the frontier past
                    // it (the sequential writer marks errored ops
                    // applied too) so the stream never wedges.
                    ctx.errors.fetch_add(1, Ordering::Relaxed);
                    ctx.frontiers.publish(partition, op.ts_ms);
                    ctx.tracker.mark_applied(ctx.frontiers.min_applied());
                    continue;
                }
            }
            batch.push(op);
            pace_pushed += 1;
            if batch.len() >= ctx.batch_size {
                ctx.flush(&mut batch, partition);
                consumer.commit();
            }
        }
        ctx.flush(&mut batch, partition);
        consumer.commit();
        // Sustained-rate mode: sleep off whatever headroom is left over
        // the target, after (not inside) the batch so the write lock is
        // never held across a pacing sleep.
        if let Some(rate) = ctx.pace_ops_per_sec {
            if rate > 0.0 {
                let due = Duration::from_secs_f64(pace_pushed as f64 / rate);
                let elapsed = pace_start.elapsed();
                if due > elapsed && !ctx.stop.load(Ordering::Relaxed) {
                    std::thread::sleep((due - elapsed).min(Duration::from_millis(50)));
                }
            }
        }
    }
}

/// Drain one update stream into an adapter with a parallel applier
/// pool, measuring wall-clock throughput. The adapter must already hold
/// the snapshot the stream's dependencies assume (`cut_ms` = its cut).
pub fn run_ingest(
    adapter: &dyn SutAdapter,
    updates: &[UpdateOp],
    cut_ms: i64,
    config: &IngestConfig,
) -> IngestReport {
    run_ingest_iter(adapter, updates.iter().cloned(), cut_ms, config)
}

/// [`run_ingest`] over a time-ordered iterator of operations instead of
/// a slice: the producer thread pulls ops straight from the iterator
/// into the partitioned topic, so a streaming generator can feed a
/// million-person update stream without ever materializing it whole.
pub fn run_ingest_iter<I>(
    adapter: &dyn SutAdapter,
    updates: I,
    cut_ms: i64,
    config: &IngestConfig,
) -> IngestReport
where
    I: Iterator<Item = UpdateOp> + Send,
{
    let appliers = config.appliers.max(1);
    let broker = Broker::new();
    let topic = broker
        .create_topic("updates", appliers as u32)
        .expect("fresh broker");
    let producer = broker.producer("updates").expect("topic exists");
    let tracker = DependencyTracker::new(cut_ms);
    let frontiers = IngestFrontiers::new(appliers, cut_ms);
    let applied = ThroughputSeries::new();
    let errors = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|scope| {
        {
            let producer = &producer;
            let frontiers = &frontiers;
            scope.spawn(move || {
                for op in updates {
                    let key = Bytes::from(op.partition_key().to_le_bytes().to_vec());
                    producer.send(op.ts_ms, Some(key), Bytes::from(op.encode_binary()));
                    frontiers.producer_advance(op.ts_ms);
                }
                frontiers.producer_finished();
            });
        }
        for mut consumer in Consumer::group(&topic, appliers) {
            let ctx = Applier {
                adapter,
                tracker: &tracker,
                frontiers: &frontiers,
                applied: &applied,
                errors: &errors,
                stop: &stop,
                drain: true,
                batch_size: config.batch_size.max(1),
                dependency_timeout: config.dependency_timeout,
                pace_ops_per_sec: config.target_ops_per_sec.map(|r| r / appliers as f64),
            };
            scope.spawn(move || applier_loop(&ctx, &mut consumer));
        }
    });
    IngestReport {
        applied: applied.total(),
        errors: errors.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::cypher::CypherAdapter;
    use crate::adapter::sparql::SparqlAdapter;
    use snb_core::GraphBackend;

    #[test]
    fn parallel_drain_matches_sequential_application() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());

        let sequential = CypherAdapter::new();
        sequential.load(&data.snapshot).unwrap();
        for op in &data.updates {
            sequential.execute_update(op).unwrap();
        }

        let parallel = CypherAdapter::new();
        parallel.load(&data.snapshot).unwrap();
        let report = run_ingest(
            &parallel,
            &data.updates,
            data.cut_ms,
            &IngestConfig { appliers: 4, batch_size: 64, ..IngestConfig::default() },
        );
        assert_eq!(report.applied, data.updates.len() as u64);
        assert_eq!(report.errors, 0, "no dependency violations in a sound protocol");
        assert_eq!(parallel.store().vertex_count(), sequential.store().vertex_count());
        assert_eq!(parallel.store().edge_count(), sequential.store().edge_count());
    }

    #[test]
    fn shard_aligned_appliers_round_up_to_a_multiple() {
        assert_eq!(shard_aligned_appliers(4, 1), 4);
        assert_eq!(shard_aligned_appliers(4, 2), 4);
        assert_eq!(shard_aligned_appliers(4, 3), 6);
        assert_eq!(shard_aligned_appliers(1, 4), 4);
        assert_eq!(shard_aligned_appliers(5, 4), 8);
        // Degenerate inputs clamp instead of panicking.
        assert_eq!(shard_aligned_appliers(0, 0), 1);
        // The alignment the helper promises: every partition maps to
        // one shard.
        for shards in 1..=4 {
            let appliers = shard_aligned_appliers(4, shards);
            assert!(snb_core::ShardMap::new(shards).aligned_partitions(appliers));
        }
    }

    #[test]
    fn single_applier_and_empty_stream_work() {
        let data = snb_datagen::generate(&snb_datagen::GeneratorConfig::tiny());
        let adapter = SparqlAdapter::new();
        adapter.load(&data.snapshot).unwrap();
        let empty = run_ingest(&adapter, &[], data.cut_ms, &IngestConfig::default());
        assert_eq!(empty.applied, 0);
        let one = run_ingest(
            &adapter,
            &data.updates,
            data.cut_ms,
            &IngestConfig { appliers: 1, ..IngestConfig::default() },
        );
        assert_eq!(one.applied, data.updates.len() as u64);
        assert_eq!(one.errors, 0);
        assert!(one.updates_per_sec() > 0.0);
    }
}
