//! The system-under-test abstraction and the eight configurations of
//! the paper's study.

use snb_core::{
    CsrBuilder, CsrSnapshot, Direction, EdgeLabel, FastMap, FastSet, GraphWrite, PropKey,
    PropertyMap, Result, Value, VertexLabel, Vid,
};
use snb_datagen::{Dataset, UpdateOp};
use std::sync::Arc;

use crate::ops::ReadOp;

pub mod cypher;
pub mod gremlin;
pub mod remote;
pub mod sparql;
pub mod sql;

/// Rows returned by a read operation, normalized so different engines'
/// answers are comparable (dates as ints, vertices as local ids).
pub type OpResult = Vec<Vec<Value>>;

/// Normalize one value for cross-engine comparison.
pub fn normalize(v: &Value) -> Value {
    match v {
        Value::Date(d) => Value::Int(*d),
        Value::Vertex(vid) => Value::Int(vid.local() as i64),
        Value::List(vs) => Value::List(vs.iter().map(normalize).collect()),
        other => other.clone(),
    }
}

/// Normalize a whole result.
pub fn normalize_rows(rows: Vec<Vec<Value>>) -> OpResult {
    rows.into_iter().map(|r| r.iter().map(normalize).collect()).collect()
}

/// Build a Person/Knows CSR snapshot from pre-scanned rows — the
/// epoch-pinned read structure the SQL/SPARQL adapters use for their
/// multi-hop reads ([`csr_two_hop`], [`csr_shortest_path`]). `persons`
/// carries `(id, firstName)`; edges referencing unknown persons are
/// dropped (they can only appear when the scan raced a write, in which
/// case the snapshot is stale on arrival and never served).
pub(crate) fn person_knows_csr(
    epoch: u64,
    persons: &[(u64, Value)],
    knows: &[(u64, u64)],
) -> Result<CsrSnapshot> {
    let mut row_of: FastMap<u64, u32> = FastMap::default();
    row_of.reserve(persons.len());
    for (row, (id, _)) in persons.iter().enumerate() {
        row_of.insert(*id, row as u32);
    }
    let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); persons.len()];
    let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); persons.len()];
    for (src, dst) in knows {
        if let (Some(&s), Some(&d)) = (row_of.get(src), row_of.get(dst)) {
            out_adj[s as usize].push(d);
            in_adj[d as usize].push(s);
        }
    }
    let mut b = CsrBuilder::new(epoch, persons.len(), false);
    for (row, (id, first_name)) in persons.iter().enumerate() {
        let mut pm = PropertyMap::new();
        pm.set(PropKey::Id, Value::Int(*id as i64));
        if !first_name.is_null() {
            pm.set(PropKey::FirstName, first_name.clone());
        }
        b.push_row(Vid::new(VertexLabel::Person, *id), Arc::new(pm))?;
        for &d in &out_adj[row] {
            b.push_out(EdgeLabel::Knows, d, None);
        }
        for &s in &in_adj[row] {
            b.push_in(EdgeLabel::Knows, s);
        }
    }
    b.finish()
}

/// The undirected 1..2-hop Knows neighbourhood as `(id, firstName)`
/// rows — the set the SQL six-branch UNION and the SPARQL
/// `(knows|^knows){1,2}` property path both produce. When
/// `require_first_name` is set, persons without the property are
/// omitted (SPARQL join semantics); otherwise they surface with a NULL
/// column (SQL outer-row semantics).
pub(crate) fn csr_two_hop(s: &CsrSnapshot, person: u64, require_first_name: bool) -> OpResult {
    let start = match s.row_of(Vid::new(VertexLabel::Person, person)) {
        Some(r) => r,
        None => return Vec::new(),
    };
    let mut seen: FastSet<u32> = FastSet::default();
    seen.insert(start);
    let mut level = vec![start];
    let mut rows = Vec::new();
    let mut buf: Vec<u32> = Vec::new();
    for _ in 0..2 {
        let mut next = Vec::new();
        for &r in &level {
            buf.clear();
            s.neighbors_into(r, Direction::Both, Some(EdgeLabel::Knows), &mut buf);
            for &n in &buf {
                if seen.insert(n) {
                    next.push(n);
                    let first_name = s.prop(n, PropKey::FirstName);
                    if first_name.is_none() && require_first_name {
                        continue;
                    }
                    rows.push(vec![
                        Value::Int(s.vid_of(n).local() as i64),
                        first_name.unwrap_or(Value::Null),
                    ]);
                }
            }
        }
        level = next;
    }
    rows
}

/// Undirected Knows BFS: `[[min_depth]]` within `max_depth` hops,
/// `[[0]]` when `a == b`, empty otherwise — exactly the contract of the
/// relational/RDF `TRANSITIVE` operators and the recursive-CTE idiom
/// (whose depth guard caps the row store at 10).
pub(crate) fn csr_shortest_path(s: &CsrSnapshot, a: u64, b: u64, max_depth: u32) -> OpResult {
    if a == b {
        return vec![vec![Value::Int(0)]];
    }
    let (start, goal) = match (
        s.row_of(Vid::new(VertexLabel::Person, a)),
        s.row_of(Vid::new(VertexLabel::Person, b)),
    ) {
        (Some(x), Some(y)) => (x, y),
        _ => return Vec::new(),
    };
    let mut seen: FastSet<u32> = FastSet::default();
    seen.insert(start);
    let mut level = vec![start];
    let mut buf: Vec<u32> = Vec::new();
    for depth in 1..=max_depth {
        let mut next = Vec::new();
        for &r in &level {
            buf.clear();
            s.neighbors_into(r, Direction::Both, Some(EdgeLabel::Knows), &mut buf);
            for &n in &buf {
                if n == goal {
                    return vec![vec![Value::Int(depth as i64)]];
                }
                if seen.insert(n) {
                    next.push(n);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }
    Vec::new()
}

/// Flatten update operations into the write list engines batch on
/// (vertex creations first within each op, then its edges — the order
/// `execute_update` applies them in).
pub fn update_writes(ops: &[UpdateOp], out: &mut Vec<GraphWrite>) {
    for op in ops {
        if let Some(v) = &op.new_vertex {
            out.push(GraphWrite::AddVertex {
                label: v.label,
                local_id: v.id,
                props: v.props.clone(),
            });
        }
        for e in &op.new_edges {
            out.push(GraphWrite::AddEdge {
                label: e.label,
                src: e.src,
                dst: e.dst,
                props: e.props.clone(),
            });
        }
    }
}

/// One system configuration under test.
pub trait SutAdapter: Send + Sync {
    /// Display name matching the paper's column headers.
    fn name(&self) -> &'static str;

    /// Bulk-load the static snapshot (vendor-specific loading path).
    fn load(&self, snapshot: &Dataset) -> Result<()>;

    /// Execute one read operation.
    fn execute_read(&self, op: &ReadOp) -> Result<OpResult>;

    /// Execute one update operation.
    fn execute_update(&self, op: &UpdateOp) -> Result<()>;

    /// Apply a batch of update operations in order, returning how many
    /// were applied. The default loops over [`execute_update`]; engines
    /// override it to amortize locks, WAL appends, and capacity growth
    /// across the batch. A failed operation stops the batch with its
    /// prefix applied — callers that must not lose operations fall back
    /// to per-op application for the remainder.
    ///
    /// [`execute_update`]: SutAdapter::execute_update
    fn execute_update_batch(&self, ops: &[UpdateOp]) -> Result<usize> {
        for op in ops {
            self.execute_update(op)?;
        }
        Ok(ops.len())
    }

    /// Resident bytes after loading (Table 1).
    fn storage_bytes(&self) -> usize;

    /// The TinkerPop structure API of this system, when it has one
    /// (used by the Table 4 / Appendix A loading experiments).
    fn graph_backend(&self) -> Option<Arc<dyn snb_core::GraphBackend>> {
        None
    }

    /// Whether concurrent bulk loading is supported (Neo4j-via-Gremlin
    /// is single-loader in the paper).
    fn supports_concurrent_load(&self) -> bool {
        true
    }
}

/// The eight configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SutKind {
    /// Neo4j with its native declarative language.
    NativeCypher,
    /// Neo4j driven through the Gremlin Server.
    NativeGremlin,
    /// TitanDB over the partitioned (Cassandra-like) backend, Gremlin.
    TitanC,
    /// TitanDB over the embedded transactional B-tree (BerkeleyDB-like), Gremlin.
    TitanB,
    /// Sqlg: Gremlin over the relational row store.
    Sqlg,
    /// Postgres-like: row store, native SQL.
    PostgresSql,
    /// Virtuoso-like: column store, native SQL (with TRANSITIVE).
    VirtuosoSql,
    /// Virtuoso-like RDF: triple store, SPARQL.
    VirtuosoSparql,
}

/// All configurations in the paper's column order.
pub const ALL_SUT_KINDS: [SutKind; 8] = [
    SutKind::NativeCypher,
    SutKind::NativeGremlin,
    SutKind::TitanC,
    SutKind::TitanB,
    SutKind::Sqlg,
    SutKind::PostgresSql,
    SutKind::VirtuosoSql,
    SutKind::VirtuosoSparql,
];

impl SutKind {
    /// Paper-style display name.
    pub fn display(self) -> &'static str {
        match self {
            SutKind::NativeCypher => "Native (Cypher)",
            SutKind::NativeGremlin => "Native (Gremlin)",
            SutKind::TitanC => "Titan-C (Gremlin)",
            SutKind::TitanB => "Titan-B (Gremlin)",
            SutKind::Sqlg => "Sqlg (Gremlin)",
            SutKind::PostgresSql => "Postgres (SQL)",
            SutKind::VirtuosoSql => "Virtuoso (SQL)",
            SutKind::VirtuosoSparql => "Virtuoso (SPARQL)",
        }
    }
}

/// Construct one adapter.
pub fn build_adapter(kind: SutKind) -> Box<dyn SutAdapter> {
    match kind {
        SutKind::NativeCypher => Box::new(cypher::CypherAdapter::new()),
        SutKind::NativeGremlin => Box::new(gremlin::GremlinAdapter::native()),
        SutKind::TitanC => Box::new(gremlin::GremlinAdapter::titan_c()),
        SutKind::TitanB => Box::new(gremlin::GremlinAdapter::titan_b()),
        SutKind::Sqlg => Box::new(gremlin::GremlinAdapter::sqlg()),
        SutKind::PostgresSql => Box::new(sql::SqlAdapter::row_store()),
        SutKind::VirtuosoSql => Box::new(sql::SqlAdapter::column_store()),
        SutKind::VirtuosoSparql => Box::new(sparql::SparqlAdapter::new()),
    }
}

/// Construct every configuration, in paper order.
pub fn build_all_adapters() -> Vec<Box<dyn SutAdapter>> {
    ALL_SUT_KINDS.iter().map(|&k| build_adapter(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::{Vid, VertexLabel};

    #[test]
    fn normalize_flattens_engine_specific_types() {
        assert_eq!(normalize(&Value::Date(5)), Value::Int(5));
        assert_eq!(
            normalize(&Value::Vertex(Vid::new(VertexLabel::Person, 7))),
            Value::Int(7)
        );
        assert_eq!(
            normalize(&Value::List(vec![Value::Date(1)])),
            Value::List(vec![Value::Int(1)])
        );
        assert_eq!(normalize(&Value::str("x")), Value::str("x"));
    }

    #[test]
    fn kinds_have_unique_display_names() {
        let names: std::collections::HashSet<_> =
            ALL_SUT_KINDS.iter().map(|k| k.display()).collect();
        assert_eq!(names.len(), ALL_SUT_KINDS.len());
    }
}
