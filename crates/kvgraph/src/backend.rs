//! Key-value backends: wide rows of sorted columns.

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use snb_core::fxhash::{self, FastMap};
use std::collections::BTreeMap;

/// Storage contract of the graph layer: wide rows addressed by row key,
/// holding sorted columns. Mirrors the slice of the Cassandra/BerkeleyDB
/// API that TitanDB actually uses.
pub trait KvBackend: Send + Sync {
    /// Backend name for experiment output.
    fn name(&self) -> &'static str;

    /// Read one column of one row.
    fn get(&self, row: &[u8], col: &[u8]) -> Option<Bytes>;

    /// Write one column of one row.
    fn put(&self, row: &[u8], col: &[u8], value: Bytes);

    /// Atomically write a column only if absent; returns whether the
    /// write happened. Only transactional backends implement this; the
    /// graph layer must lock around plain `put` otherwise.
    fn put_if_absent(&self, row: &[u8], col: &[u8], value: Bytes) -> Option<bool>;

    /// Write many columns in one call, draining `writes` (the buffer's
    /// capacity survives for reuse). The default loops over
    /// [`KvBackend::put`]; backends override it to amortize lock
    /// acquisitions and WAL appends across the batch. Writes to the
    /// same row keep their relative order.
    fn put_many(&self, writes: &mut Vec<(Vec<u8>, Vec<u8>, Bytes)>) {
        for (row, col, value) in writes.drain(..) {
            self.put(&row, &col, value);
        }
    }

    /// All columns of `row` whose key starts with `col_prefix`, in
    /// column order.
    fn scan(&self, row: &[u8], col_prefix: &[u8], out: &mut Vec<(Vec<u8>, Bytes)>);

    /// True when the row has at least one column.
    fn row_exists(&self, row: &[u8]) -> bool;

    /// Total stored columns.
    fn entry_count(&self) -> usize;

    /// Approximate resident bytes.
    fn storage_bytes(&self) -> usize;

    /// Whether the backend provides transactional isolation.
    fn transactional(&self) -> bool;
}

type Row = BTreeMap<Vec<u8>, Bytes>;

/// BerkeleyDB analogue: one embedded transactional B-tree behind a
/// single coarse lock, with a write-ahead log appended under that lock.
/// Single-threaded access is fast; concurrent readers and writers
/// serialize on the one lock and throughput collapses.
pub struct BTreeKv {
    data: RwLock<BTreeMap<Vec<u8>, Row>>,
    /// WAL buffer; appended under the write lock like a real embedded
    /// transactional store fsyncing its log.
    wal: Mutex<Vec<u8>>,
    entries: std::sync::atomic::AtomicUsize,
}

impl BTreeKv {
    /// Empty store.
    pub fn new() -> Self {
        BTreeKv {
            data: RwLock::new(BTreeMap::new()),
            wal: Mutex::new(Vec::new()),
            entries: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Bytes currently buffered in the WAL.
    pub fn wal_bytes(&self) -> usize {
        self.wal.lock().len()
    }

    fn log_write(&self, row: &[u8], col: &[u8], value: &Bytes) {
        let mut wal = self.wal.lock();
        Self::log_frame(&mut wal, row, col, value);
    }

    fn log_frame(wal: &mut Vec<u8>, row: &[u8], col: &[u8], value: &Bytes) {
        wal.extend_from_slice(&(row.len() as u32).to_le_bytes());
        wal.extend_from_slice(row);
        wal.extend_from_slice(&(col.len() as u32).to_le_bytes());
        wal.extend_from_slice(col);
        wal.extend_from_slice(&(value.len() as u32).to_le_bytes());
        wal.extend_from_slice(value);
        // Bound the WAL like a checkpointing store would.
        if wal.len() > 1 << 22 {
            wal.clear();
        }
    }
}

impl Default for BTreeKv {
    fn default() -> Self {
        Self::new()
    }
}

impl KvBackend for BTreeKv {
    fn name(&self) -> &'static str {
        "btree-kv"
    }

    fn get(&self, row: &[u8], col: &[u8]) -> Option<Bytes> {
        self.data.read().get(row)?.get(col).cloned()
    }

    fn put(&self, row: &[u8], col: &[u8], value: Bytes) {
        let mut data = self.data.write();
        self.log_write(row, col, &value);
        let fresh = data.entry(row.to_vec()).or_default().insert(col.to_vec(), value).is_none();
        if fresh {
            self.entries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn put_if_absent(&self, row: &[u8], col: &[u8], value: Bytes) -> Option<bool> {
        let mut data = self.data.write();
        let r = data.entry(row.to_vec()).or_default();
        if r.contains_key(col) {
            return Some(false);
        }
        self.log_write(row, col, &value);
        r.insert(col.to_vec(), value);
        self.entries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(true)
    }

    fn put_many(&self, writes: &mut Vec<(Vec<u8>, Vec<u8>, Bytes)>) {
        if writes.is_empty() {
            return;
        }
        // One tree lock and one WAL lock for the whole batch — the
        // "group commit" an embedded transactional store does when many
        // writes share a transaction.
        let mut data = self.data.write();
        let mut wal = self.wal.lock();
        let mut fresh = 0usize;
        for (row, col, value) in writes.drain(..) {
            Self::log_frame(&mut wal, &row, &col, &value);
            if data.entry(row).or_default().insert(col, value).is_none() {
                fresh += 1;
            }
        }
        if fresh > 0 {
            self.entries.fetch_add(fresh, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn scan(&self, row: &[u8], col_prefix: &[u8], out: &mut Vec<(Vec<u8>, Bytes)>) {
        let data = self.data.read();
        if let Some(r) = data.get(row) {
            for (k, v) in r.range(col_prefix.to_vec()..) {
                if !k.starts_with(col_prefix) {
                    break;
                }
                out.push((k.clone(), v.clone()));
            }
        }
    }

    fn row_exists(&self, row: &[u8]) -> bool {
        self.data.read().get(row).is_some_and(|r| !r.is_empty())
    }

    fn entry_count(&self) -> usize {
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn storage_bytes(&self) -> usize {
        let data = self.data.read();
        let mut bytes = self.wal.lock().len();
        for (rk, row) in data.iter() {
            bytes += rk.len() + 32;
            for (ck, v) in row {
                bytes += ck.len() + v.len() + 48;
            }
        }
        bytes
    }

    fn transactional(&self) -> bool {
        true
    }
}

/// Cassandra analogue: rows hash-partitioned across independently locked
/// shards. No cross-row atomicity and no conditional writes — the graph
/// layer supplies its own locking for uniqueness — but writers to
/// different partitions never contend, so it scales with loaders.
pub struct PartitionedKv {
    partitions: Vec<Mutex<FastMap<Vec<u8>, Row>>>,
    entries: std::sync::atomic::AtomicUsize,
}

impl PartitionedKv {
    /// Store with the default 16 partitions.
    pub fn new() -> Self {
        Self::with_partitions(16)
    }

    /// Store with an explicit partition count.
    pub fn with_partitions(n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        PartitionedKv {
            partitions: (0..n).map(|_| Mutex::new(FastMap::default())).collect(),
            entries: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn partition_ix(&self, row: &[u8]) -> usize {
        (fxhash::hash_one(&row) % self.partitions.len() as u64) as usize
    }

    fn partition(&self, row: &[u8]) -> &Mutex<FastMap<Vec<u8>, Row>> {
        &self.partitions[self.partition_ix(row)]
    }
}

impl Default for PartitionedKv {
    fn default() -> Self {
        Self::new()
    }
}

impl KvBackend for PartitionedKv {
    fn name(&self) -> &'static str {
        "partitioned-kv"
    }

    fn get(&self, row: &[u8], col: &[u8]) -> Option<Bytes> {
        self.partition(row).lock().get(row)?.get(col).cloned()
    }

    fn put(&self, row: &[u8], col: &[u8], value: Bytes) {
        let mut p = self.partition(row).lock();
        let fresh = p.entry(row.to_vec()).or_default().insert(col.to_vec(), value).is_none();
        if fresh {
            self.entries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn put_if_absent(&self, _row: &[u8], _col: &[u8], _value: Bytes) -> Option<bool> {
        None // no conditional writes, like Cassandra without LWT
    }

    fn put_many(&self, writes: &mut Vec<(Vec<u8>, Vec<u8>, Bytes)>) {
        if writes.is_empty() {
            return;
        }
        // Group by shard so each shard mutex is taken once per batch.
        // The sort is stable, so writes to one row (same shard) keep
        // their relative order.
        writes.sort_by_key(|(row, _, _)| self.partition_ix(row));
        let mut fresh = 0usize;
        let mut i = 0usize;
        while i < writes.len() {
            let shard = self.partition_ix(&writes[i].0);
            let mut p = self.partitions[shard].lock();
            while i < writes.len() {
                if self.partition_ix(&writes[i].0) != shard {
                    break;
                }
                let w = &mut writes[i];
                let (row, col, value) =
                    (std::mem::take(&mut w.0), std::mem::take(&mut w.1), std::mem::take(&mut w.2));
                if p.entry(row).or_default().insert(col, value).is_none() {
                    fresh += 1;
                }
                i += 1;
            }
        }
        writes.clear();
        if fresh > 0 {
            self.entries.fetch_add(fresh, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn scan(&self, row: &[u8], col_prefix: &[u8], out: &mut Vec<(Vec<u8>, Bytes)>) {
        let p = self.partition(row).lock();
        if let Some(r) = p.get(row) {
            for (k, v) in r.range(col_prefix.to_vec()..) {
                if !k.starts_with(col_prefix) {
                    break;
                }
                out.push((k.clone(), v.clone()));
            }
        }
    }

    fn row_exists(&self, row: &[u8]) -> bool {
        self.partition(row).lock().get(row).is_some_and(|r| !r.is_empty())
    }

    fn entry_count(&self) -> usize {
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn storage_bytes(&self) -> usize {
        let mut bytes = 0;
        for p in &self.partitions {
            let p = p.lock();
            for (rk, row) in p.iter() {
                bytes += rk.len() + 48;
                for (ck, v) in row {
                    bytes += ck.len() + v.len() + 48;
                }
            }
        }
        bytes
    }

    fn transactional(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<Box<dyn KvBackend>> {
        vec![Box::new(BTreeKv::new()), Box::new(PartitionedKv::new())]
    }

    #[test]
    fn put_get_roundtrip() {
        for b in backends() {
            b.put(b"row1", b"colA", Bytes::from_static(b"v1"));
            b.put(b"row1", b"colB", Bytes::from_static(b"v2"));
            assert_eq!(b.get(b"row1", b"colA"), Some(Bytes::from_static(b"v1")));
            assert_eq!(b.get(b"row1", b"colC"), None);
            assert_eq!(b.get(b"row2", b"colA"), None);
            assert!(b.row_exists(b"row1"));
            assert!(!b.row_exists(b"row2"));
            assert_eq!(b.entry_count(), 2, "{}", b.name());
            assert!(b.storage_bytes() > 0);
        }
    }

    #[test]
    fn overwrite_does_not_grow_count() {
        for b in backends() {
            b.put(b"r", b"c", Bytes::from_static(b"1"));
            b.put(b"r", b"c", Bytes::from_static(b"2"));
            assert_eq!(b.entry_count(), 1);
            assert_eq!(b.get(b"r", b"c"), Some(Bytes::from_static(b"2")));
        }
    }

    #[test]
    fn scan_respects_prefix_and_order() {
        for b in backends() {
            b.put(b"r", b"ea1", Bytes::new());
            b.put(b"r", b"ea2", Bytes::new());
            b.put(b"r", b"eb1", Bytes::new());
            b.put(b"r", b"p1", Bytes::new());
            let mut out = Vec::new();
            b.scan(b"r", b"ea", &mut out);
            let keys: Vec<&[u8]> = out.iter().map(|(k, _)| k.as_slice()).collect();
            assert_eq!(keys, vec![b"ea1".as_slice(), b"ea2".as_slice()], "{}", b.name());
            out.clear();
            b.scan(b"r", b"e", &mut out);
            assert_eq!(out.len(), 3);
            out.clear();
            b.scan(b"other", b"e", &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn conditional_put_only_on_transactional_backend() {
        let b = BTreeKv::new();
        assert_eq!(b.put_if_absent(b"r", b"c", Bytes::from_static(b"1")), Some(true));
        assert_eq!(b.put_if_absent(b"r", b"c", Bytes::from_static(b"2")), Some(false));
        assert_eq!(b.get(b"r", b"c"), Some(Bytes::from_static(b"1")));
        assert!(b.transactional());

        let p = PartitionedKv::new();
        assert_eq!(p.put_if_absent(b"r", b"c", Bytes::new()), None);
        assert!(!p.transactional());
    }

    #[test]
    fn put_many_matches_individual_puts() {
        for b in backends() {
            let mut writes: Vec<(Vec<u8>, Vec<u8>, Bytes)> = (0..100u32)
                .map(|i| {
                    (i.to_be_bytes().to_vec(), b"c".to_vec(), Bytes::from(i.to_le_bytes().to_vec()))
                })
                .collect();
            // Same-row writes keep order: a later write wins.
            writes.push((7u32.to_be_bytes().to_vec(), b"c".to_vec(), Bytes::from_static(b"new")));
            b.put_many(&mut writes);
            assert!(writes.is_empty(), "{}: batch drained", b.name());
            assert_eq!(b.entry_count(), 100, "{}", b.name());
            assert_eq!(b.get(&3u32.to_be_bytes(), b"c"), Some(Bytes::from(3u32.to_le_bytes().to_vec())));
            assert_eq!(b.get(&7u32.to_be_bytes(), b"c"), Some(Bytes::from_static(b"new")));
        }
    }

    #[test]
    fn btree_wal_accumulates_and_is_bounded() {
        let b = BTreeKv::new();
        b.put(b"r", b"c", Bytes::from_static(b"hello"));
        assert!(b.wal_bytes() > 0);
    }

    #[test]
    fn partitioned_concurrent_writes() {
        let p = std::sync::Arc::new(PartitionedKv::new());
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let p = std::sync::Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let row = [t, (i >> 8) as u8, i as u8];
                    p.put(&row, b"c", Bytes::from_static(b"v"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.entry_count(), 8 * 200);
    }
}
