//! A property-graph layer over pluggable key-value backends, in the
//! style of TitanDB.
//!
//! TitanDB stores each vertex as a *wide row*: the row key is the vertex
//! id and the columns hold properties and adjacency entries (one column
//! per incident edge, sorted so a label-restricted neighbourhood is one
//! column-range scan). Every read deserializes column values and every
//! write serializes them — the "storage and indexing abstractions
//! introduced by TitanDB itself" the paper blames for its update costs.
//! This crate reproduces that design over two backends:
//!
//! * [`backend::BTreeKv`] — BerkeleyDB analogue: one transactional
//!   B-tree behind a coarse lock with a write-ahead log. Fast for a
//!   single loader, collapses under concurrent readers and writers
//!   (which is why the paper withdrew Titan-B from Figure 3).
//! * [`backend::PartitionedKv`] — Cassandra analogue: hash-partitioned
//!   rows with per-partition locks and **no** cross-row transactions.
//!   Scales with concurrent loaders, but the graph layer must impose its
//!   own striped locking to guarantee id uniqueness, further taxing
//!   writes — exactly the paper's explanation of Titan-C.

pub mod backend;
pub mod codec;
pub mod graph;

pub use backend::{BTreeKv, KvBackend, PartitionedKv};
pub use graph::KvGraph;
