//! The TitanDB-like graph layer over a [`KvBackend`].

use bytes::Bytes;
use parking_lot::Mutex;
use snb_core::schema::edge_def;
use snb_core::{
    Direction, EdgeLabel, GraphBackend, GraphWrite, PropKey, Result, SnbError, Value, VertexLabel,
    Vid,
};
use snb_core::fxhash;

use crate::backend::KvBackend;
use crate::codec::{self, col};

/// Striped lock table the layer uses for uniqueness when the backend
/// cannot do conditional writes (the Titan-over-Cassandra situation).
struct LockManager {
    stripes: Vec<Mutex<()>>,
}

impl LockManager {
    fn new(n: usize) -> Self {
        LockManager { stripes: (0..n).map(|_| Mutex::new(())).collect() }
    }

    fn stripe_of(&self, key: &[u8]) -> usize {
        (fxhash::hash_one(&key) % self.stripes.len() as u64) as usize
    }

    fn lock(&self, key: &[u8]) -> parking_lot::MutexGuard<'_, ()> {
        self.stripes[self.stripe_of(key)].lock()
    }

    /// Lock the stripes of two keys without self- or ABBA-deadlock:
    /// distinct stripes are taken in index order, a shared stripe once.
    fn lock_pair(
        &self,
        a: &[u8],
        b: &[u8],
    ) -> (parking_lot::MutexGuard<'_, ()>, Option<parking_lot::MutexGuard<'_, ()>>) {
        let (ia, ib) = (self.stripe_of(a), self.stripe_of(b));
        if ia == ib {
            (self.stripes[ia].lock(), None)
        } else {
            let (lo, hi) = (ia.min(ib), ia.max(ib));
            (self.stripes[lo].lock(), Some(self.stripes[hi].lock()))
        }
    }
}

/// A property graph layered over `B`. Every access crosses the codec
/// boundary (encode on write, decode on read).
pub struct KvGraph<B: KvBackend> {
    backend: B,
    locks: LockManager,
    vertex_count: std::sync::atomic::AtomicUsize,
    edge_count: std::sync::atomic::AtomicUsize,
    /// Freshness-checked CSR snapshot cache (no native compactor here:
    /// snapshots are rebuilt through the public API with hysteresis).
    snaps: snb_core::SnapshotCache,
}

impl<B: KvBackend> KvGraph<B> {
    /// Graph layer over the given backend.
    pub fn new(backend: B) -> Self {
        KvGraph {
            backend,
            locks: LockManager::new(64),
            vertex_count: std::sync::atomic::AtomicUsize::new(0),
            edge_count: std::sync::atomic::AtomicUsize::new(0),
            snaps: snb_core::SnapshotCache::new(),
        }
    }

    /// Access the underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Claim the vertex's existence marker (immediately, so later ops
    /// in the same batch see it) and stage its property and label-index
    /// columns into `writes` for a deferred bulk flush.
    fn stage_vertex(
        &self,
        label: VertexLabel,
        local_id: u64,
        props: &[(PropKey, Value)],
        writes: &mut Vec<(Vec<u8>, Vec<u8>, Bytes)>,
    ) -> Result<()> {
        let vid = Vid::new(label, local_id);
        let row = codec::vertex_row(vid);
        let marker = Bytes::copy_from_slice(&[label as u8]);
        match self.backend.put_if_absent(&row, col::EXISTS, marker.clone()) {
            Some(true) => {}
            Some(false) => return Err(SnbError::Conflict(format!("vertex {vid} already exists"))),
            None => {
                let _guard = self.locks.lock(&row);
                if self.backend.get(&row, col::EXISTS).is_some() {
                    return Err(SnbError::Conflict(format!("vertex {vid} already exists")));
                }
                self.backend.put(&row, col::EXISTS, marker);
            }
        }
        writes.push((row.to_vec(), col::prop(PropKey::Id), codec::encode_props(&[(PropKey::Id, Value::Int(local_id as i64))])));
        for (k, v) in props {
            writes.push((row.to_vec(), col::prop(*k), codec::encode_props(&[(*k, v.clone())])));
        }
        writes.push((codec::label_index_row(label).to_vec(), row.to_vec(), Bytes::new()));
        Ok(())
    }

    /// Check an edge's schema and endpoints (existence markers are
    /// written eagerly, so in-batch vertices are visible) and stage its
    /// two adjacency columns. Deferred edge writes skip the per-edge
    /// `lock_pair` — batch callers route by key upstream, so two
    /// appliers never race on one source entity.
    fn stage_edge(
        &self,
        label: EdgeLabel,
        src: Vid,
        dst: Vid,
        props: &[(PropKey, Value)],
        writes: &mut Vec<(Vec<u8>, Vec<u8>, Bytes)>,
    ) -> Result<()> {
        edge_def(src.label(), label, dst.label())?;
        let src_row = codec::vertex_row(src);
        let dst_row = codec::vertex_row(dst);
        if self.backend.get(&src_row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {src}")));
        }
        if self.backend.get(&dst_row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {dst}")));
        }
        let payload = codec::encode_props(props);
        writes.push((src_row.to_vec(), col::edge(Direction::Out, label, dst), payload.clone()));
        writes.push((dst_row.to_vec(), col::edge(Direction::In, label, src), payload));
        Ok(())
    }
}

impl<B: KvBackend> GraphBackend for KvGraph<B> {
    fn name(&self) -> &'static str {
        if self.backend.transactional() {
            "kvgraph-btree"
        } else {
            "kvgraph-partitioned"
        }
    }

    fn add_vertex(&self, label: VertexLabel, local_id: u64, props: &[(PropKey, Value)]) -> Result<Vid> {
        let vid = Vid::new(label, local_id);
        let row = codec::vertex_row(vid);
        let marker = Bytes::copy_from_slice(&[label as u8]);
        // Uniqueness: conditional write when the backend supports it,
        // layer-level locking plus read-before-write otherwise.
        match self.backend.put_if_absent(&row, col::EXISTS, marker.clone()) {
            Some(true) => {}
            Some(false) => return Err(SnbError::Conflict(format!("vertex {vid} already exists"))),
            None => {
                let _guard = self.locks.lock(&row);
                if self.backend.get(&row, col::EXISTS).is_some() {
                    return Err(SnbError::Conflict(format!("vertex {vid} already exists")));
                }
                self.backend.put(&row, col::EXISTS, marker);
            }
        }
        let mut id_props: Vec<(PropKey, Value)> = Vec::with_capacity(props.len() + 1);
        id_props.push((PropKey::Id, Value::Int(local_id as i64)));
        id_props.extend_from_slice(props);
        for (k, v) in &id_props {
            self.backend.put(&row, &col::prop(*k), codec::encode_props(&[(*k, v.clone())]));
        }
        // Label index row (Titan's composite index on labels).
        self.backend.put(&codec::label_index_row(label), &row, Bytes::new());
        self.vertex_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.snaps.note_writes(1);
        Ok(vid)
    }

    fn add_edge(&self, label: EdgeLabel, src: Vid, dst: Vid, props: &[(PropKey, Value)]) -> Result<()> {
        edge_def(src.label(), label, dst.label())?;
        let src_row = codec::vertex_row(src);
        let dst_row = codec::vertex_row(dst);
        // Read-before-write: both endpoints must exist.
        if self.backend.get(&src_row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {src}")));
        }
        if self.backend.get(&dst_row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {dst}")));
        }
        let payload = codec::encode_props(props);
        if self.backend.transactional() {
            self.backend.put(&src_row, &col::edge(Direction::Out, label, dst), payload.clone());
            self.backend.put(&dst_row, &col::edge(Direction::In, label, src), payload);
        } else {
            // Layer-level locks on both rows, stripe-ordered to avoid
            // deadlock (Titan's locking protocol over Cassandra).
            let _guards = self.locks.lock_pair(&src_row, &dst_row);
            self.backend.put(&src_row, &col::edge(Direction::Out, label, dst), payload.clone());
            self.backend.put(&dst_row, &col::edge(Direction::In, label, src), payload);
        }
        self.edge_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.snaps.note_writes(1);
        Ok(())
    }

    fn vertex_exists(&self, v: Vid) -> bool {
        self.backend.get(&codec::vertex_row(v), col::EXISTS).is_some()
    }

    fn vertex_prop(&self, v: Vid, key: PropKey) -> Result<Option<Value>> {
        let row = codec::vertex_row(v);
        if self.backend.get(&row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {v}")));
        }
        match self.backend.get(&row, &col::prop(key)) {
            None => Ok(None),
            Some(bytes) => {
                let mut props = codec::decode_props(&bytes)?;
                Ok(props.pop().map(|(_, v)| v))
            }
        }
    }

    fn vertex_props(&self, v: Vid) -> Result<Vec<(PropKey, Value)>> {
        let row = codec::vertex_row(v);
        if self.backend.get(&row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {v}")));
        }
        let mut cols = Vec::new();
        self.backend.scan(&row, col::PROP_PREFIX, &mut cols);
        let mut out = Vec::with_capacity(cols.len());
        for (_, bytes) in cols {
            out.extend(codec::decode_props(&bytes)?);
        }
        Ok(out)
    }

    fn set_vertex_prop(&self, v: Vid, key: PropKey, value: Value) -> Result<()> {
        let row = codec::vertex_row(v);
        if self.backend.get(&row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {v}")));
        }
        self.backend.put(&row, &col::prop(key), codec::encode_props(&[(key, value)]));
        self.snaps.note_writes(1);
        Ok(())
    }

    fn neighbors(&self, v: Vid, dir: Direction, label: Option<EdgeLabel>, out: &mut Vec<Vid>) -> Result<()> {
        let row = codec::vertex_row(v);
        if self.backend.get(&row, col::EXISTS).is_none() {
            return Err(SnbError::NotFound(format!("vertex {v}")));
        }
        let mut cols = Vec::new();
        let dirs: &[Direction] = match dir {
            Direction::Out => &[Direction::Out],
            Direction::In => &[Direction::In],
            Direction::Both => &[Direction::Out, Direction::In],
        };
        for &d in dirs {
            cols.clear();
            self.backend.scan(&row, &col::edge_prefix(d, label), &mut cols);
            for (key, _) in &cols {
                out.push(
                    col::edge_other(key)
                        .ok_or_else(|| SnbError::Codec("bad adjacency column".into()))?,
                );
            }
        }
        Ok(())
    }

    fn edge_prop(&self, src: Vid, label: EdgeLabel, dst: Vid, key: PropKey) -> Result<Option<Value>> {
        let row = codec::vertex_row(src);
        match self.backend.get(&row, &col::edge(Direction::Out, label, dst)) {
            None => Err(SnbError::NotFound(format!("edge {src}-[:{label}]->{dst}"))),
            Some(bytes) => {
                let props = codec::decode_props(&bytes)?;
                Ok(props.into_iter().find(|(k, _)| *k == key).map(|(_, v)| v))
            }
        }
    }

    fn edge_exists(&self, src: Vid, label: EdgeLabel, dst: Vid) -> Result<bool> {
        Ok(self
            .backend
            .get(&codec::vertex_row(src), &col::edge(Direction::Out, label, dst))
            .is_some())
    }

    fn vertices_by_label(&self, label: VertexLabel) -> Result<Vec<Vid>> {
        let mut cols = Vec::new();
        self.backend.scan(&codec::label_index_row(label), &[], &mut cols);
        let mut out = Vec::with_capacity(cols.len());
        for (key, _) in cols {
            if key.len() == 8 {
                out.push(Vid::from_raw(u64::from_be_bytes(key[..8].try_into().expect("8 bytes")))?);
            }
        }
        Ok(out)
    }

    fn vertex_count(&self) -> usize {
        self.vertex_count.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn edge_count(&self) -> usize {
        self.edge_count.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn storage_bytes(&self) -> usize {
        self.backend.storage_bytes()
    }

    fn apply_batch(&self, ops: &[GraphWrite]) -> Result<usize> {
        if ops.is_empty() {
            return Ok(0);
        }
        // Stage every column write, then flush them in one backend
        // call: the BTree backend group-commits (one tree + WAL lock),
        // the partitioned backend takes each shard mutex once.
        let mut writes: Vec<(Vec<u8>, Vec<u8>, Bytes)> = Vec::with_capacity(ops.len() * 3);
        let mut vertices = 0usize;
        let mut edges = 0usize;
        let mut applied = 0usize;
        let mut err = None;
        for op in ops {
            let staged = match op {
                GraphWrite::AddVertex { label, local_id, props } => {
                    self.stage_vertex(*label, *local_id, props, &mut writes).map(|()| vertices += 1)
                }
                GraphWrite::AddEdge { label, src, dst, props } => {
                    self.stage_edge(*label, *src, *dst, props, &mut writes).map(|()| edges += 1)
                }
            };
            match staged {
                Ok(()) => applied += 1,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        // Flush the staged prefix even when a later op failed, matching
        // the one-by-one contract (prefix applied, suffix not).
        self.backend.put_many(&mut writes);
        self.vertex_count.fetch_add(vertices, std::sync::atomic::Ordering::Relaxed);
        self.edge_count.fetch_add(edges, std::sync::atomic::Ordering::Relaxed);
        self.snaps.note_writes(applied as u64);
        match err {
            Some(e) => Err(e),
            None => Ok(applied),
        }
    }

    fn pin_snapshot(&self) -> Option<std::sync::Arc<snb_core::CsrSnapshot>> {
        self.snaps.pin(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BTreeKv, PartitionedKv};

    fn graphs() -> (KvGraph<BTreeKv>, KvGraph<PartitionedKv>) {
        (KvGraph::new(BTreeKv::new()), KvGraph::new(PartitionedKv::new()))
    }

    fn seed(g: &(impl GraphBackend + ?Sized)) {
        for id in 1..=3 {
            g.add_vertex(VertexLabel::Person, id, &[(PropKey::FirstName, Value::str("p"))])
                .unwrap();
        }
        g.add_edge(
            EdgeLabel::Knows,
            Vid::new(VertexLabel::Person, 1),
            Vid::new(VertexLabel::Person, 2),
            &[(PropKey::CreationDate, Value::Date(7))],
        )
        .unwrap();
        g.add_edge(
            EdgeLabel::Knows,
            Vid::new(VertexLabel::Person, 3),
            Vid::new(VertexLabel::Person, 1),
            &[],
        )
        .unwrap();
    }

    #[test]
    fn crud_roundtrip_both_backends() {
        let (bt, pt) = graphs();
        for g in [&bt as &dyn GraphBackend, &pt as &dyn GraphBackend] {
            seed(g);
            let v1 = Vid::new(VertexLabel::Person, 1);
            assert!(g.vertex_exists(v1));
            assert_eq!(g.vertex_prop(v1, PropKey::FirstName).unwrap(), Some(Value::str("p")));
            assert_eq!(g.vertex_prop(v1, PropKey::Content).unwrap(), None);
            let mut out = Vec::new();
            g.neighbors(v1, Direction::Out, Some(EdgeLabel::Knows), &mut out).unwrap();
            assert_eq!(out, vec![Vid::new(VertexLabel::Person, 2)]);
            out.clear();
            g.neighbors(v1, Direction::Both, None, &mut out).unwrap();
            assert_eq!(out.len(), 2);
            assert_eq!(
                g.edge_prop(v1, EdgeLabel::Knows, Vid::new(VertexLabel::Person, 2), PropKey::CreationDate)
                    .unwrap(),
                Some(Value::Date(7))
            );
            assert_eq!(g.vertex_count(), 3);
            assert_eq!(g.edge_count(), 2);
            assert_eq!(g.vertices_by_label(VertexLabel::Person).unwrap().len(), 3);
            assert!(g.vertices_by_label(VertexLabel::Tag).unwrap().is_empty());
            assert!(g.storage_bytes() > 0);
        }
    }

    #[test]
    fn duplicate_vertex_rejected_by_both_mechanisms() {
        let (bt, pt) = graphs();
        for g in [&bt as &dyn GraphBackend, &pt as &dyn GraphBackend] {
            g.add_vertex(VertexLabel::Person, 7, &[]).unwrap();
            assert!(matches!(
                g.add_vertex(VertexLabel::Person, 7, &[]),
                Err(SnbError::Conflict(_))
            ));
        }
    }

    #[test]
    fn edges_require_existing_endpoints_and_schema() {
        let (bt, _) = graphs();
        bt.add_vertex(VertexLabel::Person, 1, &[]).unwrap();
        let missing = Vid::new(VertexLabel::Person, 9);
        assert!(matches!(
            bt.add_edge(EdgeLabel::Knows, Vid::new(VertexLabel::Person, 1), missing, &[]),
            Err(SnbError::NotFound(_))
        ));
        bt.add_vertex(VertexLabel::Tag, 1, &[]).unwrap();
        assert!(matches!(
            bt.add_edge(
                EdgeLabel::Knows,
                Vid::new(VertexLabel::Person, 1),
                Vid::new(VertexLabel::Tag, 1),
                &[]
            ),
            Err(SnbError::Plan(_))
        ));
    }

    #[test]
    fn set_prop_overwrites() {
        let (_, pt) = graphs();
        let v = pt.add_vertex(VertexLabel::Person, 1, &[(PropKey::FirstName, Value::str("a"))]).unwrap();
        pt.set_vertex_prop(v, PropKey::FirstName, Value::str("b")).unwrap();
        assert_eq!(pt.vertex_prop(v, PropKey::FirstName).unwrap(), Some(Value::str("b")));
        let props = pt.vertex_props(v).unwrap();
        assert!(props.contains(&(PropKey::Id, Value::Int(1))));
        assert!(props.contains(&(PropKey::FirstName, Value::str("b"))));
    }

    #[test]
    fn edges_between_same_stripe_rows_do_not_self_deadlock() {
        // Regression: with 64 stripes, distinct rows regularly hash to
        // the same stripe; lock_pair must collapse to a single lock.
        let g = KvGraph::new(PartitionedKv::new());
        for id in 0..200 {
            g.add_vertex(VertexLabel::Person, id, &[]).unwrap();
        }
        // 199 edges guarantee several same-stripe pairs across 64 stripes.
        for id in 0..199 {
            g.add_edge(
                EdgeLabel::Knows,
                Vid::new(VertexLabel::Person, id),
                Vid::new(VertexLabel::Person, id + 1),
                &[],
            )
            .unwrap();
        }
        assert_eq!(g.edge_count(), 199);
    }

    #[test]
    fn apply_batch_matches_one_by_one_on_both_backends() {
        let writes = vec![
            GraphWrite::AddVertex { label: VertexLabel::Person, local_id: 1, props: vec![(PropKey::FirstName, Value::str("a"))] },
            GraphWrite::AddVertex { label: VertexLabel::Person, local_id: 2, props: vec![] },
            GraphWrite::AddEdge {
                label: EdgeLabel::Knows,
                src: Vid::new(VertexLabel::Person, 1),
                dst: Vid::new(VertexLabel::Person, 2),
                props: vec![(PropKey::CreationDate, Value::Date(7))],
            },
        ];
        let (bt, pt) = graphs();
        for g in [&bt as &dyn GraphBackend, &pt as &dyn GraphBackend] {
            assert_eq!(g.apply_batch(&writes).unwrap(), 3);
            let (a, b) = (Vid::new(VertexLabel::Person, 1), Vid::new(VertexLabel::Person, 2));
            assert_eq!(g.vertex_count(), 2);
            assert_eq!(g.edge_count(), 1);
            assert_eq!(g.vertex_prop(a, PropKey::FirstName).unwrap(), Some(Value::str("a")));
            assert_eq!(g.vertex_prop(a, PropKey::Id).unwrap(), Some(Value::Int(1)));
            assert!(g.edge_exists(a, EdgeLabel::Knows, b).unwrap());
            assert_eq!(
                g.edge_prop(a, EdgeLabel::Knows, b, PropKey::CreationDate).unwrap(),
                Some(Value::Date(7))
            );
            assert_eq!(g.vertices_by_label(VertexLabel::Person).unwrap().len(), 2);
            // Duplicate batch: the conflict surfaces and nothing doubles.
            assert!(matches!(g.apply_batch(&writes[..1]), Err(SnbError::Conflict(_))));
            assert_eq!(g.vertex_count(), 2);
        }
    }

    #[test]
    fn apply_batch_prefix_survives_failed_op() {
        let (bt, _) = graphs();
        let writes = vec![
            GraphWrite::AddVertex { label: VertexLabel::Person, local_id: 1, props: vec![] },
            GraphWrite::AddEdge {
                label: EdgeLabel::Knows,
                src: Vid::new(VertexLabel::Person, 1),
                dst: Vid::new(VertexLabel::Person, 99),
                props: vec![],
            },
            GraphWrite::AddVertex { label: VertexLabel::Person, local_id: 2, props: vec![] },
        ];
        assert!(matches!(bt.apply_batch(&writes), Err(SnbError::NotFound(_))));
        assert!(bt.vertex_exists(Vid::new(VertexLabel::Person, 1)));
        assert!(!bt.vertex_exists(Vid::new(VertexLabel::Person, 2)));
    }

    #[test]
    fn concurrent_unique_inserts_one_winner() {
        let g = std::sync::Arc::new(KvGraph::new(PartitionedKv::new()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = std::sync::Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                g.add_vertex(VertexLabel::Person, 42, &[]).is_ok()
            }));
        }
        let wins: usize = handles.into_iter().map(|h| h.join().unwrap() as usize).sum();
        assert_eq!(wins, 1, "exactly one concurrent insert wins");
    }
}
