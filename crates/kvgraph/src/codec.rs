//! Binary codecs for property maps and column keys.
//!
//! Every value that crosses the storage boundary is encoded to bytes and
//! decoded on the way back — the real (de)serialization tax a layered
//! store pays on each access.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use snb_core::{PropKey, Result, SnbError, Value, Vid};

/// Encode a property list to bytes.
pub fn encode_props(props: &[(PropKey, Value)]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + props.len() * 12);
    buf.put_u16(props.len() as u16);
    for (k, v) in props {
        buf.put_u8(*k as u8);
        encode_value(v, &mut buf);
    }
    buf.freeze()
}

/// Decode a property list.
pub fn decode_props(mut data: &[u8]) -> Result<Vec<(PropKey, Value)>> {
    if data.remaining() < 2 {
        return Err(SnbError::Codec("truncated property list".into()));
    }
    let n = data.get_u16() as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if data.remaining() < 1 {
            return Err(SnbError::Codec("truncated property key".into()));
        }
        let key = PropKey::from_tag(data.get_u8())?;
        let value = decode_value(&mut data)?;
        out.push((key, value));
    }
    Ok(out)
}

fn encode_value(v: &Value, buf: &mut BytesMut) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(3);
            buf.put_f64(*f);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.put_u8(5);
            buf.put_i64(*d);
        }
        Value::Vertex(v) => {
            buf.put_u8(6);
            buf.put_u64(v.raw());
        }
        Value::List(vs) => {
            buf.put_u8(7);
            buf.put_u16(vs.len() as u16);
            for v in vs {
                encode_value(v, buf);
            }
        }
    }
}

fn decode_value(data: &mut &[u8]) -> Result<Value> {
    if data.remaining() < 1 {
        return Err(SnbError::Codec("truncated value".into()));
    }
    let tag = data.get_u8();
    let need = |data: &&[u8], n: usize| -> Result<()> {
        if data.remaining() < n {
            Err(SnbError::Codec("truncated value payload".into()))
        } else {
            Ok(())
        }
    };
    Ok(match tag {
        0 => Value::Null,
        1 => {
            need(data, 1)?;
            Value::Bool(data.get_u8() != 0)
        }
        2 => {
            need(data, 8)?;
            Value::Int(data.get_i64())
        }
        3 => {
            need(data, 8)?;
            Value::Float(data.get_f64())
        }
        4 => {
            need(data, 4)?;
            let len = data.get_u32() as usize;
            need(data, len)?;
            let s = std::str::from_utf8(&data[..len])
                .map_err(|_| SnbError::Codec("invalid utf-8 string".into()))?
                .to_string();
            data.advance(len);
            Value::string(s)
        }
        5 => {
            need(data, 8)?;
            Value::Date(data.get_i64())
        }
        6 => {
            need(data, 8)?;
            Value::Vertex(Vid::from_raw(data.get_u64())?)
        }
        7 => {
            need(data, 2)?;
            let n = data.get_u16() as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(data)?);
            }
            Value::List(items)
        }
        other => return Err(SnbError::Codec(format!("unknown value tag {other}"))),
    })
}

/// Column-key namespaces within a vertex row.
pub mod col {
    use bytes::BufMut;
    use snb_core::{Direction, EdgeLabel, Vid};

    /// Existence/label marker column.
    pub const EXISTS: &[u8] = b"x";

    /// Property column for one key.
    pub fn prop(key: snb_core::PropKey) -> Vec<u8> {
        vec![b'p', key as u8]
    }

    /// Prefix of all property columns.
    pub const PROP_PREFIX: &[u8] = b"p";

    fn dir_byte(dir: Direction) -> u8 {
        match dir {
            Direction::Out => b'o',
            Direction::In => b'i',
            Direction::Both => unreachable!("adjacency columns are stored per direction"),
        }
    }

    /// Adjacency column for one incident edge.
    pub fn edge(dir: Direction, label: EdgeLabel, other: Vid) -> Vec<u8> {
        let mut k = Vec::with_capacity(11);
        k.push(b'e');
        k.push(dir_byte(dir));
        k.push(label as u8);
        k.put_u64(other.raw());
        k
    }

    /// Prefix of adjacency columns in one direction, optionally
    /// restricted to a label.
    pub fn edge_prefix(dir: Direction, label: Option<EdgeLabel>) -> Vec<u8> {
        let mut k = vec![b'e', dir_byte(dir)];
        if let Some(l) = label {
            k.push(l as u8);
        }
        k
    }

    /// Decode the neighbour vid from an adjacency column key.
    pub fn edge_other(col_key: &[u8]) -> Option<Vid> {
        if col_key.len() != 11 || col_key[0] != b'e' {
            return None;
        }
        let raw = u64::from_be_bytes(col_key[3..11].try_into().ok()?);
        Vid::from_raw(raw).ok()
    }
}

/// Row key of a vertex.
pub fn vertex_row(v: Vid) -> [u8; 8] {
    v.raw().to_be_bytes()
}

/// Row key of a label index.
pub fn label_index_row(label: snb_core::VertexLabel) -> [u8; 2] {
    [b'L', label as u8]
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::{Direction, EdgeLabel, VertexLabel};

    #[test]
    fn props_roundtrip() {
        let props = vec![
            (PropKey::FirstName, Value::str("Ada")),
            (PropKey::Length, Value::Int(42)),
            (PropKey::CreationDate, Value::Date(-5)),
            (PropKey::Speaks, Value::List(vec![Value::str("en"), Value::str("tr")])),
            (PropKey::Gender, Value::Null),
            (PropKey::Id, Value::Float(1.5)),
        ];
        let bytes = encode_props(&props);
        assert_eq!(decode_props(&bytes).unwrap(), props);
    }

    #[test]
    fn empty_props_roundtrip() {
        let bytes = encode_props(&[]);
        assert!(decode_props(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncated_data_errors() {
        assert!(decode_props(&[]).is_err());
        let bytes = encode_props(&[(PropKey::FirstName, Value::str("Ada"))]);
        assert!(decode_props(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn edge_column_roundtrip() {
        let v = Vid::new(VertexLabel::Person, 12345);
        let key = col::edge(Direction::Out, EdgeLabel::Knows, v);
        assert!(key.starts_with(&col::edge_prefix(Direction::Out, Some(EdgeLabel::Knows))));
        assert!(key.starts_with(&col::edge_prefix(Direction::Out, None)));
        assert_eq!(col::edge_other(&key), Some(v));
        assert_eq!(col::edge_other(b"bogus"), None);
    }

    #[test]
    fn adjacency_prefixes_separate_directions_and_labels() {
        let v = Vid::new(VertexLabel::Person, 1);
        let out_knows = col::edge(Direction::Out, EdgeLabel::Knows, v);
        let in_knows = col::edge(Direction::In, EdgeLabel::Knows, v);
        let out_likes = col::edge(Direction::Out, EdgeLabel::Likes, v);
        assert!(!in_knows.starts_with(&col::edge_prefix(Direction::Out, None)));
        assert!(!out_likes.starts_with(&col::edge_prefix(Direction::Out, Some(EdgeLabel::Knows))));
        assert!(out_knows.starts_with(&col::edge_prefix(Direction::Out, Some(EdgeLabel::Knows))));
    }
}
