//! Plan-equivalence property tests for the SQL front end: every query
//! template the shared optimizer schedules must return the same rows
//! as the executor's built-in heuristics, over random databases and
//! random (valid and dangling) parameters. Join order legitimately
//! changes row order, so rows are compared as sorted multisets; the
//! recursive shortest-path template additionally pits the BFS rewrite
//! against full semi-naive iteration.

use proptest::prelude::*;
use snb_core::Value;
use snb_relational::{Database, Layout};

/// Templates covering the optimizer's SQL surface: index scan
/// selection (`scan_strategy`), cost-based source ordering
/// (`join_order`), filter placement (`predicate_pushdown`), projection
/// pruning, union arms, aggregates, and the reach-CTE BFS rewrite.
const TEMPLATES: &[&str] = &[
    "SELECT firstName FROM person WHERE id = $1",
    "SELECT p.id, p.firstName FROM person_knows_person k \
     JOIN person p ON p.id = k.dst WHERE k.src = $1",
    "SELECT p.firstName FROM person p \
     JOIN person_knows_person k ON k.src = p.id WHERE k.dst = $1",
    "SELECT DISTINCT k2.dst FROM person_knows_person k1 \
     JOIN person_knows_person k2 ON k2.src = k1.dst WHERE k1.src = $1",
    "SELECT p.id FROM person_knows_person k JOIN person p ON p.id = k.dst WHERE k.src = $1 \
     UNION \
     SELECT p.id FROM person_knows_person k JOIN person p ON p.id = k.src WHERE k.dst = $1",
    "SELECT COUNT(*), MIN(dst), MAX(dst) FROM person_knows_person WHERE src = $1",
    "WITH RECURSIVE reach(id, depth) AS ( \
       SELECT dst, 1 FROM person_knows_person WHERE src = $1 \
       UNION SELECT src, 1 FROM person_knows_person WHERE dst = $1 \
       UNION SELECT k.dst, r.depth + 1 FROM reach r \
             JOIN person_knows_person k ON k.src = r.id WHERE r.depth < 4 \
       UNION SELECT k.src, r.depth + 1 FROM reach r \
             JOIN person_knows_person k ON k.dst = r.id WHERE r.depth < 4 \
     ) SELECT MIN(depth) FROM reach WHERE id = $2",
];

fn build(layout: Layout, persons: u8, edges: &[(u8, u8)]) -> Database {
    let db = Database::new_snb(layout);
    let pdef = db.table_def("person").unwrap();
    let name_ix = pdef.col("firstName").unwrap();
    for i in 0..persons {
        let mut row = vec![Value::Null; pdef.arity()];
        row[0] = Value::Int(i as i64);
        row[name_ix] = Value::str(&format!("n{}", (b'a' + i % 5) as char));
        db.insert_row("person", row).unwrap();
    }
    let kdef = db.table_def("person_knows_person").unwrap();
    for &(a, b) in edges {
        let mut row = vec![Value::Null; kdef.arity()];
        row[0] = Value::Int((a % persons.max(1)) as i64);
        row[1] = Value::Int((b % persons.max(1)) as i64);
        db.insert_row("person_knows_person", row).unwrap();
    }
    db
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Scheduled execution must produce the same result multiset as the
    /// heuristic executor, on both physical layouts.
    #[test]
    fn planned_execution_matches_naive(
        persons in 1..24u8,
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..60),
        id_seeds in proptest::collection::vec(any::<u8>(), 4..5),
    ) {
        for layout in [Layout::Row, Layout::Column] {
            let db = build(layout, persons, &edges);
            // A mix of valid ids and one deliberately dangling id.
            let ids: Vec<i64> = id_seeds
                .iter()
                .enumerate()
                .map(|(i, &s)| if i == 3 { persons as i64 + 7 } else { (s % persons) as i64 })
                .collect();
            for template in TEMPLATES {
                for &id in &ids {
                    let params = [Value::Int(id), Value::Int(ids[0])];
                    let optimized = db.sql(template, &params).unwrap();
                    let naive = db.sql_naive(template, &params).unwrap();
                    prop_assert_eq!(
                        &optimized.columns, &naive.columns,
                        "columns diverge for `{}`", template
                    );
                    prop_assert_eq!(
                        sorted(optimized.rows), sorted(naive.rows),
                        "rows diverge for `{}` (id={}, layout={:?})", template, id, layout
                    );
                }
            }
        }
    }
}
