//! End-to-end SQL tests on both layouts, using LDBC-shaped queries.

use snb_core::Value;
use snb_relational::{Database, Layout};

/// Friendship chain 1-2-3-4-5 plus 1-3, as in the graph-native tests.
fn fixture(layout: Layout) -> Database {
    let db = Database::new_snb(layout);
    for (id, name) in [(1, "Ada"), (2, "Bob"), (3, "Cai"), (4, "Dee"), (5, "Eli"), (9, "Zoe")] {
        db.sql(
            "INSERT INTO person (id, firstName, lastName, creationDate) VALUES ($1, $2, $3, $4)",
            &[Value::Int(id), Value::str(name), Value::str("X"), Value::Int(id * 100)],
        )
        .unwrap();
    }
    for (a, b, d) in [(1, 2, 10), (2, 3, 20), (3, 4, 30), (4, 5, 40), (1, 3, 50)] {
        db.sql(
            "INSERT INTO person_knows_person VALUES ($1, $2, $3)",
            &[Value::Int(a), Value::Int(b), Value::Int(d)],
        )
        .unwrap();
    }
    db
}

fn both() -> [Database; 2] {
    [fixture(Layout::Row), fixture(Layout::Column)]
}

#[test]
fn point_lookup() {
    for db in both() {
        let r = db
            .sql("SELECT firstName, creationDate FROM person WHERE id = $1", &[Value::Int(3)])
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::str("Cai"), Value::Date(300)]]);
        let miss = db.sql("SELECT firstName FROM person WHERE id = $1", &[Value::Int(77)]).unwrap();
        assert!(miss.is_empty());
    }
}

#[test]
fn one_hop_undirected_union() {
    for db in both() {
        let r = db
            .sql(
                "SELECT p.id FROM person_knows_person k JOIN person p ON p.id = k.dst WHERE k.src = $1 \
                 UNION \
                 SELECT p.id FROM person_knows_person k JOIN person p ON p.id = k.src WHERE k.dst = $1 \
                 ORDER BY 1",
                &[Value::Int(3)],
            )
            .unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 4], "layout {:?}", db.layout());
    }
}

#[test]
fn two_hop_via_self_join() {
    for db in both() {
        // Out-out two-hop from person 1 (1->2->3, 1->3->4).
        let r = db
            .sql(
                "SELECT DISTINCT k2.dst FROM person_knows_person k1 \
                 JOIN person_knows_person k2 ON k2.src = k1.dst \
                 WHERE k1.src = $1 AND k2.dst <> $1 ORDER BY 1",
                &[Value::Int(1)],
            )
            .unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![3, 4]);
    }
}

#[test]
fn recursive_cte_shortest_path() {
    for db in both() {
        let q = "WITH RECURSIVE reach(id, depth) AS ( \
                   SELECT dst, 1 FROM person_knows_person WHERE src = $1 \
                   UNION \
                   SELECT src, 1 FROM person_knows_person WHERE dst = $1 \
                   UNION \
                   SELECT k.dst, r.depth + 1 FROM reach r JOIN person_knows_person k ON k.src = r.id WHERE r.depth < 8 \
                   UNION \
                   SELECT k.src, r.depth + 1 FROM reach r JOIN person_knows_person k ON k.dst = r.id WHERE r.depth < 8 \
                 ) SELECT MIN(depth) FROM reach WHERE id = $2";
        let r = db.sql(q, &[Value::Int(1), Value::Int(5)]).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)), "1-3-4-5 in {:?}", db.layout());
        let unreachable = db.sql(q, &[Value::Int(1), Value::Int(9)]).unwrap();
        assert_eq!(unreachable.scalar(), Some(&Value::Null));
    }
}

#[test]
fn transitive_operator_column_store_only() {
    let col = fixture(Layout::Column);
    let r = col
        .sql("SELECT TRANSITIVE(person_knows_person, $1, $2, 16)", &[Value::Int(1), Value::Int(5)])
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(3)));
    assert_eq!(r.columns, vec!["depth"]);
    // Same endpoint: depth 0. Unreachable: empty.
    let zero = col
        .sql("SELECT TRANSITIVE(person_knows_person, $1, $2)", &[Value::Int(2), Value::Int(2)])
        .unwrap();
    assert_eq!(zero.scalar(), Some(&Value::Int(0)));
    let none = col
        .sql("SELECT TRANSITIVE(person_knows_person, $1, $2)", &[Value::Int(1), Value::Int(9)])
        .unwrap();
    assert!(none.is_empty());
    // Row store rejects the extension, as Postgres would.
    let row = fixture(Layout::Row);
    assert!(row
        .sql("SELECT TRANSITIVE(person_knows_person, $1, $2)", &[Value::Int(1), Value::Int(5)])
        .is_err());
}

#[test]
fn transitive_directed_mode() {
    let col = fixture(Layout::Column);
    // Directed: 5 cannot reach 1 following edge direction.
    let r = col
        .sql(
            "SELECT TRANSITIVE(person_knows_person, $1, $2, 16, DIRECTED)",
            &[Value::Int(5), Value::Int(1)],
        )
        .unwrap();
    assert!(r.is_empty());
    let fwd = col
        .sql(
            "SELECT TRANSITIVE(person_knows_person, $1, $2, 16, DIRECTED)",
            &[Value::Int(1), Value::Int(5)],
        )
        .unwrap();
    assert_eq!(fwd.scalar(), Some(&Value::Int(3)));
}

#[test]
fn aggregates() {
    for db in both() {
        let r = db.sql("SELECT COUNT(*) FROM person_knows_person", &[]).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(5)));
        let r = db
            .sql("SELECT COUNT(DISTINCT src), MIN(creationDate), MAX(creationDate) FROM person_knows_person", &[])
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Int(4), Value::Date(10), Value::Date(50)]);
        let r = db.sql("SELECT COUNT(*) FROM person WHERE id > $1", &[Value::Int(100)]).unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(0)), "count over empty set is 0");
    }
}

#[test]
fn grouped_aggregate() {
    for db in both() {
        let r = db
            .sql(
                "SELECT src, COUNT(*) FROM person_knows_person WHERE src < $1 ORDER BY 1",
                &[Value::Int(99)],
            )
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(1)],
                vec![Value::Int(3), Value::Int(1)],
                vec![Value::Int(4), Value::Int(1)],
            ]
        );
    }
}

#[test]
fn update_statement() {
    for db in both() {
        db.sql("UPDATE person SET firstName = $2 WHERE id = $1", &[Value::Int(1), Value::str("Renamed")])
            .unwrap();
        let r = db.sql("SELECT firstName FROM person WHERE id = $1", &[Value::Int(1)]).unwrap();
        assert_eq!(r.scalar(), Some(&Value::str("Renamed")));
    }
}

#[test]
fn duplicate_pk_rejected() {
    for db in both() {
        let err = db.sql(
            "INSERT INTO person (id, firstName) VALUES ($1, $2)",
            &[Value::Int(1), Value::str("dup")],
        );
        assert!(err.is_err());
    }
}

#[test]
fn order_by_name_and_desc() {
    for db in both() {
        let r = db
            .sql("SELECT id, firstName FROM person ORDER BY id DESC LIMIT 2", &[])
            .unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![9, 5]);
        let r = db.sql("SELECT id FROM person ORDER BY firstName", &[]);
        assert!(r.is_err(), "ORDER BY column must be projected");
    }
}

#[test]
fn select_star_projects_all_columns() {
    for db in both() {
        let r = db.sql("SELECT * FROM person_knows_person WHERE src = $1", &[Value::Int(1)]).unwrap();
        assert_eq!(r.columns, vec!["src", "dst", "creationDate"]);
        assert_eq!(r.len(), 2);
    }
}

#[test]
fn union_all_keeps_duplicates() {
    for db in both() {
        let r = db
            .sql(
                "SELECT id FROM person WHERE id = $1 UNION ALL SELECT id FROM person WHERE id = $1",
                &[Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        let r = db
            .sql(
                "SELECT id FROM person WHERE id = $1 UNION SELECT id FROM person WHERE id = $1",
                &[Value::Int(1)],
            )
            .unwrap();
        assert_eq!(r.len(), 1);
    }
}

#[test]
fn recursive_cte_terminates_on_cycles() {
    // 1-2-3-1 cycle: set semantics must converge, not loop forever.
    let db = fixture(Layout::Row);
    db.sql("INSERT INTO person_knows_person VALUES ($1, $2, $3)", &[Value::Int(5), Value::Int(1), Value::Int(0)])
        .unwrap();
    let q = "WITH RECURSIVE reach(id, depth) AS ( \
               SELECT dst, 1 FROM person_knows_person WHERE src = $1 \
               UNION SELECT k.dst, r.depth + 1 FROM reach r \
                 JOIN person_knows_person k ON k.src = r.id WHERE r.depth < 50 \
             ) SELECT COUNT(DISTINCT id) FROM reach";
    let r = db.sql(q, &[Value::Int(1)]).unwrap();
    assert!(r.scalar().and_then(Value::as_int).unwrap() >= 4);
}

#[test]
fn recursive_cte_requires_base_case_and_limits_are_rejected() {
    let db = fixture(Layout::Row);
    // No non-recursive arm.
    assert!(db
        .sql(
            "WITH RECURSIVE r(id) AS (SELECT k.dst FROM r JOIN person_knows_person k ON k.src = r.id) \
             SELECT COUNT(*) FROM r",
            &[],
        )
        .is_err());
    // ORDER BY inside the recursive body.
    assert!(db
        .sql(
            "WITH RECURSIVE r(id) AS (SELECT dst FROM person_knows_person WHERE src = $1 ORDER BY 1) \
             SELECT COUNT(*) FROM r",
            &[Value::Int(1)],
        )
        .is_err());
}

#[test]
fn errors_surface_cleanly() {
    let db = fixture(Layout::Row);
    assert!(db.sql("SELECT nope FROM person", &[]).is_err());
    assert!(db.sql("SELECT id FROM nonexistent", &[]).is_err());
    assert!(db.sql("SELECT p.id FROM person p JOIN person p ON p.id = p.id", &[]).is_err());
    assert!(db.sql("SELECT id FROM person WHERE id = $1", &[]).is_err(), "missing param");
}
