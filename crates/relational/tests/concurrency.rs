//! Concurrency regression tests: self-join reads must not deadlock with
//! concurrent writers on the same table (the interactive workload's
//! reader/writer mix does exactly this constantly).

use snb_core::Value;
use snb_relational::{Database, Layout};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn self_join_reads_do_not_deadlock_with_writers() {
    let db = Arc::new(Database::new_snb(Layout::Row));
    for i in 0..50i64 {
        db.sql("INSERT INTO person (id, firstName) VALUES ($1, $2)", &[Value::Int(i), Value::str("x")])
            .unwrap();
    }
    for i in 0..49i64 {
        db.sql(
            "INSERT INTO person_knows_person (src, dst) VALUES ($1, $2)",
            &[Value::Int(i), Value::Int(i + 1)],
        )
        .unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_millis(800);
    let mut handles = Vec::new();
    // Readers: two-hop self-joins, each taking two read guards on the
    // same table.
    for _ in 0..4 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                db.sql(
                    "SELECT DISTINCT k2.dst FROM person_knows_person k1 \
                     JOIN person_knows_person k2 ON k2.src = k1.dst WHERE k1.src = $1",
                    &[Value::Int(3)],
                )
                .unwrap();
                n += 1;
            }
            n
        }));
    }
    // Writer: inserts into the same table the readers self-join.
    {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            let mut next = 1000i64;
            while !stop.load(Ordering::Relaxed) {
                db.sql(
                    "INSERT INTO person_knows_person (src, dst) VALUES ($1, $2)",
                    &[Value::Int(next % 50), Value::Int((next + 7) % 50)],
                )
                .unwrap();
                next += 1;
                n += 1;
            }
            n
        }));
    }
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Relaxed);
    let counts: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(counts.iter().all(|&n| n > 0), "every thread made progress: {counts:?}");
}
