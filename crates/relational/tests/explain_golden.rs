//! EXPLAIN snapshot tests for the SQL front end of the shared
//! optimizer: golden-file renderings of the chosen plans for the
//! interactive workload's SQL query shapes. A planner regression —
//! lost index strategy, bad join order, an undetected reach CTE —
//! shows up as a readable text diff instead of a silent slowdown.
//!
//! Regenerate with `BLESS=1 cargo test -p snb-relational --test
//! explain_golden` after an intentional planner change.

use snb_core::Value;
use snb_relational::{Database, Layout};
use std::path::PathBuf;

/// Small fixed database: 5 persons in a chain-ish knows topology.
/// Deterministic, so cost estimates in the goldens are stable.
fn fixture() -> Database {
    let db = Database::new_snb(Layout::Row);
    for (i, name) in ["alice", "bob", "carol", "dave", "eve"].iter().enumerate() {
        let def = db.table_def("person").unwrap();
        let mut row = vec![Value::Null; def.arity()];
        row[0] = Value::Int(i as i64);
        row[def.col("firstName").unwrap()] = Value::str(name);
        db.insert_row("person", row).unwrap();
    }
    for (a, b) in [(0i64, 1i64), (0, 2), (1, 2), (2, 3), (3, 4)] {
        let def = db.table_def("person_knows_person").unwrap();
        let mut row = vec![Value::Null; def.arity()];
        row[0] = Value::Int(a);
        row[1] = Value::Int(b);
        db.insert_row("person_knows_person", row).unwrap();
    }
    db
}

fn check(db: &Database, name: &str, query: &str) {
    let result = db.sql_explain(query).unwrap();
    assert_eq!(result.columns, vec!["plan".to_string()]);
    let mut actual = String::new();
    for row in &result.rows {
        match &row[0] {
            Value::Str(s) => {
                actual.push_str(s);
                actual.push('\n');
            }
            other => panic!("non-text plan row: {other:?}"),
        }
    }
    let path: PathBuf =
        [env!("CARGO_MANIFEST_DIR"), "tests", "golden", &format!("{name}.txt")].iter().collect();
    if std::env::var("BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (run with BLESS=1)", path.display()));
    assert_eq!(actual, expected, "EXPLAIN drift for `{name}`;\n--- actual ---\n{actual}");
}

#[test]
fn explain_matches_goldens() {
    let db = fixture();
    // Point lookup: scan_strategy resolves the anchored scan to the
    // primary-key index.
    check(&db, "sql_point_lookup", "SELECT firstName FROM person WHERE id = $1");
    // One-hop: join_order seeds from the anchored edge scan, then the
    // person table joins through its id index.
    check(
        &db,
        "sql_one_hop",
        "SELECT p.id, p.firstName FROM person_knows_person k \
         JOIN person p ON p.id = k.dst WHERE k.src = $1",
    );
    // Two-hop self-join: three sources ordered by estimated
    // cardinality, both hops through the src index.
    check(
        &db,
        "sql_two_hop",
        "SELECT DISTINCT k2.dst FROM person_knows_person k1 \
         JOIN person_knows_person k2 ON k2.src = k1.dst WHERE k1.src = $1",
    );
    // Written person-first, but the anchored edge scan is cheaper:
    // join_order re-seeds the join from the edge table.
    check(
        &db,
        "sql_join_reorder",
        "SELECT p.firstName FROM person p \
         JOIN person_knows_person k ON k.src = p.id WHERE k.dst = $1",
    );
    // Undirected one-hop as a UNION: each arm planned independently.
    check(
        &db,
        "sql_one_hop_union",
        "SELECT p.id FROM person_knows_person k JOIN person p ON p.id = k.dst WHERE k.src = $1 \
         UNION \
         SELECT p.id FROM person_knows_person k JOIN person p ON p.id = k.src WHERE k.dst = $1",
    );
    // Shortest path: the reach-shaped recursive CTE is rewritten to a
    // BFS over cached adjacency.
    check(
        &db,
        "sql_shortest_path",
        "WITH RECURSIVE reach(id, depth) AS ( \
           SELECT dst, 1 FROM person_knows_person WHERE src = $1 \
           UNION SELECT src, 1 FROM person_knows_person WHERE dst = $1 \
           UNION SELECT k.dst, r.depth + 1 FROM reach r \
                 JOIN person_knows_person k ON k.src = r.id WHERE r.depth < 10 \
           UNION SELECT k.src, r.depth + 1 FROM reach r \
                 JOIN person_knows_person k ON k.dst = r.id WHERE r.depth < 10 \
         ) SELECT MIN(depth) FROM reach WHERE id = $2",
    );
}

#[test]
fn explain_prefix_dispatches() {
    let db = fixture();
    let r = db.sql("EXPLAIN SELECT firstName FROM person WHERE id = $1", &[]).unwrap();
    assert_eq!(r.columns, vec!["plan".to_string()]);
    assert!(!r.rows.is_empty());
    // Case-insensitive, leading whitespace tolerated.
    let r2 = db.sql("  explain SELECT firstName FROM person WHERE id = $1", &[]).unwrap();
    assert_eq!(r.rows, r2.rows);
}
