//! Property tests: both table layouts must behave identically to a
//! simple row-vector model under arbitrary insert/update/find
//! sequences, and the SQL layer must respect basic relational algebra
//! identities.

use proptest::prelude::*;
use snb_core::Value;
use snb_relational::{Database, Layout};

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, name: String },
    Update { id: i64, name: String },
    FindById { id: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..30i64, "[a-z]{1,5}").prop_map(|(id, name)| Op::Insert { id, name }),
        (0..30i64, "[a-z]{1,5}").prop_map(|(id, name)| Op::Update { id, name }),
        (0..30i64).prop_map(|id| Op::FindById { id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn layouts_agree_with_model(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let row = Database::new_snb(Layout::Row);
        let col = Database::new_snb(Layout::Column);
        let mut model: std::collections::BTreeMap<i64, String> = Default::default();
        for op in &ops {
            match op {
                Op::Insert { id, name } => {
                    let expect_ok = !model.contains_key(id);
                    if expect_ok {
                        model.insert(*id, name.clone());
                    }
                    for db in [&row, &col] {
                        let r = db.sql(
                            "INSERT INTO tag (id, name) VALUES ($1, $2)",
                            &[Value::Int(*id), Value::str(name)],
                        );
                        prop_assert_eq!(r.is_ok(), expect_ok, "{:?}", db.layout());
                    }
                }
                Op::Update { id, name } => {
                    if model.contains_key(id) {
                        model.insert(*id, name.clone());
                    }
                    for db in [&row, &col] {
                        db.sql(
                            "UPDATE tag SET name = $2 WHERE id = $1",
                            &[Value::Int(*id), Value::str(name)],
                        ).unwrap();
                    }
                }
                Op::FindById { id } => {
                    let expected: Vec<Vec<Value>> = model
                        .get(id)
                        .map(|n| vec![vec![Value::str(n)]])
                        .unwrap_or_default();
                    for db in [&row, &col] {
                        let r = db.sql("SELECT name FROM tag WHERE id = $1", &[Value::Int(*id)]).unwrap();
                        prop_assert_eq!(&r.rows, &expected, "{:?}", db.layout());
                    }
                }
            }
        }
        // Full contents agree with the model.
        for db in [&row, &col] {
            let all = db.sql("SELECT id, name FROM tag ORDER BY 1", &[]).unwrap();
            let want: Vec<Vec<Value>> = model
                .iter()
                .map(|(id, n)| vec![Value::Int(*id), Value::str(n)])
                .collect();
            prop_assert_eq!(&all.rows, &want, "{:?}", db.layout());
        }
    }

    #[test]
    fn union_is_commutative_and_dedups(ids in proptest::collection::vec(0..20i64, 1..15)) {
        let db = Database::new_snb(Layout::Row);
        let mut unique = std::collections::BTreeSet::new();
        for id in &ids {
            if unique.insert(*id) {
                db.sql("INSERT INTO tag (id, name) VALUES ($1, $2)", &[Value::Int(*id), Value::str("x")]).unwrap();
            }
        }
        let half = 10i64;
        let a = db.sql(
            "SELECT id FROM tag WHERE id < $1 UNION SELECT id FROM tag WHERE id >= $1 ORDER BY 1",
            &[Value::Int(half)],
        ).unwrap();
        let b = db.sql(
            "SELECT id FROM tag WHERE id >= $1 UNION SELECT id FROM tag WHERE id < $1 ORDER BY 1",
            &[Value::Int(half)],
        ).unwrap();
        prop_assert_eq!(&a.rows, &b.rows);
        prop_assert_eq!(a.rows.len(), unique.len());
        // Overlapping UNION still dedups.
        let c = db.sql(
            "SELECT id FROM tag UNION SELECT id FROM tag ORDER BY 1",
            &[],
        ).unwrap();
        prop_assert_eq!(c.rows.len(), unique.len());
    }

    #[test]
    fn count_matches_returned_rows(ids in proptest::collection::vec(0..50i64, 0..20), bound in 0..50i64) {
        let db = Database::new_snb(Layout::Column);
        let mut unique = std::collections::BTreeSet::new();
        for id in &ids {
            if unique.insert(*id) {
                db.sql("INSERT INTO tag (id, name) VALUES ($1, $2)", &[Value::Int(*id), Value::str("x")]).unwrap();
            }
        }
        let rows = db.sql("SELECT id FROM tag WHERE id < $1", &[Value::Int(bound)]).unwrap();
        let count = db.sql("SELECT COUNT(*) FROM tag WHERE id < $1", &[Value::Int(bound)]).unwrap();
        prop_assert_eq!(count.scalar().and_then(Value::as_int), Some(rows.rows.len() as i64));
    }
}
